//! Workspace umbrella crate: hosts the runnable examples under `examples/`
//! and the cross-crate integration tests under `tests/`. See the individual
//! `pipelayer-*` crates for the actual library code.
