//! Boundary behaviour of the fixed-point quantizer and the Fig. 14 segment
//! decomposition — the exact edges the PL04x range analysis reasons about:
//! values at ±absmax, values just past the clamp, and full-scale codes
//! round-tripping through split/recombine at every resolution the
//! resolution study (Fig. 13) sweeps.

use pipelayer_quant::compose::{compose_segments, split_segments};
use pipelayer_quant::Quantizer;

/// At exactly ±absmax the quantizer must hit ±qmax and dequantize back to
/// ±absmax without any rounding wobble.
#[test]
fn full_scale_values_map_to_qmax_exactly() {
    for bits in 1..=24u8 {
        let q = Quantizer::new(bits);
        for absmax in [1.0f32, 0.5, 3.75, 1e-3, 1e4] {
            assert_eq!(q.quantize(absmax, absmax), q.qmax(), "bits={bits}");
            assert_eq!(q.quantize(-absmax, absmax), -q.qmax(), "bits={bits}");
            let rt = q.quantize_dequantize(absmax, absmax);
            assert!(
                (rt - absmax).abs() <= absmax * 1e-6,
                "bits={bits} absmax={absmax}: {rt}"
            );
            let rt = q.quantize_dequantize(-absmax, absmax);
            assert!(
                (rt + absmax).abs() <= absmax * 1e-6,
                "bits={bits} absmax={absmax}: {rt}"
            );
        }
    }
}

/// Values past the representable range clamp to ±qmax — the datapath
/// saturates, it never wraps. This is the semantics PL043 relies on.
#[test]
fn out_of_range_values_saturate_to_the_clamp() {
    for bits in 2..=16u8 {
        let q = Quantizer::new(bits);
        let absmax = 2.0f32;
        for factor in [1.0001f32, 1.5, 10.0, 1e6] {
            assert_eq!(q.quantize(absmax * factor, absmax), q.qmax(), "bits={bits}");
            assert_eq!(
                q.quantize(-absmax * factor, absmax),
                -q.qmax(),
                "bits={bits}"
            );
        }
        // The dequantized image of anything beyond the range is exactly the
        // full-scale grid point.
        let clamped = q.quantize_dequantize(absmax * 7.0, absmax);
        assert!((clamped - absmax).abs() <= absmax * 1e-6, "bits={bits}");
    }
}

/// One step inside the clamp still quantizes to a distinct (non-saturated)
/// code once the resolution can represent it.
#[test]
fn values_one_step_inside_stay_unsaturated() {
    // bits >= 3 so qmax >= 3 and there is a distinct code below full scale
    // (1.4 steps inside rounds to qmax-1 regardless of f32 wobble).
    for bits in 3..=16u8 {
        let q = Quantizer::new(bits);
        let absmax = 1.0f32;
        let step = q.scale(absmax);
        let code = q.quantize(absmax - 1.4 * step, absmax);
        assert_eq!(code, q.qmax() - 1, "bits={bits}: near-full-scale code");
    }
}

/// Fig. 14 split/recombine is the identity on every magnitude the datapath
/// can store, for every resolution of the Fig. 13 sweep and every cell
/// width that divides it — including the boundary codes 0, 1, qmax−1 and
/// qmax.
#[test]
fn boundary_codes_round_trip_through_segment_recombination() {
    for bits in 2..=16u8 {
        let q = Quantizer::new(bits);
        let qmax = u32::try_from(q.qmax()).expect("qmax is positive");
        for cell in [1u8, 2, 3, 4, 8] {
            if !bits.is_multiple_of(cell) {
                continue;
            }
            for code in [0u32, 1, qmax.saturating_sub(1), qmax] {
                let segments = split_segments(code, bits, cell);
                assert_eq!(
                    segments.len(),
                    usize::from(bits / cell),
                    "bits={bits} cell={cell}"
                );
                let mask = (1u32 << cell) - 1;
                for &s in &segments {
                    assert!(u32::from(s) <= mask, "segment exceeds cell resolution");
                }
                assert_eq!(
                    compose_segments(&segments, cell),
                    code,
                    "bits={bits} cell={cell} code={code}"
                );
            }
        }
    }
}

/// The full quantize → split → recombine → dequantize pipeline (what the
/// crossbars physically store and the shift-add reconstructs) agrees with
/// plain quantize-dequantize at the range boundaries.
#[test]
fn hardware_path_agrees_with_reference_at_boundaries() {
    for bits in 2..=16u8 {
        let q = Quantizer::new(bits);
        let absmax = 1.0f32;
        for x in [absmax, -absmax, absmax * 0.999, -absmax * 0.999, 0.0] {
            let code = q.quantize(x, absmax);
            let magnitude = code.unsigned_abs();
            let cell = if bits.is_multiple_of(4) { 4 } else { 1 };
            let recombined = compose_segments(&split_segments(magnitude, bits, cell), cell);
            assert_eq!(recombined, magnitude, "bits={bits} x={x}");
            let sign = if code < 0 { -1.0 } else { 1.0 };
            let via_hw = sign * recombined as f32 * q.scale(absmax);
            let reference = q.quantize_dequantize(x, absmax);
            assert!(
                (via_hw - reference).abs() <= f32::EPSILON * absmax.abs() * 4.0,
                "bits={bits} x={x}: {via_hw} vs {reference}"
            );
        }
    }
}
