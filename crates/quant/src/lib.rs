//! Fixed-point quantization for the PipeLayer reproduction.
//!
//! ReRAM cells support only limited precision (Sec. 5.1 of the paper): the
//! default PipeLayer configuration stores 16-bit weights on 4-bit cells via
//! the resolution-compensation scheme of Fig. 14. Fig. 13 studies the
//! accuracy cost of *reducing* the stored weight resolution from float down
//! to 2 bits on five networks (M-1, M-2, M-3, M-C, C-4).
//!
//! This crate provides:
//! * [`fixed`] — symmetric fixed-point quantizers for scalars and tensors;
//! * [`compose`] — the 4-bit segment split/shift-add recombination of
//!   Fig. 14, with exactness proofs;
//! * [`grid`] — exact integer-code grids plus the accumulator-width
//!   arithmetic behind the PL04x range analysis in `pipelayer-check`;
//! * [`qnetwork`] — whole-network weight quantization with snapshot/restore,
//!   and the resolution sweep that regenerates Fig. 13.
//!
//! # Example
//!
//! ```
//! use pipelayer_quant::fixed::Quantizer;
//!
//! let q = Quantizer::new(4);
//! // 4-bit symmetric: 15 levels; 0.1 maps to the nearest grid point.
//! let v = q.quantize_dequantize(0.1, 1.0);
//! assert!((v - 0.1).abs() <= 1.0 / 7.0 / 2.0 + 1e-6);
//! ```

pub mod compose;
pub mod fixed;
pub mod grid;
pub mod qat;
pub mod qnetwork;

pub use fixed::{QuantError, Quantizer};
pub use grid::{accumulator_bits_worst_case, bits_for_magnitude, QuantizedGrid};
pub use qat::{train_at_resolution, QatReport};
pub use qnetwork::{
    accuracy_quantized_datapath, quantize_network_weights, quantize_network_weights_per_channel,
    resolution_sweep, restore_params, snapshot_params,
};
