//! Exact quantized code grids and accumulator-width arithmetic.
//!
//! The PL04x range analysis (`pipelayer-check`) needs to see the datapath
//! the way the hardware does: not the dequantized `f32` weights but the
//! integer *codes* programmed into the cells, because the shift-add
//! accumulator behind each bit line (Figs. 9/14) sums code-space partial
//! products. [`QuantizedGrid`] captures a tensor's exact code image plus
//! the per-bit-line aggregates that bound those sums, and the free
//! functions size accumulators ISAAC-style from worst-case products.

use crate::fixed::Quantizer;
use pipelayer_tensor::Tensor;

/// The exact integer-code image of one tensor under per-tensor symmetric
/// scaling: codes, the shared scale, and the metadata the range analysis
/// consumes. Leading-axis slices are *bit lines*: row `j` of a `[n_out,
/// n_in]` inner-product matrix, or output channel `c` of a `[C_out, C_in,
/// K, K]` kernel stack — in both cases the weights one crossbar column
/// accumulates over (Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGrid {
    bits: u8,
    absmax: f32,
    dims: Vec<usize>,
    codes: Vec<i32>,
}

impl QuantizedGrid {
    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The per-tensor scaling magnitude the codes were quantized against.
    pub fn absmax(&self) -> f32 {
        self.absmax
    }

    /// Step size: the value of one code LSB.
    pub fn scale(&self) -> f32 {
        Quantizer::new(self.bits).scale(self.absmax)
    }

    /// Tensor dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The integer codes, row-major.
    pub fn codes(&self) -> &[i32] {
        &self.codes
    }

    /// The value the hardware represents for code index `i`.
    pub fn dequant(&self, i: usize) -> f32 {
        self.codes[i] as f32 * self.scale()
    }

    /// Largest |code| present anywhere in the grid.
    pub fn max_abs_code(&self) -> i32 {
        self.codes.iter().map(|c| c.abs()).max().unwrap_or(0)
    }

    /// Largest Σ|code| over leading-axis slices — the worst bit line's L1
    /// weight mass in code space, the quantity that (times the input code
    /// bound) sizes the accumulator.
    ///
    /// Returns 0 for empty or rank-0 grids.
    pub fn max_slice_code_l1(&self) -> u64 {
        if self.dims.is_empty() || self.codes.is_empty() {
            return self.codes.iter().map(|c| c.unsigned_abs() as u64).sum();
        }
        let slices = self.dims[0].max(1);
        let stride = self.codes.len() / slices;
        (0..slices)
            .map(|s| {
                self.codes[s * stride..(s + 1) * stride]
                    .iter()
                    .map(|c| c.unsigned_abs() as u64)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }
}

impl Quantizer {
    /// Quantizes `t` against its own max magnitude and returns the exact
    /// code grid (the integer image [`quantize_tensor`] dequantizes).
    ///
    /// [`quantize_tensor`]: Quantizer::quantize_tensor
    pub fn grid(&self, t: &Tensor) -> QuantizedGrid {
        let absmax = t.abs_max();
        QuantizedGrid {
            bits: self.bits(),
            absmax,
            dims: t.dims().to_vec(),
            codes: t
                .as_slice()
                .iter()
                .map(|&x| self.quantize(x, absmax))
                .collect(),
        }
    }
}

/// Signed bits (including the sign bit) needed to represent every value in
/// `±magnitude`: `⌈log₂(magnitude+1)⌉ + 1`, minimum 1.
pub fn bits_for_magnitude(magnitude: u128) -> u32 {
    (u128::BITS - magnitude.leading_zeros()) + 1
}

/// Worst-case signed accumulator width for a dot product of `rows` terms of
/// `w_bits`-bit weights against `x_bits`-bit inputs — the geometry-only
/// bound used when actual weights are unavailable (ImageNet-scale models):
/// every term at `qmax_w · qmax_x`.
pub fn accumulator_bits_worst_case(rows: u64, w_bits: u8, x_bits: u8) -> u32 {
    let qmax = |b: u8| -> u128 {
        if b == 0 {
            return 0;
        }
        ((1u128 << (b.min(127) - 1)) - 1).max(1)
    };
    bits_for_magnitude(rows as u128 * qmax(w_bits) * qmax(x_bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_quantize_dequantize() {
        let t = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 0.25, 0.75, -0.3, 1.0]);
        let q = Quantizer::new(8);
        let grid = q.grid(&t);
        let qd = q.quantize_tensor(&t);
        for i in 0..t.numel() {
            assert!(
                (grid.dequant(i) - qd.as_slice()[i]).abs() < 1e-7,
                "code {i} disagrees"
            );
        }
        assert_eq!(grid.max_abs_code(), 127);
        assert_eq!(grid.dims(), &[2, 3]);
    }

    #[test]
    fn slice_l1_picks_the_heaviest_bit_line() {
        // Row 0 codes: 7, -7, 7 (L1 21); row 1: 1, 0, -1 (L1 2).
        let t = Tensor::from_vec(&[2, 3], vec![1.0, -1.0, 1.0, 0.14, 0.0, -0.14]);
        let grid = Quantizer::new(4).grid(&t);
        assert_eq!(grid.max_slice_code_l1(), 21);
    }

    #[test]
    fn bits_for_magnitude_edges() {
        assert_eq!(bits_for_magnitude(0), 1);
        assert_eq!(bits_for_magnitude(1), 2); // ±1 needs 2 signed bits
        assert_eq!(bits_for_magnitude(127), 8);
        assert_eq!(bits_for_magnitude(128), 9);
        assert_eq!(bits_for_magnitude(32767), 16);
    }

    #[test]
    fn worst_case_matches_hand_arithmetic() {
        // One 16x16-bit product: 32767² ≈ 2^29.999 -> 31 signed bits.
        assert_eq!(accumulator_bits_worst_case(1, 16, 16), 31);
        // C-4 conv2 at 8 bits: 73 rows x 127 x 127 = 1_177_417 -> 22.
        assert_eq!(accumulator_bits_worst_case(73, 8, 8), 22);
        // VGG ip25088-4096 at 16 bits needs 46 signed bits.
        assert_eq!(accumulator_bits_worst_case(25_089, 16, 16), 46);
    }

    #[test]
    fn vector_grid_has_single_slice() {
        let t = Tensor::from_vec(&[4], vec![1.0, -0.5, 0.25, 0.0]);
        let grid = Quantizer::new(4).grid(&t);
        // Leading axis = 4 slices of one element; worst slice L1 = 7.
        assert_eq!(grid.max_slice_code_l1(), 7);
    }
}
