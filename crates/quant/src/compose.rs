//! Resolution compensation (Fig. 14): building 16-bit arithmetic from 4-bit
//! cells.
//!
//! In testing mode the same input drives four groups of 4-bit arrays holding
//! weight segments `15..12`, `11..8`, `7..4`, `3..0`; the four partial
//! results are shifted (`<<12, <<8, <<4, <<0`) and added (Fig. 14a). In
//! training mode the old segments are read, shifted together into the old
//! weight, updated, and the new segments written back (Fig. 14b). The
//! functions here implement — and the tests prove — the exactness of that
//! decomposition.

/// Splits an unsigned magnitude into `ceil(data_bits/cell_bits)` segments,
/// least significant first.
///
/// # Panics
///
/// Panics if `cell_bits` is 0 or ≥ 32, or `value` needs more than
/// `data_bits` bits.
pub fn split_segments(value: u32, data_bits: u8, cell_bits: u8) -> Vec<u8> {
    assert!(cell_bits > 0 && cell_bits < 32, "invalid cell resolution");
    assert!(
        data_bits == 32 || u64::from(value) < (1u64 << data_bits),
        "value {value} does not fit in {data_bits} bits"
    );
    let n = data_bits.div_ceil(cell_bits);
    let mask = (1u32 << cell_bits) - 1;
    (0..n)
        .map(|g| ((value >> (g * cell_bits)) & mask) as u8)
        .collect()
}

/// Recomposes segments into the original value (the shift-add of Fig. 14a).
pub fn compose_segments(segments: &[u8], cell_bits: u8) -> u32 {
    segments
        .iter()
        .enumerate()
        .map(|(g, &s)| (s as u32) << (g as u8 * cell_bits))
        .sum()
}

/// Computes an integer MVM segment-wise: each weight segment group performs
/// its own MVM against the same input, and the partial outputs are
/// shift-added. Returns the composed outputs.
///
/// `weights[out][in]` are unsigned magnitudes of at most `data_bits` bits.
///
/// # Panics
///
/// Panics on ragged input or bit-width violations.
pub fn segmented_mvm(
    weights: &[Vec<u32>],
    input: &[u32],
    data_bits: u8,
    cell_bits: u8,
) -> Vec<u64> {
    assert!(!weights.is_empty(), "empty weight matrix");
    let in_dim = weights[0].len();
    assert!(weights.iter().all(|r| r.len() == in_dim), "ragged weights");
    assert_eq!(input.len(), in_dim, "input length mismatch");

    let n_groups = data_bits.div_ceil(cell_bits);
    let mut out = vec![0u64; weights.len()];
    for g in 0..n_groups {
        let shift = g * cell_bits;
        let mask = (1u32 << cell_bits) - 1;
        for (o, row) in weights.iter().enumerate() {
            let partial: u64 = row
                .iter()
                .zip(input)
                .map(|(&w, &x)| {
                    let seg = (w >> shift) & mask;
                    seg as u64 * x as u64
                })
                .sum();
            out[o] += partial << shift;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig14_example_split() {
        // 16-bit word into four nibbles W3..W0, LSB first.
        let segs = split_segments(0xABCD, 16, 4);
        assert_eq!(segs, vec![0xD, 0xC, 0xB, 0xA]);
        assert_eq!(compose_segments(&segs, 4), 0xABCD);
    }

    #[test]
    fn uneven_split_rounds_up() {
        let segs = split_segments(0b11111, 5, 2);
        assert_eq!(segs.len(), 3);
        assert_eq!(compose_segments(&segs, 2), 0b11111);
    }

    #[test]
    fn segmented_mvm_known() {
        let w = vec![vec![0x00FF, 0x0F00]];
        let x = vec![2, 3];
        let got = segmented_mvm(&w, &x, 16, 4);
        assert_eq!(got, vec![0x00FF * 2 + 0x0F00 * 3]);
    }

    proptest! {
        #[test]
        fn split_compose_roundtrip(v in 0u32..65536) {
            let segs = split_segments(v, 16, 4);
            prop_assert_eq!(segs.len(), 4);
            prop_assert_eq!(compose_segments(&segs, 4), v);
        }

        /// Fig. 14(a): four 4-bit MVMs with shift-add equal one 16-bit MVM.
        #[test]
        fn segmented_mvm_is_exact(seed in 0u64..2000) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let (out_dim, in_dim) = (rng.random_range(1usize..5), rng.random_range(1usize..5));
            let w: Vec<Vec<u32>> = (0..out_dim)
                .map(|_| (0..in_dim).map(|_| rng.random_range(0u32..65536)).collect())
                .collect();
            let x: Vec<u32> = (0..in_dim).map(|_| rng.random_range(0u32..65536)).collect();
            let reference: Vec<u64> = w
                .iter()
                .map(|row| row.iter().zip(&x).map(|(&a, &b)| a as u64 * b as u64).sum())
                .collect();
            prop_assert_eq!(segmented_mvm(&w, &x, 16, 4), reference);
        }

        /// The decomposition works for any cell width dividing the data width.
        #[test]
        fn any_cell_width(v in 0u32..65536, cell_bits in 1u8..9) {
            let segs = split_segments(v, 16, cell_bits);
            prop_assert_eq!(compose_segments(&segs, cell_bits), v);
        }
    }
}
