//! Quantization-aware training: keeping the weights on the fixed-point
//! grid *throughout* training.
//!
//! PipeLayer does not train in float and quantize afterwards — the weights
//! live in ReRAM at 16-bit resolution (four 4-bit segments, Fig. 14) from
//! the first batch to the last, and every update is a read-modify-write on
//! that grid. This module reproduces that regime in the software framework:
//! after every batch update the weights are snapped back to the `bits` grid.
//! At 16 bits this is indistinguishable from float training (validating the
//! paper's design point); at very low resolutions the updates vanish under
//! the quantization step and training stalls — the reason resolution
//! compensation exists at all.

use crate::fixed::Quantizer;
use crate::qnetwork::quantize_network_weights;
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::trainer::TrainConfig;
use pipelayer_nn::Network;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a quantization-aware training run.
#[derive(Debug, Clone, PartialEq)]
pub struct QatReport {
    /// Weight resolution used throughout training.
    pub bits: u8,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final test accuracy.
    pub final_test_accuracy: f32,
}

/// Trains `net` with its weights held at `bits` resolution: the averaged
/// update of every batch is applied in float and immediately re-quantized
/// (the read-modify-write grid of Fig. 14b).
///
/// # Panics
///
/// Panics on a degenerate config or empty dataset.
pub fn train_at_resolution(
    net: &mut Network,
    data: &SyntheticMnist,
    cfg: &TrainConfig,
    bits: u8,
) -> QatReport {
    assert!(
        cfg.epochs > 0 && cfg.batch_size > 0,
        "degenerate train config"
    );
    assert!(!data.train.is_empty(), "empty training set");
    let _ = Quantizer::new(bits); // validate the width eagerly

    // Start from on-grid weights, as Weight_load would program them.
    quantize_network_weights(net, bits);

    let n = data.train.len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let images: Vec<_> = chunk
                .iter()
                .map(|&i| data.train.images[i].clone())
                .collect();
            let labels: Vec<_> = chunk.iter().map(|&i| data.train.labels[i]).collect();
            loss_sum += net.train_batch(&images, &labels, cfg.lr);
            // Write-back lands on the cell grid.
            quantize_network_weights(net, bits);
            batches += 1;
        }
        epoch_losses.push(loss_sum / batches as f32);
    }

    QatReport {
        bits,
        epoch_losses,
        final_test_accuracy: net.accuracy(&data.test.images, &data.test.labels),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::trainer::Trainer;
    use pipelayer_nn::zoo;

    fn cfg() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        }
    }

    #[test]
    fn sixteen_bit_training_matches_float() {
        let data = SyntheticMnist::generate(300, 100, 77);
        let mut float_net = zoo::m1(77);
        let float_report = Trainer::new(cfg()).fit(&mut float_net, &data);

        let mut q_net = zoo::m1(77);
        let q_report = train_at_resolution(&mut q_net, &data, &cfg(), 16);
        assert!(
            (q_report.final_test_accuracy - float_report.final_test_accuracy).abs() < 0.08,
            "16-bit QAT should match float: {} vs {}",
            q_report.final_test_accuracy,
            float_report.final_test_accuracy
        );
    }

    #[test]
    fn two_bit_training_stalls() {
        // With a 2-bit grid the averaged SGD steps round away to nothing —
        // the failure mode resolution compensation prevents.
        let data = SyntheticMnist::generate(300, 100, 78);
        let mut hi = zoo::m1(78);
        let hi_acc = train_at_resolution(&mut hi, &data, &cfg(), 16).final_test_accuracy;
        let mut lo = zoo::m1(78);
        let lo_acc = train_at_resolution(&mut lo, &data, &cfg(), 2).final_test_accuracy;
        assert!(
            lo_acc < hi_acc - 0.1,
            "2-bit training ({lo_acc}) should clearly trail 16-bit ({hi_acc})"
        );
    }

    #[test]
    fn loss_decreases_at_workable_resolution() {
        let data = SyntheticMnist::generate(200, 50, 79);
        let mut net = zoo::m1(79);
        let report = train_at_resolution(&mut net, &data, &cfg(), 12);
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }
}
