//! Symmetric fixed-point quantization.

use pipelayer_tensor::Tensor;

/// A rejected [`Quantizer`] resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// The requested resolution is outside the supported `1..=24` bits.
    UnsupportedResolution(u8),
}

impl core::fmt::Display for QuantError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QuantError::UnsupportedResolution(bits) => {
                write!(f, "resolution must be 1..=24 bits, got {bits}")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// A symmetric signed quantizer with `bits` of resolution: the representable
/// codes are `-(2^(bits-1)-1) ..= 2^(bits-1)-1` (zero always representable;
/// positive and negative magnitudes map to the paper's positive/negative
/// crossbars).
///
/// For `bits == 1` the single magnitude level acts as a sign bit
/// (codes −1, 0, +1 collapse to −1/0/+1 of one level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantizer {
    bits: u8,
}

impl Quantizer {
    /// Creates a quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::UnsupportedResolution`] unless
    /// `1 <= bits <= 24`.
    pub fn try_new(bits: u8) -> Result<Self, QuantError> {
        if !(1..=24).contains(&bits) {
            return Err(QuantError::UnsupportedResolution(bits));
        }
        Ok(Quantizer { bits })
    }

    /// Creates a quantizer.
    ///
    /// Out-of-range `bits` is debug-asserted; release builds clamp to the
    /// supported `1..=24` range. Use [`try_new`](Self::try_new) to handle
    /// the error explicitly.
    pub fn new(bits: u8) -> Self {
        debug_assert!(
            (1..=24).contains(&bits),
            "quantizer supports 1..=24 bits (got {bits})"
        );
        Quantizer {
            bits: bits.clamp(1, 24),
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Largest magnitude code: `2^(bits-1) − 1` (at least 1).
    pub fn qmax(&self) -> i32 {
        ((1i64 << (self.bits - 1)) - 1).max(1) as i32
    }

    /// Step size (LSB value) for data spanning `[-absmax, absmax]`.
    pub fn scale(&self, absmax: f32) -> f32 {
        if absmax == 0.0 {
            1.0
        } else {
            absmax / self.qmax() as f32
        }
    }

    /// Quantizes `x` to an integer code for data range `absmax`.
    pub fn quantize(&self, x: f32, absmax: f32) -> i32 {
        let s = self.scale(absmax);
        let q = (x / s).round() as i64;
        q.clamp(-(self.qmax() as i64), self.qmax() as i64) as i32
    }

    /// Quantize–dequantize round trip: the value the hardware actually
    /// represents.
    pub fn quantize_dequantize(&self, x: f32, absmax: f32) -> f32 {
        self.quantize(x, absmax) as f32 * self.scale(absmax)
    }

    /// Quantize–dequantizes a whole tensor against its own max magnitude
    /// (per-tensor scaling, the paper's per-array weight mapping).
    pub fn quantize_tensor(&self, t: &Tensor) -> Tensor {
        let absmax = t.abs_max();
        t.map(|x| self.quantize_dequantize(x, absmax))
    }

    /// Worst-case absolute representation error for range `absmax`.
    pub fn max_error(&self, absmax: f32) -> f32 {
        self.scale(absmax) * 0.5
    }

    /// Quantize–dequantizes a rank-≥2 tensor with an independent scale per
    /// leading-axis slice. For a `[C_out, ...]` kernel tensor this is
    /// *per-bitline* scaling: each output channel's kernel occupies its own
    /// bit line (Fig. 4), whose current range can be referenced
    /// independently, so one outlier channel no longer wastes the other
    /// channels' resolution.
    ///
    /// # Panics
    ///
    /// Panics on rank-0/1 tensors (use [`quantize_tensor`]).
    ///
    /// [`quantize_tensor`]: Self::quantize_tensor
    pub fn quantize_tensor_per_channel(&self, t: &Tensor) -> Tensor {
        assert!(
            t.shape().rank() >= 2,
            "per-channel quantization needs a rank-2+ tensor"
        );
        let channels = t.dims()[0];
        let stride = t.numel() / channels;
        let data = t.as_slice();
        let mut out = Vec::with_capacity(t.numel());
        for ch in 0..channels {
            let slice = &data[ch * stride..(ch + 1) * stride];
            let absmax = slice.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            out.extend(slice.iter().map(|&x| self.quantize_dequantize(x, absmax)));
        }
        Tensor::from_vec(t.dims(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn qmax_values() {
        assert_eq!(Quantizer::new(4).qmax(), 7);
        assert_eq!(Quantizer::new(8).qmax(), 127);
        assert_eq!(Quantizer::new(16).qmax(), 32767);
        assert_eq!(Quantizer::new(1).qmax(), 1);
    }

    #[test]
    fn try_new_rejects_out_of_range_resolutions() {
        assert_eq!(
            Quantizer::try_new(0),
            Err(QuantError::UnsupportedResolution(0))
        );
        assert_eq!(
            Quantizer::try_new(25),
            Err(QuantError::UnsupportedResolution(25))
        );
        assert_eq!(Quantizer::try_new(16).map(|q| q.bits()), Ok(16));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "1..=24 bits")]
    fn new_panics_out_of_range() {
        Quantizer::new(25);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn out_of_range_bits_clamp_in_release() {
        assert_eq!(Quantizer::new(25).bits(), 24);
        assert_eq!(Quantizer::new(0).bits(), 1);
    }

    #[test]
    fn zero_is_exact() {
        for bits in 1..=16 {
            assert_eq!(Quantizer::new(bits).quantize_dequantize(0.0, 3.0), 0.0);
        }
    }

    #[test]
    fn extremes_are_exact() {
        let q = Quantizer::new(6);
        assert!((q.quantize_dequantize(2.5, 2.5) - 2.5).abs() < 1e-6);
        assert!((q.quantize_dequantize(-2.5, 2.5) + 2.5).abs() < 1e-6);
    }

    #[test]
    fn tensor_quantization_reduces_distinct_values() {
        let t = Tensor::from_fn(&[100], |i| (i[0] as f32 * 0.3).sin());
        let q2 = Quantizer::new(2).quantize_tensor(&t);
        let mut vals: Vec<i32> = q2.as_slice().iter().map(|&v| (v * 1000.0) as i32).collect();
        vals.sort_unstable();
        vals.dedup();
        assert!(
            vals.len() <= 3,
            "2-bit should leave ≤3 levels, got {}",
            vals.len()
        );
    }

    #[test]
    fn more_bits_never_worse() {
        let t = Tensor::from_fn(&[64], |i| ((i[0] * 7 % 13) as f32 - 6.0) * 0.1);
        let mut last_err = f32::INFINITY;
        for bits in [2u8, 4, 6, 8, 12] {
            let q = Quantizer::new(bits).quantize_tensor(&t);
            let err = (&t - &q).norm_sq();
            assert!(err <= last_err + 1e-9, "error grew at {bits} bits");
            last_err = err;
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_with_outlier() {
        // One channel holds a huge outlier; per-tensor scaling destroys the
        // other channel's resolution, per-channel scaling preserves it.
        let t = Tensor::from_vec(&[2, 4], vec![100.0, 0.0, 0.0, 0.0, 0.1, 0.2, -0.15, 0.05]);
        let q = Quantizer::new(4);
        let per_tensor = q.quantize_tensor(&t);
        let per_channel = q.quantize_tensor_per_channel(&t);
        let err = |qt: &Tensor| -> f32 {
            (8..16.min(qt.numel()))
                .map(|i| (qt.as_slice()[i] - t.as_slice()[i]).abs())
                .sum::<f32>()
                + (4..8)
                    .map(|i| (qt.as_slice()[i] - t.as_slice()[i]).abs())
                    .sum::<f32>()
        };
        assert!(
            err(&per_channel) < err(&per_tensor),
            "per-channel should preserve the small channel"
        );
        // The small channel survives per-channel quantization almost intact.
        assert!((per_channel.as_slice()[5] - 0.2).abs() < 0.02);
        // Per-tensor flattens it to zero (step = 100/7 ≈ 14).
        assert_eq!(per_tensor.as_slice()[5], 0.0);
    }

    #[test]
    fn per_channel_matches_per_tensor_for_uniform_channels() {
        let t = Tensor::from_fn(&[3, 5], |i| ((i[1] as f32) - 2.0) * 0.25);
        let q = Quantizer::new(6);
        assert!(q
            .quantize_tensor_per_channel(&t)
            .allclose(&q.quantize_tensor(&t), 1e-6));
    }

    #[test]
    #[should_panic(expected = "rank-2+")]
    fn per_channel_rejects_vectors() {
        Quantizer::new(4).quantize_tensor_per_channel(&Tensor::ones(&[4]));
    }

    proptest! {
        #[test]
        fn error_bounded_by_half_lsb(x in -5.0f32..5.0, bits in 2u8..16) {
            let q = Quantizer::new(bits);
            let v = q.quantize_dequantize(x, 5.0);
            prop_assert!((v - x).abs() <= q.max_error(5.0) + 1e-5);
        }

        #[test]
        fn quantization_is_idempotent(x in -1.0f32..1.0, bits in 2u8..12) {
            let q = Quantizer::new(bits);
            let once = q.quantize_dequantize(x, 1.0);
            let twice = q.quantize_dequantize(once, 1.0);
            prop_assert!((once - twice).abs() < 1e-6);
        }

        #[test]
        fn sign_symmetry(x in 0.0f32..2.0, bits in 2u8..12) {
            let q = Quantizer::new(bits);
            prop_assert!(
                (q.quantize_dequantize(x, 2.0) + q.quantize_dequantize(-x, 2.0)).abs() < 1e-6
            );
        }
    }
}
