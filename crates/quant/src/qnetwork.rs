//! Whole-network weight quantization and the Fig. 13 resolution sweep.

use crate::fixed::Quantizer;
use pipelayer_nn::data::Dataset;
use pipelayer_nn::Network;
use pipelayer_tensor::Tensor;

/// Saved copies of every parameterised layer's `(weight, bias)`.
pub type ParamSnapshot = Vec<(Tensor, Tensor)>;

/// Copies all learnable parameters out of `net`.
pub fn snapshot_params(net: &mut Network) -> ParamSnapshot {
    net.layers_mut()
        .iter_mut()
        .filter_map(|l| l.params_mut())
        .map(|p| (p.weight.clone(), p.bias.clone()))
        .collect()
}

/// Restores parameters captured by [`snapshot_params`].
///
/// # Panics
///
/// Panics if the snapshot does not match the network's parameterised layers.
pub fn restore_params(net: &mut Network, snapshot: &ParamSnapshot) {
    let mut it = snapshot.iter();
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            let (w, b) = it.next().expect("snapshot shorter than network");
            assert_eq!(p.weight.dims(), w.dims(), "snapshot weight shape mismatch");
            *p.weight = w.clone();
            *p.bias = b.clone();
        }
    }
    assert!(it.next().is_none(), "snapshot longer than network");
}

/// Quantize–dequantizes every weight and bias tensor in place to `bits`
/// resolution (per-tensor symmetric scaling — each layer's arrays get their
/// own full-scale mapping, as in the paper's kernel-to-array mapping).
pub fn quantize_network_weights(net: &mut Network, bits: u8) {
    let q = Quantizer::new(bits);
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            *p.weight = q.quantize_tensor(p.weight);
            *p.bias = q.quantize_tensor(p.bias);
        }
    }
}

/// Classification accuracy with an `bits`-resolution *datapath*: the input
/// image and every layer's output are quantize–dequantized to `bits` before
/// the next layer consumes them — modelling intermediate data (`d_l`)
/// stored in N-bit ReRAM cells, on top of whatever the weights already are.
/// Quantization errors compound per layer, which is why deep convolutional
/// networks (the paper's C-4) collapse at low resolution while shallow
/// perceptrons survive.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn accuracy_quantized_datapath(net: &Network, data: &Dataset, bits: u8) -> f32 {
    assert!(!data.is_empty(), "empty evaluation dataset");
    let q = Quantizer::new(bits);
    let mut correct = 0usize;
    for (img, &label) in data.images.iter().zip(&data.labels) {
        let mut x = q.quantize_tensor(img);
        for layer in net.layers() {
            x = q.quantize_tensor(&layer.infer(&x));
        }
        if x.argmax() == label {
            correct += 1;
        }
    }
    correct as f32 / data.len() as f32
}

/// Like [`quantize_network_weights`] but with an independent scale per
/// output channel (per-bitline referencing — see
/// [`Quantizer::quantize_tensor_per_channel`]). Biases stay per-tensor.
pub fn quantize_network_weights_per_channel(net: &mut Network, bits: u8) {
    let q = Quantizer::new(bits);
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            *p.weight = if p.weight.shape().rank() >= 2 {
                q.quantize_tensor_per_channel(p.weight)
            } else {
                q.quantize_tensor(p.weight)
            };
            *p.bias = q.quantize_tensor(p.bias);
        }
    }
}

/// One point of the Fig. 13 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolutionPoint {
    /// Weight resolution; `None` is the float baseline.
    pub bits: Option<u8>,
    /// Absolute test accuracy at this resolution.
    pub accuracy: f32,
    /// Accuracy normalised to the float baseline (the paper's y-axis).
    pub normalized: f32,
}

/// Evaluates a *trained* network at float precision and at every resolution
/// in `bit_widths`, restoring the original weights afterwards. Returns the
/// float point first, then one point per requested width.
///
/// At each width both the weights and the datapath (stored intermediate
/// data) run at that resolution — everything in PipeLayer lives in ReRAM
/// cells (see [`accuracy_quantized_datapath`]).
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn resolution_sweep(
    net: &mut Network,
    data: &Dataset,
    bit_widths: &[u8],
) -> Vec<ResolutionPoint> {
    assert!(!data.is_empty(), "empty evaluation dataset");
    let snapshot = snapshot_params(net);
    let float_acc = net.accuracy(&data.images, &data.labels);
    let base = if float_acc > 0.0 { float_acc } else { 1.0 };

    let mut points = vec![ResolutionPoint {
        bits: None,
        accuracy: float_acc,
        normalized: 1.0,
    }];
    for &bits in bit_widths {
        quantize_network_weights(net, bits);
        let acc = accuracy_quantized_datapath(net, data, bits);
        points.push(ResolutionPoint {
            bits: Some(bits),
            accuracy: acc,
            normalized: acc / base,
        });
        restore_params(net, &snapshot);
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::data::SyntheticMnist;
    use pipelayer_nn::trainer::{TrainConfig, Trainer};
    use pipelayer_nn::zoo;

    fn trained_mlp() -> (Network, SyntheticMnist) {
        let data = SyntheticMnist::generate(300, 100, 31);
        let mut net = zoo::m1(31);
        Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
        (net, data)
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut net, data) = trained_mlp();
        let before = net.accuracy(&data.test.images, &data.test.labels);
        let snap = snapshot_params(&mut net);
        quantize_network_weights(&mut net, 2);
        restore_params(&mut net, &snap);
        let after = net.accuracy(&data.test.images, &data.test.labels);
        assert_eq!(before, after);
    }

    #[test]
    fn high_resolution_preserves_accuracy() {
        let (mut net, data) = trained_mlp();
        let points = resolution_sweep(&mut net, &data.test, &[8]);
        assert!(
            points[1].normalized > 0.95,
            "8-bit should be near-lossless, got {}",
            points[1].normalized
        );
    }

    #[test]
    fn accuracy_degrades_monotonically_ish() {
        let (mut net, data) = trained_mlp();
        let points = resolution_sweep(&mut net, &data.test, &[8, 4, 2, 1]);
        let n8 = points[1].normalized;
        let n1 = points[4].normalized;
        assert!(n1 <= n8 + 0.05, "1-bit ({n1}) should not beat 8-bit ({n8})");
    }

    #[test]
    fn sweep_restores_weights() {
        let (mut net, data) = trained_mlp();
        let acc0 = net.accuracy(&data.test.images, &data.test.labels);
        resolution_sweep(&mut net, &data.test, &[2]);
        assert_eq!(net.accuracy(&data.test.images, &data.test.labels), acc0);
    }

    #[test]
    fn per_channel_network_quantization_not_worse() {
        let (mut net, data) = trained_mlp();
        let snap = snapshot_params(&mut net);
        quantize_network_weights(&mut net, 3);
        let per_tensor = net.accuracy(&data.test.images, &data.test.labels);
        restore_params(&mut net, &snap);
        quantize_network_weights_per_channel(&mut net, 3);
        let per_channel = net.accuracy(&data.test.images, &data.test.labels);
        restore_params(&mut net, &snap);
        assert!(
            per_channel >= per_tensor - 0.05,
            "per-channel ({per_channel}) should not trail per-tensor ({per_tensor}) meaningfully"
        );
    }

    #[test]
    fn quantized_weights_are_on_grid() {
        let (mut net, _) = trained_mlp();
        quantize_network_weights(&mut net, 3);
        for layer in net.layers_mut() {
            if let Some(p) = layer.params_mut() {
                let absmax = p.weight.abs_max();
                if absmax == 0.0 {
                    continue;
                }
                let step = absmax / 3.0; // qmax(3 bits) = 3
                for &w in p.weight.as_slice() {
                    let k = w / step;
                    assert!((k - k.round()).abs() < 1e-3, "off-grid weight {w}");
                }
            }
        }
    }
}
