//! Online scrub/refresh scheduling against device aging.
//!
//! The drift model (`pipelayer_reram::drift`) ages weight cells while the
//! pipeline runs: retention drift pulls conductances down, read disturb
//! pushes them up, and — because a batch update only re-pulses cells whose
//! quantized level actually changed — *stable* weights keep aging straight
//! through training. The classical answer is a scrub (refresh) scheduler:
//! every `interval_images` processed images, a budgeted slice of
//! `rows_per_pass` word lines is read back and any cell found off its
//! programmed level is re-programmed through the PR 1 program-and-verify
//! loop.
//!
//! The policy's costs are threaded into the timing, energy and endurance
//! models exactly like verify costs were: a scrub pass spends one verify
//! read per scanned cell and one tuning pulse per re-pulsed cell, its
//! row-serial time is amortised per image, and its pulses wear the weight
//! cells. The default policy is **off** and every cost term is then an
//! exact no-op (`+ 0.0` / `× 1.0`), so the calibrated paper numbers are
//! bit-identical with scrub disabled.

/// When and how much to scrub. Defaults to off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScrubPolicy {
    /// Scrub period in processed images (logical cycles); `0` disables
    /// scrubbing entirely.
    pub interval_images: u64,
    /// Word lines refreshed per scrub pass on every mapped matrix (the
    /// pass wraps round-robin through the array across passes).
    pub rows_per_pass: usize,
    /// Planning estimate of the fraction of scanned cells that need a
    /// re-pulse — the knob the analytic energy/endurance models use
    /// (the functional simulator counts actual pulses instead).
    pub repulse_fraction: f64,
    /// Wear-leveling guard: a scrub pass skips any word line whose
    /// smallest remaining write budget is below this threshold, instead of
    /// burning a near-dead row's last pulses on maintenance writes. `0`
    /// disables the guard (scrub every row — the exact pre-wear
    /// behaviour); the guard only bites when a wear model is attached.
    pub min_headroom_writes: u64,
}

impl ScrubPolicy {
    /// Scrubbing disabled; all cost terms are exact no-ops.
    pub fn off() -> Self {
        ScrubPolicy {
            interval_images: 0,
            rows_per_pass: 0,
            repulse_fraction: 0.0,
            min_headroom_writes: 0,
        }
    }

    /// Scrub `rows_per_pass` rows every `interval_images` images, with the
    /// default planning estimate of 5% of scanned cells needing a
    /// re-pulse.
    pub fn every(interval_images: u64, rows_per_pass: usize) -> Self {
        ScrubPolicy {
            interval_images,
            rows_per_pass,
            repulse_fraction: 0.05,
            min_headroom_writes: 0,
        }
    }

    /// The same schedule with the wear-leveling guard set: rows whose
    /// remaining write budget has fallen below `min_headroom_writes` are
    /// skipped rather than scrubbed.
    pub fn with_min_headroom(mut self, min_headroom_writes: u64) -> Self {
        self.min_headroom_writes = min_headroom_writes;
        self
    }

    /// True when the policy never scrubs.
    pub fn is_off(&self) -> bool {
        self.interval_images == 0
    }

    /// Scrub passes per processed image (0 when off).
    pub fn passes_per_image(&self) -> f64 {
        if self.is_off() {
            0.0
        } else {
            1.0 / self.interval_images as f64
        }
    }

    /// Word lines refreshed per processed image (0 when off).
    pub fn rows_per_image(&self) -> f64 {
        self.rows_per_pass as f64 * self.passes_per_image()
    }
}

impl Default for ScrubPolicy {
    fn default() -> Self {
        ScrubPolicy::off()
    }
}

/// One accuracy sample of an aging campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftSample {
    /// Logical cycles (processed images) of aging at this sample.
    pub cycles: u64,
    /// Classification accuracy at this point in time.
    pub accuracy: f64,
}

/// Accuracy-versus-time under device aging, with and without scrubbing —
/// the summary artifact of a drift campaign (`ablation_resilience`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DriftReport {
    /// Accuracy before any aging (t = 0, drift-free).
    pub baseline_accuracy: f64,
    /// Samples along the aging axis with the scrub scheduler running.
    pub scrub_on: Vec<DriftSample>,
    /// Samples along the same axis with scrubbing disabled.
    pub scrub_off: Vec<DriftSample>,
}

impl DriftReport {
    /// Final accuracy with scrub on (baseline if no samples were taken).
    pub fn final_scrub_on(&self) -> f64 {
        self.scrub_on
            .last()
            .map_or(self.baseline_accuracy, |s| s.accuracy)
    }

    /// Final accuracy with scrub off (baseline if no samples were taken).
    pub fn final_scrub_off(&self) -> f64 {
        self.scrub_off
            .last()
            .map_or(self.baseline_accuracy, |s| s.accuracy)
    }

    /// Accuracy points the scrub scheduler saved at the end of the
    /// campaign: `final_scrub_on − final_scrub_off`.
    pub fn accuracy_saved(&self) -> f64 {
        self.final_scrub_on() - self.final_scrub_off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_with_zero_rates() {
        let p = ScrubPolicy::default();
        assert!(p.is_off());
        assert_eq!(p.passes_per_image(), 0.0);
        assert_eq!(p.rows_per_image(), 0.0);
    }

    #[test]
    fn rates_follow_interval_and_budget() {
        let p = ScrubPolicy::every(100, 8);
        assert!(!p.is_off());
        assert_eq!(p.passes_per_image(), 0.01);
        assert_eq!(p.rows_per_image(), 0.08);
        assert_eq!(p.repulse_fraction, 0.05);
        assert_eq!(p.min_headroom_writes, 0, "guard defaults off");
    }

    #[test]
    fn headroom_guard_is_builder_set() {
        let p = ScrubPolicy::every(100, 8).with_min_headroom(500);
        assert_eq!(p.min_headroom_writes, 500);
        assert_eq!(p.rows_per_pass, 8, "schedule unchanged");
    }

    #[test]
    fn report_summarises_endpoints() {
        let r = DriftReport {
            baseline_accuracy: 0.9,
            scrub_on: vec![
                DriftSample {
                    cycles: 100,
                    accuracy: 0.89,
                },
                DriftSample {
                    cycles: 200,
                    accuracy: 0.88,
                },
            ],
            scrub_off: vec![DriftSample {
                cycles: 200,
                accuracy: 0.5,
            }],
        };
        assert_eq!(r.final_scrub_on(), 0.88);
        assert_eq!(r.final_scrub_off(), 0.5);
        assert!((r.accuracy_saved() - 0.38).abs() < 1e-12);
    }

    #[test]
    fn empty_report_degenerates_to_baseline() {
        let r = DriftReport {
            baseline_accuracy: 0.7,
            ..DriftReport::default()
        };
        assert_eq!(r.final_scrub_on(), 0.7);
        assert_eq!(r.accuracy_saved(), 0.0);
    }
}
