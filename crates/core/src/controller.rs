//! The control component (Fig. 9e): "offloads the computation from the
//! host CPU and orchestrates the data transfers between memory subarrays
//! and morphable subarrays in training and testing".
//!
//! [`Controller::compile_training_batch`] lowers one pipelined training
//! batch into per-cycle command streams following Table 1's operation
//! sequences — memory read → spike → morphable array read →
//! integrate-and-fire → activation → memory write — plus the batch-closing
//! weight update. The streams are cross-checked against the analytical
//! model (cycle count) and the energy model (word/phase totals) by tests,
//! tying the three model levels together.

use crate::mapping::MappedNetwork;

/// One micro-operation issued by the controller in a logical cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Read `words` from the inter-layer buffer feeding `layer`.
    MemRead {
        /// Target weighted layer (0-based).
        layer: usize,
        /// Words fetched.
        words: u64,
    },
    /// Drive spike-coded input phases into a layer's arrays.
    ArrayRead {
        /// Target weighted layer (0-based).
        layer: usize,
        /// Sequential read phases (`⌈P/G⌉` etc.).
        phases: u64,
        /// Which computation the phases implement.
        kind: PhaseKind,
    },
    /// Convert integrated bitline charge to digital counts.
    IntegrateFire {
        /// Values produced.
        outputs: u64,
    },
    /// Subtract/LUT/max-register pass over `values`.
    Activate {
        /// Values processed.
        values: u64,
    },
    /// Write `words` into a memory subarray buffer.
    MemWrite {
        /// Source weighted layer (0-based).
        layer: usize,
        /// Words written.
        words: u64,
    },
    /// Copy a layer's forward data into morphable arrays for ∂W (Fig. 12).
    MorphableCopy {
        /// Source weighted layer (0-based).
        layer: usize,
        /// Words copied.
        words: u64,
    },
    /// Batch-end weight update: read averaged ∂W with 1/B spikes, read old
    /// weights, write new weights (Fig. 14b).
    WeightUpdate {
        /// Updated weighted layer (0-based).
        layer: usize,
        /// Weights rewritten.
        weights: u64,
    },
}

/// The computation a group of array-read phases performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// Forward MVM in `A_l`.
    Forward,
    /// Error-backward convolution in `A_l2` (Fig. 11).
    ErrorBackward,
    /// Partial-derivative convolution over stored `d` (Fig. 12).
    Gradient,
}

/// The commands of one logical cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CycleCommands {
    /// Logical cycle index, 1-based within the batch.
    pub cycle: u64,
    /// Commands issued this cycle (order = Table 1 sequence per stage).
    pub commands: Vec<Command>,
}

/// The controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct Controller;

impl Controller {
    /// Compiles one pipelined training batch (`B` images) into per-cycle
    /// command streams. The stream has exactly `2L + B + 1` cycles
    /// (Fig. 7b); the final cycle carries the weight updates.
    pub fn compile_training_batch(net: &MappedNetwork) -> Vec<CycleCommands> {
        let l = net.weighted_layers() as u64;
        let b = net.config.batch_size as u64;
        let total = 2 * l + b + 1;
        let mut cycles: Vec<CycleCommands> = (1..=total)
            .map(|c| CycleCommands {
                cycle: c,
                commands: Vec::new(),
            })
            .collect();

        for img in 0..b {
            // Forward: layer k (1-based) at cycle img + k.
            for (k, layer) in net.layers.iter().enumerate() {
                let cyc = (img + k as u64 + 1) as usize - 1;
                let cmds = &mut cycles[cyc].commands;
                let in_words = layer.in_words;
                cmds.push(Command::MemRead {
                    layer: k,
                    words: in_words,
                });
                cmds.push(Command::ArrayRead {
                    layer: k,
                    phases: layer.reads_forward,
                    kind: PhaseKind::Forward,
                });
                cmds.push(Command::IntegrateFire {
                    outputs: layer.delta_words,
                });
                cmds.push(Command::Activate {
                    values: layer.delta_words,
                });
                cmds.push(Command::MemWrite {
                    layer: k,
                    words: layer.out_words,
                });
            }
            // Output error at cycle img + L + 1 (activation-only, Fig. 10a).
            {
                let last = net.layers.len() - 1;
                let cyc = (img + l + 1) as usize - 1;
                let cmds = &mut cycles[cyc].commands;
                cmds.push(Command::MemRead {
                    layer: last,
                    words: net.layers[last].out_words,
                });
                cmds.push(Command::Activate {
                    values: net.layers[last].delta_words,
                });
                cmds.push(Command::MemWrite {
                    layer: last,
                    words: net.layers[last].delta_words,
                });
            }
            // Backward stage m (1-based, descending) at cycle img + 2L−m+2.
            for (m_idx, layer) in net.layers.iter().enumerate() {
                let m = m_idx as u64 + 1;
                let cyc = (img + 2 * l - m + 2) as usize - 1;
                let cmds = &mut cycles[cyc].commands;
                cmds.push(Command::MemRead {
                    layer: m_idx,
                    words: layer.delta_words,
                });
                if layer.reads_error > 0 {
                    cmds.push(Command::ArrayRead {
                        layer: m_idx,
                        phases: layer.reads_error,
                        kind: PhaseKind::ErrorBackward,
                    });
                }
                if layer.reads_gradient > 0 {
                    cmds.push(Command::ArrayRead {
                        layer: m_idx,
                        phases: layer.reads_gradient,
                        kind: PhaseKind::Gradient,
                    });
                }
                cmds.push(Command::MorphableCopy {
                    layer: m_idx,
                    words: layer.in_words,
                });
                if m_idx > 0 {
                    cmds.push(Command::MemWrite {
                        layer: m_idx - 1,
                        words: net.layers[m_idx - 1].delta_words,
                    });
                }
            }
        }

        // Batch-end update cycle.
        let update = &mut cycles[(total - 1) as usize].commands;
        for (k, layer) in net.layers.iter().enumerate() {
            update.push(Command::WeightUpdate {
                layer: k,
                weights: layer.resolved.weights as u64,
            });
        }
        cycles
    }

    /// Total forward array-read phases across a compiled batch.
    pub fn total_phases(stream: &[CycleCommands], kind: PhaseKind) -> u64 {
        stream
            .iter()
            .flat_map(|c| &c.commands)
            .filter_map(|cmd| match cmd {
                Command::ArrayRead {
                    phases, kind: k, ..
                } if *k == kind => Some(*phases),
                _ => None,
            })
            .sum()
    }

    /// Total words written to memory subarrays across a compiled batch.
    pub fn total_mem_write_words(stream: &[CycleCommands]) -> u64 {
        stream
            .iter()
            .flat_map(|c| &c.commands)
            .filter_map(|cmd| match cmd {
                Command::MemWrite { words, .. } => Some(*words),
                _ => None,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use crate::config::PipeLayerConfig;
    use crate::mapping::MappedNetwork;
    use pipelayer_nn::zoo;

    fn net(batch: usize) -> MappedNetwork {
        MappedNetwork::from_spec(&zoo::spec_mnist_0(), PipeLayerConfig::with_batch(batch))
    }

    #[test]
    fn stream_length_matches_fig7() {
        let net = net(16);
        let stream = Controller::compile_training_batch(&net);
        let a = Analysis::new(net.weighted_layers(), 16);
        assert_eq!(stream.len() as u64, a.training_cycles_pipelined(16));
    }

    #[test]
    fn forward_phase_total_matches_mapping() {
        let net = net(8);
        let stream = Controller::compile_training_batch(&net);
        let want: u64 = net.layers.iter().map(|l| l.reads_forward).sum::<u64>() * 8;
        assert_eq!(Controller::total_phases(&stream, PhaseKind::Forward), want);
    }

    #[test]
    fn first_layer_never_issues_error_backward() {
        let net = net(4);
        let stream = Controller::compile_training_batch(&net);
        let bad = stream.iter().flat_map(|c| &c.commands).any(|cmd| {
            matches!(
                cmd,
                Command::ArrayRead {
                    layer: 0,
                    kind: PhaseKind::ErrorBackward,
                    ..
                }
            )
        });
        assert!(!bad, "δ_0 is never needed");
    }

    #[test]
    fn update_commands_only_in_last_cycle() {
        let net = net(8);
        let stream = Controller::compile_training_batch(&net);
        for cyc in &stream[..stream.len() - 1] {
            assert!(
                !cyc.commands
                    .iter()
                    .any(|c| matches!(c, Command::WeightUpdate { .. })),
                "update leaked into cycle {}",
                cyc.cycle
            );
        }
        let last = stream.last().unwrap();
        let updates = last
            .commands
            .iter()
            .filter(|c| matches!(c, Command::WeightUpdate { .. }))
            .count();
        assert_eq!(updates, net.weighted_layers());
    }

    #[test]
    fn mem_write_words_match_energy_model() {
        // Per batch: B × (Σ out + Σ delta) words written to buffers
        // (inputs and morphable copies are tracked by other commands).
        let net = net(8);
        let stream = Controller::compile_training_batch(&net);
        let per_image: u64 = net.layers.iter().map(|l| l.out_words + l.delta_words).sum();
        assert_eq!(Controller::total_mem_write_words(&stream), 8 * per_image);
    }

    #[test]
    fn mid_batch_cycles_are_fully_loaded() {
        // Once the pipeline is full, every cycle carries commands from
        // 2L+1 concurrent stages.
        let net = net(32);
        let stream = Controller::compile_training_batch(&net);
        let l = net.weighted_layers();
        let mid = &stream[2 * l + 2]; // safely inside the streaming region
        let stages = mid
            .commands
            .iter()
            .filter(|c| matches!(c, Command::ArrayRead { .. } | Command::Activate { .. }))
            .count();
        assert!(stages >= l, "mid-batch cycle underloaded: {stages}");
    }
}
