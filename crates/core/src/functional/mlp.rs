//! Functional training *through the ReRAM datapath* (Sec. 3.1, 4.3, 4.4).
//!
//! Every matrix–vector product — forward (`A_l`), error backward
//! (`A_l2` holding the reordered weights) — runs through the
//! `pipelayer-reram` crossbar model: 16-bit spike-coded inputs, 4-bit cells
//! with positive/negative pairs and resolution compensation, exact
//! integrate-and-fire read-out. Weight updates follow Fig. 14(b): the old
//! weights are *read from the arrays*, the averaged partial derivatives are
//! subtracted, and the result is written back (reprogramming both the
//! forward and the backward copies).
//!
//! Scope: multilayer perceptrons (the paper's Mnist-A/B/C class). This is
//! the fidelity proof that PipeLayer's analog datapath trains networks, not
//! a fast trainer — convolutional functional training runs through the same
//! `ReramMatrix` primitive via im2col but is quadratically slower, so the
//! shipped examples stick to MLPs.

use crate::repair::{RepairController, RepairPolicy, SpareBudget};
use crate::scrub::ScrubPolicy;
use pipelayer_nn::loss::Loss;
use pipelayer_reram::{
    DriftModel, FaultKind, FaultMap, FaultModel, NoiseModel, ProgramReport, ReramMatrix,
    ReramParams, VerifyPolicy, WearModel,
};
use pipelayer_tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-tolerance knobs threaded through construction and updates.
#[derive(Debug, Clone)]
struct FaultState {
    verify: VerifyPolicy,
    /// Write-noise sampling for the program-and-verify loop.
    rng: StdRng,
    /// Merged cost of every verified write so far.
    report: ProgramReport,
}

/// Runtime-resilience state: the drift clock and the scrub scheduler.
#[derive(Debug, Clone)]
struct ResilienceState {
    scrub: ScrubPolicy,
    /// Verify policy the scrub re-pulses run under.
    verify: VerifyPolicy,
    /// Write-noise sampling for scrub re-pulses.
    rng: StdRng,
    /// Merged cost of every scrub pass so far.
    report: ProgramReport,
    /// Images processed since the last due scrub pass.
    images_since_scrub: u64,
    /// Round-robin word-line cursors, `(forward, backward)` per layer.
    cursors: Vec<(usize, usize)>,
    /// Scrub passes completed.
    passes: u64,
}

#[derive(Clone)]
struct ReramMlpLayer {
    n_in: usize,
    n_out: usize,
    /// `A_l`: forward arrays over `[x, 1]` (bias folded as an extra row).
    forward: ReramMatrix,
    /// `A_l2`: reordered weights `(W_l)ᵀ` for the error backward pass.
    backward: ReramMatrix,
    /// Spare-column bookkeeping for the two array copies.
    forward_repair: RepairController,
    backward_repair: RepairController,
    /// Accumulated partial derivatives (the memory-subarray `ΔW` buffers).
    grad_acc: Vec<f32>,
    cached_in: Vec<f32>,
    cached_out: Vec<f32>,
    relu: bool,
}

impl ReramMlpLayer {
    fn new(
        n_in: usize,
        n_out: usize,
        relu: bool,
        params: &ReramParams,
        rng: &mut impl Rng,
    ) -> Self {
        let a = (6.0 / (n_in + n_out) as f32).sqrt();
        let w: Vec<f32> = Tensor::uniform(&[n_out, n_in + 1], -a, a, rng).into_vec();
        let wt = transpose_no_bias(&w, n_out, n_in);
        ReramMlpLayer {
            n_in,
            n_out,
            forward: ReramMatrix::program(&w, n_out, n_in + 1, params),
            backward: ReramMatrix::program(&wt, n_in, n_out, params),
            forward_repair: RepairController::new(SpareBudget::none()),
            backward_repair: RepairController::new(SpareBudget::none()),
            grad_acc: vec![0.0; n_out * (n_in + 1)],
            cached_in: Vec::new(),
            cached_out: Vec::new(),
            relu,
        }
    }

    /// Like [`new`](Self::new), but the arrays carry stuck-at faults drawn
    /// from `faults` and the initial weights go through a commissioning
    /// scrub: a verified write whose unrecoverable columns are immediately
    /// remapped to spares (or masked once `spares` runs out). Returns the
    /// scrub's cost.
    #[allow(clippy::too_many_arguments)]
    fn with_faults(
        n_in: usize,
        n_out: usize,
        relu: bool,
        params: &ReramParams,
        rng: &mut StdRng,
        faults: &FaultModel,
        ft: &mut FaultState,
        spares: SpareBudget,
        salt: u64,
    ) -> Self {
        let a = (6.0 / (n_in + n_out) as f32).sqrt();
        let w: Vec<f32> = Tensor::uniform(&[n_out, n_in + 1], -a, a, rng).into_vec();
        let wt = transpose_no_bias(&w, n_out, n_in);
        let mut forward =
            ReramMatrix::program_with_faults(&w, n_out, n_in + 1, params, faults, salt);
        let mut backward = ReramMatrix::program_with_faults(
            &wt,
            n_in,
            n_out,
            params,
            faults,
            salt ^ 0x9e37_79b9_7f4a_7c15,
        );
        let mut forward_repair = RepairController::new(spares);
        let mut backward_repair = RepairController::new(spares);
        let r = forward.write_verify(&w, &ft.verify, &mut ft.rng);
        forward_repair.process(&mut forward, &r);
        ft.report.merge(r);
        let r = backward.write_verify(&wt, &ft.verify, &mut ft.rng);
        backward_repair.process(&mut backward, &r);
        ft.report.merge(r);
        ReramMlpLayer {
            n_in,
            n_out,
            forward,
            backward,
            forward_repair,
            backward_repair,
            grad_acc: vec![0.0; n_out * (n_in + 1)],
            cached_in: Vec::new(),
            cached_out: Vec::new(),
            relu,
        }
    }
}

/// Shape prologue shared by both batch-training schedules.
///
/// # Panics
///
/// Panics on an empty batch or an image/label length mismatch.
fn check_batch(images: &[Tensor], labels: &[usize]) {
    assert!(!images.is_empty(), "empty batch");
    assert_eq!(images.len(), labels.len(), "length mismatch");
}

/// Mean loss over a batch of `n` samples.
fn mean_loss(total: f32, n: usize) -> f32 {
    total / n as f32
}

/// Magic + format version leading a device-state snapshot blob.
const DEVICE_STATE_MAGIC: u64 = 0x504c_5744_5331_0001;

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_usize_list(out: &mut Vec<u8>, xs: &[usize]) {
    push_u64(out, xs.len() as u64);
    for &x in xs {
        push_u64(out, x as u64);
    }
}

/// Little-endian cursor over a snapshot blob; every read is bounds-checked
/// so a truncated or foreign buffer fails the restore instead of panicking.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    fn u64(&mut self) -> Option<u64> {
        let b = self.bytes(8)?;
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }

    fn f32(&mut self) -> Option<f32> {
        let b = self.bytes(4)?;
        Some(f32::from_le_bytes(b.try_into().ok()?))
    }

    fn usize_list(&mut self) -> Option<Vec<usize>> {
        let n = self.u64()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) / 8 {
            return None; // claimed length exceeds the remaining bytes
        }
        (0..n).map(|_| self.u64().map(|v| v as usize)).collect()
    }

    fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Appends one array's full device state: weight scale, masked outputs,
/// then per member crossbar the stored levels, live fault map, wear
/// counters and spike counters.
fn snapshot_matrix(out: &mut Vec<u8>, m: &ReramMatrix) {
    out.extend_from_slice(&m.weight_scale().to_le_bytes());
    push_usize_list(out, &m.masked_outputs());
    push_u64(out, m.crossbar_count() as u64);
    for c in m.crossbars() {
        push_u64(out, c.rows() as u64);
        push_u64(out, c.cols() as u64);
        out.extend_from_slice(&c.stored_levels());
        match c.fault_map() {
            Some(map) => {
                out.push(1);
                for r in 0..c.rows() {
                    for col in 0..c.cols() {
                        out.push(match map.get(r, col) {
                            None => 0,
                            Some(FaultKind::StuckAtZero) => 1,
                            Some(FaultKind::StuckAtMax) => 2,
                            Some(FaultKind::Dead) => 3,
                        });
                    }
                }
            }
            None => out.push(0),
        }
        match c.wear_state() {
            Some(w) => {
                out.push(1);
                let (pulses, generation) = w.counters();
                for &p in pulses {
                    push_u64(out, p);
                }
                for &g in generation {
                    push_u64(out, g);
                }
            }
            None => out.push(0),
        }
        let (r, w, o) = c.spike_counters();
        push_u64(out, r);
        push_u64(out, w);
        push_u64(out, o);
    }
}

/// Inverse of [`snapshot_matrix`]; `None` on any geometry or framing
/// mismatch. A snapshot with no fault map / no wear leaves the freshly
/// reconstructed array's state alone (the deterministic rebuild already
/// matches: faults only ever *appear* over a run, never vanish).
fn restore_matrix(rd: &mut ByteReader, m: &mut ReramMatrix) -> Option<()> {
    m.restore_weight_scale(rd.f32()?);
    let masked = rd.usize_list()?;
    m.restore_masked_outputs(&masked);
    if rd.u64()? as usize != m.crossbar_count() {
        return None;
    }
    for c in m.crossbars_mut() {
        let rows = rd.u64()? as usize;
        let cols = rd.u64()? as usize;
        if rows != c.rows() || cols != c.cols() {
            return None;
        }
        let levels = rd.bytes(rows * cols)?.to_vec();
        if !c.restore_levels(&levels) {
            return None;
        }
        if rd.u8()? == 1 {
            let mut map = FaultMap::pristine(rows, cols);
            let codes = rd.bytes(rows * cols)?;
            for (i, &code) in codes.iter().enumerate() {
                let kind = match code {
                    1 => Some(FaultKind::StuckAtZero),
                    2 => Some(FaultKind::StuckAtMax),
                    3 => Some(FaultKind::Dead),
                    _ => None,
                };
                if let Some(k) = kind {
                    map.set(i / cols, i % cols, k);
                }
            }
            if !c.restore_faults(map) {
                return None;
            }
        }
        if rd.u8()? == 1 {
            let n = rows * cols;
            let mut pulses = Vec::with_capacity(n);
            for _ in 0..n {
                pulses.push(rd.u64()?);
            }
            let mut generation = Vec::with_capacity(n);
            for _ in 0..n {
                generation.push(rd.u64()?);
            }
            if !c.restore_wear_counters(&pulses, &generation) {
                return None;
            }
        }
        let (r, w, o) = (rd.u64()?, rd.u64()?, rd.u64()?);
        c.restore_spike_counters(r, w, o);
    }
    Some(())
}

fn snapshot_controller(out: &mut Vec<u8>, c: &RepairController) {
    let (remapped, masked, strikes, backoff, updates) = c.state();
    push_usize_list(out, remapped);
    push_usize_list(out, masked);
    push_u64(out, strikes.len() as u64);
    for &(col, s) in strikes {
        push_u64(out, col as u64);
        push_u64(out, u64::from(s));
    }
    push_u64(out, backoff.len() as u64);
    for &(col, until) in backoff {
        push_u64(out, col as u64);
        push_u64(out, until);
    }
    push_u64(out, updates);
}

fn restore_controller(rd: &mut ByteReader, c: &mut RepairController) -> Option<()> {
    let remapped = rd.usize_list()?;
    let masked = rd.usize_list()?;
    let n = rd.u64()? as usize;
    let mut strikes = Vec::new();
    for _ in 0..n {
        let col = rd.u64()? as usize;
        let s = u32::try_from(rd.u64()?).ok()?;
        strikes.push((col, s));
    }
    let n = rd.u64()? as usize;
    let mut backoff = Vec::new();
    for _ in 0..n {
        let col = rd.u64()? as usize;
        let until = rd.u64()?;
        backoff.push((col, until));
    }
    let updates = rd.u64()?;
    c.restore_state(remapped, masked, strikes, backoff, updates);
    Some(())
}

fn snapshot_report(out: &mut Vec<u8>, r: &ProgramReport) {
    push_u64(out, r.pulses);
    push_u64(out, r.ideal_pulses);
    push_u64(out, r.verify_reads);
    push_u64(out, r.unrecoverable.len() as u64);
    for u in &r.unrecoverable {
        push_u64(out, u.row as u64);
        push_u64(out, u.col as u64);
        out.push(u.target);
        out.push(u.actual);
    }
}

fn restore_report(rd: &mut ByteReader) -> Option<ProgramReport> {
    let pulses = rd.u64()?;
    let ideal_pulses = rd.u64()?;
    let verify_reads = rd.u64()?;
    let n = rd.u64()? as usize;
    let mut unrecoverable = Vec::new();
    for _ in 0..n {
        let row = rd.u64()? as usize;
        let col = rd.u64()? as usize;
        let target = rd.u8()?;
        let actual = rd.u8()?;
        unrecoverable.push(pipelayer_reram::UnrecoverableCell {
            row,
            col,
            target,
            actual,
        });
    }
    Some(ProgramReport {
        pulses,
        ideal_pulses,
        verify_reads,
        unrecoverable,
    })
}

/// Drops the bias row and transposes: `[out×(in+1)] → [in×out]`.
fn transpose_no_bias(w: &[f32], n_out: usize, n_in: usize) -> Vec<f32> {
    let mut wt = vec![0.0f32; n_in * n_out];
    for o in 0..n_out {
        for i in 0..n_in {
            wt[i * n_out + o] = w[o * (n_in + 1) + i];
        }
    }
    wt
}

/// A multilayer perceptron whose every MVM executes on the modelled ReRAM
/// crossbars.
///
/// # Example
///
/// ```
/// use pipelayer::functional::ReramMlp;
/// use pipelayer_reram::ReramParams;
///
/// let mut mlp = ReramMlp::new(&[4, 8, 2], &ReramParams::default(), 7);
/// let out = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Clone)]
pub struct ReramMlp {
    layers: Vec<ReramMlpLayer>,
    loss: Loss,
    /// `Some` when fault tolerance is on: writes verify-and-retry, and
    /// unrecoverable columns are repaired or masked.
    fault_tolerance: Option<FaultState>,
    /// `Some` when runtime resilience is on: the arrays age (drift +
    /// read disturb) and the scrub scheduler periodically refreshes them.
    resilience: Option<ResilienceState>,
    /// True once a non-ideal wear model is attached: updates then route
    /// through the retry/backoff repair ladder and remaps bill honest
    /// pulses. False keeps the legacy (pre-wear) escalation bit-exact.
    wear_active: bool,
}

impl ReramMlp {
    /// Builds an MLP with the given layer widths (e.g. `[784, 100, 10]`),
    /// ReLU between layers, Xavier initial weights programmed to ReRAM.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given or any width is zero.
    pub fn new(dims: &[usize], params: &ReramParams, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let relu = i + 2 < dims.len();
                ReramMlpLayer::new(w[0], w[1], relu, params, &mut rng)
            })
            .collect();
        ReramMlp {
            layers,
            loss: Loss::SoftmaxCrossEntropy,
            fault_tolerance: None,
            resilience: None,
            wear_active: false,
        }
    }

    /// Builds an MLP whose arrays carry persistent stuck-at faults drawn
    /// from `faults` (deterministically in `seed`) but **no** fault
    /// tolerance: writes are fire-and-forget and stuck cells silently
    /// corrupt every read — the "repair off" arm of the ablation.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`new`](Self::new)) or fault rates.
    pub fn with_faults(
        dims: &[usize],
        params: &ReramParams,
        seed: u64,
        faults: &FaultModel,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, dims_w)| {
                let relu = i + 2 < dims.len();
                let (n_in, n_out) = (dims_w[0], dims_w[1]);
                let mut layer = ReramMlpLayer::new(n_in, n_out, relu, params, &mut rng);
                let salt = seed.wrapping_add(1 + 1000 * i as u64);
                let w = layer.forward.read();
                let wt = transpose_no_bias(&w, n_out, n_in);
                layer.forward =
                    ReramMatrix::program_with_faults(&w, n_out, n_in + 1, params, faults, salt);
                layer.backward = ReramMatrix::program_with_faults(
                    &wt,
                    n_in,
                    n_out,
                    params,
                    faults,
                    salt ^ 0x9e37_79b9_7f4a_7c15,
                );
                layer
            })
            .collect();
        ReramMlp {
            layers,
            loss: Loss::SoftmaxCrossEntropy,
            fault_tolerance: None,
            resilience: None,
            wear_active: false,
        }
    }

    /// Builds an MLP whose arrays carry persistent stuck-at faults drawn
    /// from `faults` (deterministically in `seed`), with every weight write
    /// going through the bounded program-and-verify loop of `verify` and
    /// unrecoverable columns remapped against `spares` (masked once the
    /// budget is gone). Initial weights are scrubbed at construction, so
    /// repair is active from the first forward pass.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`new`](Self::new)) or fault rates.
    pub fn with_fault_tolerance(
        dims: &[usize],
        params: &ReramParams,
        seed: u64,
        faults: &FaultModel,
        verify: VerifyPolicy,
        spares: SpareBudget,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least input and output widths");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ft = FaultState {
            verify,
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_f417),
            report: ProgramReport::default(),
        };
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let relu = i + 2 < dims.len();
                let salt = seed.wrapping_add(1 + 1000 * i as u64);
                ReramMlpLayer::with_faults(
                    w[0], w[1], relu, params, &mut rng, faults, &mut ft, spares, salt,
                )
            })
            .collect();
        ReramMlp {
            layers,
            loss: Loss::SoftmaxCrossEntropy,
            fault_tolerance: Some(ft),
            resilience: None,
            wear_active: false,
        }
    }

    /// Builds an MLP whose arrays age in place: every cell follows the
    /// seeded conductance-drift/read-disturb model `drift` (advanced one
    /// logical cycle per processed image), and the online scrub scheduler
    /// `scrub` periodically re-programs degraded word lines through the
    /// program-and-verify loop of `verify`. With [`ScrubPolicy::off`] the
    /// arrays age unchecked — the "scrub off" arm of the ablation.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`new`](Self::new)).
    pub fn with_resilience(
        dims: &[usize],
        params: &ReramParams,
        seed: u64,
        drift: DriftModel,
        scrub: ScrubPolicy,
        verify: VerifyPolicy,
    ) -> Self {
        let mut mlp = Self::new(dims, params, seed);
        for (i, layer) in mlp.layers.iter_mut().enumerate() {
            let salt = seed.wrapping_add(1 + 1000 * i as u64);
            layer.forward.attach_drift(drift, salt);
            layer
                .backward
                .attach_drift(drift, salt ^ 0x9e37_79b9_7f4a_7c15);
        }
        let cursors = vec![(0usize, 0usize); mlp.layers.len()];
        mlp.resilience = Some(ResilienceState {
            scrub,
            verify,
            rng: StdRng::seed_from_u64(seed ^ 0x5c2b_bed5),
            report: ProgramReport::default(),
            images_since_scrub: 0,
            cursors,
            passes: 0,
        });
        mlp
    }

    /// Attaches the unified analog non-ideality model to every array (both
    /// the forward and the reordered-backward copy of each layer), with the
    /// same per-layer salt discipline as [`with_resilience`]
    /// (Self::with_resilience). [`NoiseModel::ideal`] leaves every read
    /// bit-exact; composes with faults, drift and scrub — noise applies on
    /// top of whatever level those models resolve.
    pub fn attach_noise(&mut self, model: NoiseModel, seed: u64) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let salt = seed.wrapping_add(1 + 1000 * i as u64);
            layer.forward.attach_noise(model, salt);
            layer
                .backward
                .attach_noise(model, salt ^ 0x9e37_79b9_7f4a_7c15);
        }
    }

    /// [`new`](Self::new) plus [`attach_noise`](Self::attach_noise): an MLP
    /// whose every array read carries the analog non-idealities of `noise`.
    ///
    /// # Panics
    ///
    /// Panics on invalid widths (see [`new`](Self::new)).
    pub fn with_noise(dims: &[usize], params: &ReramParams, seed: u64, noise: NoiseModel) -> Self {
        let mut mlp = Self::new(dims, params, seed);
        mlp.attach_noise(noise, seed);
        mlp
    }

    /// Attaches the endurance wear-out model to every array (forward and
    /// reordered-backward copy of each layer) with the same per-layer salt
    /// discipline as [`attach_noise`](Self::attach_noise). From then on
    /// every programming pulse decrements the touched cell's seeded write
    /// budget, and exhausted cells transition into live stuck-at-`Dead`
    /// faults mid-run; weight updates route through the retry → backoff →
    /// remap → mask ladder of the configured [`RepairPolicy`]. Attaching
    /// [`WearModel::ideal`] is an exact no-op: no state is allocated and
    /// the legacy update path keeps running bit-identically.
    pub fn attach_wear(&mut self, model: WearModel, seed: u64) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let salt = seed.wrapping_add(1 + 1000 * i as u64);
            layer.forward.attach_wear(model, salt);
            layer
                .backward
                .attach_wear(model, salt ^ 0x9e37_79b9_7f4a_7c15);
        }
        self.wear_active = !model.is_ideal();
    }

    /// Replaces the repair escalation ladder on every array's controller
    /// (budget and history are kept). Only consulted on the wear-aware
    /// update path, i.e. after a non-ideal [`attach_wear`](Self::attach_wear).
    pub fn set_repair_policy(&mut self, policy: RepairPolicy) {
        for layer in &mut self.layers {
            layer.forward_repair.set_policy(policy);
            layer.backward_repair.set_policy(policy);
        }
    }

    /// Cells across all arrays whose write budget is exhausted — the dead
    /// population the wear model has killed so far (0 without wear).
    pub fn wear_exhausted_cells(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.forward.wear_exhausted_cells() + l.backward.wear_exhausted_cells())
            .sum()
    }

    /// Spare columns still unused across all layers (forward + backward
    /// controllers) — the remaining self-repair headroom.
    pub fn spares_left(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.forward_repair.spares_left() + l.backward_repair.spares_left())
            .sum()
    }

    /// Number of weighted layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass on the crossbars, caching activations for training.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input width.
    pub fn forward(&mut self, x: &[f32]) -> Vec<f32> {
        let mut v = x.to_vec();
        for layer in &mut self.layers {
            assert_eq!(v.len(), layer.n_in, "input width mismatch");
            // Cache WITH the bias element appended: the grad accumulation is
            // then one outer_acc over the whole [d, 1] vector.
            let mut with_bias = v;
            with_bias.push(1.0);
            let mut out = layer.forward.matvec(&with_bias);
            if layer.relu {
                for o in &mut out {
                    *o = o.max(0.0); // activation component LUT
                }
            }
            layer.cached_in = with_bias;
            layer.cached_out = out.clone();
            v = out;
        }
        v
    }

    /// Inference-only forward (no caches touched beyond reuse).
    pub fn predict(&mut self, x: &[f32]) -> usize {
        let out = self.forward(x);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn accuracy(&mut self, images: &[Tensor], labels: &[usize]) -> f32 {
        assert!(!images.is_empty(), "empty evaluation set");
        assert_eq!(images.len(), labels.len(), "length mismatch");
        let mut correct = 0usize;
        for (img, &label) in images.iter().zip(labels) {
            if self.predict(img.as_slice()) == label {
                correct += 1;
            }
        }
        correct as f32 / images.len() as f32
    }

    /// Processes one sample: forward, output error, backward through the
    /// `A_l2` arrays, partial-derivative accumulation. Returns the loss.
    fn train_sample(&mut self, x: &[f32], label: usize) -> f32 {
        let out = self.forward(x);
        let out_t = Tensor::from_vec(&[out.len()], out);
        let (loss, delta_t) = self.loss.loss_and_delta(&out_t, label);
        let mut delta = delta_t.into_vec();

        for li in (0..self.layers.len()).rev() {
            let layer = &mut self.layers[li];
            // ReLU error backward: AND with f'(d_l) (Fig. 10a).
            if layer.relu {
                for (d, &o) in delta.iter_mut().zip(&layer.cached_out) {
                    if o <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
            // ∂W = δ · [d, 1]ᵀ accumulated into the buffer (Fig. 12's
            // computation, exact here since it is an outer product). Lowered
            // onto the shared rank-1 kernel; no zero-skip, so a NaN/Inf
            // activation poisons the gradient instead of vanishing.
            ops::outer_acc(&mut layer.grad_acc, &delta, &layer.cached_in);
            // δ_{l-1} = (W_l)ᵀ δ_l on the A_l2 arrays.
            if li > 0 {
                delta = self.layers[li].backward.matvec(&delta);
            }
        }
        loss
    }

    /// Trains one mini-batch and applies the Fig. 14(b) update: read old
    /// weights from the arrays, subtract the averaged partial derivatives,
    /// write back (both forward and reordered copies). Returns mean loss.
    ///
    /// Samples are fed layer-major: every layer sees the whole batch as
    /// one [`ReramMatrix::matvec_batch`] call (forward and error
    /// backward), so each array's bit-plane decomposition is resolved
    /// once per batch instead of once per sample. Losses and gradients
    /// accumulate in sample order, so on arrays whose reads don't perturb
    /// the device state (ideal, faulted, or pure-retention drift) the
    /// result is bitwise identical to the per-sample reference
    /// [`train_batch_scalar`](Self::train_batch_scalar) — differentially
    /// tested. With per-read noise or read disturb the MVMs execute in a
    /// different (documented) order, so those trajectories are equally
    /// valid but not bit-comparable to the per-sample schedule.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched batches.
    pub fn train_batch(&mut self, images: &[Tensor], labels: &[usize], lr: f32) -> f32 {
        check_batch(images, labels);
        let total = self.batch_grads(images, labels);
        self.apply_update(images.len(), lr);
        mean_loss(total, images.len())
    }

    /// The forward/backward half of [`train_batch`](Self::train_batch):
    /// feeds the batch layer-major, accumulates `∂W` into the layer
    /// buffers, and returns the summed (not mean) loss. No update is
    /// applied and no clock advanced — callers own that.
    fn batch_grads(&mut self, images: &[Tensor], labels: &[usize]) -> f32 {
        // Forward, layer-major: one packed multi-image kernel per layer.
        let mut vs: Vec<Vec<f32>> = images.iter().map(|t| t.as_slice().to_vec()).collect();
        let mut cached_ins: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.layers.len());
        let mut cached_outs: Vec<Vec<Vec<f32>>> = Vec::with_capacity(self.layers.len());
        for layer in &mut self.layers {
            let with_bias: Vec<Vec<f32>> = vs
                .into_iter()
                .map(|mut v| {
                    assert_eq!(v.len(), layer.n_in, "input width mismatch");
                    v.push(1.0);
                    v
                })
                .collect();
            let mut outs = layer.forward.matvec_batch(&with_bias);
            if layer.relu {
                for out in &mut outs {
                    for o in out.iter_mut() {
                        *o = o.max(0.0); // activation component LUT
                    }
                }
            }
            cached_ins.push(with_bias);
            vs = outs.clone();
            cached_outs.push(outs);
        }

        // Output error per sample, in sample order.
        let mut total = 0.0;
        let mut deltas: Vec<Vec<f32>> = Vec::with_capacity(images.len());
        for (out, &label) in vs.into_iter().zip(labels) {
            let out_t = Tensor::from_vec(&[out.len()], out);
            let (loss, delta_t) = self.loss.loss_and_delta(&out_t, label);
            total += loss;
            deltas.push(delta_t.into_vec());
        }

        // Backward, layer-major: ReLU masking and ∂W accumulation run per
        // sample (same order as the scalar reference), then one batched
        // MVM through the A_l2 arrays propagates every delta at once.
        for li in (0..self.layers.len()).rev() {
            let layer = &mut self.layers[li];
            for (s, delta) in deltas.iter_mut().enumerate() {
                if layer.relu {
                    for (d, &o) in delta.iter_mut().zip(&cached_outs[li][s]) {
                        if o <= 0.0 {
                            *d = 0.0;
                        }
                    }
                }
                ops::outer_acc(&mut layer.grad_acc, delta, &cached_ins[li][s]);
            }
            if li > 0 {
                deltas = layer.backward.matvec_batch(&deltas);
            }
        }
        total
    }

    /// Per-sample reference for [`train_batch`](Self::train_batch): the
    /// original one-matvec-per-sample schedule, identical arithmetic in
    /// identical order. Kept (and pinned by differential tests) so the
    /// batched feed always has a scalar path to be checked against.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched batches.
    pub fn train_batch_scalar(&mut self, images: &[Tensor], labels: &[usize], lr: f32) -> f32 {
        check_batch(images, labels);
        let mut total = 0.0;
        for (img, &label) in images.iter().zip(labels) {
            total += self.train_sample(img.as_slice(), label);
        }
        self.apply_update(images.len(), lr);
        mean_loss(total, images.len())
    }

    /// Trains one mini-batch with the forward/backward feed fanned out
    /// over `threads` worker threads and the Fig. 14(b) update applied
    /// serially afterwards. Returns the mean loss.
    ///
    /// The batch is split into fixed 8-sample chunks; chunk `i` runs on
    /// worker `i % threads` against a private clone of the arrays (every
    /// chunk sees the same pre-update weights), and the per-chunk losses,
    /// gradient buffers and spike counts merge back *in chunk order*. The
    /// result is therefore bitwise independent of `threads` — `threads = 1`
    /// is the reference schedule — though not bit-comparable to
    /// [`train_batch`](Self::train_batch), whose single accumulator sums
    /// samples in a different order. Like the batched feed, this assumes
    /// reads don't perturb device state (ideal, faulted, wearing or
    /// pure-retention-drift arrays; per-read noise and read disturb are
    /// read-order-dependent and out of scope).
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched batches.
    pub fn train_batch_parallel(
        &mut self,
        images: &[Tensor],
        labels: &[usize],
        lr: f32,
        threads: usize,
    ) -> f32 {
        check_batch(images, labels);
        const CHUNK: usize = 8;
        let threads = threads.max(1);
        let n = images.len();
        let n_chunks = n.div_ceil(CHUNK);
        // Spike counters before the feed, so worker deltas can be billed
        // back onto the real arrays (clones' counters are discarded).
        let base: Vec<Vec<(u64, u64, u64)>> = self
            .layers
            .iter()
            .map(|l| {
                l.forward
                    .crossbars()
                    .chain(l.backward.crossbars())
                    .map(|c| c.spike_counters())
                    .collect()
            })
            .collect();
        let template = &*self;
        let mut per_chunk: Vec<Option<(f32, Vec<Vec<f32>>)>> = vec![None; n_chunks];
        let mut deltas: Vec<Vec<(u64, u64, u64)>> = base
            .iter()
            .map(|l| vec![(0u64, 0u64, 0u64); l.len()])
            .collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let base = &base;
                    scope.spawn(move || {
                        let mut worker = template.clone();
                        let mut chunks = Vec::new();
                        for ci in (t..n_chunks).step_by(threads) {
                            let lo = ci * CHUNK;
                            let hi = (lo + CHUNK).min(n);
                            for layer in &mut worker.layers {
                                layer.grad_acc.fill(0.0);
                            }
                            let loss = worker.batch_grads(&images[lo..hi], &labels[lo..hi]);
                            let grads: Vec<Vec<f32>> =
                                worker.layers.iter().map(|l| l.grad_acc.clone()).collect();
                            chunks.push((ci, loss, grads));
                        }
                        let delta: Vec<Vec<(u64, u64, u64)>> = worker
                            .layers
                            .iter()
                            .zip(base)
                            .map(|(l, bl)| {
                                l.forward
                                    .crossbars()
                                    .chain(l.backward.crossbars())
                                    .map(|c| c.spike_counters())
                                    .zip(bl)
                                    .map(|((r, w, o), &(br, bw, bo))| (r - br, w - bw, o - bo))
                                    .collect()
                            })
                            .collect();
                        (chunks, delta)
                    })
                })
                .collect();
            for h in handles {
                let (chunks, delta) = match h.join() {
                    Ok(v) => v,
                    Err(p) => std::panic::resume_unwind(p),
                };
                for (ci, loss, grads) in chunks {
                    if let Some(slot) = per_chunk.get_mut(ci) {
                        *slot = Some((loss, grads));
                    }
                }
                for (dl, tl) in deltas.iter_mut().zip(delta) {
                    for (d, t2) in dl.iter_mut().zip(tl) {
                        d.0 += t2.0;
                        d.1 += t2.1;
                        d.2 += t2.2;
                    }
                }
            }
        });
        // Merge in chunk order: float sums then depend only on the chunk
        // partition (fixed CHUNK), never on the thread count.
        let mut total = 0.0f32;
        for (loss, grads) in per_chunk.into_iter().flatten() {
            total += loss;
            for (layer, g) in self.layers.iter_mut().zip(grads) {
                for (acc, gv) in layer.grad_acc.iter_mut().zip(g) {
                    *acc += gv;
                }
            }
        }
        for (layer, dl) in self.layers.iter_mut().zip(&deltas) {
            let mut it = dl.iter();
            for c in layer
                .forward
                .crossbars_mut()
                .chain(layer.backward.crossbars_mut())
            {
                if let Some(&(dr, dw, dout)) = it.next() {
                    let (r, w, o) = c.spike_counters();
                    c.restore_spike_counters(r + dr, w + dw, o + dout);
                }
            }
        }
        self.apply_update(n, lr);
        mean_loss(total, n)
    }

    /// The Fig. 14(b) update + degradation tick shared by both batch
    /// schedules: read old weights, subtract the averaged partials, write
    /// back (verified when fault tolerance is on), clear the buffers and
    /// advance the clock by one cycle per image.
    fn apply_update(&mut self, batch_len: usize, lr: f32) {
        let scale = lr / batch_len as f32;
        let wear_active = self.wear_active;
        for layer in &mut self.layers {
            let mut w = layer.forward.read(); // old weights from the arrays
            for (wi, g) in w.iter_mut().zip(&layer.grad_acc) {
                *wi -= scale * g;
            }
            let wt = transpose_no_bias(&w, layer.n_out, layer.n_in);
            match &mut self.fault_tolerance {
                // Wear-aware path: failures climb the retry → backoff →
                // remap → mask ladder, and remaps bill the honest cost of
                // re-programming the displaced column onto a blank spare.
                Some(ft) if wear_active => {
                    let r = layer.forward.write_verify(&w, &ft.verify, &mut ft.rng);
                    let o = layer.forward_repair.process_update(
                        &mut layer.forward,
                        &r,
                        &ft.verify,
                        &mut ft.rng,
                    );
                    ft.report.merge(r);
                    ft.report.merge(o.repair);
                    let r = layer.backward.write_verify(&wt, &ft.verify, &mut ft.rng);
                    let o = layer.backward_repair.process_update(
                        &mut layer.backward,
                        &r,
                        &ft.verify,
                        &mut ft.rng,
                    );
                    ft.report.merge(r);
                    ft.report.merge(o.repair);
                }
                Some(ft) => {
                    let r = layer.forward.write_verify(&w, &ft.verify, &mut ft.rng);
                    layer.forward_repair.process(&mut layer.forward, &r);
                    ft.report.merge(r);
                    let r = layer.backward.write_verify(&wt, &ft.verify, &mut ft.rng);
                    layer.backward_repair.process(&mut layer.backward, &r);
                    ft.report.merge(r);
                }
                None => {
                    layer.forward.write(&w);
                    layer.backward.write(&wt);
                }
            }
            layer.grad_acc.fill(0.0);
        }
        // One processed image = one logical pipeline cycle: tick the
        // degradation clock and run any scrub passes that came due.
        self.advance_cycles(batch_len as u64);
    }

    /// Advances the degradation clock by `cycles` logical cycles (one per
    /// processed image) and runs any scrub passes the policy schedules in
    /// that window. No-op when resilience is off.
    pub fn advance_cycles(&mut self, cycles: u64) {
        if self.resilience.is_none() {
            return;
        }
        for layer in &mut self.layers {
            layer.forward.advance_cycles(cycles);
            layer.backward.advance_cycles(cycles);
        }
        let mut due = 0;
        if let Some(rs) = self.resilience.as_mut() {
            if !rs.scrub.is_off() {
                rs.images_since_scrub += cycles;
                due = rs.images_since_scrub / rs.scrub.interval_images;
                rs.images_since_scrub %= rs.scrub.interval_images;
            }
        }
        for _ in 0..due {
            self.scrub_pass();
        }
    }

    /// Runs one budgeted scrub pass: every array walks the next
    /// `rows_per_pass` word lines from its round-robin cursor, materialises
    /// each cell's drifted level and re-programs it through the verify
    /// loop. No-op when resilience is off.
    pub fn scrub_pass(&mut self) {
        let Some(rs) = self.resilience.as_mut() else {
            return;
        };
        let guard = rs.scrub.min_headroom_writes;
        for (layer, cur) in self.layers.iter_mut().zip(rs.cursors.iter_mut()) {
            let budget = rs.scrub.rows_per_pass;
            if guard > 0 {
                // Wear-leveling-aware walk: visit the same rows the block
                // scan would, but skip any word line whose smallest
                // remaining write budget is below the guard — maintenance
                // writes must not burn a near-dead row's last pulses.
                for _ in 0..budget {
                    if layer.forward.row_wear_headroom(cur.0) >= guard {
                        let r = layer.forward.scrub_rows(cur.0, 1, &rs.verify, &mut rs.rng);
                        rs.report.merge(r);
                    }
                    cur.0 = (cur.0 + 1) % layer.forward.in_dim();
                }
                for _ in 0..budget {
                    if layer.backward.row_wear_headroom(cur.1) >= guard {
                        let r = layer.backward.scrub_rows(cur.1, 1, &rs.verify, &mut rs.rng);
                        rs.report.merge(r);
                    }
                    cur.1 = (cur.1 + 1) % layer.backward.in_dim();
                }
                continue;
            }
            let r = layer
                .forward
                .scrub_rows(cur.0, budget, &rs.verify, &mut rs.rng);
            rs.report.merge(r);
            cur.0 = (cur.0 + budget) % layer.forward.in_dim();
            let r = layer
                .backward
                .scrub_rows(cur.1, budget, &rs.verify, &mut rs.rng);
            rs.report.merge(r);
            cur.1 = (cur.1 + budget) % layer.backward.in_dim();
        }
        rs.passes += 1;
    }

    /// Scrubs every word line of every array in one sweep (maintenance
    /// window / campaign use; the online scheduler uses budgeted passes).
    /// No-op when resilience is off.
    pub fn scrub_all(&mut self) {
        let Some(rs) = self.resilience.as_mut() else {
            return;
        };
        for layer in &mut self.layers {
            let rows = layer.forward.in_dim();
            let r = layer.forward.scrub_rows(0, rows, &rs.verify, &mut rs.rng);
            rs.report.merge(r);
            let rows = layer.backward.in_dim();
            let r = layer.backward.scrub_rows(0, rows, &rs.verify, &mut rs.rng);
            rs.report.merge(r);
        }
        rs.passes += 1;
    }

    /// Cells across all arrays currently reading at a level other than the
    /// one programmed — the damage a scrub pass would repair.
    pub fn drifted_cells(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.forward.drifted_cells() + l.backward.drifted_cells())
            .sum()
    }

    /// Merged cost of every scrub pass so far (`None` when resilience is
    /// off): re-pulses vs ideal, verify reads, unrecoverable cells.
    pub fn scrub_report(&self) -> Option<&ProgramReport> {
        self.resilience.as_ref().map(|rs| &rs.report)
    }

    /// Scrub passes completed so far (0 when resilience is off).
    pub fn scrub_passes(&self) -> u64 {
        self.resilience.as_ref().map_or(0, |rs| rs.passes)
    }

    /// Replaces the scrub policy (no-op when resilience is off). Lets a
    /// campaign train one network and then deploy cloned arms under
    /// different scrub schedules.
    pub fn set_scrub(&mut self, scrub: ScrubPolicy) {
        if let Some(rs) = self.resilience.as_mut() {
            rs.scrub = scrub;
            rs.images_since_scrub = 0;
        }
    }

    /// Merged cost of every verified write so far (`None` when fault
    /// tolerance is off): total pulses vs ideal pulses, verify reads, and
    /// the cells still unrecoverable at their last write.
    pub fn fault_report(&self) -> Option<&ProgramReport> {
        self.fault_tolerance.as_ref().map(|ft| &ft.report)
    }

    /// Spare columns consumed across all layers (forward + backward arrays).
    pub fn spares_used(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.forward_repair.remapped().len() + l.backward_repair.remapped().len())
            .sum()
    }

    /// Output units masked off across all layers — the graceful-degradation
    /// toll after the spare budget ran out.
    pub fn masked_units(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.forward_repair.masked().len() + l.backward_repair.masked().len())
            .sum()
    }

    /// Reads layer `li`'s weights (bias folded as the last column of each
    /// row) back from its arrays — the Fig. 14(b) read-out path. Values are
    /// the quantized weights the hardware actually holds.
    ///
    /// # Panics
    ///
    /// Panics if `li` is out of range.
    pub fn layer_weights(&self, li: usize) -> Vec<f32> {
        self.layers[li].forward.read()
    }

    /// `(n_in, n_out)` of layer `li`.
    ///
    /// # Panics
    ///
    /// Panics if `li` is out of range.
    pub fn layer_dims(&self, li: usize) -> (usize, usize) {
        (self.layers[li].n_in, self.layers[li].n_out)
    }

    /// Total array-read spikes issued so far (energy accounting).
    pub fn read_spikes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward.read_spikes() + l.backward.read_spikes())
            .sum()
    }

    /// Total programming pulses issued so far.
    pub fn write_spikes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.forward.write_spikes() + l.backward.write_spikes())
            .sum()
    }

    /// Serializes the complete device state — stored cell levels, weight
    /// scales, live fault maps, wear counters, spike counters, masked
    /// outputs, the repair-controller ladders and the cumulative cost
    /// reports — into one self-contained blob (the payload of a
    /// checkpoint's `WEAR` section). Pair with
    /// [`restore_device_state`](Self::restore_device_state) on a freshly
    /// reconstructed (same dims/params/seeds/attachments) MLP to resume a
    /// wearing run bitwise. The program-and-verify RNGs are deliberately
    /// *not* serialized: the wear campaign runs `write_sigma = 0`, under
    /// which the verify loop returns the target without ever drawing from
    /// them, so their state never influences the trajectory.
    pub fn device_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        push_u64(&mut out, DEVICE_STATE_MAGIC);
        push_u64(&mut out, self.layers.len() as u64);
        for layer in &self.layers {
            snapshot_matrix(&mut out, &layer.forward);
            snapshot_matrix(&mut out, &layer.backward);
            snapshot_controller(&mut out, &layer.forward_repair);
            snapshot_controller(&mut out, &layer.backward_repair);
        }
        match &self.fault_tolerance {
            Some(ft) => {
                out.push(1);
                snapshot_report(&mut out, &ft.report);
            }
            None => out.push(0),
        }
        match &self.resilience {
            Some(rs) => {
                out.push(1);
                snapshot_report(&mut out, &rs.report);
                push_u64(&mut out, rs.images_since_scrub);
                push_u64(&mut out, rs.passes);
                push_u64(&mut out, rs.cursors.len() as u64);
                for &(a, b) in &rs.cursors {
                    push_u64(&mut out, a as u64);
                    push_u64(&mut out, b as u64);
                }
            }
            None => out.push(0),
        }
        out
    }

    /// Restores a [`device_state`](Self::device_state) snapshot onto this
    /// MLP, which must have been rebuilt along the same construction path
    /// (dims, params, seeds, fault model, wear attach) as the snapshotted
    /// one. Returns `false` — leaving the device in an unspecified,
    /// partially restored state that the caller should rebuild before
    /// retrying — on foreign magic, framing errors, geometry mismatches,
    /// or a snapshot whose optional sections don't match this MLP's
    /// configuration.
    pub fn restore_device_state(&mut self, blob: &[u8]) -> bool {
        let mut rd = ByteReader::new(blob);
        if rd.u64() != Some(DEVICE_STATE_MAGIC) {
            return false;
        }
        if rd.u64().map(|v| v as usize) != Some(self.layers.len()) {
            return false;
        }
        for layer in &mut self.layers {
            if restore_matrix(&mut rd, &mut layer.forward).is_none()
                || restore_matrix(&mut rd, &mut layer.backward).is_none()
                || restore_controller(&mut rd, &mut layer.forward_repair).is_none()
                || restore_controller(&mut rd, &mut layer.backward_repair).is_none()
            {
                return false;
            }
        }
        match rd.u8() {
            Some(1) => {
                let Some(report) = restore_report(&mut rd) else {
                    return false;
                };
                let Some(ft) = self.fault_tolerance.as_mut() else {
                    return false;
                };
                ft.report = report;
            }
            Some(0) => {}
            _ => return false,
        }
        match rd.u8() {
            Some(1) => {
                let Some(report) = restore_report(&mut rd) else {
                    return false;
                };
                let (Some(images), Some(passes), Some(nc)) = (rd.u64(), rd.u64(), rd.u64()) else {
                    return false;
                };
                let mut cursors = Vec::new();
                for _ in 0..nc {
                    let (Some(a), Some(b)) = (rd.u64(), rd.u64()) else {
                        return false;
                    };
                    cursors.push((a as usize, b as usize));
                }
                let Some(rs) = self.resilience.as_mut() else {
                    return false;
                };
                if cursors.len() != rs.cursors.len() {
                    return false;
                }
                rs.report = report;
                rs.images_since_scrub = images;
                rs.passes = passes;
                rs.cursors = cursors;
            }
            Some(0) => {}
            _ => return false,
        }
        rd.finished()
    }
}

/// The `pipelayer_nn::Trainer` checkpoint hook: the WEAR section of a PLW2
/// checkpoint carries exactly the [`ReramMlp::device_state`] blob.
impl pipelayer_nn::DeviceState for ReramMlp {
    fn device_state(&self) -> Vec<u8> {
        ReramMlp::device_state(self)
    }

    fn restore_device_state(&mut self, blob: &[u8]) -> bool {
        ReramMlp::restore_device_state(self, blob)
    }
}

/// Average-pools a `[1, H, W]` image by `factor` (used to shrink the
/// synthetic MNIST task so functional runs stay fast).
///
/// # Panics
///
/// Panics if the image is not rank-3 single-channel or not divisible.
pub fn downsample(img: &Tensor, factor: usize) -> Tensor {
    assert_eq!(img.dims()[0], 1, "expected single-channel [1,H,W]");
    assert_eq!(img.dims()[1] % factor, 0, "height not divisible");
    pipelayer_tensor::ops::avgpool2d(img, factor, factor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::data::SyntheticMnist;
    use pipelayer_reram::FaultModel;

    fn small_task() -> (Vec<Tensor>, Vec<usize>, Vec<Tensor>, Vec<usize>) {
        let data = SyntheticMnist::generate(120, 40, 77);
        let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
        let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
        (tr, data.train.labels, te, data.test.labels)
    }

    #[test]
    fn reram_mlp_trains_on_synthetic_task() {
        let (tr, trl, te, tel) = small_task();
        let mut mlp = ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 5);
        let before = mlp.accuracy(&te, &tel);
        let mut last_loss = f32::INFINITY;
        for epoch in 0..8 {
            let mut total = 0.0;
            for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
                total += mlp.train_batch(imgs, labs, 0.3);
            }
            last_loss = total / (tr.len() / 10) as f32;
            let _ = epoch;
        }
        let after = mlp.accuracy(&te, &tel);
        assert!(
            after > before + 0.2 && after > 0.5,
            "ReRAM training failed: {before} -> {after}, loss {last_loss}"
        );
    }

    /// Attaching the ideal noise model must leave every forward bit
    /// identical to a never-attached MLP — the no-op gate at the
    /// functional level.
    #[test]
    fn ideal_noise_attach_is_exact_noop() {
        let x = [0.2f32, -0.4, 0.6, 0.1, -0.9, 0.5];
        let mut plain = ReramMlp::new(&[6, 4, 3], &ReramParams::default(), 8);
        let reference: Vec<u32> = plain.forward(&x).iter().map(|v| v.to_bits()).collect();

        let mut noisy =
            ReramMlp::with_noise(&[6, 4, 3], &ReramParams::default(), 8, NoiseModel::ideal());
        let got: Vec<u32> = noisy.forward(&x).iter().map(|v| v.to_bits()).collect();
        assert_eq!(reference, got, "ideal noise model changed forward bits");
    }

    /// A noisy MLP still learns the synthetic task (the datapath stays
    /// trainable under mild analog non-idealities), and the noise actually
    /// perturbs the forward pass.
    #[test]
    fn noisy_reram_mlp_still_trains() {
        let (tr, trl, te, tel) = small_task();
        let noise = NoiseModel::with_strength(0.5);
        let mut mlp = ReramMlp::with_noise(&[49, 16, 10], &ReramParams::default(), 5, noise);

        let mut plain = ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 5);
        let x: Vec<f32> = vec![0.3; 49];
        assert_ne!(
            plain
                .forward(&x)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            mlp.forward(&x)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "strength-0.5 noise should perturb the forward pass"
        );

        let before = mlp.accuracy(&te, &tel);
        for _ in 0..8 {
            for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
                mlp.train_batch(imgs, labs, 0.3);
            }
        }
        let after = mlp.accuracy(&te, &tel);
        assert!(
            after > before + 0.15 && after > 0.4,
            "noisy ReRAM training failed: {before} -> {after}"
        );
    }

    /// The layer-major batched feed must reproduce the per-sample
    /// reference bit-for-bit on arrays whose reads don't perturb device
    /// state — here on ideal arrays and on fault-ridden ones (stuck cells
    /// are read-order-independent).
    #[test]
    fn batched_feed_matches_scalar_reference_bitwise() {
        let (tr, trl, _, _) = small_task();
        let builds: [fn() -> ReramMlp; 2] = [
            || ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 5),
            || {
                ReramMlp::with_faults(
                    &[49, 16, 10],
                    &ReramParams::default(),
                    5,
                    &FaultModel::with_stuck_rate(1e-3),
                )
            },
        ];
        for build in builds {
            let mut batched = build();
            let mut scalar = build();
            for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).take(4) {
                let lb = batched.train_batch(imgs, labs, 0.3);
                let ls = scalar.train_batch_scalar(imgs, labs, 0.3);
                assert_eq!(lb.to_bits(), ls.to_bits(), "loss bits diverged");
            }
            for li in 0..batched.depth() {
                let wb = batched.layer_weights(li);
                let ws = scalar.layer_weights(li);
                for (a, b) in wb.iter().zip(&ws) {
                    assert_eq!(a.to_bits(), b.to_bits(), "weight bits diverged");
                }
            }
            assert_eq!(batched.read_spikes(), scalar.read_spikes());
            assert_eq!(batched.write_spikes(), scalar.write_spikes());
        }
    }

    #[test]
    fn updates_issue_write_spikes() {
        let (tr, trl, _, _) = small_task();
        let mut mlp = ReramMlp::new(&[49, 8, 10], &ReramParams::default(), 6);
        let w0 = mlp.write_spikes();
        mlp.train_batch(&tr[..10], &trl[..10], 0.2);
        assert!(mlp.write_spikes() > w0, "update must reprogram cells");
        assert!(mlp.read_spikes() > 0);
    }

    #[test]
    fn forward_matches_float_reference_closely() {
        // A fresh (untrained) MLP's crossbar forward should track a float
        // recomputation within fixed-point error.
        let mut mlp = ReramMlp::new(&[6, 4, 3], &ReramParams::default(), 8);
        let x = [0.2f32, -0.4, 0.6, 0.1, -0.9, 0.5];
        let out = mlp.forward(&x);

        // Float reference from the array-stored weights.
        let mut v: Vec<f32> = x.to_vec();
        for layer in &mlp.layers {
            let w = layer.forward.read();
            let mut with_bias = v.clone();
            with_bias.push(1.0);
            let mut o = vec![0.0f32; layer.n_out];
            for (oi, out_v) in o.iter_mut().enumerate() {
                *out_v = with_bias
                    .iter()
                    .enumerate()
                    .map(|(i, &xv)| w[oi * (layer.n_in + 1) + i] * xv)
                    .sum();
                if layer.relu {
                    *out_v = out_v.max(0.0);
                }
            }
            v = o;
        }
        for (a, b) in out.iter().zip(&v) {
            assert!((a - b).abs() < 0.02, "crossbar {a} vs float {b}");
        }
    }

    #[test]
    fn downsample_shapes() {
        let img = Tensor::ones(&[1, 28, 28]);
        assert_eq!(downsample(&img, 4).dims(), &[1, 7, 7]);
    }

    #[test]
    fn fault_tolerant_mlp_tracks_pulse_overhead() {
        let (tr, trl, _, _) = small_task();
        let mut mlp = ReramMlp::with_fault_tolerance(
            &[49, 8, 10],
            &ReramParams::default(),
            6,
            &FaultModel::with_stuck_rate(1e-3),
            VerifyPolicy {
                max_attempts: 3,
                write_sigma: 0.2,
            },
            SpareBudget::typical(),
        );
        let scrub = mlp.fault_report().unwrap().clone();
        assert!(scrub.pulses > 0, "commissioning scrub must program cells");
        mlp.train_batch(&tr[..10], &trl[..10], 0.2);
        let after = mlp.fault_report().unwrap();
        assert!(after.pulses > scrub.pulses, "updates add verified pulses");
        assert!(after.verify_reads > 0);
        assert!(after.overhead() >= 1.0);
    }

    #[test]
    fn repair_keeps_faulty_mlp_close_to_ideal() {
        let (tr, trl, te, tel) = small_task();
        let faults = FaultModel::with_stuck_rate(1e-3);
        let policy = VerifyPolicy::with_attempts(3);

        let mut ideal = ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 5);
        let mut repaired = ReramMlp::with_fault_tolerance(
            &[49, 16, 10],
            &ReramParams::default(),
            5,
            &faults,
            policy,
            SpareBudget::typical(),
        );
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            ideal.train_batch(imgs, labs, 0.3);
            repaired.train_batch(imgs, labs, 0.3);
        }
        let a_ideal = ideal.accuracy(&te, &tel);
        let a_rep = repaired.accuracy(&te, &tel);
        assert!(
            a_rep >= a_ideal - 0.10,
            "repaired ({a_rep}) should track ideal ({a_ideal})"
        );
    }

    #[test]
    fn masking_degrades_gracefully_not_catastrophically() {
        // No spares at a heavy fault rate: many columns get masked, but the
        // network still runs and produces finite outputs.
        let mut mlp = ReramMlp::with_fault_tolerance(
            &[20, 12, 4],
            &ReramParams::default(),
            3,
            &FaultModel::with_stuck_rate(0.02),
            VerifyPolicy::with_attempts(2),
            SpareBudget::none(),
        );
        assert!(mlp.masked_units() > 0, "2% faults must hit some column");
        assert_eq!(mlp.spares_used(), 0);
        let out = mlp.forward(&[0.5; 20]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_rejects_wrong_width() {
        let mut mlp = ReramMlp::new(&[4, 2], &ReramParams::default(), 1);
        mlp.forward(&[1.0, 2.0]);
    }

    fn aggressive_drift() -> DriftModel {
        DriftModel {
            nu: 0.15,
            nu_sigma: 0.05,
            t0_cycles: 16,
            disturb_per_level: 0,
        }
    }

    #[test]
    fn aging_corrupts_reads_and_scrub_all_restores_exactly() {
        let mut mlp = ReramMlp::with_resilience(
            &[12, 8, 4],
            &ReramParams::default(),
            9,
            aggressive_drift(),
            ScrubPolicy::off(),
            VerifyPolicy::default(),
        );
        let w0 = mlp.layer_weights(0);
        mlp.advance_cycles(200_000);
        assert!(mlp.drifted_cells() > 0, "aging must corrupt some cell");
        assert_eq!(mlp.scrub_passes(), 0, "policy off: scheduler stays idle");
        mlp.scrub_all();
        assert_eq!(mlp.drifted_cells(), 0);
        assert_eq!(mlp.layer_weights(0), w0, "scrub restores reads bitwise");
        let report = mlp.scrub_report().expect("resilience is on");
        assert!(report.pulses > 0, "restoring drifted cells takes pulses");
    }

    #[test]
    fn resilient_mlp_matches_plain_mlp_before_aging() {
        // Same seed, no elapsed cycles: the resilient build reads exactly
        // like the plain one (drift attach is a pure bookkeeping change).
        let plain = ReramMlp::new(&[10, 6, 3], &ReramParams::default(), 4);
        let res = ReramMlp::with_resilience(
            &[10, 6, 3],
            &ReramParams::default(),
            4,
            aggressive_drift(),
            ScrubPolicy::every(100, 4),
            VerifyPolicy::default(),
        );
        for li in 0..plain.depth() {
            assert_eq!(plain.layer_weights(li), res.layer_weights(li));
        }
    }

    #[test]
    fn scrub_scheduler_fires_on_the_image_interval() {
        let (tr, trl, _, _) = small_task();
        let mut mlp = ReramMlp::with_resilience(
            &[49, 8, 10],
            &ReramParams::default(),
            6,
            aggressive_drift(),
            ScrubPolicy::every(10, 4),
            VerifyPolicy::default(),
        );
        // 3 batches of 10 images at interval 10 → exactly 3 passes.
        for chunk in 0..3 {
            let lo = chunk * 10;
            mlp.train_batch(&tr[lo..lo + 10], &trl[lo..lo + 10], 0.2);
        }
        assert_eq!(mlp.scrub_passes(), 3);
        let report = mlp.scrub_report().expect("resilience is on");
        assert!(report.verify_reads > 0, "each pass reads scanned rows");
    }

    #[test]
    fn cloned_arms_age_independently() {
        // The campaign pattern: train once, clone into arms, age each.
        let base = ReramMlp::with_resilience(
            &[8, 5, 3],
            &ReramParams::default(),
            2,
            aggressive_drift(),
            ScrubPolicy::off(),
            VerifyPolicy::default(),
        );
        let mut aged = base.clone();
        aged.advance_cycles(200_000);
        assert_eq!(base.drifted_cells(), 0);
        assert!(aged.drifted_cells() > 0);
    }

    /// Attaching the ideal wear model must be a complete no-op: same
    /// forward bits, same training trajectory, no wear state allocated.
    #[test]
    fn ideal_wear_attach_is_exact_noop() {
        let (tr, trl, _, _) = small_task();
        let mut plain = ReramMlp::new(&[49, 8, 10], &ReramParams::default(), 6);
        let mut worn = ReramMlp::new(&[49, 8, 10], &ReramParams::default(), 6);
        worn.attach_wear(WearModel::ideal(), 6);
        assert_eq!(worn.wear_exhausted_cells(), 0);
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).take(3) {
            let lp = plain.train_batch(imgs, labs, 0.3);
            let lw = worn.train_batch(imgs, labs, 0.3);
            assert_eq!(lp.to_bits(), lw.to_bits(), "loss bits diverged");
        }
        for li in 0..plain.depth() {
            assert_eq!(plain.layer_weights(li), worn.layer_weights(li));
        }
        assert_eq!(plain.write_spikes(), worn.write_spikes());
    }

    /// Under an aggressive wear model cells die mid-training, the ladder
    /// consumes spares, and the network keeps producing finite outputs.
    #[test]
    fn wear_kills_cells_and_ladder_consumes_spares() {
        let (tr, trl, _, _) = small_task();
        let mut mlp = ReramMlp::with_fault_tolerance(
            &[49, 8, 10],
            &ReramParams::default(),
            6,
            &FaultModel::ideal(),
            VerifyPolicy::with_attempts(2),
            SpareBudget::typical(),
        );
        mlp.attach_wear(WearModel::with_endurance(200.0), 6);
        mlp.set_repair_policy(RepairPolicy::laddered());
        let spares0 = mlp.spares_left();
        for _ in 0..6 {
            for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
                mlp.train_batch(imgs, labs, 0.3);
            }
        }
        assert!(mlp.wear_exhausted_cells() > 0, "cells must wear out");
        assert!(
            mlp.spares_left() < spares0 || mlp.masked_units() > 0,
            "dead columns must climb the ladder"
        );
        let out = mlp.forward(&[0.5; 49]);
        assert!(out.iter().all(|v| v.is_finite()));
    }

    /// The chunked parallel feed must be bitwise independent of the
    /// thread count — 1, 2 and 8 workers give identical weights, loss
    /// bits and spike counters.
    #[test]
    fn parallel_feed_is_thread_count_invariant() {
        let (tr, trl, _, _) = small_task();
        let build = || {
            let mut m = ReramMlp::with_fault_tolerance(
                &[49, 8, 10],
                &ReramParams::default(),
                6,
                &FaultModel::ideal(),
                VerifyPolicy::with_attempts(2),
                SpareBudget::typical(),
            );
            m.attach_wear(WearModel::with_endurance(500.0), 6);
            m
        };
        let mut one = build();
        let mut two = build();
        let mut eight = build();
        for (imgs, labs) in tr.chunks(20).zip(trl.chunks(20)).take(3) {
            let l1 = one.train_batch_parallel(imgs, labs, 0.3, 1);
            let l2 = two.train_batch_parallel(imgs, labs, 0.3, 2);
            let l8 = eight.train_batch_parallel(imgs, labs, 0.3, 8);
            assert_eq!(l1.to_bits(), l2.to_bits(), "2-thread loss diverged");
            assert_eq!(l1.to_bits(), l8.to_bits(), "8-thread loss diverged");
        }
        for li in 0..one.depth() {
            assert_eq!(one.layer_weights(li), two.layer_weights(li));
            assert_eq!(one.layer_weights(li), eight.layer_weights(li));
        }
        assert_eq!(one.read_spikes(), two.read_spikes());
        assert_eq!(one.read_spikes(), eight.read_spikes());
        assert_eq!(one.write_spikes(), eight.write_spikes());
    }

    /// Snapshot → fresh rebuild → restore must reproduce the wearing
    /// run's forward trajectory bitwise, wear counters included.
    #[test]
    fn device_state_roundtrips_under_wear() {
        let (tr, trl, _, _) = small_task();
        let build = || {
            let mut m = ReramMlp::with_fault_tolerance(
                &[49, 8, 10],
                &ReramParams::default(),
                6,
                &FaultModel::with_stuck_rate(1e-3),
                VerifyPolicy::with_attempts(2),
                SpareBudget::typical(),
            );
            m.attach_wear(WearModel::with_endurance(300.0), 6);
            m.set_repair_policy(RepairPolicy::laddered());
            m
        };
        let mut live = build();
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).take(4) {
            live.train_batch(imgs, labs, 0.3);
        }
        let blob = live.device_state();

        let mut resumed = build();
        assert!(resumed.restore_device_state(&blob), "restore must accept");
        for li in 0..live.depth() {
            assert_eq!(live.layer_weights(li), resumed.layer_weights(li));
        }
        assert_eq!(live.wear_exhausted_cells(), resumed.wear_exhausted_cells());
        assert_eq!(live.read_spikes(), resumed.read_spikes());
        assert_eq!(live.write_spikes(), resumed.write_spikes());

        // Both continue identically: the snapshot captured everything.
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)).skip(4).take(4) {
            let ll = live.train_batch(imgs, labs, 0.3);
            let lr = resumed.train_batch(imgs, labs, 0.3);
            assert_eq!(ll.to_bits(), lr.to_bits(), "post-restore loss diverged");
        }
        for li in 0..live.depth() {
            assert_eq!(live.layer_weights(li), resumed.layer_weights(li));
        }

        // Corrupt and truncated blobs are rejected, not panicked on.
        let mut bad = blob.clone();
        bad[0] ^= 0xff;
        assert!(!build().restore_device_state(&bad));
        assert!(!build().restore_device_state(&blob[..blob.len() / 2]));
        assert!(!build().restore_device_state(&[]));
    }
}
