//! Convolutional networks executing on the modelled ReRAM crossbars.

use pipelayer_nn::loss::Loss;
use pipelayer_nn::spec::{LayerSpec, NetSpec, PoolKind};
use pipelayer_reram::{ReramMatrix, ReramParams};
use pipelayer_tensor::{ops, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One convolution layer mapped exactly as Fig. 4: the kernel matrix
/// (`C_out × (K²·C_in + 1)`, bias folded) on forward arrays, and the
/// rot180-reordered kernels (`C_in × K²·C_out`, Fig. 11) on the `A_l2`
/// backward arrays.
struct ConvStage {
    k: usize,
    pad: usize,
    c_in: usize,
    c_out: usize,
    relu: bool,
    forward: ReramMatrix,
    backward: ReramMatrix,
    grad_acc: Vec<f32>, // [c_out x (k²c_in + 1)]
    cached_input: Tensor,
    cached_patches: Tensor, // im2col of the input, the stored-d of Fig. 12
    cached_out: Tensor,
}

impl ConvStage {
    fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        pad: usize,
        params: &ReramParams,
        rng: &mut impl Rng,
    ) -> Self {
        let cols = k * k * c_in + 1;
        let a = (6.0 / (k * k * c_in + c_out) as f32).sqrt();
        let mut w: Vec<f32> = Tensor::uniform(&[c_out, cols], -a, a, rng).into_vec();
        // Zero biases (last column).
        for o in 0..c_out {
            w[o * cols + cols - 1] = 0.0;
        }
        let bw = reorder_rot180(&w, c_out, c_in, k);
        ConvStage {
            k,
            pad,
            c_in,
            c_out,
            relu: true,
            forward: ReramMatrix::program(&w, c_out, cols, params),
            backward: ReramMatrix::program(&bw, c_in, k * k * c_out, params),
            grad_acc: vec![0.0; c_out * cols],
            cached_input: Tensor::default(),
            cached_patches: Tensor::default(),
            cached_out: Tensor::default(),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(input.dims()[0], self.c_in, "channel mismatch");
        let (h, w) = (input.dims()[1], input.dims()[2]);
        let ho = ops::conv_output_len(h, self.k, 1, self.pad);
        let wo = ops::conv_output_len(w, self.k, 1, self.pad);
        let patches = ops::im2col(input, self.k, self.k, 1, self.pad); // [P, k²c_in]
        let p_count = ho * wo;

        let mut out = Tensor::zeros(&[self.c_out, ho, wo]);
        // The Fig. 4 window loop, fed as one multi-patch batch: every
        // patch is still its own array read phase (identical bits and
        // spike accounting), but the arrays resolve their bit-plane
        // decomposition once for the whole image.
        let xs: Vec<Vec<f32>> = (0..p_count)
            .map(|p| {
                let mut x: Vec<f32> = (0..self.k * self.k * self.c_in)
                    .map(|c| patches[[p, c]])
                    .collect();
                x.push(1.0); // bias input
                x
            })
            .collect();
        for (p, y) in self.forward.matvec_batch(&xs).into_iter().enumerate() {
            for (co, &v) in y.iter().enumerate() {
                // Activation component: subtractor output through ReLU LUT.
                out[[co, p / wo, p % wo]] = if self.relu { v.max(0.0) } else { v };
            }
        }
        self.cached_input = input.clone();
        self.cached_patches = patches;
        self.cached_out = out.clone();
        out
    }

    /// Backward: masks δ by the ReLU derivative (recovered from the cached
    /// *output*, Sec. 4.3), accumulates `∂W` from the stored patches
    /// (Fig. 12) and runs the error convolution on the `A_l2` arrays
    /// (Fig. 11). Returns `δ` w.r.t. the layer input.
    fn backward(&mut self, delta: &Tensor) -> Tensor {
        assert_eq!(delta.dims(), self.cached_out.dims(), "delta shape mismatch");
        let masked = if self.relu {
            delta.zip_map(&self.cached_out, |d, o| if o > 0.0 { d } else { 0.0 })
        } else {
            delta.clone()
        };
        let (ho, wo) = (masked.dims()[1], masked.dims()[2]);
        let cols = self.k * self.k * self.c_in + 1;
        // ∂W accumulation over the stored d patches, lowered to one GEMM:
        // `dW[c_out × k²c_in] = δ[c_out × P] · patches[P × k²c_in]`
        // (Fig. 12). No zero-skip on δ — `0·NaN` must stay NaN so a
        // poisoned activation is not silently dropped from the gradient.
        let p_count = ho * wo;
        let dmat = masked.reshape(&[self.c_out, p_count]);
        let dw = ops::matmul(&dmat, &self.cached_patches); // [c_out, cols-1]
        for co in 0..self.c_out {
            let row = &mut self.grad_acc[co * cols..(co + 1) * cols];
            let dw_row = &dw.as_slice()[co * (cols - 1)..(co + 1) * (cols - 1)];
            for (r, &g) in row.iter_mut().zip(dw_row) {
                *r += g;
            }
            // Bias column: the sum of this output map's masked δ.
            let drow = &dmat.as_slice()[co * p_count..(co + 1) * p_count];
            row[cols - 1] += drow.iter().sum::<f32>();
        }
        // Error backward: full convolution with the reordered kernels,
        // executed as the same window loop against the backward arrays.
        let (h_in, w_in) = (self.cached_input.dims()[1], self.cached_input.dims()[2]);
        let bpad = self.k - 1 - self.pad;
        let dpatches = ops::im2col(&masked, self.k, self.k, 1, bpad); // [P_in, k²c_out]
        assert_eq!(
            dpatches.dims()[0],
            h_in * w_in,
            "backward geometry mismatch"
        );
        let mut dx = Tensor::zeros(&[self.c_in, h_in, w_in]);
        // Batched error convolution over the `A_l2` arrays. Hardware
        // semantics are preserved inside `matvec`: an all-zero patch
        // drives no input spikes, so its read phase never fires and
        // `read_spikes` stays untouched — the crossbar model's behaviour,
        // unlike the software zero-skips removed elsewhere.
        let xs: Vec<Vec<f32>> = (0..h_in * w_in)
            .map(|p| {
                (0..self.k * self.k * self.c_out)
                    .map(|c| dpatches[[p, c]])
                    .collect()
            })
            .collect();
        for (p, y) in self.backward.matvec_batch(&xs).into_iter().enumerate() {
            for (ci, &v) in y.iter().enumerate() {
                dx[[ci, p / w_in, p % w_in]] = v;
            }
        }
        dx
    }

    /// Fig. 14(b): read old weights from the arrays, subtract the averaged
    /// gradient, write back both the forward and reordered copies.
    fn apply_update(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch as f32;
        let mut w = self.forward.read();
        for (wi, g) in w.iter_mut().zip(&self.grad_acc) {
            *wi -= scale * g;
        }
        self.forward.write(&w);
        self.backward
            .write(&reorder_rot180(&w, self.c_out, self.c_in, self.k));
        self.grad_acc.fill(0.0);
    }
}

/// Builds the Fig. 11 backward matrix from the forward one: entry
/// `[ci][(co,ky,kx)] = W[co][(ci, K-1-ky, K-1-kx)]`, biases dropped.
fn reorder_rot180(w: &[f32], c_out: usize, c_in: usize, k: usize) -> Vec<f32> {
    let cols_fwd = k * k * c_in + 1;
    let cols_bwd = k * k * c_out;
    let mut out = vec![0.0f32; c_in * cols_bwd];
    for ci in 0..c_in {
        for co in 0..c_out {
            for ky in 0..k {
                for kx in 0..k {
                    // Forward patch order is (ci, ky, kx) — see im2col.
                    let fwd_col = (ci * k + (k - 1 - ky)) * k + (k - 1 - kx);
                    let bwd_col = (co * k + ky) * k + kx;
                    out[ci * cols_bwd + bwd_col] = w[co * cols_fwd + fwd_col];
                }
            }
        }
    }
    out
}

struct FcStage {
    n_in: usize,
    n_out: usize,
    relu: bool,
    forward: ReramMatrix,  // [n_out x (n_in + 1)]
    backward: ReramMatrix, // [n_in x n_out]
    grad_acc: Vec<f32>,
    cached_in: Vec<f32>,
    cached_out: Vec<f32>,
    cached_in_dims: Vec<usize>,
}

impl FcStage {
    fn new(
        n_in: usize,
        n_out: usize,
        relu: bool,
        params: &ReramParams,
        rng: &mut impl Rng,
    ) -> Self {
        let a = (6.0 / (n_in + n_out) as f32).sqrt();
        let mut w: Vec<f32> = Tensor::uniform(&[n_out, n_in + 1], -a, a, rng).into_vec();
        for o in 0..n_out {
            w[o * (n_in + 1) + n_in] = 0.0;
        }
        let wt = transpose_no_bias(&w, n_out, n_in);
        FcStage {
            n_in,
            n_out,
            relu,
            forward: ReramMatrix::program(&w, n_out, n_in + 1, params),
            backward: ReramMatrix::program(&wt, n_in, n_out, params),
            grad_acc: vec![0.0; n_out * (n_in + 1)],
            cached_in: Vec::new(),
            cached_out: Vec::new(),
            cached_in_dims: Vec::new(),
        }
    }

    fn forward(&mut self, input: &Tensor) -> Vec<f32> {
        assert_eq!(input.numel(), self.n_in, "fc width mismatch");
        self.cached_in_dims = input.dims().to_vec();
        let mut x = input.as_slice().to_vec();
        x.push(1.0); // bias input
        let mut y = self.forward.matvec(&x);
        if self.relu {
            for v in &mut y {
                *v = v.max(0.0);
            }
        }
        // Cache WITH the bias element: grad accumulation is then a single
        // outer product over the whole [n_out × (n_in+1)] accumulator.
        self.cached_in = x;
        self.cached_out = y.clone();
        y
    }

    fn backward(&mut self, delta: &[f32]) -> Tensor {
        let mut d = delta.to_vec();
        if self.relu {
            for (dv, &o) in d.iter_mut().zip(&self.cached_out) {
                if o <= 0.0 {
                    *dv = 0.0;
                }
            }
        }
        // Lowered to one rank-1 update; no zero-skip on δ (0·NaN = NaN
        // must propagate into the accumulated gradient).
        ops::outer_acc(&mut self.grad_acc, &d, &self.cached_in);
        let dx = self.backward.matvec(&d);
        Tensor::from_vec(&self.cached_in_dims, dx)
    }

    fn apply_update(&mut self, lr: f32, batch: usize) {
        let scale = lr / batch as f32;
        let mut w = self.forward.read();
        for (wi, g) in w.iter_mut().zip(&self.grad_acc) {
            *wi -= scale * g;
        }
        self.forward.write(&w);
        self.backward
            .write(&transpose_no_bias(&w, self.n_out, self.n_in));
        self.grad_acc.fill(0.0);
    }
}

fn transpose_no_bias(w: &[f32], n_out: usize, n_in: usize) -> Vec<f32> {
    let mut wt = vec![0.0f32; n_in * n_out];
    for o in 0..n_out {
        for i in 0..n_in {
            wt[i * n_out + o] = w[o * (n_in + 1) + i];
        }
    }
    wt
}

enum Stage {
    Conv(ConvStage),
    Pool {
        k: usize,
        stride: usize,
        indices: Option<ops::PoolIndices>,
    },
    Fc(FcStage),
}

/// A convolutional network whose every MVM — forward and backward — runs on
/// the modelled ReRAM crossbars.
///
/// Restrictions of the functional model (they do not affect the
/// timing/energy models): convolutions must have stride 1, pooling must be
/// max pooling. ReLU follows every weighted layer except the last.
///
/// # Example
///
/// ```no_run
/// use pipelayer::functional::ReramCnn;
/// use pipelayer_nn::{LayerSpec, NetSpec, spec::PoolKind};
/// use pipelayer_reram::ReramParams;
///
/// let spec = NetSpec::new("tiny", (1, 8, 8), vec![
///     LayerSpec::Conv { k: 3, c_out: 4, stride: 1, pad: 0 },
///     LayerSpec::Pool { k: 2, stride: 2, kind: PoolKind::Max },
///     LayerSpec::Fc { n_out: 10 },
/// ]);
/// let mut cnn = ReramCnn::from_spec(&spec, &ReramParams::default(), 7);
/// ```
pub struct ReramCnn {
    stages: Vec<Stage>,
    input: (usize, usize, usize),
    loss: Loss,
}

impl ReramCnn {
    /// Builds and programs a CNN from a network spec.
    ///
    /// # Panics
    ///
    /// Panics on unsupported geometry (strided conv, average pooling) or a
    /// spec with no weighted layers.
    pub fn from_spec(spec: &NetSpec, params: &ReramParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let weighted = spec.weighted_layers();
        assert!(weighted > 0, "network has no weighted layers");
        let mut stages = Vec::new();
        let mut shape = spec.input;
        let mut seen = 0usize;
        for layer in &spec.layers {
            match *layer {
                LayerSpec::Conv {
                    k,
                    c_out,
                    stride,
                    pad,
                } => {
                    assert_eq!(stride, 1, "functional conv supports stride 1 only");
                    let mut st = ConvStage::new(shape.0, c_out, k, pad, params, &mut rng);
                    seen += 1;
                    st.relu = seen < weighted;
                    let ho = ops::conv_output_len(shape.1, k, 1, pad);
                    let wo = ops::conv_output_len(shape.2, k, 1, pad);
                    shape = (c_out, ho, wo);
                    stages.push(Stage::Conv(st));
                }
                LayerSpec::Pool { k, stride, kind } => {
                    assert_eq!(kind, PoolKind::Max, "functional pooling is max-only");
                    shape = (
                        shape.0,
                        ops::conv_output_len(shape.1, k, stride, 0),
                        ops::conv_output_len(shape.2, k, stride, 0),
                    );
                    stages.push(Stage::Pool {
                        k,
                        stride,
                        indices: None,
                    });
                }
                LayerSpec::Fc { n_out } => {
                    let n_in = shape.0 * shape.1 * shape.2;
                    seen += 1;
                    stages.push(Stage::Fc(FcStage::new(
                        n_in,
                        n_out,
                        seen < weighted,
                        params,
                        &mut rng,
                    )));
                    shape = (n_out, 1, 1);
                }
            }
        }
        ReramCnn {
            stages,
            input: spec.input,
            loss: Loss::SoftmaxCrossEntropy,
        }
    }

    /// Forward pass on the crossbars; caches state for training.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the spec.
    pub fn forward(&mut self, image: &Tensor) -> Vec<f32> {
        assert_eq!(
            image.dims(),
            [self.input.0, self.input.1, self.input.2],
            "input shape mismatch"
        );
        let mut spatial = image.clone();
        let mut vector: Option<Vec<f32>> = None;
        for stage in &mut self.stages {
            match stage {
                Stage::Conv(conv) => {
                    spatial = conv.forward(&spatial);
                }
                Stage::Pool { k, stride, indices } => {
                    let (out, idx) = ops::maxpool2d(&spatial, *k, *stride);
                    *indices = Some(idx);
                    spatial = out;
                }
                Stage::Fc(fc) => {
                    let input = match &vector {
                        Some(v) => Tensor::from_vec(&[v.len()], v.clone()),
                        None => spatial.clone(),
                    };
                    vector = Some(fc.forward(&input));
                }
            }
        }
        vector.unwrap_or_else(|| spatial.as_slice().to_vec())
    }

    /// Predicted class.
    pub fn predict(&mut self, image: &Tensor) -> usize {
        let out = self.forward(image);
        out.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a labelled set.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched inputs.
    pub fn accuracy(&mut self, images: &[Tensor], labels: &[usize]) -> f32 {
        assert!(
            !images.is_empty() && images.len() == labels.len(),
            "bad eval set"
        );
        let correct = images
            .iter()
            .zip(labels)
            .filter(|(img, &l)| {
                let p = self.predict(img);
                p == l
            })
            .count();
        correct as f32 / images.len() as f32
    }

    fn train_sample(&mut self, image: &Tensor, label: usize) -> f32 {
        let out = self.forward(image);
        let out_t = Tensor::from_vec(&[out.len()], out);
        let (loss, delta_t) = self.loss.loss_and_delta(&out_t, label);

        let mut vec_delta: Option<Vec<f32>> = Some(delta_t.into_vec());
        let mut spatial_delta: Option<Tensor> = None;
        for stage in self.stages.iter_mut().rev() {
            match stage {
                Stage::Fc(fc) => {
                    let d = vec_delta
                        .take()
                        .unwrap_or_else(|| spatial_delta.take().expect("delta missing").into_vec());
                    let dx = fc.backward(&d);
                    if dx.shape().rank() == 1 {
                        vec_delta = Some(dx.into_vec());
                    } else {
                        spatial_delta = Some(dx);
                    }
                }
                Stage::Pool { indices, .. } => {
                    let d = spatial_delta.take().expect("pool delta missing");
                    let idx = indices.as_ref().expect("pool backward before forward");
                    spatial_delta = Some(ops::maxpool2d_backward(&d, idx));
                }
                Stage::Conv(conv) => {
                    let d = spatial_delta.take().expect("conv delta missing");
                    spatial_delta = Some(conv.backward(&d));
                }
            }
        }
        loss
    }

    /// Trains one mini-batch; applies the Fig. 14(b) update at the end.
    /// Returns the mean loss.
    ///
    /// # Panics
    ///
    /// Panics on empty or mismatched batches.
    pub fn train_batch(&mut self, images: &[Tensor], labels: &[usize], lr: f32) -> f32 {
        assert!(
            !images.is_empty() && images.len() == labels.len(),
            "bad batch"
        );
        let mut total = 0.0;
        for (img, &l) in images.iter().zip(labels) {
            total += self.train_sample(img, l);
        }
        for stage in &mut self.stages {
            match stage {
                Stage::Conv(c) => c.apply_update(lr, images.len()),
                Stage::Fc(f) => f.apply_update(lr, images.len()),
                Stage::Pool { .. } => {}
            }
        }
        total / images.len() as f32
    }

    /// Total array-read spikes so far.
    pub fn read_spikes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Conv(c) => c.forward.read_spikes() + c.backward.read_spikes(),
                Stage::Fc(f) => f.forward.read_spikes() + f.backward.read_spikes(),
                Stage::Pool { .. } => 0,
            })
            .sum()
    }

    /// Total programming pulses so far.
    pub fn write_spikes(&self) -> u64 {
        self.stages
            .iter()
            .map(|s| match s {
                Stage::Conv(c) => c.forward.write_spikes() + c.backward.write_spikes(),
                Stage::Fc(f) => f.forward.write_spikes() + f.backward.write_spikes(),
                Stage::Pool { .. } => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::downsample;
    use pipelayer_nn::data::SyntheticMnist;

    fn tiny_spec() -> NetSpec {
        NetSpec::new(
            "tiny-cnn",
            (1, 7, 7),
            vec![
                LayerSpec::Conv {
                    k: 3,
                    c_out: 4,
                    stride: 1,
                    pad: 0,
                },
                LayerSpec::Fc { n_out: 10 },
            ],
        )
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut cnn = ReramCnn::from_spec(&tiny_spec(), &ReramParams::default(), 3);
        let x = Tensor::from_fn(&[1, 7, 7], |i| {
            ((i[1] * 7 + i[2]) as f32 * 0.02).sin().abs()
        });
        let a = cnn.forward(&x);
        let b = cnn.forward(&x);
        assert_eq!(a.len(), 10);
        assert_eq!(a, b, "inference must be deterministic");
    }

    #[test]
    fn conv_forward_matches_float_reference() {
        // Compare the crossbar conv against a float conv using the weights
        // read back from the arrays.
        let mut cnn = ReramCnn::from_spec(&tiny_spec(), &ReramParams::default(), 4);
        let x = Tensor::from_fn(&[1, 7, 7], |i| ((i[1] + 2 * i[2]) as f32 * 0.11).sin());

        let Stage::Conv(conv) = &mut cnn.stages[0] else {
            panic!("first stage should be conv")
        };
        let w = conv.forward.read(); // [4 x 10], bias last
        let cols = 10;
        let weight = Tensor::from_fn(&[4, 1, 3, 3], |i| w[i[0] * cols + (i[2] * 3 + i[3])]);
        let bias = Tensor::from_vec(&[4], (0..4).map(|o| w[o * cols + 9]).collect());
        let want = ops::conv2d(&x, &weight, &bias, 1, 0).map(|v| v.max(0.0));
        let got = conv.forward(&x);
        assert!(
            got.allclose(&want, 0.05),
            "crossbar conv deviates from float reference"
        );
    }

    #[test]
    fn rot180_reorder_matches_tensor_rot180() {
        // reorder_rot180 must agree with ops::rot180 modulo layout.
        let (c_out, c_in, k) = (3usize, 2usize, 3usize);
        let cols = k * k * c_in + 1;
        let w: Vec<f32> = (0..c_out * cols).map(|i| (i as f32 * 0.7).sin()).collect();
        let weight = Tensor::from_fn(&[c_out, c_in, k, k], |i| {
            w[i[0] * cols + (i[1] * k + i[2]) * k + i[3]]
        });
        let r = ops::rot180(&weight); // [c_in, c_out, k, k]
        let bw = reorder_rot180(&w, c_out, c_in, k);
        let cols_bwd = k * k * c_out;
        for ci in 0..c_in {
            for co in 0..c_out {
                for ky in 0..k {
                    for kx in 0..k {
                        let got = bw[ci * cols_bwd + (co * k + ky) * k + kx];
                        let want = r[[ci, co, ky, kx]];
                        assert!(
                            (got - want).abs() < 1e-6,
                            "mismatch at ci={ci} co={co} ky={ky} kx={kx}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trains_on_synthetic_task() {
        let data = SyntheticMnist::generate(80, 40, 909);
        let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
        let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
        let mut cnn = ReramCnn::from_spec(&tiny_spec(), &ReramParams::default(), 5);
        let before = cnn.accuracy(&te, &data.test.labels);
        for _ in 0..3 {
            for (imgs, labs) in tr.chunks(10).zip(data.train.labels.chunks(10)) {
                cnn.train_batch(imgs, labs, 0.2);
            }
        }
        let after = cnn.accuracy(&te, &data.test.labels);
        assert!(
            after > before && after > 0.4,
            "CNN on ReRAM failed to learn: {before} -> {after}"
        );
        assert!(cnn.write_spikes() > 0 && cnn.read_spikes() > 0);
    }

    #[test]
    fn pool_layers_route_without_params() {
        let spec = NetSpec::new(
            "pooled",
            (1, 8, 8),
            vec![
                LayerSpec::Conv {
                    k: 3,
                    c_out: 2,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::Pool {
                    k: 2,
                    stride: 2,
                    kind: PoolKind::Max,
                },
                LayerSpec::Fc { n_out: 4 },
            ],
        );
        let mut cnn = ReramCnn::from_spec(&spec, &ReramParams::default(), 6);
        let x = Tensor::ones(&[1, 8, 8]);
        let y = cnn.forward(&x);
        assert_eq!(y.len(), 4);
        // A training step must run through pool backward without panicking.
        cnn.train_batch(&[x], &[1], 0.1);
    }

    #[test]
    #[should_panic(expected = "stride 1")]
    fn rejects_strided_conv() {
        let spec = NetSpec::new(
            "strided",
            (1, 8, 8),
            vec![
                LayerSpec::Conv {
                    k: 3,
                    c_out: 2,
                    stride: 2,
                    pad: 0,
                },
                LayerSpec::Fc { n_out: 2 },
            ],
        );
        ReramCnn::from_spec(&spec, &ReramParams::default(), 7);
    }
}
