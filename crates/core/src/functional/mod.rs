//! Functional training *through the ReRAM datapath* (Sec. 3.1, 4.3, 4.4).
//!
//! Every matrix–vector product — forward (`A_l`), error backward (`A_l2`
//! holding the reordered kernels) — runs through the `pipelayer-reram`
//! crossbar model: 16-bit spike-coded inputs, 4-bit cells with
//! positive/negative pairs and resolution compensation, exact
//! integrate-and-fire read-out. Weight updates follow Fig. 14(b): the old
//! weights are *read from the arrays*, the averaged partial derivatives are
//! subtracted, and the result is written back.
//!
//! Two executors:
//! * [`ReramMlp`] — multilayer perceptrons (the Table 3 Mnist-A/B/C class);
//! * [`ReramCnn`] — convolutional networks: conv layers run as the im2col
//!   window loop of Fig. 4 against crossbars holding the kernel matrix,
//!   max-pooling runs through the activation component's max register, and
//!   the error backward convolution uses arrays programmed with the
//!   rot180-reordered kernels of Fig. 11.
//!
//! These are fidelity proofs, not fast trainers — every spike slot of every
//! array read is simulated.

mod cnn;
mod mlp;

pub use cnn::ReramCnn;
pub use mlp::{downsample, ReramMlp};
