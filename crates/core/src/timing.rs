//! The logical-cycle timing model (Sec. 3.1, Table 1).
//!
//! PipeLayer's pipeline advances in *logical cycles*; each logical cycle
//! must fit the longest sequence of operations any layer performs in any
//! phase (Table 1): memory read → spike → morphable array reads →
//! integrate-and-fire → activation → memory write. For a layer with
//! granularity `G` the forward phase performs `⌈P/G⌉` sequential array
//! reads, each taking `data_bits` spike slots of `t_read` (Sec. 4.2.1), and
//! then writes its outputs into the next memory subarray. Backward phases
//! (error convolution and partial-derivative computation, which run
//! concurrently in different arrays — Fig. 3, cycle T5) are costed the same
//! way.

use crate::mapping::{MappedLayer, MappedNetwork};
use pipelayer_reram::ReramParams;

/// Computes phase and cycle durations for a mapped network.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel<'a> {
    net: &'a MappedNetwork,
}

impl<'a> TimingModel<'a> {
    /// Creates a timing model over `net`.
    pub fn new(net: &'a MappedNetwork) -> Self {
        TimingModel { net }
    }

    fn params(&self) -> &ReramParams {
        &self.net.config.params
    }

    /// Time to write `words` 16-bit results into a memory subarray, ns.
    fn mem_write_ns(&self, words: u64) -> f64 {
        let p = self.params();
        words.div_ceil(p.mem_write_width as u64) as f64 * p.write_latency_ns
    }

    /// Forward-phase duration of one layer, ns: array reads plus the
    /// buffer write of its outputs.
    pub fn forward_phase_ns(&self, layer: &MappedLayer) -> f64 {
        let p = self.params();
        layer.reads_forward as f64 * p.read_phase_ns() + self.mem_write_ns(layer.out_words)
    }

    /// Backward-phase duration of one layer, ns. The error convolution and
    /// the gradient computation proceed in separate arrays (Fig. 3, T5) but
    /// both are driven from the same `δ` through spike drivers that are
    /// shared between adjacent subarrays (Sec. 4.2.1), and their input
    /// sequences differ (sliding windows vs channel vectors) — so their
    /// read phases serialise. The phase further pays the `δ` buffer write
    /// and the copy of the forward data `d` into morphable arrays for the
    /// gradient convolution (Sec. 6.6) — the "more intermediate data
    /// processing" that makes training slower than testing.
    pub fn backward_phase_ns(&self, layer: &MappedLayer) -> f64 {
        let p = self.params();
        let err = layer.reads_error as f64 * p.read_phase_ns();
        let grad = layer.reads_gradient as f64 * p.read_phase_ns();
        let d_copy =
            layer.in_words.div_ceil(p.morphable_write_width as u64) as f64 * p.write_latency_ns;
        err + grad + self.mem_write_ns(layer.delta_words) + d_copy
    }

    /// Logical-cycle duration for testing (forward phases only), ns.
    pub fn cycle_testing_ns(&self) -> f64 {
        self.net
            .layers
            .iter()
            .map(|l| self.forward_phase_ns(l))
            .fold(0.0, f64::max)
    }

    /// Logical-cycle duration for training (longest of all forward and
    /// backward phases), ns.
    pub fn cycle_training_ns(&self) -> f64 {
        self.net
            .layers
            .iter()
            .map(|l| self.forward_phase_ns(l).max(self.backward_phase_ns(l)))
            .fold(0.0, f64::max)
    }

    /// The layer whose forward phase sets the testing cycle (index and
    /// duration) — the pipeline's bottleneck stage, useful when choosing
    /// where extra granularity pays off.
    pub fn bottleneck(&self) -> (usize, f64) {
        self.net
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| (i, self.forward_phase_ns(l)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            // MappedNetwork construction rejects zero-layer specs, so the
            // fallback is unreachable; it replaces a panic path all the same.
            .unwrap_or((0, 0.0))
    }

    /// Duration of the weight-update cycle at a batch boundary, ns: the
    /// averaged partial derivatives are read out with `1/B`-weighted spikes
    /// (Sec. 4.4.2; the read-out proceeds in parallel across the stored-`d`
    /// arrays of all layers), old weights are read, and the new weights are
    /// written back row-by-row — all arrays reprogram in parallel
    /// (Fig. 14b), so the cycle costs one read phase plus two row-serial
    /// array programming passes.
    ///
    /// With fault tolerance on, the write-back passes stretch by the
    /// expected pulse multiplier (verify retries re-pulse rows) and each
    /// programming attempt appends a row-serial verify read pass.
    pub fn update_cycle_ns(&self) -> f64 {
        let p = self.params();
        let cfg = &self.net.config;
        let reprogram = p.xbar_size as f64 * p.write_latency_ns;
        let verify_reads = cfg.verify_reads_per_cell_write() * p.read_phase_ns();
        2.0 * reprogram * cfg.write_pulse_multiplier() + p.read_phase_ns() + verify_reads
    }

    /// Amortised scrub time per processed image, ns: every
    /// `interval_images` images a pass walks `rows_per_pass` word lines
    /// row-serially (all mapped arrays scrub in parallel, like the update
    /// cycle's reprogramming), each row costing one verify-read phase plus
    /// the expected re-pulse fraction of a row-write. Exactly 0.0 with
    /// scrubbing off.
    pub fn scrub_ns_per_image(&self) -> f64 {
        let cfg = &self.net.config;
        if !cfg.scrub_enabled() {
            return 0.0;
        }
        let p = self.params();
        let row_ns = p.read_phase_ns() + cfg.scrub.repulse_fraction * p.write_latency_ns;
        cfg.scrub.rows_per_image() * row_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use crate::mapping::MappedNetwork;
    use pipelayer_nn::zoo;

    fn mapped(spec: &pipelayer_nn::NetSpec) -> MappedNetwork {
        MappedNetwork::from_spec(spec, PipeLayerConfig::default())
    }

    #[test]
    fn mlp_cycle_is_one_read_phase_plus_write() {
        let m = mapped(&zoo::spec_mnist_a());
        let t = TimingModel::new(&m);
        let p = m.config.params;
        // Mnist-A: 1 read phase (P=1) + 1 write pulse.
        let want = p.read_phase_ns() + p.write_latency_ns;
        assert!((t.cycle_testing_ns() - want).abs() < 1e-6);
    }

    #[test]
    fn training_cycle_at_least_testing_cycle() {
        for spec in [
            zoo::spec_mnist_0(),
            zoo::alexnet(),
            zoo::vgg(zoo::VggVariant::A),
        ] {
            let m = mapped(&spec);
            let t = TimingModel::new(&m);
            assert!(t.cycle_training_ns() >= t.cycle_testing_ns());
        }
    }

    #[test]
    fn larger_g_shortens_cycle() {
        let spec = zoo::vgg(zoo::VggVariant::A);
        let resolved = spec.resolve();
        let g1 = vec![1usize; resolved.len()];
        let m1 = MappedNetwork::with_granularity(&spec, &g1, PipeLayerConfig::default());
        let m_def = mapped(&spec);
        let c1 = TimingModel::new(&m1).cycle_testing_ns();
        let cd = TimingModel::new(&m_def).cycle_testing_ns();
        assert!(
            cd < c1 / 10.0,
            "replication should cut the cycle: {cd} vs {c1}"
        );
    }

    #[test]
    fn balanced_vgg_cycle_near_min_read_count() {
        // Default granularity balances conv layers to ~196 reads; the cycle
        // should be within small factors of 196 read phases.
        let m = mapped(&zoo::vgg(zoo::VggVariant::D));
        let t = TimingModel::new(&m);
        let p = m.config.params;
        let cycle = t.cycle_testing_ns();
        let reads = cycle / p.read_phase_ns();
        assert!(
            (150.0..800.0).contains(&reads),
            "cycle is {reads} read-phases, expected a balanced few hundred"
        );
    }

    #[test]
    fn bottleneck_is_the_max_phase() {
        let m = mapped(&zoo::vgg(zoo::VggVariant::A));
        let t = TimingModel::new(&m);
        let (idx, ns) = t.bottleneck();
        assert!((ns - t.cycle_testing_ns()).abs() < 1e-9);
        assert!(idx < m.layers.len());
    }

    #[test]
    fn update_cycle_positive_and_bounded() {
        let m = mapped(&zoo::alexnet());
        let t = TimingModel::new(&m);
        let u = t.update_cycle_ns();
        assert!(u > 0.0);
        // The update must not dwarf the pipeline: it is one cycle per batch.
        assert!(u < 100.0 * t.cycle_training_ns());
    }

    #[test]
    fn scrub_time_is_exact_noop_when_off_and_costed_when_on() {
        use crate::scrub::ScrubPolicy;
        let m = mapped(&zoo::spec_mnist_a());
        assert_eq!(TimingModel::new(&m).scrub_ns_per_image(), 0.0);

        let cfg = PipeLayerConfig {
            scrub: ScrubPolicy::every(100, 8),
            ..Default::default()
        };
        let scrubbed = MappedNetwork::from_spec(&zoo::spec_mnist_a(), cfg);
        let t = TimingModel::new(&scrubbed);
        let p = scrubbed.config.params;
        let want = 8.0 / 100.0 * (p.read_phase_ns() + 0.05 * p.write_latency_ns);
        assert!((t.scrub_ns_per_image() - want).abs() < 1e-12);
        // Compute cycles are untouched — scrub steals no pipeline slots.
        assert_eq!(
            t.cycle_training_ns(),
            TimingModel::new(&m).cycle_training_ns()
        );
    }

    #[test]
    fn verify_retries_stretch_the_update_cycle() {
        use crate::repair::SpareBudget;
        use pipelayer_reram::{FaultModel, VerifyPolicy};
        let spec = zoo::spec_mnist_a();
        let base = mapped(&spec);
        let cfg = PipeLayerConfig::default().with_fault_tolerance(
            FaultModel::with_stuck_rate(1e-3),
            VerifyPolicy {
                max_attempts: 5,
                write_sigma: 0.5,
            },
            SpareBudget::typical(),
        );
        let ft = MappedNetwork::from_spec(&spec, cfg);
        let u_base = TimingModel::new(&base).update_cycle_ns();
        let u_ft = TimingModel::new(&ft).update_cycle_ns();
        assert!(u_ft > u_base, "{u_ft} vs {u_base}");
        // Forward timing is untouched: reads are not retried.
        assert_eq!(
            TimingModel::new(&ft).cycle_testing_ns(),
            TimingModel::new(&base).cycle_testing_ns()
        );
    }
}
