//! End-to-end performance estimates: cycles × cycle time + energy — the
//! numbers behind Figs. 15/16 and the Sec. 6.6 efficiency metrics.

use crate::analysis::Analysis;
use crate::energy::EnergyModel;
use crate::mapping::MappedNetwork;
use crate::nonpipelined::NonPipelined;
use crate::timing::TimingModel;

/// Estimated time/energy of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunEstimate {
    /// Logical cycles.
    pub cycles: u64,
    /// Compute-cycle duration, ns.
    pub cycle_ns: f64,
    /// Wall-clock seconds (including weight-update cycles).
    pub time_s: f64,
    /// Energy, joules.
    pub energy_j: f64,
    /// Images processed.
    pub images: u64,
}

impl RunEstimate {
    /// Images per second.
    pub fn throughput(&self) -> f64 {
        self.images as f64 / self.time_s
    }

    /// Average power, watts.
    pub fn power_w(&self) -> f64 {
        self.energy_j / self.time_s
    }
}

/// Performance model over a mapped network.
#[derive(Debug, Clone, Copy)]
pub struct PerfModel<'a> {
    net: &'a MappedNetwork,
}

impl<'a> PerfModel<'a> {
    /// Creates a model over `net`.
    pub fn new(net: &'a MappedNetwork) -> Self {
        PerfModel { net }
    }

    fn analysis(&self) -> Analysis {
        Analysis::new(self.net.weighted_layers(), self.net.config.batch_size)
    }

    /// Training estimate for `n` images (a multiple of the batch size).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of the batch size.
    pub fn training(&self, n: u64, pipelined: bool) -> RunEstimate {
        let timing = TimingModel::new(self.net);
        let cycle_ns = timing.cycle_training_ns();
        let update_ns = timing.update_cycle_ns();
        let batches = n / self.net.config.batch_size as u64;
        let cycles = if pipelined {
            self.analysis().training_cycles_pipelined(n)
        } else {
            NonPipelined::new(self.net.weighted_layers(), self.net.config.batch_size)
                .training_cycles(n)
        };
        // One cycle per batch is the (differently-timed) update cycle;
        // scrub passes add their amortised per-image time (`+ 0.0` off).
        let compute_cycles = cycles - batches;
        let scrub_ns = n as f64 * timing.scrub_ns_per_image();
        let time_s =
            (compute_cycles as f64 * cycle_ns + batches as f64 * update_ns + scrub_ns) * 1e-9;
        RunEstimate {
            cycles,
            cycle_ns,
            time_s,
            energy_j: EnergyModel::new(self.net).training_energy_j(n),
            images: n,
        }
    }

    /// Testing estimate for `n` images.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn testing(&self, n: u64, pipelined: bool) -> RunEstimate {
        let timing = TimingModel::new(self.net);
        let cycle_ns = timing.cycle_testing_ns();
        let a = self.analysis();
        let cycles = if pipelined {
            a.testing_cycles_pipelined(n)
        } else {
            a.testing_cycles_nonpipelined(n)
        };
        RunEstimate {
            cycles,
            cycle_ns,
            time_s: cycles as f64 * cycle_ns * 1e-9,
            energy_j: EnergyModel::new(self.net).testing_energy_j(n),
            images: n,
        }
    }

    /// Sustained throughput in GOPS during pipelined training (the paper's
    /// operation-count convention: forward + backward ops per image).
    pub fn training_gops(&self, n: u64) -> f64 {
        let est = self.training(n, true);
        let ops_per_image: u64 = self
            .net
            .layers
            .iter()
            .map(|l| l.resolved.ops_forward() + l.resolved.ops_backward())
            .sum();
        (n as f64 * ops_per_image as f64) / est.time_s / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use pipelayer_nn::zoo;

    fn model_net(spec: &pipelayer_nn::NetSpec) -> MappedNetwork {
        MappedNetwork::from_spec(spec, PipeLayerConfig::default())
    }

    #[test]
    fn pipelined_training_faster_same_energy() {
        let net = model_net(&zoo::spec_mnist_0());
        let perf = PerfModel::new(&net);
        let pipe = perf.training(640, true);
        let seq = perf.training(640, false);
        assert!(
            pipe.time_s < seq.time_s / 4.0,
            "{} vs {}",
            pipe.time_s,
            seq.time_s
        );
        assert_eq!(pipe.energy_j, seq.energy_j);
    }

    #[test]
    fn testing_throughput_approaches_cycle_rate() {
        let net = model_net(&zoo::spec_mnist_a());
        let perf = PerfModel::new(&net);
        let est = perf.testing(100_000, true);
        let per_cycle = 1e9 / est.cycle_ns;
        assert!((est.throughput() - per_cycle).abs() / per_cycle < 0.01);
    }

    #[test]
    fn training_slower_than_testing_per_image() {
        let net = model_net(&zoo::alexnet());
        let perf = PerfModel::new(&net);
        let train = perf.training(6400, true);
        let test = perf.testing(6400, true);
        assert!(train.time_s > test.time_s);
        assert!(train.energy_j > test.energy_j);
    }

    #[test]
    fn gops_positive_and_plausible() {
        let net = model_net(&zoo::alexnet());
        let g = PerfModel::new(&net).training_gops(6400);
        assert!(
            g > 100.0,
            "AlexNet training should sustain >100 GOPS, got {g}"
        );
        assert!(g < 1e9, "GOPS implausibly high: {g}");
    }

    #[test]
    fn power_is_finite_positive() {
        let net = model_net(&zoo::vgg(zoo::VggVariant::A));
        let est = PerfModel::new(&net).training(640, true);
        assert!(est.power_w() > 0.0 && est.power_w().is_finite());
    }
}
