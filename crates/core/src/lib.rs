//! # PipeLayer: a pipelined ReRAM-based accelerator for deep learning
//!
//! A from-scratch reproduction of *PipeLayer* (Song, Qian, Li, Chen —
//! HPCA 2017): a processing-in-memory CNN accelerator built from metal-oxide
//! ReRAM crossbars that supports **both training and testing**, with
//! intra-layer parallelism (parallelism granularity `G` + weight
//! replication, Sec. 3.2) and a stall-free inter-layer pipeline (Sec. 3.3).
//!
//! The crate models the accelerator at three levels:
//!
//! 1. **Analytical** ([`analysis`]) — the closed-form cycle/buffer/array
//!    formulas of Table 2 and Fig. 7.
//! 2. **Cycle-accurate** ([`pipeline`], [`nonpipelined`], [`buffers`]) — a
//!    schedule simulator that executes the training pipeline of Fig. 6
//!    event by event, checks every data dependency against the circular
//!    buffers of Fig. 8, and is validated against the analytical formulas.
//! 3. **Functional** ([`functional`]) — actual network training where every
//!    matrix–vector product runs through the `pipelayer-reram` crossbar
//!    datapath (spike coding, integrate-and-fire, 4-bit cells with
//!    resolution compensation).
//!
//! [`mapping`]/[`granularity`] translate a network description into arrays
//! (kernel mapping of Fig. 4/5, Table 5 defaults); [`timing`], [`energy`]
//! and [`area`] produce absolute time/energy/area; [`perf`] combines them
//! into the end-to-end estimates behind Figs. 15–18; [`api`] offers the
//! host-side programming interface of Sec. 5.2.
//!
//! # Quickstart
//!
//! ```
//! use pipelayer::api::Accelerator;
//! use pipelayer_nn::zoo;
//!
//! // Configure PipeLayer for AlexNet training at default granularity.
//! let accel = Accelerator::builder(zoo::alexnet())
//!     .batch_size(64)
//!     .build();
//! let est = accel.estimate_training(6400);
//! assert!(est.time_s > 0.0 && est.energy_j > 0.0);
//! ```

pub mod analysis;
pub mod api;
pub mod area;
pub mod buffers;
pub mod config;
pub mod controller;
pub mod endurance;
pub mod energy;
pub mod functional;
pub mod granularity;
pub mod mapping;
pub mod nonpipelined;
pub mod perf;
pub mod pipeline;
pub mod repair;
pub mod report;
pub mod scrub;
pub mod timing;
pub mod variation;

pub use api::Accelerator;
pub use config::{ConfigError, DatapathFormat, PipeLayerConfig};
pub use mapping::{MapError, MappedLayer, MappedNetwork};
pub use perf::RunEstimate;
pub use repair::{RepairController, RepairOutcome, RepairPolicy, SpareBudget};
pub use report::ConfigurationReport;
pub use scrub::{DriftReport, DriftSample, ScrubPolicy};
pub use variation::{ReramNoiseHook, VariationPoint};
