//! Circular inter-layer buffers (Sec. 3.3, Fig. 8).
//!
//! In the pipelined design, layer `l`'s output `d_l` computed for image `i`
//! is consumed twice: by layer `l+1`'s forward phase one cycle later, and by
//! the partial-derivative computation `∂W_{l+1}` exactly `2(L−l)+1` cycles
//! later. Since a new output is produced *every* cycle, the buffer between
//! `A_l` and `A_{l+1}` must hold `2(L−l)+1` entries, written round-robin; a
//! slot is overwritten on the same cycle its old value is last read, which
//! is legal because reads are served before the cycle's write commits (the
//! paper instead duplicates the depth-1 buffers — `d_L` and the `δ`s — to
//! allow a same-cycle read and write; [`CircularBuffer::same_cycle_conflicts`]
//! counts exactly those cases).

use crate::config::ConfigError;

/// A tagged circular buffer: each write deposits `(tag, cycle)` into the
/// next slot round-robin; reads look a fixed number of slots back and check
/// the tag, which makes stale-data bugs (undersized buffers) observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircularBuffer {
    slots: Vec<Option<(u64, u64)>>, // (tag, write_cycle)
    head: usize,
    writes: u64,
    conflicts: u64,
    last_write_cycle: Option<u64>,
}

impl CircularBuffer {
    /// Creates a buffer with `depth` slots.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDepth`] if `depth` is zero.
    pub fn try_new(depth: usize) -> Result<Self, ConfigError> {
        if depth == 0 {
            return Err(ConfigError::ZeroDepth);
        }
        Ok(CircularBuffer {
            slots: vec![None; depth],
            head: 0,
            writes: 0,
            conflicts: 0,
            last_write_cycle: None,
        })
    }

    /// Creates a buffer with `depth` slots.
    ///
    /// Zero `depth` is debug-asserted; release builds clamp it to 1. Use
    /// [`try_new`](Self::try_new) to handle the error explicitly.
    pub fn new(depth: usize) -> Self {
        debug_assert!(depth > 0, "circular buffer needs at least one slot");
        CircularBuffer {
            slots: vec![None; depth.max(1)],
            head: 0,
            writes: 0,
            conflicts: 0,
            last_write_cycle: None,
        }
    }

    /// Number of slots.
    pub fn depth(&self) -> usize {
        self.slots.len()
    }

    /// Writes `tag` at `cycle` into the slot under the head pointer and
    /// advances the pointer (the paper's logical pointer that wraps around).
    pub fn write(&mut self, tag: u64, cycle: u64) {
        self.slots[self.head] = Some((tag, cycle));
        self.head = (self.head + 1) % self.slots.len();
        self.writes += 1;
        self.last_write_cycle = Some(cycle);
    }

    /// Reads the value written for `tag`, recording a same-cycle
    /// read/write conflict if the buffer was also written at `cycle`.
    /// Returns `true` if the tag is present (fresh), `false` if the data
    /// has been overwritten (a dependency violation).
    pub fn read(&mut self, tag: u64, cycle: u64) -> bool {
        if self.last_write_cycle == Some(cycle) {
            self.conflicts += 1;
        }
        self.slots.iter().flatten().any(|&(t, _)| t == tag)
    }

    /// Same-cycle read/write events observed — the condition that forces
    /// buffer duplication in the paper.
    pub fn same_cycle_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn survives_exactly_depth_minus_one_later_writes() {
        let mut buf = CircularBuffer::new(5);
        buf.write(0, 0);
        for c in 1..5 {
            buf.write(c, c);
        }
        // After 4 more writes the first value is still there...
        assert!(buf.read(0, 4));
        // ...but the 5th overwrite evicts it.
        buf.write(5, 5);
        assert!(!buf.read(0, 5));
    }

    #[test]
    fn try_new_rejects_zero_depth() {
        assert_eq!(
            CircularBuffer::try_new(0),
            Err(crate::config::ConfigError::ZeroDepth)
        );
        assert_eq!(CircularBuffer::try_new(3).map(|b| b.depth()), Ok(3));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "at least one slot")]
    fn new_panics_on_zero_depth() {
        CircularBuffer::new(0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn new_clamps_zero_depth_in_release() {
        assert_eq!(CircularBuffer::new(0).depth(), 1);
    }

    #[test]
    fn conflict_detected_on_same_cycle() {
        let mut buf = CircularBuffer::new(1);
        buf.write(7, 3);
        assert!(buf.read(7, 3));
        assert_eq!(buf.same_cycle_conflicts(), 1);
        assert!(buf.read(7, 4));
        assert_eq!(buf.same_cycle_conflicts(), 1);
    }

    proptest! {
        /// Fig. 8's claim as a property: with one write per cycle, a value
        /// needed `gap` cycles after production survives iff
        /// `depth >= gap` (the paper's `2(L−l)+1` sizing uses
        /// `gap = 2(L−l)+1` with the read served before the overwrite).
        #[test]
        fn depth_is_exactly_sufficient(gap in 1usize..30, extra in 0usize..5) {
            // Sufficient depth.
            let mut ok = CircularBuffer::new(gap + extra);
            ok.write(0, 0);
            for c in 1..gap as u64 {
                ok.write(c, c);
            }
            prop_assert!(ok.read(0, gap as u64));

            // One slot short: the value dies one cycle early.
            if gap > 1 {
                let mut short = CircularBuffer::new(gap - 1);
                short.write(0, 0);
                for c in 1..gap as u64 {
                    short.write(c, c);
                }
                prop_assert!(!short.read(0, gap as u64));
            }
        }
    }
}
