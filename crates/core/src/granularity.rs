//! Parallelism granularity (Sec. 3.2.3, Table 5, Figs. 17/18).
//!
//! `G` is the number of duplicated crossbar copies holding the same weights:
//! `G = 1` is the naive sequential scheme of Fig. 4; `G = P` (the number of
//! kernel-window positions) produces a layer's whole output in one read
//! phase at prohibitive array cost. The paper picks per-layer defaults that
//! balance the pipeline (Table 5) and sweeps a scale factor λ (Figs. 17/18).
//!
//! Table 5's digits are OCR-damaged in the available text, so the defaults
//! here are *reconstructed* by the balancing rule the paper describes: every
//! convolution layer is replicated until its sequential-read count matches
//! the smallest convolution layer's, i.e. `G_l = P_l / min_conv(P)`. For the
//! VGG networks this yields the block pattern `256, 64, 16, 4, 1` (each
//! pooling stage quarters `P`). Inner-product layers have `P = 1` and need
//! no replication.

use pipelayer_nn::spec::ResolvedLayer;
use pipelayer_reram::tile_grid;

/// Crossbar budget for replicated convolution arrays used by the default
/// granularity search (≈ half the published 82.6 mm² die at the calibrated
/// per-crossbar area).
pub const DEFAULT_CONV_XBAR_BUDGET: u64 = 65_536;

/// Default per-layer granularity: the balanced scheme under an area budget.
///
/// All convolution layers are replicated until they take the same number of
/// sequential reads `R`; the search picks the smallest `R` (deepest
/// replication, shortest cycle) whose replicated conv arrays fit in
/// [`DEFAULT_CONV_XBAR_BUDGET`] crossbars. Small networks (the MNIST
/// models) therefore get full replication (`G = P`, one read per cycle),
/// while the VGG models settle around `R ≈ 128–256`, reconstructing the
/// block-patterned Table 5 defaults. FC layers have `P = 1` and `G = 1`.
pub fn default_granularity(layers: &[ResolvedLayer]) -> Vec<usize> {
    granularity_with_budget(layers, DEFAULT_CONV_XBAR_BUDGET)
}

/// [`default_granularity`] with an explicit conv-array crossbar budget.
///
/// An empty layer list yields an empty configuration; a zero budget yields
/// the fully sequential scheme (`G = 1` everywhere).
pub fn granularity_with_budget(layers: &[ResolvedLayer], budget: u64) -> Vec<usize> {
    let g_for = |reads: u64| -> Vec<usize> {
        layers
            .iter()
            .map(|l| {
                if l.is_conv {
                    (l.window_positions as u64).div_ceil(reads).max(1) as usize
                } else {
                    1
                }
            })
            .collect()
    };
    let cost = |g: &[usize]| -> u64 {
        layers
            .iter()
            .zip(g)
            .filter(|(l, _)| l.is_conv)
            .map(|(l, &gl)| {
                let (tr, tc) = tile_grid(l.matrix_rows, l.matrix_cols, 128);
                (tr * tc * gl * 8) as u64
            })
            .sum()
    };
    let max_p = layers.iter().map(|l| l.window_positions).max().unwrap_or(1) as u64;
    let mut reads = 1u64;
    loop {
        let g = g_for(reads);
        if cost(&g) <= budget || reads >= max_p {
            return g;
        }
        reads *= 2;
    }
}

/// Scales a granularity configuration by λ (Fig. 17/18): `G' = round(λ·G)`
/// clamped to `[1, P_l]`. λ = 0 collapses every layer to `G = 1`;
/// `scale_max` (λ = "max") sets `G_l = P_l`.
///
/// A non-finite or negative λ is debug-checked; in release it degrades to
/// the clamp (`G = 1`) rather than panicking.
pub fn scale_lambda(g: &[usize], lambda: f64, layers: &[ResolvedLayer]) -> Vec<usize> {
    debug_assert_eq!(g.len(), layers.len(), "granularity/layer length mismatch");
    debug_assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "invalid lambda {lambda}"
    );
    g.iter()
        .zip(layers)
        .map(|(&gl, l)| {
            let scaled = (gl as f64 * lambda).round() as usize;
            scaled.clamp(1, l.window_positions.max(1))
        })
        .collect()
}

/// The λ = max configuration: one cycle per layer (`G_l = P_l`).
pub fn scale_max(layers: &[ResolvedLayer]) -> Vec<usize> {
    layers.iter().map(|l| l.window_positions.max(1)).collect()
}

/// The "automatically optimized by compiler" path of Sec. 5.2: starting
/// from `G = 1` everywhere, repeatedly double the replication of the layer
/// with the most sequential reads (the cycle-time bottleneck) while the
/// *additional* crossbars from replication (beyond the mandatory single
/// copy of every layer) stay within `budget_xbars`. Greedy on the
/// bottleneck is effective here because the cycle time is the *max* of the
/// per-layer read counts — only shortening the current maximum can shorten
/// the cycle.
///
/// An empty layer list yields an empty configuration; a zero budget leaves
/// every layer at `G = 1` (no replication fits).
pub fn optimize_granularity(layers: &[ResolvedLayer], budget_xbars: u64) -> Vec<usize> {
    let tiles: Vec<u64> = layers
        .iter()
        .map(|l| {
            let (tr, tc) = tile_grid(l.matrix_rows, l.matrix_cols, 128);
            (tr * tc * 8) as u64
        })
        .collect();
    let mut g: Vec<usize> = vec![1; layers.len()];
    // Replication cost beyond the mandatory single copy per layer.
    let cost = |g: &[usize]| -> u64 {
        g.iter()
            .zip(&tiles)
            .map(|(&gl, &t)| (gl as u64 - 1) * t)
            .sum()
    };
    loop {
        // Current bottleneck: the largest read count that can still improve.
        let mut best: Option<(usize, u64)> = None;
        for (i, l) in layers.iter().enumerate() {
            let p = l.window_positions.max(1) as u64;
            let reads = p.div_ceil(g[i] as u64);
            if reads > 1 && best.is_none_or(|(_, r)| reads > r) {
                best = Some((i, reads));
            }
        }
        let Some((i, _)) = best else { break };
        let p = layers[i].window_positions.max(1);
        let next = (g[i] * 2).min(p);
        let mut trial = g.clone();
        trial[i] = next;
        if cost(&trial) > budget_xbars {
            break;
        }
        g = trial;
    }
    g
}

/// The λ-sweep points of Fig. 17/18 (`max` encoded as `None`).
pub const LAMBDA_SWEEP: [Option<f64>; 7] = [
    Some(0.0),
    Some(0.25),
    Some(0.5),
    Some(1.0),
    Some(2.0),
    Some(4.0),
    None, // "max"
];

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    #[test]
    fn vgg_defaults_follow_block_pattern() {
        let spec = zoo::vgg(zoo::VggVariant::A);
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        let conv_g: Vec<usize> = layers
            .iter()
            .zip(&g)
            .filter(|(l, _)| l.is_conv)
            .map(|(_, &g)| g)
            .collect();
        // Each pooling stage quarters P and thus G: a 4:1 pyramid with
        // non-increasing values (the Table 5 block pattern).
        assert!(conv_g[0] >= 3 * conv_g[1].max(1), "{conv_g:?}");
        assert!(conv_g[1] >= 3 * conv_g[2].max(1), "{conv_g:?}");
        assert!(conv_g.windows(2).all(|w| w[0] >= w[1]), "{conv_g:?}");
        // FC layers are not replicated.
        let fc_g: Vec<usize> = layers
            .iter()
            .zip(&g)
            .filter(|(l, _)| !l.is_conv)
            .map(|(_, &g)| g)
            .collect();
        assert_eq!(fc_g, vec![1, 1, 1]);
    }

    #[test]
    fn small_networks_get_full_replication() {
        // Mnist-0's conv arrays are tiny, so the budgeted search replicates
        // them fully: one read phase per cycle.
        let spec = zoo::spec_mnist_0();
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        for (l, &gl) in layers.iter().zip(&g) {
            if l.is_conv {
                assert_eq!(gl, l.window_positions, "{}", l.name);
            }
        }
    }

    #[test]
    fn budget_controls_replication() {
        let spec = zoo::vgg(zoo::VggVariant::D);
        let layers = spec.resolve();
        let tight = granularity_with_budget(&layers, 1_000);
        let loose = granularity_with_budget(&layers, 10_000_000);
        for (t, l) in tight.iter().zip(&loose) {
            assert!(t <= l, "tighter budget must not replicate more");
        }
        assert!(loose.iter().sum::<usize>() > tight.iter().sum::<usize>());
    }

    #[test]
    fn defaults_balance_read_counts() {
        let spec = zoo::vgg(zoo::VggVariant::D);
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        let reads: Vec<usize> = layers
            .iter()
            .zip(&g)
            .filter(|(l, _)| l.is_conv)
            .map(|(l, &g)| l.window_positions.div_ceil(g))
            .collect();
        let (min, max) = (reads.iter().min().unwrap(), reads.iter().max().unwrap());
        assert!(
            *max <= 2 * *min,
            "balanced config should equalise reads: {reads:?}"
        );
    }

    #[test]
    fn lambda_zero_is_all_ones() {
        let spec = zoo::alexnet();
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        assert!(scale_lambda(&g, 0.0, &layers).iter().all(|&x| x == 1));
    }

    #[test]
    fn lambda_scales_monotonically() {
        let spec = zoo::vgg(zoo::VggVariant::C);
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        let g_half = scale_lambda(&g, 0.5, &layers);
        let g_two = scale_lambda(&g, 2.0, &layers);
        for i in 0..g.len() {
            assert!(g_half[i] <= g[i] && g[i] <= g_two[i].max(g[i]));
        }
    }

    #[test]
    fn lambda_clamps_to_window_positions() {
        let spec = zoo::spec_mnist_0();
        let layers = spec.resolve();
        let g = scale_lambda(&default_granularity(&layers), 1e9, &layers);
        for (gl, l) in g.iter().zip(&layers) {
            assert!(*gl <= l.window_positions.max(1));
        }
        assert_eq!(g, scale_max(&layers));
    }

    #[test]
    fn max_gives_single_cycle_per_layer() {
        let spec = zoo::spec_mnist_0();
        let layers = spec.resolve();
        for (gl, l) in scale_max(&layers).iter().zip(&layers) {
            assert_eq!(l.window_positions.max(1).div_ceil(*gl), 1);
        }
    }

    #[test]
    fn optimizer_stays_in_budget_and_balances() {
        let spec = zoo::vgg(zoo::VggVariant::A);
        let layers = spec.resolve();
        let budget = 40_000u64;
        let g = optimize_granularity(&layers, budget);
        let cost: u64 = layers
            .iter()
            .zip(&g)
            .map(|(l, &gl)| {
                let (tr, tc) = pipelayer_reram::tile_grid(l.matrix_rows, l.matrix_cols, 128);
                (tr * tc * (gl - 1) * 8) as u64
            })
            .sum();
        assert!(cost <= budget, "optimizer exceeded budget: {cost}");
        // The bottleneck read count should beat the unreplicated config by
        // a wide margin.
        let reads_opt = layers
            .iter()
            .zip(&g)
            .map(|(l, &gl)| (l.window_positions.max(1) as u64).div_ceil(gl as u64))
            .max()
            .unwrap();
        let reads_naive = layers
            .iter()
            .map(|l| l.window_positions.max(1) as u64)
            .max()
            .unwrap();
        assert!(reads_opt * 20 < reads_naive, "{reads_opt} vs {reads_naive}");
    }

    #[test]
    fn bigger_budget_never_slower() {
        let spec = zoo::alexnet();
        let layers = spec.resolve();
        let reads_for = |budget: u64| -> u64 {
            let g = optimize_granularity(&layers, budget);
            layers
                .iter()
                .zip(&g)
                .map(|(l, &gl)| (l.window_positions.max(1) as u64).div_ceil(gl as u64))
                .max()
                .unwrap()
        };
        assert!(reads_for(200_000) <= reads_for(20_000));
        assert!(reads_for(20_000) <= reads_for(5_000));
    }

    #[test]
    fn optimizer_saturates_small_networks() {
        // With a generous budget every conv layer reaches one read/cycle.
        let spec = zoo::spec_mnist_0();
        let layers = spec.resolve();
        let g = optimize_granularity(&layers, 1_000_000);
        for (l, &gl) in layers.iter().zip(&g) {
            assert_eq!(
                (l.window_positions.max(1)).div_ceil(gl),
                1,
                "{} not saturated",
                l.name
            );
        }
    }

    #[test]
    fn mlp_granularity_is_all_ones() {
        let spec = zoo::spec_mnist_c();
        let layers = spec.resolve();
        assert!(default_granularity(&layers).iter().all(|&g| g == 1));
    }
}
