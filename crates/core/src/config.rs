//! Accelerator configuration.

use pipelayer_reram::ReramParams;

/// PipeLayer configuration: device parameters plus training batch size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeLayerConfig {
    /// ReRAM device/array parameters (NVSim-derived, Sec. 6.2).
    pub params: ReramParams,
    /// Training batch size `B` (the paper's running example uses 64).
    pub batch_size: usize,
}

impl Default for PipeLayerConfig {
    fn default() -> Self {
        PipeLayerConfig {
            params: ReramParams::default(),
            batch_size: 64,
        }
    }
}

impl PipeLayerConfig {
    /// Creates a config with the default device parameters and the given
    /// batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn with_batch(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be non-zero");
        PipeLayerConfig {
            params: ReramParams::default(),
            batch_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batch_is_64() {
        assert_eq!(PipeLayerConfig::default().batch_size, 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_batch() {
        PipeLayerConfig::with_batch(0);
    }
}
