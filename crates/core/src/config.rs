//! Accelerator configuration.

use crate::repair::{RepairPolicy, SpareBudget};
use crate::scrub::ScrubPolicy;
use pipelayer_reram::{FaultModel, NoiseModel, ReramParams, VerifyPolicy, WearModel};

/// A rejected [`PipeLayerConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The batch size was zero.
    ZeroBatch,
    /// A fault-model probability was outside `[0, 1]` (or their sum was).
    InvalidFaultRate(f64),
    /// The verify policy allowed zero programming attempts.
    ZeroAttempts,
    /// The per-attempt write noise was negative or non-finite.
    InvalidWriteSigma(f64),
    /// A circular buffer was configured with zero depth.
    ZeroDepth,
    /// A schedule or analysis was configured with zero weighted layers.
    ZeroLayers,
    /// A datapath range bound (activation/gradient absmax) was non-positive
    /// or non-finite.
    InvalidRangeBound(f64),
    /// The bit-line accumulator was configured with zero width.
    ZeroAccumulatorBits,
    /// Scrubbing was enabled with a zero rows-per-pass budget.
    ZeroScrubRows,
    /// The scrub re-pulse fraction was outside `[0, 1]` or non-finite.
    InvalidScrubFraction(f64),
    /// A noise-model σ (lognormal device spread or read noise) was negative
    /// or non-finite.
    InvalidNoiseSigma(f64),
    /// A noise-model fraction (IR-drop attenuation or conductance on/off
    /// floor) was outside `[0, 1]` or non-finite.
    InvalidNoiseFraction(f64),
    /// The wear model's median write budget was negative or non-finite.
    InvalidWearBudget(f64),
    /// The wear model's lognormal σ was negative or non-finite.
    InvalidWearSigma(f64),
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::ZeroBatch => write!(f, "batch size must be non-zero"),
            ConfigError::InvalidFaultRate(r) => {
                write!(f, "fault rate {r} must be in [0,1] (and sum to at most 1)")
            }
            ConfigError::ZeroAttempts => write!(f, "need at least one programming attempt"),
            ConfigError::InvalidWriteSigma(s) => {
                write!(f, "write sigma {s} must be finite and non-negative")
            }
            ConfigError::ZeroDepth => write!(f, "buffer needs at least one slot"),
            ConfigError::ZeroLayers => write!(f, "need at least one weighted layer"),
            ConfigError::InvalidRangeBound(b) => {
                write!(f, "datapath range bound {b} must be positive and finite")
            }
            ConfigError::ZeroAccumulatorBits => {
                write!(f, "accumulator needs at least one bit")
            }
            ConfigError::ZeroScrubRows => {
                write!(f, "an enabled scrub policy needs a non-zero row budget")
            }
            ConfigError::InvalidScrubFraction(r) => {
                write!(f, "scrub re-pulse fraction {r} must be in [0,1]")
            }
            ConfigError::InvalidNoiseSigma(s) => {
                write!(f, "noise sigma {s} must be finite and non-negative")
            }
            ConfigError::InvalidNoiseFraction(r) => {
                write!(f, "noise fraction {r} must be in [0,1]")
            }
            ConfigError::InvalidWearBudget(w) => {
                write!(
                    f,
                    "wear median write budget {w} must be finite and non-negative"
                )
            }
            ConfigError::InvalidWearSigma(s) => {
                write!(f, "wear sigma {s} must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Value-range format of the fixed-point datapath: the envelopes the PL04x
/// range analysis (`pipelayer-check`) proves computed values against.
///
/// The paper fixes the *resolution* of the datapath (16-bit words on 4-bit
/// cells, Fig. 14) but never states the *range* — the largest activation,
/// gradient and dot-product magnitudes the spike-coded arithmetic must
/// carry without saturating. ISAAC (PAPERS.md) sizes its ADC/accumulator
/// widths from exactly this worst-case range arithmetic; the defaults here
/// are sized the same way, from interval bounds over the executable network
/// zoo with ≥4× headroom (see DESIGN.md §6.4):
///
/// * `activation_absmax = 2^20` — the worst-case forward activation bound
///   over the MNIST-scale zoo is ≈1.5×10⁵ (C-4's final inner product), so
///   2²⁰ ≈ 1.05×10⁶ leaves ~7× headroom while keeping a power-of-two
///   binary point.
/// * `gradient_absmax = 2^24` — the dominant backward quantity is the
///   per-sample `ΔW` partial buffered per image, bounded by
///   `P·|δ|·|x|` with `P` window positions; C-4's first conv reaches
///   ≈1.9×10⁶, so 2²⁴ ≈ 1.68×10⁷ leaves ~9× headroom.
/// * `accumulator_bits = 48` — the widest mapped matrix in the zoo (VGG's
///   `ip25088-4096`, 25 089 rows) needs `⌈log₂(25089·32767²)⌉+1 = 46`
///   signed bits for a worst-case 16-bit × 16-bit dot product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatapathFormat {
    /// Largest representable activation magnitude (forward values).
    pub activation_absmax: f64,
    /// Largest representable error / per-sample weight-gradient magnitude
    /// (backward values, the `ΔW` partials buffered per image).
    pub gradient_absmax: f64,
    /// Signed width (bits, including sign) of the shift-add accumulator
    /// behind each bit line — the register that sums spike-slot partial
    /// products over a whole array-read phase (Figs. 9/14).
    pub accumulator_bits: u8,
}

impl Default for DatapathFormat {
    fn default() -> Self {
        DatapathFormat {
            activation_absmax: (1u32 << 20) as f64,
            gradient_absmax: (1u32 << 24) as f64,
            accumulator_bits: 48,
        }
    }
}

impl DatapathFormat {
    /// Checks the format's own domain.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for b in [self.activation_absmax, self.gradient_absmax] {
            if !(b.is_finite() && b > 0.0) {
                return Err(ConfigError::InvalidRangeBound(b));
            }
        }
        if self.accumulator_bits == 0 {
            return Err(ConfigError::ZeroAccumulatorBits);
        }
        Ok(())
    }
}

/// PipeLayer configuration: device parameters, training batch size, and the
/// (opt-in) fault-tolerance knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipeLayerConfig {
    /// ReRAM device/array parameters (NVSim-derived, Sec. 6.2).
    pub params: ReramParams,
    /// Training batch size `B` (the paper's running example uses 64).
    pub batch_size: usize,
    /// Per-cell stuck-at/dead probabilities ([`FaultModel::ideal`] by
    /// default — the paper's fault-free device).
    pub fault_model: FaultModel,
    /// Program-and-verify write discipline (defaults to the ideal
    /// single-shot write, so verification is strictly opt-in).
    pub verify: VerifyPolicy,
    /// Spare bit lines provisioned per mapped matrix (none by default).
    pub spares: SpareBudget,
    /// Value-range format of the fixed-point datapath — what the PL04x
    /// range analysis checks computed values against.
    pub datapath: DatapathFormat,
    /// Online scrub/refresh scheduling against device aging (off by
    /// default — all scrub cost terms are then exact no-ops).
    pub scrub: ScrubPolicy,
    /// Analog read-path non-idealities — lognormal LRS/HRS conductance
    /// spread, IR drop, per-read Gaussian noise ([`NoiseModel::ideal`] by
    /// default, an exact no-op on every read).
    pub noise: NoiseModel,
    /// Endurance wear-out — per-cell lognormal write budgets whose
    /// exhaustion raises live dead faults mid-run ([`WearModel::ideal`] by
    /// default, an exact no-op: no budgets drawn, no counter touched).
    pub wear: WearModel,
    /// How verify failures escalate to spares — the retry → backoff →
    /// remap → mask ladder (immediate escalation by default, the
    /// commissioning-time behaviour).
    pub repair: RepairPolicy,
}

impl Default for PipeLayerConfig {
    fn default() -> Self {
        PipeLayerConfig {
            params: ReramParams::default(),
            batch_size: 64,
            fault_model: FaultModel::ideal(),
            verify: VerifyPolicy::default(),
            spares: SpareBudget::none(),
            datapath: DatapathFormat::default(),
            scrub: ScrubPolicy::off(),
            noise: NoiseModel::ideal(),
            wear: WearModel::ideal(),
            repair: RepairPolicy::immediate(),
        }
    }
}

impl PipeLayerConfig {
    /// Creates a config with the default device parameters and the given
    /// batch size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroBatch`] if `batch_size` is zero.
    pub fn try_with_batch(batch_size: usize) -> Result<Self, ConfigError> {
        if batch_size == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(PipeLayerConfig {
            batch_size,
            ..Self::default()
        })
    }

    /// Creates a config with the default device parameters and the given
    /// batch size.
    ///
    /// Zero `batch_size` is debug-asserted; release builds clamp it to 1.
    /// Use [`try_with_batch`](Self::try_with_batch) to handle the error
    /// explicitly.
    pub fn with_batch(batch_size: usize) -> Self {
        debug_assert!(batch_size > 0, "batch size must be non-zero");
        PipeLayerConfig {
            batch_size: batch_size.max(1),
            ..Self::default()
        }
    }

    /// Enables the fault-tolerance stack: stuck-at faults drawn from
    /// `faults`, writes going through `verify`, and `spares` columns of
    /// redundancy per matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any rate or the verify policy is
    /// invalid.
    pub fn try_with_fault_tolerance(
        mut self,
        faults: FaultModel,
        verify: VerifyPolicy,
        spares: SpareBudget,
    ) -> Result<Self, ConfigError> {
        self.fault_model = faults;
        self.verify = verify;
        self.spares = spares;
        self.validate()?;
        Ok(self)
    }

    /// [`try_with_fault_tolerance`](Self::try_with_fault_tolerance) that
    /// debug-asserts validity instead of returning an error. Release builds
    /// keep the fields as given and defer to the next [`validate`] call
    /// (every simulator entry point validates its config).
    ///
    /// [`validate`]: Self::validate
    pub fn with_fault_tolerance(
        mut self,
        faults: FaultModel,
        verify: VerifyPolicy,
        spares: SpareBudget,
    ) -> Self {
        self.fault_model = faults;
        self.verify = verify;
        self.spares = spares;
        debug_assert!(
            self.validate().is_ok(),
            "invalid fault-tolerance configuration: {:?}",
            self.validate()
        );
        self
    }

    /// Checks every field against its domain.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.batch_size == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        for r in [
            self.fault_model.stuck_at_zero,
            self.fault_model.stuck_at_max,
            self.fault_model.dead,
        ] {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(ConfigError::InvalidFaultRate(r));
            }
        }
        if self.fault_model.total_rate() > 1.0 {
            return Err(ConfigError::InvalidFaultRate(self.fault_model.total_rate()));
        }
        if self.verify.max_attempts == 0 {
            return Err(ConfigError::ZeroAttempts);
        }
        if self.verify.write_sigma < 0.0 || !self.verify.write_sigma.is_finite() {
            return Err(ConfigError::InvalidWriteSigma(self.verify.write_sigma));
        }
        if !self.scrub.is_off() {
            if self.scrub.rows_per_pass == 0 {
                return Err(ConfigError::ZeroScrubRows);
            }
            let f = self.scrub.repulse_fraction;
            if !(0.0..=1.0).contains(&f) || !f.is_finite() {
                return Err(ConfigError::InvalidScrubFraction(f));
            }
        }
        for s in [
            self.noise.lrs_sigma,
            self.noise.hrs_sigma,
            self.noise.read_sigma,
        ] {
            if s < 0.0 || !s.is_finite() {
                return Err(ConfigError::InvalidNoiseSigma(s));
            }
        }
        for r in [self.noise.ir_drop, self.noise.g_ratio] {
            if !(0.0..=1.0).contains(&r) || !r.is_finite() {
                return Err(ConfigError::InvalidNoiseFraction(r));
            }
        }
        if self.wear.median_writes < 0.0 || !self.wear.median_writes.is_finite() {
            return Err(ConfigError::InvalidWearBudget(self.wear.median_writes));
        }
        if self.wear.sigma < 0.0 || !self.wear.sigma.is_finite() {
            return Err(ConfigError::InvalidWearSigma(self.wear.sigma));
        }
        self.datapath.validate()
    }

    /// `true` once any fault-tolerance knob departs from the ideal
    /// defaults — the gate that keeps the calibrated baseline numbers
    /// bit-exact when fault tolerance is off.
    pub fn fault_tolerance_enabled(&self) -> bool {
        !self.fault_model.is_ideal() || self.verify != VerifyPolicy::default()
    }

    /// Expected programming pulses per cell write relative to the ideal
    /// single-shot write — the factor the energy, timing and endurance
    /// models scale reprogramming by. Exactly 1.0 with fault tolerance off.
    pub fn write_pulse_multiplier(&self) -> f64 {
        if !self.fault_tolerance_enabled() {
            return 1.0;
        }
        self.verify.expected_pulse_multiplier(&self.fault_model)
    }

    /// Expected verify reads per written cell (one per programming
    /// attempt). Zero with fault tolerance off: the base model's
    /// fire-and-forget write has no read-back.
    pub fn verify_reads_per_cell_write(&self) -> f64 {
        if !self.fault_tolerance_enabled() {
            return 0.0;
        }
        let f = self.fault_model.total_rate();
        (1.0 - f) * self.verify.expected_attempts_healthy() + f * self.verify.max_attempts as f64
    }

    /// `true` once the scrub scheduler is turned on — the gate that keeps
    /// baseline timing/energy/endurance numbers bit-exact with scrub off.
    pub fn scrub_enabled(&self) -> bool {
        !self.scrub.is_off()
    }

    /// `true` once any analog non-ideality knob departs from the ideal
    /// defaults — the gate that keeps every read bit-exact when the noise
    /// model is off.
    pub fn noise_enabled(&self) -> bool {
        !self.noise.is_ideal()
    }

    /// `true` once the endurance wear model is turned on — the gate that
    /// keeps every existing pinned number bit-exact with wear off (no
    /// budgets are drawn and no counter is touched).
    pub fn wear_enabled(&self) -> bool {
        !self.wear.is_ideal()
    }

    /// Enables endurance wear-out with the given model and escalation
    /// ladder, plus the usual fault-tolerance knobs the ladder rides on.
    pub fn with_wear(mut self, wear: WearModel, repair: RepairPolicy) -> Self {
        self.wear = wear;
        self.repair = repair;
        debug_assert!(
            self.validate().is_ok(),
            "invalid wear configuration: {:?}",
            self.validate()
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_batch_is_64() {
        assert_eq!(PipeLayerConfig::default().batch_size, 64);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_batch() {
        PipeLayerConfig::with_batch(0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_batch_clamps_to_one_in_release() {
        assert_eq!(PipeLayerConfig::with_batch(0).batch_size, 1);
    }

    #[test]
    fn try_with_batch_returns_error() {
        assert_eq!(
            PipeLayerConfig::try_with_batch(0),
            Err(ConfigError::ZeroBatch)
        );
        assert_eq!(PipeLayerConfig::try_with_batch(8).unwrap().batch_size, 8);
    }

    #[test]
    fn defaults_are_exact_noops() {
        let c = PipeLayerConfig::default();
        assert!(!c.fault_tolerance_enabled());
        assert!(!c.noise_enabled());
        assert!(!c.wear_enabled());
        assert_eq!(c.repair, crate::repair::RepairPolicy::immediate());
        assert_eq!(c.write_pulse_multiplier(), 1.0);
        assert_eq!(c.verify_reads_per_cell_write(), 0.0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn wear_model_validates_its_domain() {
        use crate::repair::RepairPolicy;
        let cfg = PipeLayerConfig::default()
            .with_wear(WearModel::with_endurance(1e6), RepairPolicy::laddered());
        assert!(cfg.wear_enabled());
        assert!(cfg.validate().is_ok());

        let mut bad = cfg;
        bad.wear.median_writes = -1.0;
        assert_eq!(bad.validate(), Err(ConfigError::InvalidWearBudget(-1.0)));

        bad.wear = WearModel {
            median_writes: 1e6,
            sigma: f64::NAN,
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidWearSigma(_))
        ));
    }

    #[test]
    fn noise_model_validates_its_domain() {
        let mut cfg = PipeLayerConfig {
            noise: NoiseModel::with_strength(1.0),
            ..PipeLayerConfig::default()
        };
        assert!(cfg.noise_enabled());
        assert!(cfg.validate().is_ok());

        cfg.noise = NoiseModel {
            lrs_sigma: -0.1,
            ..NoiseModel::ideal()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidNoiseSigma(-0.1)));

        cfg.noise = NoiseModel {
            read_sigma: f64::NAN,
            ..NoiseModel::ideal()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidNoiseSigma(_))
        ));

        cfg.noise = NoiseModel {
            ir_drop: 1.5,
            ..NoiseModel::ideal()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::InvalidNoiseFraction(1.5)));

        cfg.noise = NoiseModel {
            g_ratio: -0.01,
            ..NoiseModel::ideal()
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidNoiseFraction(_))
        ));
    }

    #[test]
    fn fault_tolerance_costs_pulses_and_reads() {
        let c = PipeLayerConfig::default().with_fault_tolerance(
            FaultModel::with_stuck_rate(1e-3),
            VerifyPolicy {
                max_attempts: 5,
                write_sigma: 0.4,
            },
            SpareBudget::typical(),
        );
        assert!(c.fault_tolerance_enabled());
        assert!(c.write_pulse_multiplier() > 1.0);
        assert!(c.verify_reads_per_cell_write() > 1.0);
    }

    #[test]
    fn try_with_fault_tolerance_rejects_bad_rates() {
        let err = PipeLayerConfig::default().try_with_fault_tolerance(
            FaultModel {
                stuck_at_zero: 0.8,
                stuck_at_max: 0.8,
                dead: 0.0,
            },
            VerifyPolicy::default(),
            SpareBudget::none(),
        );
        assert!(matches!(err, Err(ConfigError::InvalidFaultRate(_))));

        let err = PipeLayerConfig::default().try_with_fault_tolerance(
            FaultModel::ideal(),
            VerifyPolicy {
                max_attempts: 0,
                write_sigma: 0.0,
            },
            SpareBudget::none(),
        );
        assert_eq!(err, Err(ConfigError::ZeroAttempts));

        let err = PipeLayerConfig::default().try_with_fault_tolerance(
            FaultModel::ideal(),
            VerifyPolicy {
                max_attempts: 2,
                write_sigma: f64::NAN,
            },
            SpareBudget::none(),
        );
        assert!(matches!(err, Err(ConfigError::InvalidWriteSigma(_))));
    }

    #[test]
    fn datapath_format_validates_its_domain() {
        assert!(DatapathFormat::default().validate().is_ok());
        let bad = DatapathFormat {
            activation_absmax: 0.0,
            ..DatapathFormat::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::InvalidRangeBound(0.0)));
        let bad = DatapathFormat {
            gradient_absmax: f64::NAN,
            ..DatapathFormat::default()
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidRangeBound(_))
        ));
        let bad = DatapathFormat {
            accumulator_bits: 0,
            ..DatapathFormat::default()
        };
        assert_eq!(bad.validate(), Err(ConfigError::ZeroAccumulatorBits));
        // The config-level validate sees datapath violations too.
        let mut cfg = PipeLayerConfig::default();
        cfg.datapath.accumulator_bits = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroAccumulatorBits));
    }

    #[test]
    fn scrub_policy_validates() {
        use crate::scrub::ScrubPolicy;
        let mut cfg = PipeLayerConfig::default();
        assert!(!cfg.scrub_enabled());
        assert!(cfg.validate().is_ok());

        cfg.scrub = ScrubPolicy::every(100, 0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroScrubRows));

        cfg.scrub = ScrubPolicy {
            interval_images: 100,
            rows_per_pass: 4,
            repulse_fraction: 1.5,
            min_headroom_writes: 0,
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidScrubFraction(_))
        ));

        cfg.scrub = ScrubPolicy::every(100, 4);
        assert!(cfg.validate().is_ok());
        assert!(cfg.scrub_enabled());
    }

    #[test]
    fn config_error_messages_are_stable() {
        assert_eq!(
            ConfigError::ZeroBatch.to_string(),
            "batch size must be non-zero"
        );
        assert!(ConfigError::ZeroAttempts
            .to_string()
            .contains("at least one"));
    }
}
