//! Spike-level energy accounting for full runs (Fig. 16).
//!
//! Reads: every array-read phase injects up to `data_bits` spikes per word
//! line (half on average for random data), fanned across the column tiles
//! and the 8 crossbars (pos/neg × four segment groups) of each matrix copy.
//! Writes: intermediate data (`d`, `δ`) written into ReRAM memory subarrays
//! and morphable `d` copies — PipeLayer "writes all of data to ReRAM arrays"
//! (Sec. 6.6), which is why write energy dominates — plus the per-batch
//! weight reprogramming (Fig. 14b).

use crate::mapping::{MappedLayer, MappedNetwork};
use pipelayer_reram::EnergyCounter;

/// Per-image energy decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Array-read spikes.
    pub reads_j_per_image: f64,
    /// Intermediate-data writes (input, d, morphable copies, δ).
    pub data_writes_j_per_image: f64,
    /// Weight reprogramming (amortised per image).
    pub weight_updates_j_per_image: f64,
    /// Scrub scheduler: verify reads over scanned cells plus re-pulses
    /// (amortised per image; exactly 0.0 with scrubbing off).
    pub scrub_j_per_image: f64,
}

impl EnergyBreakdown {
    /// Total per-image energy.
    pub fn total_j_per_image(&self) -> f64 {
        self.reads_j_per_image
            + self.data_writes_j_per_image
            + self.weight_updates_j_per_image
            + self.scrub_j_per_image
    }
}

/// Per-image / per-batch spike counts for a mapped network.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel<'a> {
    net: &'a MappedNetwork,
}

impl<'a> EnergyModel<'a> {
    /// Creates an energy model over `net`.
    pub fn new(net: &'a MappedNetwork) -> Self {
        EnergyModel { net }
    }

    /// Average read spikes one forward pass of `layer` injects per image:
    /// `P · rows · (bits/2) · col_tiles · 8`.
    fn forward_read_spikes(&self, layer: &MappedLayer) -> u64 {
        let p = &self.net.config.params;
        let col_tiles = layer.resolved.matrix_cols.div_ceil(p.xbar_size) as u64;
        let positions = layer.resolved.window_positions.max(1) as u64;
        positions
            * layer.resolved.matrix_rows as u64
            * (p.data_bits as u64 / 2)
            * col_tiles
            * p.crossbars_per_matrix() as u64
    }

    /// Read spikes per image during testing.
    pub fn testing_read_spikes_per_image(&self) -> u64 {
        self.net
            .layers
            .iter()
            .map(|l| self.forward_read_spikes(l))
            .sum()
    }

    /// Words written to memory subarrays per image during testing:
    /// the staged input image (`d_0` enters via `Copy_to_PL`) plus each
    /// layer's outputs flowing into the next buffer.
    pub fn testing_write_words_per_image(&self) -> u64 {
        self.input_words() + self.net.layers.iter().map(|l| l.out_words).sum::<u64>()
    }

    /// Words of one input image.
    fn input_words(&self) -> u64 {
        let (c, h, w) = self.net.layers[0].resolved.in_shape;
        (c * h * w) as u64
    }

    /// Read spikes per image during training: forward, plus the error
    /// convolution (≈ one forward-equivalent, absent for layer 1) and the
    /// partial-derivative computation (≈ one forward-equivalent).
    pub fn training_read_spikes_per_image(&self) -> u64 {
        self.net
            .layers
            .iter()
            .enumerate()
            .map(|(idx, l)| {
                let fwd = self.forward_read_spikes(l);
                let err = if idx == 0 { 0 } else { fwd };
                fwd + err + fwd
            })
            .sum()
    }

    /// Words written per image during training: the staged input, each
    /// layer's `d` into the inter-layer buffer, the copy of its *input*
    /// data into morphable arrays for the gradient convolution (Fig. 12),
    /// and the `δ`s.
    pub fn training_write_words_per_image(&self) -> u64 {
        self.input_words()
            + self
                .net
                .layers
                .iter()
                .map(|l| l.out_words + l.in_words + l.delta_words)
                .sum::<u64>()
    }

    /// Programming spikes per weight update (once per batch). A tuning
    /// pulse moves a cell one conductance level; averaged SGD steps move
    /// most weights by at most one level of one segment, so the expected
    /// cost is about one pulse per stored cell — `cells_per_word` pulses
    /// per weight (full re-levelling would cost `cells_per_word × 2^bits`).
    pub fn update_write_spikes_per_batch(&self) -> u64 {
        let cells = self.net.config.params.cells_per_word() as u64;
        self.net
            .layers
            .iter()
            .map(|l| cells * l.resolved.weights as u64)
            .sum()
    }

    /// Programming spikes per weight update *including* program-and-verify
    /// retries: the ideal count scaled by the config's expected pulse
    /// multiplier (healthy-cell retry expectation plus budget burned on
    /// faulty cells). Equals the ideal count with fault tolerance off.
    pub fn verified_update_write_spikes_per_batch(&self) -> u64 {
        (self.update_write_spikes_per_batch() as f64 * self.net.config.write_pulse_multiplier())
            .round() as u64
    }

    /// Verify-read spikes per weight update: one read-back per programming
    /// attempt on every written cell. Zero with fault tolerance off (the
    /// base model's write has no read-back).
    pub fn update_verify_read_spikes_per_batch(&self) -> u64 {
        (self.update_write_spikes_per_batch() as f64
            * self.net.config.verify_reads_per_cell_write())
        .round() as u64
    }

    /// Cells one scrub pass reads back across all mapped matrices:
    /// `min(rows_per_pass, rows_l) · cols_l · cells_per_word` per layer
    /// (every cell on a scanned word line is probed once). Zero when
    /// scrubbing is off.
    pub fn scrub_cells_per_pass(&self) -> u64 {
        let cfg = &self.net.config;
        if !cfg.scrub_enabled() {
            return 0;
        }
        let cells = cfg.params.cells_per_word() as u64;
        self.net
            .layers
            .iter()
            .map(|l| {
                let rows = l.resolved.matrix_rows as u64;
                let scanned = rows.min(cfg.scrub.rows_per_pass as u64);
                scanned * l.resolved.matrix_cols as u64 * cells
            })
            .sum()
    }

    /// Verify-read spikes the scrub scheduler spends per processed image
    /// (a pass every `interval_images`, one probe read per scanned cell).
    pub fn scrub_read_spikes_per_image(&self) -> f64 {
        self.scrub_cells_per_pass() as f64 * self.net.config.scrub.passes_per_image()
    }

    /// Re-programming pulses the scrub scheduler spends per processed
    /// image: the expected re-pulse fraction of the scanned cells.
    pub fn scrub_write_spikes_per_image(&self) -> f64 {
        self.scrub_read_spikes_per_image() * self.net.config.scrub.repulse_fraction
    }

    /// Scrub energy per processed image, joules. Exactly 0.0 when off,
    /// so baseline totals are bit-identical with scrubbing disabled.
    pub fn scrub_j_per_image(&self) -> f64 {
        let p = &self.net.config.params;
        self.scrub_read_spikes_per_image() * p.read_energy_pj * 1e-12
            + self.scrub_write_spikes_per_image() * p.write_energy_pj * 1e-12
    }

    /// Total testing energy for `n` images, joules.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn testing_energy_j(&self, n: u64) -> f64 {
        assert!(n > 0, "empty workload");
        let p = &self.net.config.params;
        let mut e = EnergyCounter::new();
        e.add_read_spikes(n * self.testing_read_spikes_per_image());
        e.add_word_writes(n * self.testing_write_words_per_image(), p);
        e.energy_joules(p)
    }

    /// Where the training energy goes, joules per image (plus the per-batch
    /// update amortised over the batch): array reads, intermediate-data
    /// writes, and weight reprogramming. The writes dominating is the
    /// Sec. 6.6 explanation for PipeLayer's power-efficiency deficit.
    pub fn training_breakdown_j_per_image(&self) -> EnergyBreakdown {
        let p = &self.net.config.params;
        let b = self.net.config.batch_size as f64;
        let reads = (self.training_read_spikes_per_image() as f64
            + self.update_verify_read_spikes_per_batch() as f64 / b)
            * p.read_energy_pj
            * 1e-12;
        let writes = (self.training_write_words_per_image() * p.cells_per_word() as u64) as f64
            * p.write_energy_pj
            * 1e-12;
        let update =
            self.verified_update_write_spikes_per_batch() as f64 * p.write_energy_pj * 1e-12 / b;
        EnergyBreakdown {
            reads_j_per_image: reads,
            data_writes_j_per_image: writes,
            weight_updates_j_per_image: update,
            scrub_j_per_image: self.scrub_j_per_image(),
        }
    }

    /// Total training energy for `n` images, joules.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of the batch size.
    pub fn training_energy_j(&self, n: u64) -> f64 {
        let b = self.net.config.batch_size as u64;
        assert!(
            n > 0 && n.is_multiple_of(b),
            "n must be a multiple of the batch size"
        );
        let p = &self.net.config.params;
        let mut e = EnergyCounter::new();
        e.add_read_spikes(n * self.training_read_spikes_per_image());
        e.add_read_spikes((n / b) * self.update_verify_read_spikes_per_batch());
        e.add_word_writes(n * self.training_write_words_per_image(), p);
        e.add_write_spikes((n / b) * self.verified_update_write_spikes_per_batch());
        // `+ 0.0` with scrub off: the baseline total stays bit-identical.
        e.energy_joules(p) + n as f64 * self.scrub_j_per_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use crate::mapping::MappedNetwork;
    use pipelayer_nn::zoo;

    fn model_for(spec: &pipelayer_nn::NetSpec) -> MappedNetwork {
        MappedNetwork::from_spec(spec, PipeLayerConfig::default())
    }

    #[test]
    fn training_costs_more_than_testing() {
        let net = model_for(&zoo::spec_mnist_0());
        let e = EnergyModel::new(&net);
        assert!(e.training_energy_j(64) > e.testing_energy_j(64));
    }

    #[test]
    fn energy_linear_in_images() {
        let net = model_for(&zoo::alexnet());
        let e = EnergyModel::new(&net);
        let e1 = e.testing_energy_j(64);
        let e2 = e.testing_energy_j(128);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn write_energy_dominates_training() {
        // Sec. 6.6: PipeLayer writes all data to ReRAM; with 3.91 nJ/write
        // vs 1.08 pJ/read the writes must dominate the training budget.
        let net = model_for(&zoo::alexnet());
        let e = EnergyModel::new(&net);
        let p = &net.config.params;
        let read_j = e.training_read_spikes_per_image() as f64 * p.read_energy_pj * 1e-12;
        let write_j = (e.training_write_words_per_image() * p.cells_per_word() as u64) as f64
            * p.write_energy_pj
            * 1e-12;
        assert!(write_j > read_j, "write {write_j} J vs read {read_j} J");
    }

    #[test]
    fn larger_batch_amortises_update_energy() {
        let spec = zoo::spec_mnist_c();
        let small = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(8));
        let large = MappedNetwork::from_spec(&spec, PipeLayerConfig::with_batch(64));
        let e_small = EnergyModel::new(&small).training_energy_j(64);
        let e_large = EnergyModel::new(&large).training_energy_j(64);
        assert!(e_large < e_small);
    }

    #[test]
    fn deeper_vgg_costs_more() {
        let a = model_for(&zoo::vgg(zoo::VggVariant::A));
        let e_var = model_for(&zoo::vgg(zoo::VggVariant::E));
        assert!(
            EnergyModel::new(&e_var).testing_energy_j(64)
                > EnergyModel::new(&a).testing_energy_j(64)
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let net = model_for(&zoo::spec_mnist_0());
        let e = EnergyModel::new(&net);
        let bd = e.training_breakdown_j_per_image();
        let total = e.training_energy_j(64) / 64.0;
        assert!(
            (bd.total_j_per_image() - total).abs() < 1e-9 * total,
            "breakdown {} vs total {}",
            bd.total_j_per_image(),
            total
        );
        // Writes dominate (Sec. 6.6).
        assert!(bd.data_writes_j_per_image > bd.reads_j_per_image);
    }

    #[test]
    #[should_panic(expected = "multiple of the batch")]
    fn training_rejects_partial_batch() {
        let net = model_for(&zoo::spec_mnist_a());
        EnergyModel::new(&net).training_energy_j(63);
    }

    #[test]
    fn scrub_energy_noop_when_off_and_reconciles_when_on() {
        use crate::scrub::ScrubPolicy;
        let spec = zoo::spec_mnist_0();
        let base = model_for(&spec);
        let e_base = EnergyModel::new(&base);
        assert_eq!(e_base.scrub_cells_per_pass(), 0);
        assert_eq!(e_base.scrub_j_per_image(), 0.0);
        assert_eq!(
            e_base.training_breakdown_j_per_image().scrub_j_per_image,
            0.0
        );

        let cfg = PipeLayerConfig {
            scrub: ScrubPolicy::every(50, 16),
            ..Default::default()
        };
        let scrubbed = MappedNetwork::from_spec(&spec, cfg);
        let e = EnergyModel::new(&scrubbed);
        assert!(e.scrub_cells_per_pass() > 0);
        assert!(e.scrub_read_spikes_per_image() > 0.0);
        assert!(e.scrub_write_spikes_per_image() > 0.0);
        assert!(e.training_energy_j(64) > e_base.training_energy_j(64));

        // Breakdown still reconciles with the total under scrubbing.
        let bd = e.training_breakdown_j_per_image();
        assert!(bd.scrub_j_per_image > 0.0);
        let total = e.training_energy_j(64) / 64.0;
        assert!((bd.total_j_per_image() - total).abs() < 1e-6 * total);
    }

    #[test]
    fn verify_retries_raise_training_energy() {
        use crate::repair::SpareBudget;
        use pipelayer_reram::{FaultModel, VerifyPolicy};
        let spec = zoo::spec_mnist_0();
        let base = model_for(&spec);
        let ft_cfg = PipeLayerConfig::default().with_fault_tolerance(
            FaultModel::with_stuck_rate(1e-3),
            VerifyPolicy {
                max_attempts: 5,
                write_sigma: 0.5,
            },
            SpareBudget::typical(),
        );
        let ft = MappedNetwork::from_spec(&spec, ft_cfg);
        let e_base = EnergyModel::new(&base);
        let e_ft = EnergyModel::new(&ft);

        // Ideal pulse counts agree; verified counts diverge.
        assert_eq!(
            e_base.update_write_spikes_per_batch(),
            e_ft.update_write_spikes_per_batch()
        );
        assert_eq!(
            e_base.verified_update_write_spikes_per_batch(),
            e_base.update_write_spikes_per_batch(),
            "fault tolerance off: verified == ideal"
        );
        assert_eq!(e_base.update_verify_read_spikes_per_batch(), 0);
        assert!(
            e_ft.verified_update_write_spikes_per_batch() > e_ft.update_write_spikes_per_batch()
        );
        assert!(e_ft.update_verify_read_spikes_per_batch() > 0);
        assert!(e_ft.training_energy_j(64) > e_base.training_energy_j(64));

        // Breakdown still reconciles with the total under fault tolerance.
        let bd = e_ft.training_breakdown_j_per_image();
        let total = e_ft.training_energy_j(64) / 64.0;
        assert!((bd.total_j_per_image() - total).abs() < 1e-6 * total);
    }
}
