//! Configuration-level area accounting (Sec. 6.6, Fig. 18).

use crate::mapping::MappedNetwork;
pub use pipelayer_reram::AreaModel;

/// Area of a deployed configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Physical crossbar count.
    pub crossbars: u64,
    /// Total die area, mm².
    pub mm2: f64,
}

/// Area of the full training configuration (forward + backward + gradient
/// data arrays + buffers).
pub fn training_area(net: &MappedNetwork, model: &AreaModel) -> AreaEstimate {
    let crossbars = net.total_crossbars_training();
    AreaEstimate {
        crossbars,
        mm2: model.total_mm2(crossbars),
    }
}

/// Area of a testing-only configuration.
pub fn testing_area(net: &MappedNetwork, model: &AreaModel) -> AreaEstimate {
    let crossbars = net.total_crossbars_testing();
    AreaEstimate {
        crossbars,
        mm2: model.total_mm2(crossbars),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use crate::granularity::{default_granularity, scale_lambda};
    use pipelayer_nn::zoo;

    #[test]
    fn area_grows_with_lambda() {
        let spec = zoo::vgg(zoo::VggVariant::B);
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        let model = AreaModel::default();
        let mut last = 0.0;
        for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let gl = scale_lambda(&g, lambda, &layers);
            let net = MappedNetwork::with_granularity(&spec, &gl, PipeLayerConfig::default());
            let a = training_area(&net, &model).mm2;
            assert!(a > last, "area must grow with λ: {a} <= {last}");
            last = a;
        }
    }

    #[test]
    fn testing_config_smaller_than_training() {
        let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
        let model = AreaModel::default();
        assert!(testing_area(&net, &model).mm2 < training_area(&net, &model).mm2);
    }

    #[test]
    fn alexnet_training_area_near_paper_value() {
        // The per-crossbar constant is calibrated so the default AlexNet
        // training deployment lands near the published 82.6 mm²
        // (see EXPERIMENTS.md; tolerance is deliberately loose).
        let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
        let a = training_area(&net, &AreaModel::default()).mm2;
        assert!(
            (40.0..170.0).contains(&a),
            "AlexNet training area {a} mm² too far from 82.6 mm²"
        );
    }
}
