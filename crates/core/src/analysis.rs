//! Closed-form latency/cost analysis (Fig. 7, Table 2).
//!
//! All counts are in logical cycles for a network of `L` weighted layers,
//! batch size `B` and `N` input images (`N` a multiple of `B`):
//!
//! * non-pipelined training: forward `L` + backward `L+1` cycles per image,
//!   plus one update cycle per batch → `(2L+1)·N + N/B`;
//! * pipelined training: a batch fills in `2L+1` cycles, streams one image
//!   per cycle for the remaining `B−1`, then spends one update cycle →
//!   `(N/B)·(2L+B+1)` (Fig. 7b);
//! * pipelined testing: no weight updates, so inputs stream without batch
//!   drains → `N + L − 1`.

use crate::config::ConfigError;

/// Cycle counts and array/buffer costs from the Table 2 formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Analysis {
    /// Number of weighted layers `L`.
    pub l: usize,
    /// Batch size `B`.
    pub b: usize,
}

impl Analysis {
    /// Creates an analysis for `L` layers and batch `B`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroLayers`] if `l` is zero and
    /// [`ConfigError::ZeroBatch`] if `b` is zero.
    pub fn try_new(l: usize, b: usize) -> Result<Self, ConfigError> {
        if l == 0 {
            return Err(ConfigError::ZeroLayers);
        }
        if b == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(Analysis { l, b })
    }

    /// Creates an analysis for `L` layers and batch `B`.
    ///
    /// Zero `l`/`b` is debug-asserted; release builds clamp both to 1
    /// (a degenerate but well-defined analysis). Use
    /// [`try_new`](Self::try_new) to handle the error explicitly.
    pub fn new(l: usize, b: usize) -> Self {
        debug_assert!(
            l > 0 && b > 0,
            "degenerate configuration: L and B must be non-zero (got L={l}, B={b})"
        );
        Analysis {
            l: l.max(1),
            b: b.max(1),
        }
    }

    /// Non-pipelined training cycles for `n` images: `(2L+1)N + N/B`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of `B`.
    pub fn training_cycles_nonpipelined(&self, n: u64) -> u64 {
        self.check(n);
        (2 * self.l as u64 + 1) * n + n / self.b as u64
    }

    /// Pipelined training cycles: `(N/B)(2L+B+1)` (Fig. 7b).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of `B`.
    pub fn training_cycles_pipelined(&self, n: u64) -> u64 {
        self.check(n);
        (n / self.b as u64) * (2 * self.l as u64 + self.b as u64 + 1)
    }

    /// Non-pipelined testing cycles: `L` per image.
    pub fn testing_cycles_nonpipelined(&self, n: u64) -> u64 {
        assert!(n > 0, "empty workload");
        self.l as u64 * n
    }

    /// Pipelined testing cycles: fill `L−1`, then one result per cycle.
    pub fn testing_cycles_pipelined(&self, n: u64) -> u64 {
        assert!(n > 0, "empty workload");
        n + self.l as u64 - 1
    }

    /// Pipelined training cycles for an arbitrary image count: full batches
    /// cost `2L+B+1` each; a trailing partial batch of `r` images still
    /// fills and updates, costing `2L+r+1`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn training_cycles_pipelined_ragged(&self, n: u64) -> u64 {
        assert!(n > 0, "empty workload");
        let b = self.b as u64;
        let l = self.l as u64;
        let full = n / b;
        let rem = n % b;
        let mut cycles = full * (2 * l + b + 1);
        if rem > 0 {
            cycles += 2 * l + rem + 1;
        }
        cycles
    }

    /// Pipelined-over-non-pipelined training speedup in the `N → ∞` limit:
    /// `(2L+1)B / (2L+B+1)` (approaches `2L+1` for large `B`).
    pub fn training_pipeline_speedup_limit(&self) -> f64 {
        let (l, b) = (self.l as f64, self.b as f64);
        ((2.0 * l + 1.0) * b + 1.0) / (2.0 * l + b + 1.0)
    }

    /// Circular-buffer depth between layers `l` (1-based) and `l+1`:
    /// `2(L−l)+1` (Sec. 3.3, Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= layer <= L`.
    pub fn buffer_depth(&self, layer: usize) -> usize {
        assert!((1..=self.l).contains(&layer), "layer out of range");
        2 * (self.l - layer) + 1
    }

    /// Morphable array groups, non-pipelined (Table 2): `G·L + G·(2L−1)`.
    pub fn morphable_groups_nonpipelined(&self, g: usize) -> u64 {
        (g * self.l + g * (2 * self.l - 1)) as u64
    }

    /// Morphable array groups, pipelined (Table 2):
    /// `G·L + G·(L−1) + B·L`.
    pub fn morphable_groups_pipelined(&self, g: usize) -> u64 {
        (g * self.l + g * (self.l - 1) + self.b * self.l) as u64
    }

    /// Memory buffer groups, non-pipelined (Table 2): `2L`.
    pub fn memory_groups_nonpipelined(&self) -> u64 {
        2 * self.l as u64
    }

    /// Memory buffer groups, pipelined: `Σ_l (2(L−l)+1)` d-buffers plus the
    /// duplicated same-cycle read/write buffers (`d_L` and the `L` δ
    /// buffers).
    pub fn memory_groups_pipelined(&self) -> u64 {
        let d_buffers: u64 = (1..=self.l).map(|l| self.buffer_depth(l) as u64).sum();
        d_buffers + (self.l as u64 + 1)
    }

    fn check(&self, n: u64) {
        assert!(n > 0, "empty workload");
        assert_eq!(
            n % self.b as u64,
            0,
            "image count {n} must be a multiple of the batch size {}",
            self.b
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig7_example() {
        // L = 3 (Fig. 3's network), B = 64: one batch takes 2·3+64+1 = 71
        // cycles pipelined vs (2·3+1)·64 + 1 = 449 non-pipelined.
        let a = Analysis::new(3, 64);
        assert_eq!(a.training_cycles_pipelined(64), 71);
        assert_eq!(a.training_cycles_nonpipelined(64), 449);
    }

    #[test]
    fn buffer_depths_match_fig8() {
        // The running example: 3 layers, buffer between A1 and A2 has
        // 2(3-1)+1 = 5 entries.
        let a = Analysis::new(3, 64);
        assert_eq!(a.buffer_depth(1), 5);
        assert_eq!(a.buffer_depth(2), 3);
        assert_eq!(a.buffer_depth(3), 1);
    }

    #[test]
    fn speedup_limit_reaches_2l_plus_1() {
        let a = Analysis::new(8, 4096);
        let lim = a.training_pipeline_speedup_limit();
        assert!(lim > 16.0 && lim < 17.0, "limit {lim}");
    }

    #[test]
    fn testing_pipeline_asymptotically_one_per_cycle() {
        let a = Analysis::new(19, 64);
        let n = 100_000;
        let cyc = a.testing_cycles_pipelined(n);
        assert!(cyc < n + 20);
        assert_eq!(a.testing_cycles_nonpipelined(n), 19 * n);
    }

    #[test]
    fn table2_groups() {
        let a = Analysis::new(3, 64);
        assert_eq!(a.morphable_groups_nonpipelined(2), 2 * 3 + 2 * 5);
        assert_eq!(a.morphable_groups_pipelined(2), 2 * 3 + 2 * 2 + 64 * 3);
        assert_eq!(a.memory_groups_nonpipelined(), 6);
        assert_eq!(a.memory_groups_pipelined(), (5 + 3 + 1) + 4);
    }

    #[test]
    fn try_new_reports_which_knob_is_zero() {
        use crate::config::ConfigError;
        assert_eq!(Analysis::try_new(0, 64), Err(ConfigError::ZeroLayers));
        assert_eq!(Analysis::try_new(3, 0), Err(ConfigError::ZeroBatch));
        assert_eq!(Analysis::try_new(3, 64), Ok(Analysis { l: 3, b: 64 }));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "degenerate configuration")]
    fn new_panics_on_zero_layers() {
        Analysis::new(0, 64);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn new_clamps_zero_layers_in_release() {
        assert_eq!(Analysis::new(0, 64), Analysis { l: 1, b: 64 });
    }

    #[test]
    #[should_panic(expected = "multiple of the batch")]
    fn rejects_partial_batches() {
        Analysis::new(3, 64).training_cycles_pipelined(65);
    }

    #[test]
    fn ragged_reduces_to_exact_on_multiples() {
        let a = Analysis::new(5, 32);
        for k in 1..5u64 {
            assert_eq!(
                a.training_cycles_pipelined_ragged(k * 32),
                a.training_cycles_pipelined(k * 32)
            );
        }
        // 33 images = one full batch + a 1-image tail batch.
        assert_eq!(
            a.training_cycles_pipelined_ragged(33),
            a.training_cycles_pipelined(32) + (2 * 5 + 1 + 1)
        );
    }

    proptest! {
        /// Pipelining never loses, and cycle counts grow monotonically in N.
        #[test]
        fn pipeline_always_wins(l in 1usize..30, b in 1usize..256, k in 1u64..50) {
            let a = Analysis::new(l, b);
            let n = k * b as u64;
            prop_assert!(a.training_cycles_pipelined(n) <= a.training_cycles_nonpipelined(n));
            prop_assert!(a.testing_cycles_pipelined(n) <= a.testing_cycles_nonpipelined(n));
        }

        /// Per-batch pipelined cycles match the Fig. 7(b) decomposition:
        /// fill (2L+1) + stream (B−1) + update (1).
        #[test]
        fn per_batch_decomposition(l in 1usize..30, b in 1usize..256) {
            let a = Analysis::new(l, b);
            let per_batch = a.training_cycles_pipelined(b as u64);
            prop_assert_eq!(per_batch, (2 * l as u64 + 1) + (b as u64 - 1) + 1);
        }
    }
}
