//! The non-pipelined baseline schedule (Fig. 7a): images are processed
//! strictly one at a time — `L` forward cycles, `L+1` backward cycles,
//! plus one weight-update cycle per batch — with no overlap between images.
//! PipeLayer-without-pipeline in Figs. 15/16 uses this schedule with the
//! same arrays and cycle time.

use crate::config::ConfigError;

/// Sequential (non-pipelined) schedule generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonPipelined {
    l: usize,
    b: usize,
}

impl NonPipelined {
    /// Creates a schedule for `L` layers and batch size `B`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroLayers`] if `l` is zero and
    /// [`ConfigError::ZeroBatch`] if `b` is zero.
    pub fn try_new(l: usize, b: usize) -> Result<Self, ConfigError> {
        if l == 0 {
            return Err(ConfigError::ZeroLayers);
        }
        if b == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(NonPipelined { l, b })
    }

    /// Creates a schedule for `L` layers and batch size `B`.
    ///
    /// Zero `l`/`b` is debug-asserted; release builds clamp both to 1
    /// (a degenerate but well-defined schedule). Use
    /// [`try_new`](Self::try_new) to handle the error explicitly.
    pub fn new(l: usize, b: usize) -> Self {
        debug_assert!(
            l > 0 && b > 0,
            "degenerate configuration: L and B must be non-zero (got L={l}, B={b})"
        );
        NonPipelined {
            l: l.max(1),
            b: b.max(1),
        }
    }

    /// Training cycles for `n` images, counted by explicit simulation.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of `B`.
    pub fn training_cycles(&self, n: u64) -> u64 {
        assert!(
            n > 0 && n.is_multiple_of(self.b as u64),
            "n must be a multiple of B"
        );
        let mut cycle = 0u64;
        for img in 0..n {
            cycle += self.l as u64; // forward
            cycle += self.l as u64 + 1; // error + backward stages
            if (img + 1) % self.b as u64 == 0 {
                cycle += 1; // weight update at batch end
            }
        }
        cycle
    }

    /// Testing cycles: `L` per image.
    pub fn testing_cycles(&self, n: u64) -> u64 {
        assert!(n > 0, "empty workload");
        self.l as u64 * n
    }

    /// At most one stage is active per cycle — the defining property.
    pub fn peak_parallel_stages(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use proptest::prelude::*;

    #[test]
    fn matches_closed_form() {
        for (l, b, k) in [(3usize, 64usize, 1u64), (8, 16, 4), (19, 64, 2)] {
            let np = NonPipelined::new(l, b);
            let n = k * b as u64;
            assert_eq!(
                np.training_cycles(n),
                Analysis::new(l, b).training_cycles_nonpipelined(n)
            );
        }
    }

    #[test]
    fn one_stage_at_a_time() {
        assert_eq!(NonPipelined::new(5, 8).peak_parallel_stages(), 1);
    }

    proptest! {
        #[test]
        fn simulation_equals_formula(l in 1usize..25, b in 1usize..128, k in 1u64..8) {
            let np = NonPipelined::new(l, b);
            let n = k * b as u64;
            prop_assert_eq!(
                np.training_cycles(n),
                Analysis::new(l, b).training_cycles_nonpipelined(n)
            );
        }
    }
}
