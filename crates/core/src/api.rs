//! The host-side programming interface of Sec. 5.2.
//!
//! The paper exposes PipeLayer through `Copy_to_PL` / `Copy_to_CPU` (data
//! movement), `Topology_set` (configure the `G` groups of arrays per
//! layer), `Weight_load` (program pretrained or initial weights),
//! `Pipeline_set` and finally `Train` / `Test`. [`Accelerator`] mirrors
//! that flow with a builder (`Topology_set` ≈ [`AcceleratorBuilder`]) and
//! snake-cased methods for the rest.
//!
//! Timing/energy/area estimates are available for every network in the
//! zoo; *functional* execution (actually running data through the modelled
//! crossbars) is available for MLP topologies via the [`functional`]
//! datapath.
//!
//! [`functional`]: crate::functional

use crate::area::{testing_area, training_area, AreaModel};
use crate::config::PipeLayerConfig;
use crate::functional::ReramMlp;
use crate::granularity::{default_granularity, scale_lambda};
use crate::mapping::MappedNetwork;
use crate::perf::{PerfModel, RunEstimate};
use pipelayer_nn::spec::NetSpec;
use pipelayer_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// Errors from functional accelerator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceleratorError {
    /// Functional execution is implemented for MLP topologies only.
    NotAnMlp(String),
    /// `Weight_load` must run before `Train`/`Test`.
    WeightsNotLoaded,
    /// `Copy_to_PL` must stage data before `Train`/`Test`.
    NoStagedData,
}

impl fmt::Display for AcceleratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceleratorError::NotAnMlp(name) => {
                write!(
                    f,
                    "functional execution supports MLPs only, `{name}` has convolutions"
                )
            }
            AcceleratorError::WeightsNotLoaded => write!(f, "call weight_load before train/test"),
            AcceleratorError::NoStagedData => write!(f, "call copy_to_pl before train/test"),
        }
    }
}

impl Error for AcceleratorError {}

/// Builder implementing `Topology_set`/`Pipeline_set`.
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    spec: NetSpec,
    config: PipeLayerConfig,
    granularity: Option<Vec<usize>>,
    lambda: Option<f64>,
    pipelined: bool,
}

impl AcceleratorBuilder {
    /// Training batch size `B`. Zero is a caller bug: debug builds assert,
    /// and [`PipeLayerConfig::validate`] rejects the resulting config.
    pub fn batch_size(mut self, b: usize) -> Self {
        debug_assert!(b > 0, "batch size must be non-zero");
        self.config.batch_size = b;
        self
    }

    /// Explicit per-layer parallelism granularity (`Topology_set`'s `G`).
    pub fn granularity(mut self, g: Vec<usize>) -> Self {
        self.granularity = Some(g);
        self
    }

    /// Scale the default granularity by λ (Fig. 17/18 sweeps).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Enable or disable the inter-layer pipeline (`Pipeline_set`).
    pub fn pipelined(mut self, on: bool) -> Self {
        self.pipelined = on;
        self
    }

    /// Finalises the configuration and maps the network onto arrays.
    ///
    /// # Panics
    ///
    /// Panics if an explicit granularity has the wrong length.
    pub fn build(self) -> Accelerator {
        let resolved = self.spec.resolve();
        let g = match (self.granularity, self.lambda) {
            (Some(g), _) => g,
            (None, Some(lambda)) => {
                scale_lambda(&default_granularity(&resolved), lambda, &resolved)
            }
            (None, None) => default_granularity(&resolved),
        };
        let mapped = MappedNetwork::with_granularity(&self.spec, &g, self.config);
        Accelerator {
            spec: self.spec,
            mapped,
            pipelined: self.pipelined,
            mlp: None,
            staged: Vec::new(),
        }
    }
}

/// A configured PipeLayer instance.
pub struct Accelerator {
    spec: NetSpec,
    mapped: MappedNetwork,
    pipelined: bool,
    mlp: Option<ReramMlp>,
    staged: Vec<(Tensor, usize)>,
}

impl Accelerator {
    /// Starts configuring an accelerator for `spec` (Sec. 5.2's
    /// `Topology_set` flow).
    pub fn builder(spec: NetSpec) -> AcceleratorBuilder {
        AcceleratorBuilder {
            spec,
            config: PipeLayerConfig::default(),
            granularity: None,
            lambda: None,
            pipelined: true,
        }
    }

    /// The mapped network (arrays, granularity, tiles).
    pub fn mapped(&self) -> &MappedNetwork {
        &self.mapped
    }

    /// The network description.
    pub fn spec(&self) -> &NetSpec {
        &self.spec
    }

    /// Whether the inter-layer pipeline is enabled.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Estimated training run for `n` images.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of the batch size.
    pub fn estimate_training(&self, n: u64) -> RunEstimate {
        PerfModel::new(&self.mapped).training(n, self.pipelined)
    }

    /// Estimated testing run for `n` images.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn estimate_testing(&self, n: u64) -> RunEstimate {
        PerfModel::new(&self.mapped).testing(n, self.pipelined)
    }

    /// Builds a full configuration report (mapping, timing, energy, area,
    /// efficiency) over a probe workload of `n` images.
    pub fn report(&self, n: u64) -> crate::report::ConfigurationReport {
        crate::report::ConfigurationReport::build(&self.mapped, n)
    }

    /// Die area of the training deployment, mm².
    pub fn training_area_mm2(&self) -> f64 {
        training_area(&self.mapped, &AreaModel::default()).mm2
    }

    /// Die area of a testing-only deployment, mm².
    pub fn testing_area_mm2(&self) -> f64 {
        testing_area(&self.mapped, &AreaModel::default()).mm2
    }

    /// `Copy_to_PL`: stages labelled images in accelerator memory.
    pub fn copy_to_pl(&mut self, images: Vec<Tensor>, labels: Vec<usize>) {
        assert_eq!(images.len(), labels.len(), "images/labels length mismatch");
        self.staged = images.into_iter().zip(labels).collect();
    }

    /// `Weight_load`: programs initial weights into the morphable arrays.
    /// Functional execution is available for MLP topologies.
    ///
    /// # Errors
    ///
    /// [`AcceleratorError::NotAnMlp`] for convolutional topologies.
    pub fn weight_load(&mut self, seed: u64) -> Result<(), AcceleratorError> {
        if !self.spec.is_mlp() {
            return Err(AcceleratorError::NotAnMlp(self.spec.name.clone()));
        }
        let mut dims = vec![self.spec.input.0 * self.spec.input.1 * self.spec.input.2];
        dims.extend(self.mapped.layers.iter().map(|l| l.resolved.matrix_cols));
        self.mlp = Some(ReramMlp::new(&dims, &self.mapped.config.params, seed));
        Ok(())
    }

    /// `Train`: runs `epochs` of mini-batch SGD on the staged data through
    /// the ReRAM datapath. Returns the final mean batch loss.
    ///
    /// # Errors
    ///
    /// Fails if weights are not loaded or no data is staged.
    pub fn train(&mut self, epochs: usize, lr: f32) -> Result<f32, AcceleratorError> {
        if self.staged.is_empty() {
            return Err(AcceleratorError::NoStagedData);
        }
        let mlp = self
            .mlp
            .as_mut()
            .ok_or(AcceleratorError::WeightsNotLoaded)?;
        let b = self.mapped.config.batch_size.min(self.staged.len());
        let mut last = 0.0;
        for _ in 0..epochs.max(1) {
            for chunk in self.staged.chunks(b) {
                let images: Vec<Tensor> = chunk.iter().map(|(t, _)| t.clone()).collect();
                let labels: Vec<usize> = chunk.iter().map(|&(_, l)| l).collect();
                last = mlp.train_batch(&images, &labels, lr);
            }
        }
        Ok(last)
    }

    /// `Test`: classifies the staged images; results stay on-accelerator
    /// until [`copy_to_cpu`](Self::copy_to_cpu).
    ///
    /// # Errors
    ///
    /// Fails if weights are not loaded or no data is staged.
    pub fn test(&mut self) -> Result<Vec<usize>, AcceleratorError> {
        if self.staged.is_empty() {
            return Err(AcceleratorError::NoStagedData);
        }
        let mlp = self
            .mlp
            .as_mut()
            .ok_or(AcceleratorError::WeightsNotLoaded)?;
        let images: Vec<Tensor> = self.staged.iter().map(|(t, _)| t.clone()).collect();
        Ok(images.iter().map(|t| mlp.predict(t.as_slice())).collect())
    }

    /// `Copy_to_CPU`: returns (a copy of) the staged labels — the host-side
    /// readback path.
    pub fn copy_to_cpu(&self) -> Vec<usize> {
        self.staged.iter().map(|&(_, l)| l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::downsample;
    use pipelayer_nn::data::SyntheticMnist;
    use pipelayer_nn::zoo;

    #[test]
    fn builder_defaults() {
        let acc = Accelerator::builder(zoo::alexnet()).build();
        assert!(acc.is_pipelined());
        assert_eq!(acc.mapped().config.batch_size, 64);
        assert_eq!(acc.mapped().weighted_layers(), 8);
    }

    #[test]
    fn lambda_controls_arrays() {
        let small = Accelerator::builder(zoo::vgg(zoo::VggVariant::A))
            .lambda(0.25)
            .build();
        let big = Accelerator::builder(zoo::vgg(zoo::VggVariant::A))
            .lambda(4.0)
            .build();
        assert!(big.training_area_mm2() > small.training_area_mm2());
        assert!(big.estimate_testing(640).time_s < small.estimate_testing(640).time_s);
    }

    #[test]
    fn functional_flow_on_mlp() {
        let data = SyntheticMnist::generate(60, 20, 9);
        // A small custom MLP spec over downsampled 7x7 inputs.
        let spec = pipelayer_nn::NetSpec::new(
            "tiny-mlp",
            (1, 7, 7),
            vec![
                pipelayer_nn::LayerSpec::Fc { n_out: 12 },
                pipelayer_nn::LayerSpec::Fc { n_out: 10 },
            ],
        );
        let mut acc = Accelerator::builder(spec).batch_size(10).build();
        let images: Vec<_> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
        acc.copy_to_pl(images, data.train.labels.clone());
        acc.weight_load(3).expect("MLP loads");
        let loss1 = acc.train(1, 0.3).expect("train");
        let loss5 = acc.train(3, 0.3).expect("train more");
        assert!(loss5 < loss1, "loss should fall: {loss1} -> {loss5}");
        let preds = acc.test().expect("test");
        assert_eq!(preds.len(), 60);
    }

    #[test]
    fn conv_nets_reject_functional_but_estimate() {
        let mut acc = Accelerator::builder(zoo::spec_mnist_0()).build();
        assert!(matches!(
            acc.weight_load(0),
            Err(AcceleratorError::NotAnMlp(_))
        ));
        let est = acc.estimate_training(64);
        assert!(est.time_s > 0.0);
    }

    #[test]
    fn train_without_data_errors() {
        let mut acc = Accelerator::builder(zoo::spec_mnist_a()).build();
        acc.weight_load(0).unwrap();
        assert_eq!(acc.train(1, 0.1), Err(AcceleratorError::NoStagedData));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = AcceleratorError::NotAnMlp("VGG-E".into());
        assert!(e.to_string().contains("VGG-E"));
    }
}
