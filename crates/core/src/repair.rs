//! Spare remapping and graceful degradation for faulty crossbar columns.
//!
//! The program-and-verify path (`pipelayer_reram::fault`) reports which
//! cells a write could not bring to their targets. This module is the
//! controller-side response: each matrix owns a bounded budget of spare bit
//! lines ([`SpareBudget`]); a [`RepairController`] consumes the
//! unrecoverable-cell reports, remaps whole faulty columns onto spares
//! while they last, and *masks* columns off (a zero output unit, not a
//! corrupted one) once the budget is exhausted — so the functional model
//! keeps training, degraded but never silently wrong.
//!
//! Column granularity matches how real ReRAM macros provision redundancy:
//! spare bit lines share the word-line drivers, so a column swap is a mux
//! setting, while arbitrary cell-level steering is not implementable.
//!
//! With endurance wear enabled (`pipelayer_reram::wear`) failures appear
//! *mid-run*, so the controller also implements a bounded escalation
//! ladder ([`RepairPolicy`]): a column's first verify failures are
//! tolerated as possibly transient (the next update's rewrite is the
//! retry), a persistent failure enters a backoff window (no spare burned
//! on a column that might still recover), and only a failure surviving
//! the whole ladder consumes a spare — at honest device cost, via
//! [`ReramMatrix::remap_outputs`], which re-programs the displaced column
//! from the stored master weights onto the blank spare — or, with spares
//! exhausted, quarantines the column by masking. The default policy
//! escalates immediately, preserving the pre-ladder behaviour.

use pipelayer_reram::{ProgramReport, ReramMatrix, VerifyPolicy};
use rand::Rng;

/// Redundancy provisioned per mapped matrix.
///
/// The default is **no spares** — fault tolerance is strictly opt-in, and
/// every calibrated baseline number is unchanged until a budget is set. The
/// conventional provision for memory macros is 2–4 spare bit lines per
/// 128-wide array ([`SpareBudget::typical`] uses 4, ~3% area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpareBudget {
    /// Spare bit lines available to each mapped matrix.
    pub cols_per_matrix: usize,
}

impl SpareBudget {
    /// No redundancy: unrecoverable columns go straight to masking.
    pub fn none() -> Self {
        SpareBudget { cols_per_matrix: 0 }
    }

    /// A budget of `n` spare columns per matrix.
    pub fn with_cols(n: usize) -> Self {
        SpareBudget { cols_per_matrix: n }
    }

    /// The conventional macro provision: 4 spare bit lines per matrix.
    pub fn typical() -> Self {
        Self::with_cols(4)
    }

    /// `true` if no spares are provisioned.
    pub fn is_none(&self) -> bool {
        self.cols_per_matrix == 0
    }
}

/// How persistent a column's verify failures must be before the
/// controller spends a spare on it — the retry → backoff → act ladder.
///
/// The default escalates on the first failure (retry 0, backoff 0), which
/// is exactly the pre-ladder behaviour and the right setting for
/// commissioning-time faults. Under runtime wear, tolerating a couple of
/// failures and backing off before acting avoids burning the bounded
/// spare budget on transient verify misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairPolicy {
    /// Verify failures tolerated per column before escalating — each
    /// tolerated failure's "retry" is the next update's ordinary rewrite.
    pub retry_limit: u32,
    /// Updates a column sits in the backoff window after its retry budget
    /// is spent; a failure surviving past the window consumes a spare.
    /// `0` skips the backoff rung.
    pub backoff_updates: u64,
    /// Fraction of a column's cells that must be unrecoverable in a
    /// single report before the controller will *mask* the column once
    /// spares are exhausted. Below the threshold the escalated failure is
    /// tolerated instead: a sparse stuck cell corrupts one weight (which
    /// continued training largely learns around), while masking zeroes
    /// the whole output unit — the amputation must not cost more than
    /// the disease. `0.0` masks on any escalated failure (the pre-ladder
    /// behaviour). Remapping onto a spare is never gated: while spares
    /// last, even a single dead cell is worth a fresh column.
    pub quarantine_fraction: f64,
}

impl RepairPolicy {
    /// Escalate on the first failure (the pre-ladder behaviour).
    pub fn immediate() -> Self {
        RepairPolicy {
            retry_limit: 0,
            backoff_updates: 0,
            quarantine_fraction: 0.0,
        }
    }

    /// The full ladder: tolerate 2 failures, back off 4 updates, and —
    /// once spares are gone — quarantine only columns with half or more
    /// of their cells unrecoverable.
    pub fn laddered() -> Self {
        RepairPolicy {
            retry_limit: 2,
            backoff_updates: 4,
            quarantine_fraction: 0.5,
        }
    }
}

impl Default for RepairPolicy {
    fn default() -> Self {
        RepairPolicy::immediate()
    }
}

/// What one repair pass did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RepairOutcome {
    /// Columns remapped onto spare bit lines this pass.
    pub remapped: Vec<usize>,
    /// Columns masked off this pass (spares exhausted).
    pub masked: Vec<usize>,
    /// Columns tolerated on the retry rung this pass (the next update's
    /// rewrite is their retry).
    pub retried: Vec<usize>,
    /// Columns parked in (or entering) their backoff window this pass.
    pub deferred: Vec<usize>,
    /// Columns left in service with their sparse stuck cells after the
    /// ladder escalated but the damage sat below the quarantine
    /// threshold (spares exhausted, masking refused).
    pub tolerated: Vec<usize>,
    /// The honest device bill of this pass's remaps: the pulses and
    /// verify reads spent re-programming displaced columns onto blank
    /// spares. Empty unless [`RepairController::process_update`] remapped
    /// something.
    pub repair: ProgramReport,
}

/// Tracks spare consumption for one matrix across its lifetime and decides,
/// per unrecoverable column, between retry, backoff, remap and mask.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairController {
    budget: usize,
    policy: RepairPolicy,
    remapped: Vec<usize>,
    masked: Vec<usize>,
    /// Open failure episodes: `(column, failures seen so far)`.
    strikes: Vec<(usize, u32)>,
    /// Columns in backoff: `(column, update index the window ends at)`.
    backoff: Vec<(usize, u64)>,
    /// Updates seen by [`process_update`](Self::process_update) — the
    /// clock the backoff windows run on.
    updates: u64,
}

impl RepairController {
    /// A controller over `budget` spare columns, escalating immediately.
    pub fn new(budget: SpareBudget) -> Self {
        Self::with_policy(budget, RepairPolicy::immediate())
    }

    /// A controller over `budget` spare columns under the given ladder.
    pub fn with_policy(budget: SpareBudget, policy: RepairPolicy) -> Self {
        RepairController {
            budget: budget.cols_per_matrix,
            policy,
            remapped: Vec::new(),
            masked: Vec::new(),
            strikes: Vec::new(),
            backoff: Vec::new(),
            updates: 0,
        }
    }

    /// Replaces the escalation ladder (keeps budget and history). Lets a
    /// campaign rebuild arms with different repair aggressiveness.
    pub fn set_policy(&mut self, policy: RepairPolicy) {
        self.policy = policy;
    }

    /// Spare columns still unused.
    pub fn spares_left(&self) -> usize {
        self.budget - self.remapped.len()
    }

    /// Columns living on spares so far.
    pub fn remapped(&self) -> &[usize] {
        &self.remapped
    }

    /// Columns masked off so far.
    pub fn masked(&self) -> &[usize] {
        &self.masked
    }

    /// Applies `report` to `matrix`: every logical output column with an
    /// unrecoverable cell is remapped onto a spare (its faults cleared)
    /// while spares last, then masked. Columns already handled in earlier
    /// passes consume nothing further.
    pub fn process(&mut self, matrix: &mut ReramMatrix, report: &ProgramReport) -> RepairOutcome {
        let mut outcome = RepairOutcome::default();
        let mut cols: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
        cols.sort_unstable();
        cols.dedup();
        for col in cols {
            if self.remapped.contains(&col) || self.masked.contains(&col) {
                continue;
            }
            if self.spares_left() > 0 {
                matrix.repair_outputs(&[col]);
                self.remapped.push(col);
                outcome.remapped.push(col);
            } else {
                matrix.mask_output(col);
                self.masked.push(col);
                outcome.masked.push(col);
            }
        }
        outcome
    }

    /// The runtime (wear-aware) entry point: applies `report` to `matrix`
    /// through the full retry → backoff → remap → mask ladder. Unlike
    /// [`process`](Self::process), remapped columns may re-enter the
    /// ladder — under wear, the spare itself can die later — and remaps go
    /// through [`ReramMatrix::remap_outputs`], so `outcome.repair` carries
    /// the honest pulse/verify-read bill of re-programming displaced
    /// columns onto blank spares (to be merged into the caller's running
    /// report like any other write cost). Each call advances the backoff
    /// clock by one update.
    pub fn process_update(
        &mut self,
        matrix: &mut ReramMatrix,
        report: &ProgramReport,
        verify: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> RepairOutcome {
        self.updates += 1;
        let mut outcome = RepairOutcome::default();
        let mut cols: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
        cols.sort_unstable();
        cols.dedup();
        for col in cols {
            if self.masked.contains(&col) {
                continue;
            }
            if let Some(i) = self.backoff.iter().position(|&(c, _)| c == col) {
                if self.updates < self.backoff[i].1 {
                    // Window still open: keep waiting the failure out.
                    outcome.deferred.push(col);
                    continue;
                }
                // The window expired and the column still fails: act.
                self.backoff.swap_remove(i);
            } else {
                let strikes = match self.strikes.iter_mut().find(|(c, _)| *c == col) {
                    Some((_, s)) => {
                        *s += 1;
                        *s
                    }
                    None => {
                        self.strikes.push((col, 1));
                        1
                    }
                };
                if strikes <= self.policy.retry_limit {
                    outcome.retried.push(col);
                    continue;
                }
                if self.policy.backoff_updates > 0 {
                    self.backoff
                        .push((col, self.updates + self.policy.backoff_updates));
                    outcome.deferred.push(col);
                    continue;
                }
            }
            // Acting closes the episode; a later failure on the same
            // column (e.g. its spare wearing out) restarts the ladder.
            self.strikes.retain(|&(c, _)| c != col);
            if self.spares_left() > 0 {
                outcome
                    .repair
                    .merge(matrix.remap_outputs(&[col], verify, rng));
                self.remapped.push(col);
                outcome.remapped.push(col);
            } else {
                let dead_in_col = matrix.fault_count_in_outputs(&[col]);
                let cells_in_col = matrix.in_dim() * matrix.crossbar_count();
                let floor = (self.policy.quarantine_fraction * cells_in_col as f64).ceil();
                if dead_in_col as f64 >= floor.max(1.0) {
                    matrix.mask_output(col);
                    self.masked.push(col);
                    outcome.masked.push(col);
                } else {
                    outcome.tolerated.push(col);
                }
            }
        }
        outcome
    }

    /// Serialized controller state for checkpointing:
    /// `(remapped, masked, strikes, backoff, updates)`.
    #[allow(clippy::type_complexity)]
    pub fn state(&self) -> (&[usize], &[usize], &[(usize, u32)], &[(usize, u64)], u64) {
        (
            &self.remapped,
            &self.masked,
            &self.strikes,
            &self.backoff,
            self.updates,
        )
    }

    /// Restores state captured by [`state`](Self::state). Checkpoint
    /// restore only — budget and policy come from configuration, not the
    /// checkpoint.
    pub fn restore_state(
        &mut self,
        remapped: Vec<usize>,
        masked: Vec<usize>,
        strikes: Vec<(usize, u32)>,
        backoff: Vec<(usize, u64)>,
        updates: u64,
    ) {
        self.remapped = remapped;
        self.masked = masked;
        self.strikes = strikes;
        self.backoff = backoff;
        self.updates = updates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn faulty_matrix() -> ReramMatrix {
        let w = vec![0.5f32; 8 * 16];
        ReramMatrix::program_with_faults(
            &w,
            8,
            16,
            &ReramParams::default(),
            &FaultModel::with_stuck_rate(0.05),
            21,
        )
    }

    #[test]
    fn remaps_within_budget_then_masks() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(0);
        let report = m.write_verify(&w, &VerifyPolicy::with_attempts(2), &mut rng);
        let bad_cols: Vec<usize> = {
            let mut c: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        assert!(bad_cols.len() >= 2, "fault rate should hit several columns");

        let mut ctl = RepairController::new(SpareBudget::with_cols(1));
        let outcome = ctl.process(&mut m, &report);
        assert_eq!(outcome.remapped.len(), 1);
        assert_eq!(outcome.masked.len(), bad_cols.len() - 1);
        assert_eq!(ctl.spares_left(), 0);
        assert_eq!(m.masked_outputs(), outcome.masked);
    }

    #[test]
    fn repeated_reports_consume_nothing_extra() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(1);
        let policy = VerifyPolicy::with_attempts(2);
        let report = m.write_verify(&w, &policy, &mut rng);
        let mut ctl = RepairController::new(SpareBudget::typical());
        let first = ctl.process(&mut m, &report);
        let spares_after_first = ctl.spares_left();

        // A second verified write only re-reports masked columns (the
        // remapped ones are fault-free now); nothing new is consumed.
        let report2 = m.write_verify(&w, &policy, &mut rng);
        let second = ctl.process(&mut m, &report2);
        assert!(second.remapped.is_empty() && second.masked.is_empty());
        assert_eq!(ctl.spares_left(), spares_after_first);
        assert_eq!(ctl.remapped(), first.remapped);
    }

    #[test]
    fn ladder_tolerates_then_backs_off_then_remaps() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let policy = VerifyPolicy::with_attempts(2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut ctl = RepairController::with_policy(
            SpareBudget::typical(),
            RepairPolicy {
                retry_limit: 2,
                backoff_updates: 3,
                quarantine_fraction: 0.0,
            },
        );
        // The same persistent failure report, update after update.
        let report = m.write_verify(&w, &policy, &mut rng);
        assert!(!report.unrecoverable.is_empty());

        // Updates 1–2: retry rung. Update 3: enters backoff. Updates 4–5:
        // window open. Update 6: window expired → remap fires.
        for update in 1..=6u64 {
            let o = ctl.process_update(&mut m, &report, &policy, &mut rng);
            match update {
                1 | 2 => {
                    assert!(!o.retried.is_empty(), "update {update} must tolerate");
                    assert!(o.remapped.is_empty() && o.deferred.is_empty());
                }
                3..=5 => {
                    assert!(!o.deferred.is_empty(), "update {update} must defer");
                    assert!(o.remapped.is_empty() && o.masked.is_empty());
                }
                _ => {
                    assert!(!o.remapped.is_empty(), "update 6 must remap");
                    assert!(
                        o.repair.pulses > 0,
                        "the remap must bill blank-spare reprogramming"
                    );
                }
            }
        }
        assert!(ctl.spares_left() < SpareBudget::typical().cols_per_matrix);
        // The remapped columns are clean now: a fresh verify only
        // re-reports whatever the ladder hasn't acted on yet.
        let report2 = m.write_verify(&w, &policy, &mut rng);
        let acted: Vec<usize> = ctl.remapped().to_vec();
        assert!(report2
            .unrecoverable
            .iter()
            .all(|u| !acted.contains(&u.col)));
    }

    #[test]
    fn immediate_policy_matches_legacy_escalation_order() {
        let w = vec![0.5f32; 8 * 16];
        let policy = VerifyPolicy::with_attempts(2);

        let mut legacy_m = faulty_matrix();
        let mut rng = StdRng::seed_from_u64(4);
        let report = legacy_m.write_verify(&w, &policy, &mut rng);
        let mut legacy = RepairController::new(SpareBudget::with_cols(1));
        let legacy_out = legacy.process(&mut legacy_m, &report);

        let mut ladder_m = faulty_matrix();
        let mut rng2 = StdRng::seed_from_u64(4);
        let report2 = ladder_m.write_verify(&w, &policy, &mut rng2);
        let mut ladder =
            RepairController::with_policy(SpareBudget::with_cols(1), RepairPolicy::immediate());
        let ladder_out = ladder.process_update(&mut ladder_m, &report2, &policy, &mut rng2);

        // Same columns end up remapped/masked in the same order; only the
        // device bill differs (remap_outputs pays for the rewrite).
        assert_eq!(legacy_out.remapped, ladder_out.remapped);
        assert_eq!(legacy_out.masked, ladder_out.masked);
        assert_eq!(legacy_m.masked_outputs(), ladder_m.masked_outputs());
    }

    /// With spares exhausted, the laddered mask rung must refuse to
    /// amputate a column over sparse damage (a stuck cell corrupts one
    /// weight; a masked column zeroes the whole unit) and only quarantine
    /// once the column's fault population crosses the policy threshold.
    #[test]
    fn quarantine_tolerates_sparse_damage_and_masks_dense() {
        let w = vec![0.5f32; 8 * 16];
        let policy = VerifyPolicy::with_attempts(2);
        let ladder = RepairPolicy {
            retry_limit: 0,
            backoff_updates: 0,
            quarantine_fraction: 0.5,
        };

        // Sparse: ~5% stuck cells sit far below the quarantine floor, so
        // with no spares nothing may be masked — every escalated column
        // is tolerated in service instead.
        let mut sparse = faulty_matrix();
        let mut rng = StdRng::seed_from_u64(9);
        let report = sparse.write_verify(&w, &policy, &mut rng);
        assert!(!report.unrecoverable.is_empty());
        let mut ctl = RepairController::with_policy(SpareBudget::none(), ladder);
        let o = ctl.process_update(&mut sparse, &report, &policy, &mut rng);
        assert!(o.masked.is_empty(), "sparse damage must not be amputated");
        assert!(!o.tolerated.is_empty(), "the refusal must be reported");
        assert!(sparse.masked_outputs().is_empty());

        // Dense: most cells of every column stuck — zeroing the column
        // now beats the garbage it computes, and the same ladder masks.
        let mut dense = ReramMatrix::program_with_faults(
            &w,
            8,
            16,
            &ReramParams::default(),
            &FaultModel::with_stuck_rate(0.9),
            22,
        );
        let report = dense.write_verify(&w, &policy, &mut rng);
        let mut ctl = RepairController::with_policy(SpareBudget::none(), ladder);
        let o = ctl.process_update(&mut dense, &report, &policy, &mut rng);
        assert!(!o.masked.is_empty(), "dense damage must quarantine");
    }

    #[test]
    fn controller_state_roundtrips() {
        let mut ctl =
            RepairController::with_policy(SpareBudget::typical(), RepairPolicy::laddered());
        ctl.restore_state(vec![3], vec![7], vec![(1, 2)], vec![(5, 9)], 6);
        let mut twin =
            RepairController::with_policy(SpareBudget::typical(), RepairPolicy::laddered());
        let (r, m, s, b, u) = ctl.state();
        twin.restore_state(r.to_vec(), m.to_vec(), s.to_vec(), b.to_vec(), u);
        assert_eq!(ctl, twin);
        assert_eq!(
            ctl.spares_left(),
            SpareBudget::typical().cols_per_matrix - 1
        );
    }

    #[test]
    fn zero_budget_masks_everything() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(2);
        let report = m.write_verify(&w, &VerifyPolicy::with_attempts(2), &mut rng);
        let mut ctl = RepairController::new(SpareBudget::none());
        let outcome = ctl.process(&mut m, &report);
        assert!(outcome.remapped.is_empty());
        assert!(!outcome.masked.is_empty());
    }
}
