//! Spare remapping and graceful degradation for faulty crossbar columns.
//!
//! The program-and-verify path (`pipelayer_reram::fault`) reports which
//! cells a write could not bring to their targets. This module is the
//! controller-side response: each matrix owns a bounded budget of spare bit
//! lines ([`SpareBudget`]); a [`RepairController`] consumes the
//! unrecoverable-cell reports, remaps whole faulty columns onto spares
//! while they last, and *masks* columns off (a zero output unit, not a
//! corrupted one) once the budget is exhausted — so the functional model
//! keeps training, degraded but never silently wrong.
//!
//! Column granularity matches how real ReRAM macros provision redundancy:
//! spare bit lines share the word-line drivers, so a column swap is a mux
//! setting, while arbitrary cell-level steering is not implementable.

use pipelayer_reram::{ProgramReport, ReramMatrix};

/// Redundancy provisioned per mapped matrix.
///
/// The default is **no spares** — fault tolerance is strictly opt-in, and
/// every calibrated baseline number is unchanged until a budget is set. The
/// conventional provision for memory macros is 2–4 spare bit lines per
/// 128-wide array ([`SpareBudget::typical`] uses 4, ~3% area).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpareBudget {
    /// Spare bit lines available to each mapped matrix.
    pub cols_per_matrix: usize,
}

impl SpareBudget {
    /// No redundancy: unrecoverable columns go straight to masking.
    pub fn none() -> Self {
        SpareBudget { cols_per_matrix: 0 }
    }

    /// A budget of `n` spare columns per matrix.
    pub fn with_cols(n: usize) -> Self {
        SpareBudget { cols_per_matrix: n }
    }

    /// The conventional macro provision: 4 spare bit lines per matrix.
    pub fn typical() -> Self {
        Self::with_cols(4)
    }

    /// `true` if no spares are provisioned.
    pub fn is_none(&self) -> bool {
        self.cols_per_matrix == 0
    }
}

/// What one repair pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairOutcome {
    /// Columns remapped onto spare bit lines this pass.
    pub remapped: Vec<usize>,
    /// Columns masked off this pass (spares exhausted).
    pub masked: Vec<usize>,
}

/// Tracks spare consumption for one matrix across its lifetime and decides,
/// per unrecoverable column, between remap and mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairController {
    budget: usize,
    remapped: Vec<usize>,
    masked: Vec<usize>,
}

impl RepairController {
    /// A controller over `budget` spare columns.
    pub fn new(budget: SpareBudget) -> Self {
        RepairController {
            budget: budget.cols_per_matrix,
            remapped: Vec::new(),
            masked: Vec::new(),
        }
    }

    /// Spare columns still unused.
    pub fn spares_left(&self) -> usize {
        self.budget - self.remapped.len()
    }

    /// Columns living on spares so far.
    pub fn remapped(&self) -> &[usize] {
        &self.remapped
    }

    /// Columns masked off so far.
    pub fn masked(&self) -> &[usize] {
        &self.masked
    }

    /// Applies `report` to `matrix`: every logical output column with an
    /// unrecoverable cell is remapped onto a spare (its faults cleared)
    /// while spares last, then masked. Columns already handled in earlier
    /// passes consume nothing further.
    pub fn process(&mut self, matrix: &mut ReramMatrix, report: &ProgramReport) -> RepairOutcome {
        let mut outcome = RepairOutcome::default();
        let mut cols: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
        cols.sort_unstable();
        cols.dedup();
        for col in cols {
            if self.remapped.contains(&col) || self.masked.contains(&col) {
                continue;
            }
            if self.spares_left() > 0 {
                matrix.repair_outputs(&[col]);
                self.remapped.push(col);
                outcome.remapped.push(col);
            } else {
                matrix.mask_output(col);
                self.masked.push(col);
                outcome.masked.push(col);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn faulty_matrix() -> ReramMatrix {
        let w = vec![0.5f32; 8 * 16];
        ReramMatrix::program_with_faults(
            &w,
            8,
            16,
            &ReramParams::default(),
            &FaultModel::with_stuck_rate(0.05),
            21,
        )
    }

    #[test]
    fn remaps_within_budget_then_masks() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(0);
        let report = m.write_verify(&w, &VerifyPolicy::with_attempts(2), &mut rng);
        let bad_cols: Vec<usize> = {
            let mut c: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
            c.sort_unstable();
            c.dedup();
            c
        };
        assert!(bad_cols.len() >= 2, "fault rate should hit several columns");

        let mut ctl = RepairController::new(SpareBudget::with_cols(1));
        let outcome = ctl.process(&mut m, &report);
        assert_eq!(outcome.remapped.len(), 1);
        assert_eq!(outcome.masked.len(), bad_cols.len() - 1);
        assert_eq!(ctl.spares_left(), 0);
        assert_eq!(m.masked_outputs(), outcome.masked);
    }

    #[test]
    fn repeated_reports_consume_nothing_extra() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(1);
        let policy = VerifyPolicy::with_attempts(2);
        let report = m.write_verify(&w, &policy, &mut rng);
        let mut ctl = RepairController::new(SpareBudget::typical());
        let first = ctl.process(&mut m, &report);
        let spares_after_first = ctl.spares_left();

        // A second verified write only re-reports masked columns (the
        // remapped ones are fault-free now); nothing new is consumed.
        let report2 = m.write_verify(&w, &policy, &mut rng);
        let second = ctl.process(&mut m, &report2);
        assert!(second.remapped.is_empty() && second.masked.is_empty());
        assert_eq!(ctl.spares_left(), spares_after_first);
        assert_eq!(ctl.remapped(), first.remapped);
    }

    #[test]
    fn zero_budget_masks_everything() {
        let mut m = faulty_matrix();
        let w = vec![0.5f32; 8 * 16];
        let mut rng = StdRng::seed_from_u64(2);
        let report = m.write_verify(&w, &VerifyPolicy::with_attempts(2), &mut rng);
        let mut ctl = RepairController::new(SpareBudget::none());
        let outcome = ctl.process(&mut m, &report);
        assert!(outcome.remapped.is_empty());
        assert!(!outcome.masked.is_empty());
    }
}
