//! ReRAM endurance under training — how long the accelerator can train
//! before its weight cells wear out.
//!
//! The paper does not discuss endurance, but it is the first question any
//! adopter of in-ReRAM *training* asks: every batch update programs every
//! weight cell (Fig. 14b), and metal-oxide cells survive a bounded number
//! of programming cycles (reported values range from ~10⁶ for dense
//! storage-class parts to ~10¹⁰–10¹² for research devices). This module
//! turns the reproduction's write accounting into lifetime estimates, so
//! the trade-off is explicit instead of implicit.

use crate::mapping::MappedNetwork;
use crate::perf::PerfModel;

/// Device endurance in programming cycles per cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnduranceModel {
    /// Programming cycles a cell survives.
    pub write_cycles: f64,
}

impl EnduranceModel {
    /// A storage-class device (~10⁶ cycles).
    pub fn storage_class() -> Self {
        EnduranceModel { write_cycles: 1e6 }
    }

    /// A typical research-grade metal-oxide cell (~10⁹ cycles).
    pub fn research_grade() -> Self {
        EnduranceModel { write_cycles: 1e9 }
    }

    /// An optimistic endurance-optimised device (~10¹² cycles).
    pub fn optimistic() -> Self {
        EnduranceModel { write_cycles: 1e12 }
    }
}

/// Lifetime estimate for continuous training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lifetime {
    /// Weight updates (batches) per second at full training throughput.
    pub updates_per_second: f64,
    /// Programming pulses each weight cell receives per update (≈1; the
    /// averaged SGD step moves a cell at most a level or two).
    pub pulses_per_update: f64,
    /// Extra pulses the scrub scheduler lands on the worst-worn weight
    /// cell per processed image (0.0 with scrubbing off).
    pub scrub_pulses_per_image: f64,
    /// Seconds until the weight cells reach the endurance budget.
    pub seconds: f64,
}

impl Lifetime {
    /// Lifetime in days.
    pub fn days(&self) -> f64 {
        self.seconds / 86_400.0
    }

    /// Lifetime in years.
    pub fn years(&self) -> f64 {
        self.days() / 365.25
    }
}

/// Estimates how long `net` can train continuously before its weight cells
/// wear out under `model`.
///
/// The binding resource is the *weight* cells: every update reprograms
/// them, while buffer cells can be wear-levelled across the (much larger)
/// memory region. `pulses_per_update` is derived from the config's write
/// discipline: 1 for the ideal single-shot write (small averaged SGD deltas
/// move a cell at most one level), higher when program-and-verify retries
/// re-pulse cells — fault tolerance trades lifetime for accuracy.
///
/// # Panics
///
/// Panics if `model.write_cycles` is not positive.
pub fn training_lifetime(net: &MappedNetwork, model: &EnduranceModel) -> Lifetime {
    assert!(model.write_cycles > 0.0, "endurance must be positive");
    let b = net.config.batch_size as u64;
    // Time per batch at steady state: estimate over a long run.
    let n = 100 * b;
    let est = PerfModel::new(net).training(n, true);
    let updates_per_second = (n / b) as f64 / est.time_s;
    let pulses_per_update = net.config.write_pulse_multiplier();
    // Scrub wear on the worst-placed cell: a layer whose matrix has
    // `rows_l` word lines sees each of its cells re-scanned every
    // `rows_l / rows_per_pass` passes, and the expected re-pulse fraction
    // of scans lands a pulse. The narrowest matrix wears fastest.
    let scrub_pulses_per_image = if net.config.scrub_enabled() {
        let s = &net.config.scrub;
        net.layers
            .iter()
            .map(|l| {
                let rows = l.resolved.matrix_rows.max(1) as f64;
                let scanned = rows.min(s.rows_per_pass as f64);
                s.repulse_fraction * scanned / rows * s.passes_per_image()
            })
            .fold(0.0, f64::max)
    } else {
        0.0
    };
    let images_per_second = n as f64 / est.time_s;
    // `+ 0.0` with scrub off: baseline lifetimes stay bit-identical.
    let wear_per_second =
        updates_per_second * pulses_per_update + images_per_second * scrub_pulses_per_image;
    Lifetime {
        updates_per_second,
        pulses_per_update,
        scrub_pulses_per_image,
        seconds: model.write_cycles / wear_per_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use pipelayer_nn::zoo;

    fn mapped(spec: &pipelayer_nn::NetSpec) -> MappedNetwork {
        MappedNetwork::from_spec(spec, PipeLayerConfig::default())
    }

    #[test]
    fn storage_class_cells_wear_out_fast() {
        // MNIST-scale training updates thousands of times per second;
        // a 10⁶-cycle device lasts minutes — the adoption blocker.
        let net = mapped(&zoo::spec_mnist_a());
        let life = training_lifetime(&net, &EnduranceModel::storage_class());
        assert!(
            life.seconds < 3_600.0,
            "storage-class cells should die within an hour: {}s",
            life.seconds
        );
    }

    #[test]
    fn research_grade_survives_much_longer() {
        let net = mapped(&zoo::spec_mnist_a());
        let weak = training_lifetime(&net, &EnduranceModel::storage_class());
        let strong = training_lifetime(&net, &EnduranceModel::research_grade());
        assert!((strong.seconds / weak.seconds - 1e3).abs() < 1.0);
    }

    #[test]
    fn slower_pipelines_wear_slower() {
        // VGG's long cycle means far fewer updates per second than an MLP.
        let mlp = training_lifetime(
            &mapped(&zoo::spec_mnist_a()),
            &EnduranceModel::research_grade(),
        );
        let vgg = training_lifetime(
            &mapped(&zoo::vgg(zoo::VggVariant::D)),
            &EnduranceModel::research_grade(),
        );
        assert!(vgg.updates_per_second < mlp.updates_per_second);
        assert!(vgg.seconds > mlp.seconds);
    }

    #[test]
    fn verify_retries_shorten_lifetime() {
        use crate::repair::SpareBudget;
        use pipelayer_reram::{FaultModel, VerifyPolicy};
        let spec = zoo::spec_mnist_a();
        let base = mapped(&spec);
        let cfg = PipeLayerConfig::default().with_fault_tolerance(
            FaultModel::with_stuck_rate(1e-3),
            VerifyPolicy {
                max_attempts: 5,
                write_sigma: 0.5,
            },
            SpareBudget::typical(),
        );
        let ft = MappedNetwork::from_spec(&spec, cfg);
        let model = EnduranceModel::research_grade();
        let l_base = training_lifetime(&base, &model);
        let l_ft = training_lifetime(&ft, &model);
        assert_eq!(l_base.pulses_per_update, 1.0, "ideal write: one pulse");
        assert!(
            l_ft.pulses_per_update > 1.0,
            "retries must show up in wear: {}",
            l_ft.pulses_per_update
        );
        assert!(l_ft.seconds < l_base.seconds);
    }

    #[test]
    fn scrub_repulses_shorten_lifetime() {
        use crate::scrub::ScrubPolicy;
        let spec = zoo::spec_mnist_a();
        let base = mapped(&spec);
        let cfg = PipeLayerConfig {
            scrub: ScrubPolicy::every(10, 64),
            ..Default::default()
        };
        let scrubbed = MappedNetwork::from_spec(&spec, cfg);
        let model = EnduranceModel::research_grade();
        let l_base = training_lifetime(&base, &model);
        let l_scrub = training_lifetime(&scrubbed, &model);
        assert_eq!(l_base.scrub_pulses_per_image, 0.0);
        assert!(l_scrub.scrub_pulses_per_image > 0.0);
        // Scrubbing also throttles throughput, so *wall-clock* lifetime can
        // go either way; the invariant is that the device trains through
        // fewer images before wearing out (higher wear per image).
        let images = |l: &Lifetime| l.seconds * l.updates_per_second * 64.0;
        assert!(images(&l_scrub) < images(&l_base));
    }

    #[test]
    fn unit_conversions() {
        let l = Lifetime {
            updates_per_second: 1.0,
            pulses_per_update: 1.0,
            scrub_pulses_per_image: 0.0,
            seconds: 86_400.0 * 365.25,
        };
        assert!((l.days() - 365.25).abs() < 1e-9);
        assert!((l.years() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_endurance() {
        let net = mapped(&zoo::spec_mnist_a());
        training_lifetime(&net, &EnduranceModel { write_cycles: 0.0 });
    }
}
