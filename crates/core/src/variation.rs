//! Network-level device-variation study: what ReRAM programming variation
//! and stuck-at faults cost in application accuracy (the error-tolerance
//! premise of Sec. 5.1, made quantitative).

use pipelayer_nn::data::Dataset;
use pipelayer_nn::Network;
use pipelayer_quant::{restore_params, snapshot_params};
use pipelayer_reram::{ReramParams, VariationModel};

/// One point of a variation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Write-variation σ in conductance levels.
    pub sigma: f64,
    /// Absolute test accuracy with corrupted weights.
    pub accuracy: f32,
    /// Accuracy normalised to the unperturbed baseline.
    pub normalized: f32,
}

/// Applies `model` to every weight tensor in `net`, as stored on
/// `params.data_bits`-bit words of `params.cell_bits`-bit cells.
/// Biases are perturbed too — they live in the same arrays.
pub fn corrupt_network(net: &mut Network, model: &VariationModel, params: &ReramParams, seed: u64) {
    let mut salt = seed;
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            let w = model.perturb_weights(
                p.weight.as_slice(),
                params.data_bits,
                params.cell_bits,
                salt,
            );
            p.weight.as_mut_slice().copy_from_slice(&w);
            let b = model.perturb_weights(
                p.bias.as_slice(),
                params.data_bits,
                params.cell_bits,
                salt ^ 0xb1a5,
            );
            p.bias.as_mut_slice().copy_from_slice(&b);
            salt = salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        }
    }
}

/// Evaluates a trained network under increasing write variation, restoring
/// the original weights afterwards. `trials` corruption draws are averaged
/// per σ.
///
/// # Panics
///
/// Panics if `data` is empty or `trials` is zero.
pub fn variation_sweep(
    net: &mut Network,
    data: &Dataset,
    sigmas: &[f64],
    trials: usize,
    params: &ReramParams,
) -> Vec<VariationPoint> {
    assert!(!data.is_empty(), "empty evaluation dataset");
    assert!(trials > 0, "need at least one trial");
    let snapshot = snapshot_params(net);
    let base = net.accuracy(&data.images, &data.labels).max(1e-6);

    let mut points = Vec::with_capacity(sigmas.len());
    for (si, &sigma) in sigmas.iter().enumerate() {
        let model = VariationModel::with_sigma(sigma);
        let mut acc_sum = 0.0f32;
        for t in 0..trials {
            corrupt_network(net, &model, params, (si * 1000 + t) as u64);
            acc_sum += net.accuracy(&data.images, &data.labels);
            restore_params(net, &snapshot);
        }
        let accuracy = acc_sum / trials as f32;
        points.push(VariationPoint {
            sigma,
            accuracy,
            normalized: accuracy / base,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::data::SyntheticMnist;
    use pipelayer_nn::trainer::{TrainConfig, Trainer};
    use pipelayer_nn::zoo;

    fn trained() -> (Network, SyntheticMnist) {
        let data = SyntheticMnist::generate(250, 100, 55);
        let mut net = zoo::m1(55);
        Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
        (net, data)
    }

    #[test]
    fn zero_sigma_preserves_accuracy() {
        let (mut net, data) = trained();
        let pts = variation_sweep(&mut net, &data.test, &[0.0], 1, &ReramParams::default());
        assert!(
            (pts[0].normalized - 1.0).abs() < 0.05,
            "σ=0 should be ~lossless, got {}",
            pts[0].normalized
        );
    }

    #[test]
    fn accuracy_degrades_with_sigma_and_weights_restore() {
        let (mut net, data) = trained();
        let before = net.accuracy(&data.test.images, &data.test.labels);
        let pts = variation_sweep(
            &mut net,
            &data.test,
            &[0.5, 8.0],
            2,
            &ReramParams::default(),
        );
        assert!(
            pts[1].accuracy <= pts[0].accuracy + 0.05,
            "σ=8 ({}) should not beat σ=0.5 ({})",
            pts[1].accuracy,
            pts[0].accuracy
        );
        let after = net.accuracy(&data.test.images, &data.test.labels);
        assert_eq!(before, after, "sweep must restore the weights");
    }

    #[test]
    fn stuck_at_faults_hurt() {
        let (mut net, data) = trained();
        let base = net.accuracy(&data.test.images, &data.test.labels);
        let harsh = VariationModel {
            write_sigma: 0.0,
            stuck_at_zero: 0.4,
            stuck_at_max: 0.1,
        };
        corrupt_network(&mut net, &harsh, &ReramParams::default(), 9);
        let corrupted = net.accuracy(&data.test.images, &data.test.labels);
        assert!(
            corrupted < base,
            "40% dead cells should cost accuracy: {base} -> {corrupted}"
        );
    }
}
