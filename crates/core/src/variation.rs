//! Network-level device-variation study: what ReRAM programming variation
//! and stuck-at faults cost in application accuracy (the error-tolerance
//! premise of Sec. 5.1, made quantitative).

use pipelayer_nn::data::Dataset;
use pipelayer_nn::trainer::BatchNoise;
use pipelayer_nn::Network;
use pipelayer_quant::{restore_params, snapshot_params};
use pipelayer_reram::{seedstream, NoiseModel, ReramParams, VariationModel};

/// One point of a variation sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// Write-variation σ in conductance levels.
    pub sigma: f64,
    /// Absolute test accuracy with corrupted weights.
    pub accuracy: f32,
    /// Accuracy normalised to the unperturbed baseline.
    pub normalized: f32,
}

/// The per-buffer corruption seeds for parameter-bearing layer `ordinal`:
/// `(weight_seed, bias_seed)`. Pure in `(seed, ordinal)` — the same
/// `seedstream` discipline the crossbar stack uses — so corrupting layers
/// in any order, or one layer in isolation, draws the identical streams.
pub fn layer_corruption_seeds(seed: u64, ordinal: u64) -> (u64, u64) {
    (
        seedstream::crossbar_seed(seed, 2 * ordinal),
        seedstream::crossbar_seed(seed, 2 * ordinal + 1),
    )
}

/// Applies `model` to every weight tensor in `net`, as stored on
/// `params.data_bits`-bit words of `params.cell_bits`-bit cells.
/// Biases are perturbed too — they live in the same arrays. Each layer's
/// streams come from [`layer_corruption_seeds`], so the result is
/// independent of traversal order.
pub fn corrupt_network(net: &mut Network, model: &VariationModel, params: &ReramParams, seed: u64) {
    let mut ordinal = 0u64;
    for layer in net.layers_mut() {
        let Some(p) = layer.params_mut() else {
            continue;
        };
        let (weight_seed, bias_seed) = layer_corruption_seeds(seed, ordinal);
        let w = model.perturb_weights(
            p.weight.as_slice(),
            params.data_bits,
            params.cell_bits,
            weight_seed,
        );
        p.weight.as_mut_slice().copy_from_slice(&w);
        let b = model.perturb_weights(
            p.bias.as_slice(),
            params.data_bits,
            params.cell_bits,
            bias_seed,
        );
        p.bias.as_mut_slice().copy_from_slice(&b);
        ordinal += 1;
    }
}

/// Applies the unified analog non-ideality `model` (lognormal LRS/HRS
/// spread, IR drop, read noise) to every parameter tensor in `net`, as
/// mapped onto `params.data_bits`-bit words of `params.cell_bits`-bit
/// cells. `read_epoch` selects the per-read noise draw (device draws are
/// epoch-independent, so the systematic error component repeats across
/// epochs — which is what makes it learnable). Layer streams come from
/// [`layer_corruption_seeds`]: order-independent, reproducible from `seed`.
pub fn corrupt_network_noise(
    net: &mut Network,
    model: &NoiseModel,
    params: &ReramParams,
    seed: u64,
    read_epoch: u64,
) {
    let mut ordinal = 0u64;
    for layer in net.layers_mut() {
        let Some(p) = layer.params_mut() else {
            continue;
        };
        let (weight_seed, bias_seed) = layer_corruption_seeds(seed, ordinal);
        let w = model.perturb_weights(
            p.weight.as_slice(),
            params.data_bits,
            params.cell_bits,
            weight_seed,
            read_epoch,
        );
        p.weight.as_mut_slice().copy_from_slice(&w);
        let b = model.perturb_weights(
            p.bias.as_slice(),
            params.data_bits,
            params.cell_bits,
            bias_seed,
            read_epoch,
        );
        p.bias.as_mut_slice().copy_from_slice(&b);
        ordinal += 1;
    }
}

/// Adapts [`NoiseModel`] to the trainer's [`BatchNoise`] injection point
/// for noise-aware training: each batch's forward/backward passes run on
/// weights carrying the same device draws inference will see (device
/// streams depend only on `(seed, layer)`, not on the batch), plus a
/// fresh per-batch read-noise draw. Pure in `(buffer, layer, is_bias,
/// batch)`, so kill/resume and thread-count determinism hold.
#[derive(Debug, Clone, Copy)]
pub struct ReramNoiseHook {
    model: NoiseModel,
    params: ReramParams,
    seed: u64,
}

impl ReramNoiseHook {
    /// Hook injecting `model` on weights mapped per `params`, with all
    /// streams derived from `seed`.
    pub fn new(model: NoiseModel, params: ReramParams, seed: u64) -> Self {
        ReramNoiseHook {
            model,
            params,
            seed,
        }
    }
}

impl BatchNoise for ReramNoiseHook {
    fn perturb(&self, buf: &mut [f32], layer: usize, is_bias: bool, batch: u64) {
        let (weight_seed, bias_seed) = layer_corruption_seeds(self.seed, layer as u64);
        let seed = if is_bias { bias_seed } else { weight_seed };
        let out = self.model.perturb_weights(
            buf,
            self.params.data_bits,
            self.params.cell_bits,
            seed,
            batch,
        );
        buf.copy_from_slice(&out);
    }
}

/// Evaluates a trained network under increasing write variation, restoring
/// the original weights afterwards. `trials` corruption draws are averaged
/// per σ.
pub fn variation_sweep(
    net: &mut Network,
    data: &Dataset,
    sigmas: &[f64],
    trials: usize,
    params: &ReramParams,
) -> Vec<VariationPoint> {
    debug_assert!(!data.is_empty(), "empty evaluation dataset");
    debug_assert!(trials > 0, "need at least one trial");
    let snapshot = snapshot_params(net);
    let base = net.accuracy(&data.images, &data.labels).max(1e-6);

    let mut points = Vec::with_capacity(sigmas.len());
    for (si, &sigma) in sigmas.iter().enumerate() {
        let model = VariationModel::with_sigma(sigma);
        let mut acc_sum = 0.0f32;
        for t in 0..trials {
            corrupt_network(net, &model, params, (si * 1000 + t) as u64);
            acc_sum += net.accuracy(&data.images, &data.labels);
            restore_params(net, &snapshot);
        }
        let accuracy = acc_sum / trials as f32;
        points.push(VariationPoint {
            sigma,
            accuracy,
            normalized: accuracy / base,
        });
    }
    points
}

/// Evaluates a trained network under the unified analog non-ideality model
/// at increasing `strength` (the [`NoiseModel::with_strength`] knob),
/// restoring the original weights afterwards. The device draws are fixed
/// by `seed` — one simulated chip instance — and each of the `trials`
/// evaluations redraws only the per-read noise, mirroring repeated reads
/// of the same hardware. Shares the [`VariationPoint`] schema with
/// [`variation_sweep`] (`sigma` carries the strength), so both ablations
/// emit one report format.
pub fn noise_sweep(
    net: &mut Network,
    data: &Dataset,
    strengths: &[f64],
    trials: usize,
    params: &ReramParams,
    seed: u64,
) -> Vec<VariationPoint> {
    debug_assert!(!data.is_empty(), "empty evaluation dataset");
    debug_assert!(trials > 0, "need at least one trial");
    let snapshot = snapshot_params(net);
    let base = net.accuracy(&data.images, &data.labels).max(1e-6);

    let mut points = Vec::with_capacity(strengths.len());
    for &strength in strengths {
        let model = NoiseModel::with_strength(strength);
        let mut acc_sum = 0.0f32;
        for t in 0..trials {
            corrupt_network_noise(net, &model, params, seed, t as u64);
            acc_sum += net.accuracy(&data.images, &data.labels);
            restore_params(net, &snapshot);
        }
        let accuracy = acc_sum / trials.max(1) as f32;
        points.push(VariationPoint {
            sigma: strength,
            accuracy,
            normalized: accuracy / base,
        });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::data::SyntheticMnist;
    use pipelayer_nn::trainer::{TrainConfig, Trainer};
    use pipelayer_nn::zoo;

    fn trained() -> (Network, SyntheticMnist) {
        let data = SyntheticMnist::generate(250, 100, 55);
        let mut net = zoo::m1(55);
        Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 16,
            lr: 0.1,
            threads: 1,
        })
        .fit(&mut net, &data);
        (net, data)
    }

    #[test]
    fn zero_sigma_preserves_accuracy() {
        let (mut net, data) = trained();
        let pts = variation_sweep(&mut net, &data.test, &[0.0], 1, &ReramParams::default());
        assert!(
            (pts[0].normalized - 1.0).abs() < 0.05,
            "σ=0 should be ~lossless, got {}",
            pts[0].normalized
        );
    }

    #[test]
    fn accuracy_degrades_with_sigma_and_weights_restore() {
        let (mut net, data) = trained();
        let before = net.accuracy(&data.test.images, &data.test.labels);
        let pts = variation_sweep(
            &mut net,
            &data.test,
            &[0.5, 8.0],
            2,
            &ReramParams::default(),
        );
        assert!(
            pts[1].accuracy <= pts[0].accuracy + 0.05,
            "σ=8 ({}) should not beat σ=0.5 ({})",
            pts[1].accuracy,
            pts[0].accuracy
        );
        let after = net.accuracy(&data.test.images, &data.test.labels);
        assert_eq!(before, after, "sweep must restore the weights");
    }

    /// Satellite regression: `corrupt_network`'s per-layer streams must be
    /// pure in `(seed, layer ordinal)` — corrupting the layers back-to-front
    /// with [`layer_corruption_seeds`] yields bitwise-identical weights to
    /// the front-to-back `corrupt_network` pass.
    #[test]
    fn corruption_is_order_independent() {
        let params = ReramParams::default();
        let model = VariationModel::with_sigma(1.5);
        let mut net = zoo::m1(77);
        let reference: Vec<Vec<u32>> = {
            let mut n = zoo::m1(77);
            corrupt_network(&mut n, &model, &params, 99);
            n.layers_mut()
                .iter_mut()
                .filter_map(|l| l.params_mut())
                .map(|p| {
                    p.weight
                        .as_slice()
                        .iter()
                        .chain(p.bias.as_slice())
                        .map(|v| v.to_bits())
                        .collect()
                })
                .collect()
        };

        // Corrupt the same network layer-by-layer in REVERSE order.
        let mut param_layers: Vec<_> = net
            .layers_mut()
            .iter_mut()
            .filter_map(|l| l.params_mut())
            .collect();
        let count = param_layers.len() as u64;
        for (rev, p) in param_layers.iter_mut().rev().enumerate() {
            let ordinal = count - 1 - rev as u64;
            let (ws, bs) = layer_corruption_seeds(99, ordinal);
            let w =
                model.perturb_weights(p.weight.as_slice(), params.data_bits, params.cell_bits, ws);
            p.weight.as_mut_slice().copy_from_slice(&w);
            let b =
                model.perturb_weights(p.bias.as_slice(), params.data_bits, params.cell_bits, bs);
            p.bias.as_mut_slice().copy_from_slice(&b);
        }
        let reversed: Vec<Vec<u32>> = param_layers
            .iter()
            .map(|p| {
                p.weight
                    .as_slice()
                    .iter()
                    .chain(p.bias.as_slice())
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        assert_eq!(reference, reversed, "corruption depends on traversal order");
    }

    #[test]
    fn noise_sweep_zero_strength_is_lossless_and_restores() {
        let (mut net, data) = trained();
        let before = net.accuracy(&data.test.images, &data.test.labels);
        let pts = noise_sweep(&mut net, &data.test, &[0.0], 2, &ReramParams::default(), 7);
        assert_eq!(
            pts[0].accuracy, before,
            "strength 0 must be an exact no-op on accuracy"
        );
        let after = net.accuracy(&data.test.images, &data.test.labels);
        assert_eq!(before, after, "sweep must restore the weights");
    }

    #[test]
    fn noise_sweep_degrades_with_strength() {
        let (mut net, data) = trained();
        let pts = noise_sweep(
            &mut net,
            &data.test,
            &[0.5, 8.0],
            2,
            &ReramParams::default(),
            7,
        );
        assert!(
            pts[1].accuracy <= pts[0].accuracy + 0.05,
            "strength 8 ({}) should not beat strength 0.5 ({})",
            pts[1].accuracy,
            pts[0].accuracy
        );
    }

    /// The training-time hook and the evaluation-time corruption must draw
    /// the same device streams: perturbing via `ReramNoiseHook` batch `b`
    /// equals `corrupt_network_noise` at read epoch `b`.
    #[test]
    fn noise_hook_matches_eval_corruption() {
        use pipelayer_nn::trainer::BatchNoise as _;
        let params = ReramParams::default();
        let model = NoiseModel::with_strength(1.0);
        let hook = ReramNoiseHook::new(model, params, 31);

        let mut via_eval = zoo::m1(13);
        corrupt_network_noise(&mut via_eval, &model, &params, 31, 5);

        let mut via_hook = zoo::m1(13);
        let mut ordinal = 0usize;
        for layer in via_hook.layers_mut() {
            let Some(p) = layer.params_mut() else {
                continue;
            };
            hook.perturb(p.weight.as_mut_slice(), ordinal, false, 5);
            hook.perturb(p.bias.as_mut_slice(), ordinal, true, 5);
            ordinal += 1;
        }

        for (a, b) in via_eval
            .layers_mut()
            .iter_mut()
            .filter_map(|l| l.params_mut())
            .zip(
                via_hook
                    .layers_mut()
                    .iter_mut()
                    .filter_map(|l| l.params_mut()),
            )
        {
            assert_eq!(
                a.weight
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                b.weight
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn stuck_at_faults_hurt() {
        let (mut net, data) = trained();
        let base = net.accuracy(&data.test.images, &data.test.labels);
        let harsh = VariationModel {
            write_sigma: 0.0,
            stuck_at_zero: 0.4,
            stuck_at_max: 0.1,
        };
        corrupt_network(&mut net, &harsh, &ReramParams::default(), 9);
        let corrupted = net.accuracy(&data.test.images, &data.test.labels);
        assert!(
            corrupted < base,
            "40% dead cells should cost accuracy: {base} -> {corrupted}"
        );
    }
}
