//! Cycle-accurate simulation of the inter-layer training pipeline
//! (Sec. 3.3, Figs. 3 and 6).
//!
//! The simulator executes the exact schedule of Fig. 3 — forward layers at
//! `T_{i+l}`, output error at `T_{i+L+1}`, backward stages walking down at
//! one layer per cycle, the weight update one cycle after the batch's last
//! partial derivative — for every image of every batch, while *replaying
//! every data dependency against the circular buffers of Fig. 8*. A read
//! that finds its producer's data already overwritten is a dependency
//! violation; correctly sized buffers (`2(L−l)+1`) yield zero violations
//! and undersized ones provably fail (see the tests).
//!
//! The same engine produces the Fig. 6 schedule trace and validates the
//! closed-form cycle counts of [`analysis`](crate::analysis).

use crate::buffers::CircularBuffer;
use crate::config::ConfigError;
use std::collections::BTreeMap;

/// Pipeline simulator for `L` weighted layers and batch size `B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSim {
    l: usize,
    b: usize,
}

/// Result of a simulated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Total logical cycles elapsed.
    pub cycles: u64,
    /// Reads that found their data overwritten (0 for correct buffers).
    pub dependency_violations: u64,
    /// Buffers that experienced a read and a write in the same cycle — the
    /// buffers the paper duplicates (`d_L` and the `δ`s).
    pub same_cycle_buffers: Vec<String>,
    /// Peak number of concurrently active compute stages in one cycle.
    pub peak_parallel_stages: usize,
    /// Fig. 6-style schedule rows (`cycle: stage[image] ...`), if tracing.
    pub trace: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Stage {
    Forward(usize),  // A_l computes d_l
    Error,           // δ_L from d_L and the label
    Backward(usize), // stage m: δ_{m-1} (if m>1) and ∂W_m
    Update,
}

impl Stage {
    fn label(&self) -> String {
        match self {
            Stage::Forward(l) => format!("A{l}"),
            Stage::Error => "ErrL".to_string(),
            Stage::Backward(m) => format!("B{m}"),
            Stage::Update => "Upd".to_string(),
        }
    }
}

impl PipelineSim {
    /// Creates a simulator.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroLayers`] if `l` is zero and
    /// [`ConfigError::ZeroBatch`] if `b` is zero.
    pub fn try_new(l: usize, b: usize) -> Result<Self, ConfigError> {
        if l == 0 {
            return Err(ConfigError::ZeroLayers);
        }
        if b == 0 {
            return Err(ConfigError::ZeroBatch);
        }
        Ok(PipelineSim { l, b })
    }

    /// Creates a simulator.
    ///
    /// Zero `l`/`b` is debug-asserted; release builds clamp both to 1
    /// (a degenerate but well-defined pipeline). Use
    /// [`try_new`](Self::try_new) to handle the error explicitly.
    pub fn new(l: usize, b: usize) -> Self {
        debug_assert!(
            l > 0 && b > 0,
            "degenerate pipeline: L and B must be non-zero (got L={l}, B={b})"
        );
        PipelineSim {
            l: l.max(1),
            b: b.max(1),
        }
    }

    /// Simulates training of `n_batches` full batches with the d-buffer
    /// depths offset by `depth_slack` (0 = the paper's `2(L−l)+1`;
    /// negative values undersize the buffers to demonstrate failure).
    /// Set `trace_cycles > 0` to record that many schedule rows.
    pub fn simulate_training(
        &self,
        n_batches: usize,
        depth_slack: i64,
        trace_cycles: usize,
    ) -> SimOutcome {
        assert!(n_batches > 0, "need at least one batch");
        let (l, b) = (self.l as u64, self.b as u64);

        // Event schedule: cycle → [(stage, image id)].
        let mut events: BTreeMap<u64, Vec<(Stage, u64)>> = BTreeMap::new();
        for batch in 0..n_batches as u64 {
            let s = 1 + batch * (2 * l + b + 1);
            for i in 0..b {
                let img = batch * b + i;
                for layer in 1..=l {
                    events
                        .entry(s + i + layer - 1)
                        .or_default()
                        .push((Stage::Forward(layer as usize), img));
                }
                events
                    .entry(s + i + l)
                    .or_default()
                    .push((Stage::Error, img));
                for m in (1..=l).rev() {
                    events
                        .entry(s + i + 2 * l - m + 1)
                        .or_default()
                        .push((Stage::Backward(m as usize), img));
                }
            }
            events
                .entry(s + b + 2 * l)
                .or_default()
                .push((Stage::Update, batch));
        }

        // Buffers: d_1..d_L with Fig. 8 depths (+slack), δ_1..δ_L depth 1.
        let mut d_buf: Vec<CircularBuffer> = (1..=self.l)
            .map(|layer| {
                let depth = (2 * (self.l - layer) + 1) as i64 + depth_slack;
                CircularBuffer::new(depth.max(1) as usize)
            })
            .collect();
        let mut delta_buf: Vec<CircularBuffer> =
            (0..self.l).map(|_| CircularBuffer::new(1)).collect();

        let mut violations = 0u64;
        let mut peak = 0usize;
        let mut trace = Vec::new();
        let mut conflicted: std::collections::BTreeSet<String> = Default::default();
        let mut last_cycle = 0u64;

        for (&cycle, evs) in &events {
            last_cycle = cycle;
            peak = peak.max(evs.iter().filter(|(s, _)| *s != Stage::Update).count());

            // Reads first (buffer state from the previous cycle), writes after.
            let mut reads: Vec<(usize, char, u64)> = Vec::new(); // (idx, kind, tag)
            let mut writes: Vec<(usize, char, u64)> = Vec::new();
            for &(stage, img) in evs {
                match stage {
                    Stage::Forward(layer) => {
                        if layer > 1 {
                            reads.push((layer - 2, 'd', img));
                        }
                        writes.push((layer - 1, 'd', img));
                    }
                    Stage::Error => {
                        reads.push((self.l - 1, 'd', img));
                        writes.push((self.l - 1, 'e', img));
                    }
                    Stage::Backward(m) => {
                        reads.push((m - 1, 'e', img)); // δ_m
                        if m > 1 {
                            reads.push((m - 2, 'd', img)); // d_{m-1} for ∂W_m
                            writes.push((m - 2, 'e', img)); // δ_{m-1}
                        }
                    }
                    Stage::Update => {}
                }
            }
            for &(idx, kind, tag) in &reads {
                let buf = if kind == 'd' {
                    &mut d_buf[idx]
                } else {
                    &mut delta_buf[idx]
                };
                if !buf.read(tag, cycle) {
                    violations += 1;
                }
                if writes.iter().any(|&(wi, wk, _)| wi == idx && wk == kind) {
                    conflicted.insert(format!(
                        "{}{}",
                        if kind == 'd' { "d" } else { "delta" },
                        idx + 1
                    ));
                }
            }
            for &(idx, kind, tag) in &writes {
                let buf = if kind == 'd' {
                    &mut d_buf[idx]
                } else {
                    &mut delta_buf[idx]
                };
                buf.write(tag, cycle);
            }

            if trace.len() < trace_cycles {
                let mut row: Vec<String> = evs
                    .iter()
                    .map(|(s, img)| format!("{}[{img}]", s.label()))
                    .collect();
                row.sort();
                trace.push(format!("T{cycle}: {}", row.join(" ")));
            }
        }

        SimOutcome {
            cycles: last_cycle,
            dependency_violations: violations,
            same_cycle_buffers: conflicted.into_iter().collect(),
            peak_parallel_stages: peak,
            trace,
        }
    }

    /// Simulates pipelined testing of `n` images (no batch drains; one image
    /// enters per cycle; buffers hold a single entry each).
    pub fn simulate_testing(&self, n: u64, trace_cycles: usize) -> SimOutcome {
        assert!(n > 0, "empty workload");
        let l = self.l as u64;
        let mut d_buf: Vec<CircularBuffer> = (0..self.l).map(|_| CircularBuffer::new(1)).collect();
        let mut violations = 0u64;
        let mut peak = 0usize;
        let mut trace = Vec::new();
        let mut conflicted: std::collections::BTreeSet<String> = Default::default();

        let total = n + l - 1;
        for cycle in 1..=total {
            // Active stages: layer `layer` processes image `cycle - layer`.
            let mut active: Vec<(u64, u64)> = Vec::new(); // (layer, img)
            for layer in 1..=l {
                if cycle >= layer && cycle - layer < n {
                    active.push((layer, cycle - layer));
                }
            }
            peak = peak.max(active.len());
            for &(layer, img) in &active {
                if layer > 1 {
                    if !d_buf[(layer - 2) as usize].read(img, cycle) {
                        violations += 1;
                    }
                    if active.iter().any(|&(wl, _)| wl == layer - 1) {
                        conflicted.insert(format!("d{}", layer - 1));
                    }
                }
            }
            for &(layer, img) in &active {
                d_buf[(layer - 1) as usize].write(img, cycle);
            }
            if trace.len() < trace_cycles {
                let row: Vec<String> = active
                    .iter()
                    .map(|(layer, img)| format!("A{layer}[{img}]"))
                    .collect();
                trace.push(format!("T{cycle}: {}", row.join(" ")));
            }
        }

        SimOutcome {
            cycles: total,
            dependency_violations: violations,
            same_cycle_buffers: conflicted.into_iter().collect(),
            peak_parallel_stages: peak,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analysis;
    use proptest::prelude::*;

    #[test]
    fn matches_fig3_single_image() {
        // L = 3, B = 1: one image takes 2L+1 = 7 compute cycles + update.
        let sim = PipelineSim::new(3, 1);
        let out = sim.simulate_training(1, 0, 10);
        assert_eq!(out.cycles, 8);
        assert_eq!(out.dependency_violations, 0);
        // T1 runs A1 only; T5 runs B3 (∂W3 + δ2).
        assert_eq!(out.trace[0], "T1: A1[0]");
        assert!(out.trace[4].contains("B3[0]"));
        assert!(out.trace[6].contains("B1[0]"));
    }

    #[test]
    fn cycle_count_matches_table2_formula() {
        for (l, b, batches) in [(3usize, 4usize, 2usize), (8, 64, 1), (5, 16, 3)] {
            let sim = PipelineSim::new(l, b);
            let out = sim.simulate_training(batches, 0, 0);
            let a = Analysis::new(l, b);
            assert_eq!(
                out.cycles,
                a.training_cycles_pipelined((batches * b) as u64),
                "L={l} B={b}"
            );
            assert_eq!(out.dependency_violations, 0);
        }
    }

    #[test]
    fn undersized_buffers_violate_dependencies() {
        // Shrinking every d-buffer by one slot must break the pipeline —
        // the paper's 2(L−l)+1 sizing is tight.
        let sim = PipelineSim::new(4, 16);
        let out = sim.simulate_training(1, -1, 0);
        assert!(
            out.dependency_violations > 0,
            "undersized buffers should corrupt ∂W inputs"
        );
        // Extra slack must stay clean.
        let ok = sim.simulate_training(1, 1, 0);
        assert_eq!(ok.dependency_violations, 0);
    }

    #[test]
    fn duplicated_buffers_are_dl_and_deltas() {
        // The paper: same-cycle read+write "happens for the buffer at d_L,
        // δ_3, δ_2, δ_1" (L = 3).
        let sim = PipelineSim::new(3, 8);
        let out = sim.simulate_training(1, 0, 0);
        assert!(out.same_cycle_buffers.contains(&"d3".to_string()));
        assert!(out.same_cycle_buffers.contains(&"delta2".to_string()));
        assert!(out.same_cycle_buffers.contains(&"delta3".to_string()));
    }

    #[test]
    fn pipeline_reaches_full_occupancy() {
        // Mid-batch every stage (L forward + 1 error + L backward) is busy.
        let sim = PipelineSim::new(3, 32);
        let out = sim.simulate_training(1, 0, 0);
        assert_eq!(out.peak_parallel_stages, 2 * 3 + 1);
    }

    #[test]
    fn testing_matches_formula_and_is_clean() {
        let sim = PipelineSim::new(8, 64);
        let out = sim.simulate_testing(1000, 0);
        assert_eq!(
            out.cycles,
            Analysis::new(8, 64).testing_cycles_pipelined(1000)
        );
        assert_eq!(out.dependency_violations, 0);
        assert_eq!(out.peak_parallel_stages, 8);
    }

    #[test]
    fn trace_shows_one_new_image_per_cycle() {
        let sim = PipelineSim::new(2, 4);
        let out = sim.simulate_training(1, 0, 4);
        assert!(out.trace[0].contains("A1[0]"));
        assert!(out.trace[1].contains("A1[1]") && out.trace[1].contains("A2[0]"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// For any geometry, correctly sized buffers never violate a
        /// dependency and the cycle count equals the closed form.
        #[test]
        fn schedule_always_clean(l in 1usize..10, b in 1usize..32, batches in 1usize..4) {
            let sim = PipelineSim::new(l, b);
            let out = sim.simulate_training(batches, 0, 0);
            prop_assert_eq!(out.dependency_violations, 0);
            let a = Analysis::new(l, b);
            prop_assert_eq!(out.cycles, a.training_cycles_pipelined((batches * b) as u64));
        }
    }
}
