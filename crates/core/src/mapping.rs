//! Kernel-to-array mapping (Figs. 4/5) and array accounting (Table 2).
//!
//! Each weighted layer's kernel matrix (`K·K·C_in+1 × C_out`, Fig. 4) is
//! partitioned onto `128×128` crossbar tiles (Fig. 5), duplicated `G` times
//! (parallelism granularity) and ×8 for the positive/negative pair and the
//! four 4-bit segment groups (Fig. 14). Training additionally provisions:
//!
//! * `A_l2` arrays holding the reordered kernels `(W_l)*` for the error
//!   backward convolution (Fig. 11), for every layer except the first;
//! * morphable arrays holding the forward data `d` of in-flight images,
//!   used as kernels when computing partial derivatives (Fig. 12; Sec. 6.6
//!   notes `d` is written to morphable subarrays) — one copy per in-flight
//!   image, `B` per layer in the pipelined design;
//! * memory subarrays for the inter-layer circular buffers (Fig. 8).

use crate::config::{ConfigError, PipeLayerConfig};
use crate::granularity::default_granularity;
use pipelayer_nn::spec::{NetSpec, ResolvedLayer};
use pipelayer_reram::tile_grid;

/// A rejected mapping request.
#[derive(Debug, Clone, PartialEq)]
pub enum MapError {
    /// The per-layer granularity vector's length differed from the number
    /// of weighted layers.
    GranularityLength {
        /// Weighted layers in the network.
        expected: usize,
        /// Entries supplied.
        got: usize,
    },
    /// A granularity entry was zero.
    ZeroGranularity {
        /// Index of the offending layer.
        layer: usize,
    },
    /// The configuration itself was invalid.
    Config(ConfigError),
}

impl core::fmt::Display for MapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MapError::GranularityLength { expected, got } => {
                write!(
                    f,
                    "granularity length mismatch: {expected} layers, {got} entries"
                )
            }
            MapError::ZeroGranularity { layer } => {
                write!(f, "granularity must be positive (layer {layer} is zero)")
            }
            MapError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

impl From<ConfigError> for MapError {
    fn from(e: ConfigError) -> Self {
        MapError::Config(e)
    }
}

/// One weighted layer mapped onto arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedLayer {
    /// Geometry from the network spec.
    pub resolved: ResolvedLayer,
    /// Parallelism granularity `G` (weight-replication factor).
    pub g: usize,
    /// Crossbar tiles per matrix copy (`⌈rows/128⌉·⌈cols/128⌉`).
    pub tiles: usize,
    /// Tiles for the transposed/reordered backward matrix `(W)*`.
    pub tiles_backward: usize,
    /// Sequential array-read phases per image in the forward pass:
    /// `⌈P/G⌉` (Fig. 4's loop, shortened by replication).
    pub reads_forward: u64,
    /// Read phases for the error-backward convolution (zero for the first
    /// layer — `δ_0` is never needed).
    pub reads_error: u64,
    /// Read phases for the partial-derivative computation (Fig. 12).
    pub reads_gradient: u64,
    /// Output words written to the inter-layer buffer per image.
    pub out_words: u64,
    /// Error (`δ`) words written per image during backward.
    pub delta_words: u64,
    /// Input-data words copied into morphable arrays for the gradient
    /// convolution (the stored `d_{l-1}`, Fig. 12).
    pub in_words: u64,
}

/// A network fully mapped onto the accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedNetwork {
    /// Network name.
    pub name: String,
    /// Weighted layers in order.
    pub layers: Vec<MappedLayer>,
    /// Configuration used for the mapping.
    pub config: PipeLayerConfig,
}

impl MappedNetwork {
    /// Maps `spec` with the default (Table 5 style) granularity.
    ///
    /// # Errors
    ///
    /// Returns [`MapError::Config`] if `config` is invalid.
    pub fn try_from_spec(spec: &NetSpec, config: PipeLayerConfig) -> Result<Self, MapError> {
        let resolved = spec.resolve();
        let g = default_granularity(&resolved);
        Self::try_with_granularity(spec, &g, config)
    }

    /// Maps `spec` with the default (Table 5 style) granularity.
    ///
    /// An invalid `config` is debug-asserted; release builds proceed and
    /// rely on the downstream partitioning checks. Use
    /// [`try_from_spec`](Self::try_from_spec) to handle the error
    /// explicitly.
    pub fn from_spec(spec: &NetSpec, config: PipeLayerConfig) -> Self {
        let resolved = spec.resolve();
        let g = default_granularity(&resolved);
        Self::with_granularity(spec, &g, config)
    }

    /// Maps `spec` with an explicit per-layer granularity.
    ///
    /// # Errors
    ///
    /// Returns a [`MapError`] if `g.len()` differs from the number of
    /// weighted layers, any entry is zero, or `config` is invalid.
    pub fn try_with_granularity(
        spec: &NetSpec,
        g: &[usize],
        config: PipeLayerConfig,
    ) -> Result<Self, MapError> {
        config.validate()?;
        let resolved = spec.resolve();
        if g.len() != resolved.len() {
            return Err(MapError::GranularityLength {
                expected: resolved.len(),
                got: g.len(),
            });
        }
        if let Some(layer) = g.iter().position(|&x| x == 0) {
            return Err(MapError::ZeroGranularity { layer });
        }
        Ok(Self::map_resolved(spec, resolved, g, config))
    }

    /// Maps `spec` with an explicit per-layer granularity.
    ///
    /// A wrong-length `g`, zero entries, or an invalid `config` are
    /// debug-asserted; release builds sanitize the granularity (wrong
    /// length falls back to all-ones, zero entries are raised to 1) and
    /// proceed. Use [`try_with_granularity`](Self::try_with_granularity)
    /// to handle the error explicitly.
    pub fn with_granularity(spec: &NetSpec, g: &[usize], config: PipeLayerConfig) -> Self {
        debug_assert!(
            config.validate().is_ok(),
            "invalid config: {:?}",
            config.validate()
        );
        let resolved = spec.resolve();
        debug_assert!(
            g.len() == resolved.len(),
            "granularity length mismatch: expected {}, got {}",
            resolved.len(),
            g.len()
        );
        debug_assert!(
            g.iter().all(|&x| x > 0),
            "granularity must be positive in every layer"
        );
        let sane: Vec<usize> = if g.len() == resolved.len() {
            g.iter().map(|&x| x.max(1)).collect()
        } else {
            vec![1; resolved.len()]
        };
        Self::map_resolved(spec, resolved, &sane, config)
    }

    fn map_resolved(
        spec: &NetSpec,
        resolved: Vec<ResolvedLayer>,
        g: &[usize],
        config: PipeLayerConfig,
    ) -> Self {
        let size = config.params.xbar_size;
        let layers = resolved
            .into_iter()
            .zip(g)
            .enumerate()
            .map(|(idx, (r, &gl))| {
                let (tr, tc) = tile_grid(r.matrix_rows, r.matrix_cols, size);
                // Backward matrix: kernels reordered/transposed (Fig. 11);
                // for FC it is literally Wᵀ.
                let (btr, btc) = tile_grid(r.matrix_cols.max(1), r.matrix_rows, size);
                let p = r.window_positions.max(1) as u64;
                // Error backward convolves over the layer's *input* spatial
                // extent (zero-padded full convolution, Fig. 11).
                let p_err = if r.is_conv {
                    (r.in_shape.1 * r.in_shape.2) as u64
                } else {
                    1
                };
                let reads_error = if idx == 0 {
                    0
                } else {
                    p_err.div_ceil(gl as u64)
                };
                // Gradient phase: δ channels drive the stored-d arrays
                // (Fig. 12) — one input vector per output channel for conv.
                // FC gradients are produced entirely by the batch-averaged
                // 1/B-spike read at update time (Sec. 4.4.2), so they cost
                // nothing in the per-image backward phase.
                let reads_gradient = if r.is_conv {
                    (r.matrix_cols as u64).div_ceil(gl as u64)
                } else {
                    0
                };
                let out_words =
                    (r.post_pool_shape.0 * r.post_pool_shape.1 * r.post_pool_shape.2) as u64;
                let delta_words = (r.out_shape.0 * r.out_shape.1 * r.out_shape.2) as u64;
                let in_words = (r.in_shape.0 * r.in_shape.1 * r.in_shape.2) as u64;
                MappedLayer {
                    reads_forward: p.div_ceil(gl as u64),
                    reads_error,
                    reads_gradient,
                    out_words,
                    delta_words,
                    in_words,
                    tiles: tr * tc,
                    tiles_backward: btr * btc,
                    g: gl,
                    resolved: r,
                }
            })
            .collect();
        MappedNetwork {
            name: spec.name.clone(),
            layers,
            config,
        }
    }

    /// Number of weighted layers (`L`).
    pub fn weighted_layers(&self) -> usize {
        self.layers.len()
    }

    /// Physical crossbars in the forward (morphable, computation-mode)
    /// region: `Σ_l tiles_l · G_l · 8`.
    pub fn forward_crossbars(&self) -> u64 {
        let per_matrix = self.config.params.crossbars_per_matrix() as u64;
        self.layers
            .iter()
            .map(|l| l.tiles as u64 * l.g as u64 * per_matrix)
            .sum()
    }

    /// Crossbars holding the reordered backward kernels (`A_l2`), absent
    /// for the first layer.
    pub fn backward_crossbars(&self) -> u64 {
        let per_matrix = self.config.params.crossbars_per_matrix() as u64;
        self.layers
            .iter()
            .skip(1)
            .map(|l| l.tiles_backward as u64 * l.g as u64 * per_matrix)
            .sum()
    }

    /// Morphable crossbars storing the forward data `d` of in-flight images
    /// for gradient computation: capacity for `B` images per layer
    /// (4 cells per 16-bit word).
    pub fn gradient_data_crossbars(&self) -> u64 {
        let cells_per_xbar = (self.config.params.xbar_size * self.config.params.xbar_size) as u64;
        let cells_per_word = self.config.params.cells_per_word() as u64;
        let b = self.config.batch_size as u64;
        self.layers
            .iter()
            .map(|l| (l.out_words * cells_per_word * b).div_ceil(cells_per_xbar))
            .sum()
    }

    /// Memory-subarray crossbars for the circular buffers of Fig. 8
    /// (depth `2(L−l)+1` per inter-layer `d` buffer, plus the duplicated
    /// same-cycle read/write buffers for `d_L` and the `δ`s).
    pub fn buffer_crossbars(&self) -> u64 {
        let cells_per_xbar = (self.config.params.xbar_size * self.config.params.xbar_size) as u64;
        let cells_per_word = self.config.params.cells_per_word() as u64;
        let l_total = self.layers.len() as u64;
        let mut words = 0u64;
        for (idx, l) in self.layers.iter().enumerate() {
            let depth = 2 * (l_total - 1 - idx as u64) + 1;
            words += l.out_words * depth; // d buffer, Fig. 8 sizing
            words += l.delta_words * 2; // δ buffer, duplicated (same-cycle R/W)
        }
        (words * cells_per_word).div_ceil(cells_per_xbar)
    }

    /// All crossbars for the training configuration.
    pub fn total_crossbars_training(&self) -> u64 {
        self.forward_crossbars()
            + self.backward_crossbars()
            + self.gradient_data_crossbars()
            + self.buffer_crossbars()
    }

    /// Fractional area overhead of the spare-column provision: every weight
    /// crossbar carries `spares.cols_per_matrix` redundant bit lines next
    /// to its `xbar_size` working ones. Zero with no budget.
    pub fn spare_overhead_fraction(&self) -> f64 {
        self.config.spares.cols_per_matrix as f64 / self.config.params.xbar_size as f64
    }

    /// Equivalent extra crossbars the spare columns cost across the weight
    /// (forward + backward) arrays — what the redundancy adds to the area
    /// budget.
    pub fn spare_crossbar_equivalent(&self) -> f64 {
        (self.forward_crossbars() + self.backward_crossbars()) as f64
            * self.spare_overhead_fraction()
    }

    /// Crossbars for a testing-only deployment (forward arrays plus
    /// single-entry inter-layer buffers).
    pub fn total_crossbars_testing(&self) -> u64 {
        let cells_per_xbar = (self.config.params.xbar_size * self.config.params.xbar_size) as u64;
        let cells_per_word = self.config.params.cells_per_word() as u64;
        let words: u64 = self.layers.iter().map(|l| l.out_words).sum();
        self.forward_crossbars() + (words * cells_per_word).div_ceil(cells_per_xbar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    fn mapped(spec: &pipelayer_nn::NetSpec) -> MappedNetwork {
        MappedNetwork::from_spec(spec, PipeLayerConfig::default())
    }

    #[test]
    fn fig5_tile_count() {
        // A 512-row, 256-column kernel matrix needs 8 tiles of 128x128; with
        // bias row it grows to 513 rows → 5×2 = 10 tiles.
        let spec = pipelayer_nn::NetSpec::new(
            "fig5",
            (128, 8, 8),
            vec![pipelayer_nn::LayerSpec::Conv {
                k: 2,
                c_out: 256,
                stride: 1,
                pad: 0,
            }],
        );
        let m = mapped(&spec);
        assert_eq!(m.layers[0].resolved.matrix_rows, 513);
        assert_eq!(m.layers[0].tiles, 5 * 2);
    }

    #[test]
    fn reads_forward_divided_by_g() {
        let spec = zoo::spec_mnist_0();
        let m = mapped(&spec);
        for l in &m.layers {
            assert_eq!(
                l.reads_forward,
                (l.resolved.window_positions.max(1) as u64).div_ceil(l.g as u64)
            );
        }
    }

    #[test]
    fn first_layer_has_no_error_phase() {
        let m = mapped(&zoo::alexnet());
        assert_eq!(m.layers[0].reads_error, 0);
        assert!(m.layers[1].reads_error > 0);
    }

    #[test]
    fn crossbar_counts_scale_with_g() {
        let spec = zoo::vgg(zoo::VggVariant::A);
        let resolved = spec.resolve();
        let g1 = vec![1usize; resolved.len()];
        let g2 = vec![2usize; resolved.len()];
        let m1 = MappedNetwork::with_granularity(&spec, &g1, PipeLayerConfig::default());
        let m2 = MappedNetwork::with_granularity(&spec, &g2, PipeLayerConfig::default());
        assert_eq!(m2.forward_crossbars(), 2 * m1.forward_crossbars());
        assert!(m2.total_crossbars_training() > m1.total_crossbars_training());
    }

    #[test]
    fn training_needs_more_arrays_than_testing() {
        let m = mapped(&zoo::spec_mnist_0());
        assert!(m.total_crossbars_training() > m.total_crossbars_testing());
    }

    #[test]
    fn buffer_sizing_follows_fig8() {
        // For a 4-weighted-layer net the d-buffer depths are 7,5,3,1.
        let m = mapped(&zoo::spec_mnist_0());
        let l = m.layers.len() as u64;
        let depths: Vec<u64> = (0..l).map(|i| 2 * (l - 1 - i) + 1).collect();
        assert_eq!(depths, vec![7, 5, 3, 1]);
        assert!(m.buffer_crossbars() > 0);
    }

    #[test]
    fn eight_crossbars_per_matrix_copy() {
        let m = mapped(&zoo::spec_mnist_a());
        // Mnist-A: ip785-100 → 7×1 tiles, G=1 → 56 crossbars; ip101-10 → 8.
        assert_eq!(m.forward_crossbars(), (7 + 1) * 8);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "granularity length mismatch")]
    fn rejects_wrong_granularity_length() {
        let spec = zoo::spec_mnist_a();
        MappedNetwork::with_granularity(&spec, &[1], PipeLayerConfig::default());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn wrong_granularity_length_falls_back_to_ones_in_release() {
        let spec = zoo::spec_mnist_a();
        let m = MappedNetwork::with_granularity(&spec, &[1], PipeLayerConfig::default());
        assert_eq!(
            m,
            MappedNetwork::with_granularity(&spec, &[1, 1], PipeLayerConfig::default())
        );
    }

    #[test]
    fn try_variants_return_errors_not_panics() {
        let spec = zoo::spec_mnist_a();
        let err = MappedNetwork::try_with_granularity(&spec, &[1], PipeLayerConfig::default());
        assert_eq!(
            err,
            Err(MapError::GranularityLength {
                expected: 2,
                got: 1
            })
        );
        let err = MappedNetwork::try_with_granularity(&spec, &[1, 0], PipeLayerConfig::default());
        assert_eq!(err, Err(MapError::ZeroGranularity { layer: 1 }));
        let ok = MappedNetwork::try_from_spec(&spec, PipeLayerConfig::default()).unwrap();
        assert_eq!(
            ok,
            MappedNetwork::from_spec(&spec, PipeLayerConfig::default())
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "granularity must be positive")]
    fn rejects_zero_granularity() {
        let spec = zoo::spec_mnist_a();
        MappedNetwork::with_granularity(&spec, &[1, 0], PipeLayerConfig::default());
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn zero_granularity_entries_raise_to_one_in_release() {
        let spec = zoo::spec_mnist_a();
        let m = MappedNetwork::with_granularity(&spec, &[1, 0], PipeLayerConfig::default());
        assert_eq!(
            m,
            MappedNetwork::with_granularity(&spec, &[1, 1], PipeLayerConfig::default())
        );
    }

    #[test]
    fn try_mapping_propagates_config_errors() {
        let spec = zoo::spec_mnist_a();
        let bad = PipeLayerConfig {
            batch_size: 0,
            ..Default::default()
        };
        assert!(matches!(
            MappedNetwork::try_from_spec(&spec, bad),
            Err(MapError::Config(crate::config::ConfigError::ZeroBatch))
        ));
    }

    #[test]
    fn spare_budget_adds_area_overhead() {
        use crate::repair::SpareBudget;
        let spec = zoo::spec_mnist_0();
        let none = mapped(&spec);
        assert_eq!(none.spare_overhead_fraction(), 0.0);
        assert_eq!(none.spare_crossbar_equivalent(), 0.0);

        let cfg = PipeLayerConfig {
            spares: SpareBudget::typical(),
            ..Default::default()
        };
        let spared = MappedNetwork::from_spec(&spec, cfg);
        assert!((spared.spare_overhead_fraction() - 4.0 / 128.0).abs() < 1e-12);
        assert!(spared.spare_crossbar_equivalent() > 0.0);
        // Redundancy never changes the working-array accounting.
        assert_eq!(spared.forward_crossbars(), none.forward_crossbars());
    }
}
