//! A complete, self-describing report for one accelerator configuration —
//! the artifact a downstream user asks the simulator for: mapping, timing,
//! throughput, energy, power and area in one structure with a readable
//! `Display`.

use crate::area::{training_area, AreaModel};
use crate::mapping::MappedNetwork;
use crate::perf::{PerfModel, RunEstimate};
use crate::timing::TimingModel;
use std::fmt;

/// Per-layer mapping summary.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name (`conv3x64`, `ip4096-1000`, ...).
    pub name: String,
    /// Kernel-matrix dimensions (rows × cols).
    pub matrix: (usize, usize),
    /// Crossbar tiles per copy.
    pub tiles: usize,
    /// Replication factor `G`.
    pub g: usize,
    /// Sequential reads per forward cycle.
    pub reads: u64,
    /// Forward-phase duration, ns.
    pub forward_ns: f64,
    /// Backward-phase duration, ns.
    pub backward_ns: f64,
}

/// The full configuration report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigurationReport {
    /// Network name.
    pub network: String,
    /// Weighted layers `L`.
    pub layers: usize,
    /// Batch size `B`.
    pub batch: usize,
    /// Per-layer mapping/timing rows.
    pub per_layer: Vec<LayerReport>,
    /// Total crossbars (training deployment).
    pub crossbars: u64,
    /// Die area, mm².
    pub area_mm2: f64,
    /// Training estimate for the probe workload.
    pub training: RunEstimate,
    /// Testing estimate for the probe workload.
    pub testing: RunEstimate,
    /// Sustained training GOPS.
    pub gops: f64,
}

impl ConfigurationReport {
    /// Builds the report over a probe workload of `n` images (rounded down
    /// to a batch multiple, minimum one batch).
    pub fn build(net: &MappedNetwork, n: u64) -> Self {
        let b = net.config.batch_size as u64;
        let n = (n - n % b).max(b);
        let perf = PerfModel::new(net);
        let timing = TimingModel::new(net);
        let per_layer = net
            .layers
            .iter()
            .map(|l| LayerReport {
                name: l.resolved.name.clone(),
                matrix: (l.resolved.matrix_rows, l.resolved.matrix_cols),
                tiles: l.tiles,
                g: l.g,
                reads: l.reads_forward,
                forward_ns: timing.forward_phase_ns(l),
                backward_ns: timing.backward_phase_ns(l),
            })
            .collect();
        let area = training_area(net, &AreaModel::default());
        ConfigurationReport {
            network: net.name.clone(),
            layers: net.weighted_layers(),
            batch: net.config.batch_size,
            per_layer,
            crossbars: area.crossbars,
            area_mm2: area.mm2,
            training: perf.training(n, true),
            testing: perf.testing(n, true),
            gops: perf.training_gops(n),
        }
    }

    /// Computational efficiency, GOPS/s/mm².
    pub fn compute_efficiency(&self) -> f64 {
        self.gops / self.area_mm2
    }

    /// Power efficiency, GOPS/s/W.
    pub fn power_efficiency(&self) -> f64 {
        self.gops / self.training.power_w()
    }
}

impl fmt::Display for ConfigurationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} — L={} B={} | {} crossbars, {:.1} mm^2",
            self.network, self.layers, self.batch, self.crossbars, self.area_mm2
        )?;
        writeln!(
            f,
            "  training: {:>10.0} img/s  {:>8.3} J  cycle {:.2} us",
            self.training.throughput(),
            self.training.energy_j,
            self.training.cycle_ns / 1e3
        )?;
        writeln!(
            f,
            "  testing:  {:>10.0} img/s  {:>8.3} J  cycle {:.2} us",
            self.testing.throughput(),
            self.testing.energy_j,
            self.testing.cycle_ns / 1e3
        )?;
        writeln!(
            f,
            "  {:.0} GOPS | {:.1} GOPS/s/mm^2 | {:.1} GOPS/s/W",
            self.gops,
            self.compute_efficiency(),
            self.power_efficiency()
        )?;
        for l in &self.per_layer {
            writeln!(
                f,
                "    {:>14} {:>5}x{:<5} tiles {:>5} G {:>5} reads {:>4}  fwd {:>9.2} us  bwd {:>9.2} us",
                l.name,
                l.matrix.0,
                l.matrix.1,
                l.tiles,
                l.g,
                l.reads,
                l.forward_ns / 1e3,
                l.backward_ns / 1e3
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipeLayerConfig;
    use pipelayer_nn::zoo;

    #[test]
    fn report_covers_every_layer() {
        let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
        let r = ConfigurationReport::build(&net, 640);
        assert_eq!(r.per_layer.len(), 8);
        assert!(r.area_mm2 > 0.0 && r.gops > 0.0);
        assert!(r.compute_efficiency() > 0.0 && r.power_efficiency() > 0.0);
    }

    #[test]
    fn probe_workload_rounds_to_batch() {
        let net = MappedNetwork::from_spec(&zoo::spec_mnist_a(), PipeLayerConfig::with_batch(64));
        let r = ConfigurationReport::build(&net, 100); // rounds to 64
        assert_eq!(r.training.images, 64);
        let r2 = ConfigurationReport::build(&net, 10); // clamps up to one batch
        assert_eq!(r2.training.images, 64);
    }

    #[test]
    fn display_is_complete_and_nonempty() {
        let net = MappedNetwork::from_spec(&zoo::spec_mnist_0(), PipeLayerConfig::default());
        let r = ConfigurationReport::build(&net, 128);
        let s = r.to_string();
        assert!(s.contains("Mnist-0"));
        assert!(s.contains("GOPS"));
        assert!(s.lines().count() >= 4 + 4);
    }
}
