//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The shape of a [`Tensor`](crate::Tensor): an ordered list of dimension
/// sizes, row-major (the last dimension is contiguous).
///
/// # Example
///
/// ```
/// use pipelayer_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.offset(&[1, 2, 3]), 23);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or any dimension is zero.
    pub fn new(dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "shape must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "all dimensions must be non-zero, got {dims:?}"
        );
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.dims[d]
    }

    /// Row-major strides: `strides()[i]` is the linear-offset step when
    /// index `i` increases by one.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        for (d, (&i, &n)) in idx.iter().zip(&self.dims).enumerate() {
            assert!(
                i < n,
                "index {i} out of bounds for dimension {d} (size {n})"
            );
            off = off * n + i;
        }
        off
    }

    /// Inverse of [`offset`](Self::offset): the multi-index of a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `off >= numel()`.
    pub fn unravel(&self, mut off: usize) -> Vec<usize> {
        assert!(off < self.numel(), "offset {off} out of bounds");
        let mut idx = vec![0usize; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            idx[d] = off % self.dims[d];
            off /= self.dims[d];
        }
        idx
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[3, 5, 7]);
        for off in 0..s.numel() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx), off);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[28, 28]).to_string(), "28x28");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn rejects_zero_dim() {
        Shape::new(&[3, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        Shape::new(&[]);
    }
}
