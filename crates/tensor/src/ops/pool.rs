//! Pooling layers: max pooling (with argmax routing for the backward pass,
//! Fig. 10b) and average pooling (Eq. 2).

use crate::Tensor;

pub use super::conv::conv_output_len as pool_output_len;

/// The argmax bookkeeping produced by [`maxpool2d`]: for every output point,
/// the linear offset (within the input tensor) of the input element that won
/// the window. Mirrors the paper's observation that with `d_l` stored in
/// memory subarrays, "the index for the max element in a window can be found"
/// (Sec. 4.3) — here we keep the index explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolIndices {
    indices: Vec<usize>,
    input_dims: Vec<usize>,
}

impl PoolIndices {
    /// Winning input offsets, one per output element (row-major).
    pub fn winners(&self) -> &[usize] {
        &self.indices
    }

    /// Shape of the input tensor the indices refer to.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }
}

/// Max-pool forward: `k×k` windows with stride `stride`.
///
/// Returns the pooled tensor and the argmax indices needed by
/// [`maxpool2d_backward`].
///
/// # Panics
///
/// Panics if `input` is not rank-3 or the window does not fit.
pub fn maxpool2d(input: &Tensor, k: usize, stride: usize) -> (Tensor, PoolIndices) {
    let (c, h, w) = dims3(input);
    let ho = pool_output_len(h, k, stride, 0);
    let wo = pool_output_len(w, k, stride, 0);
    let mut out = Tensor::zeros(&[c, ho, wo]);
    let mut indices = Vec::with_capacity(c * ho * wo);
    for ci in 0..c {
        for oy in 0..ho {
            for ox in 0..wo {
                // Seed the argmax from the window's own first element, never a
                // sentinel: with a NEG_INFINITY/offset-0 default, an all-NaN
                // (or all -inf) window never fires `v > best` and routes its
                // gradient to linear offset 0 — the wrong channel entirely.
                let (iy0, ix0) = (oy * stride, ox * stride);
                let mut best = input[[ci, iy0, ix0]];
                let mut best_off = (ci * h + iy0) * w + ix0;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = iy0 + ky;
                        let ix = ix0 + kx;
                        let v = input[[ci, iy, ix]];
                        if v > best {
                            best = v;
                            best_off = (ci * h + iy) * w + ix;
                        }
                    }
                }
                out[[ci, oy, ox]] = best;
                indices.push(best_off);
            }
        }
    }
    (
        out,
        PoolIndices {
            indices,
            input_dims: vec![c, h, w],
        },
    )
}

/// Max-pool backward: routes each output error to the input element that won
/// its window (all other window positions receive zero), Fig. 10(b).
///
/// # Panics
///
/// Panics if `delta`'s element count differs from the recorded window count.
pub fn maxpool2d_backward(delta: &Tensor, idx: &PoolIndices) -> Tensor {
    assert_eq!(
        delta.numel(),
        idx.indices.len(),
        "delta has {} elements but pooling recorded {} windows",
        delta.numel(),
        idx.indices.len()
    );
    let mut dx = Tensor::zeros(&idx.input_dims);
    let dxs = dx.as_mut_slice();
    for (&off, &d) in idx.indices.iter().zip(delta.as_slice()) {
        dxs[off] += d;
    }
    dx
}

/// Average-pool forward, Eq. (2): non-overlapping `k×k` windows averaged.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or the window does not fit.
pub fn avgpool2d(input: &Tensor, k: usize, stride: usize) -> Tensor {
    let (c, h, w) = dims3(input);
    let ho = pool_output_len(h, k, stride, 0);
    let wo = pool_output_len(w, k, stride, 0);
    let inv = 1.0 / (k * k) as f32;
    Tensor::from_fn(&[c, ho, wo], |i| {
        let (ci, oy, ox) = (i[0], i[1], i[2]);
        let mut acc = 0.0;
        for ky in 0..k {
            for kx in 0..k {
                acc += input[[ci, oy * stride + ky, ox * stride + kx]];
            }
        }
        acc * inv
    })
}

/// Average-pool backward: each output error is spread uniformly
/// (scaled by `1/k²`) over its window.
///
/// # Panics
///
/// Panics if `delta` is not rank-3 or is inconsistent with the given input
/// geometry.
pub fn avgpool2d_backward(
    delta: &Tensor,
    input_hw: (usize, usize),
    k: usize,
    stride: usize,
) -> Tensor {
    let (c, dh, dw) = dims3(delta);
    let (h, w) = input_hw;
    assert_eq!(
        dh,
        pool_output_len(h, k, stride, 0),
        "delta height mismatch"
    );
    assert_eq!(dw, pool_output_len(w, k, stride, 0), "delta width mismatch");
    let inv = 1.0 / (k * k) as f32;
    let mut dx = Tensor::zeros(&[c, h, w]);
    for ci in 0..c {
        for oy in 0..dh {
            for ox in 0..dw {
                let d = delta[[ci, oy, ox]] * inv;
                for ky in 0..k {
                    for kx in 0..k {
                        dx[[ci, oy * stride + ky, ox * stride + kx]] += d;
                    }
                }
            }
        }
    }
    dx
}

fn dims3(t: &Tensor) -> (usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        3,
        "pooling expects rank-3 [C,H,W] tensors"
    );
    (t.dims()[0], t.dims()[1], t.dims()[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_known() {
        let x = Tensor::from_vec(
            &[1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (y, _) = maxpool2d(&x, 2, 2);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_winner() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let (_, idx) = maxpool2d(&x, 2, 2);
        let delta = Tensor::from_vec(&[1, 1, 1], vec![5.0]);
        let dx = maxpool2d_backward(&delta, &idx);
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_backward_accumulates_overlaps() {
        // stride 1 with k=2 has overlapping windows; a strict max at the
        // center receives all four window errors.
        let x = Tensor::from_vec(
            &[1, 3, 3],
            vec![0.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0, 0.0, 0.0],
        );
        let (_, idx) = maxpool2d(&x, 2, 1);
        let delta = Tensor::ones(&[1, 2, 2]);
        let dx = maxpool2d_backward(&delta, &idx);
        assert_eq!(dx[[0, 1, 1]], 4.0);
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn avgpool_forward_known() {
        let x = Tensor::from_fn(&[1, 2, 2], |i| (i[1] * 2 + i[2]) as f32); // 0,1,2,3
        let y = avgpool2d(&x, 2, 2);
        assert_eq!(y.as_slice(), &[1.5]);
    }

    #[test]
    fn avgpool_backward_spreads_uniformly() {
        let delta = Tensor::from_vec(&[1, 1, 1], vec![8.0]);
        let dx = avgpool2d_backward(&delta, (2, 2), 2, 2);
        assert_eq!(dx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avgpool_gradient_check() {
        let mut x = Tensor::from_fn(&[2, 4, 4], |i| {
            ((i[0] + i[1] + 2 * i[2]) as f32 * 0.37).sin()
        });
        let loss = |x: &Tensor| avgpool2d(x, 2, 2).norm_sq() * 0.5;
        let y = avgpool2d(&x, 2, 2);
        let dx = avgpool2d_backward(&y, (4, 4), 2, 2);
        let eps = 1e-3;
        for probe in [[0usize, 0, 0], [1, 3, 2], [0, 2, 1]] {
            let orig = x[probe];
            x[probe] = orig + eps;
            let lp = loss(&x);
            x[probe] = orig - eps;
            let lm = loss(&x);
            x[probe] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx[probe]).abs() < 1e-3, "at {probe:?}");
        }
    }

    #[test]
    fn maxpool_gradient_check() {
        // Perturb non-winning elements: loss must not change to first order.
        let x = Tensor::from_vec(&[1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let (y, idx) = maxpool2d(&x, 2, 2);
        let dx = maxpool2d_backward(&y, &idx);
        // Gradient of 0.5*||maxpool(x)||^2 wrt the winner is the output value.
        assert_eq!(dx.as_slice(), &[0.0, 9.0, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_all_nan_window_stays_in_window() {
        // Regression: channel 1's window is all-NaN. The old argmax init
        // (best = -inf, best_off = 0) never updated, so the gradient was
        // routed to linear offset 0 — channel 0's first element.
        let x = Tensor::from_vec(
            &[2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, f32::NAN, f32::NAN, f32::NAN, f32::NAN],
        );
        let (y, idx) = maxpool2d(&x, 2, 2);
        assert!(y[[1, 0, 0]].is_nan(), "all-NaN window must pool to NaN");
        let delta = Tensor::from_vec(&[2, 1, 1], vec![0.0, 7.0]);
        let dx = maxpool2d_backward(&delta, &idx);
        assert_eq!(
            dx[[0, 0, 0]],
            0.0,
            "channel-1 gradient must not leak into channel 0"
        );
        let ch1_sum: f32 = dx.as_slice()[4..8].iter().sum();
        assert_eq!(ch1_sum, 7.0, "gradient must land inside channel 1's window");
    }

    #[test]
    fn maxpool_all_neg_inf_window_stays_in_window() {
        let x = Tensor::from_vec(
            &[2, 2, 2],
            vec![
                1.0,
                2.0,
                3.0,
                4.0,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
                f32::NEG_INFINITY,
            ],
        );
        let (y, idx) = maxpool2d(&x, 2, 2);
        assert_eq!(y[[1, 0, 0]], f32::NEG_INFINITY);
        let delta = Tensor::from_vec(&[2, 1, 1], vec![0.0, 3.0]);
        let dx = maxpool2d_backward(&delta, &idx);
        assert_eq!(dx[[0, 0, 0]], 0.0);
        let ch1_sum: f32 = dx.as_slice()[4..8].iter().sum();
        assert_eq!(ch1_sum, 3.0);
    }

    #[test]
    #[should_panic(expected = "recorded")]
    fn maxpool_backward_rejects_mismatched_delta() {
        let x = Tensor::ones(&[1, 4, 4]);
        let (_, idx) = maxpool2d(&x, 2, 2);
        maxpool2d_backward(&Tensor::ones(&[1, 1, 1]), &idx);
    }
}
