//! The im2col lowering: turns convolution into a matrix product.
//!
//! This is precisely the data-input scheme of Fig. 4 of the paper: at each
//! kernel-window position the `K_x·K_y·C_l` input patch becomes one column
//! vector (the "yellow bar") that is fed to the crossbar holding the kernel
//! matrix. PipeLayer's intra-layer parallelism (Sec. 3.2) is a hardware
//! parallelisation of exactly this loop, so the lowering is shared between
//! the software reference and the accelerator's functional model.

use super::conv::conv_output_len;
use super::lowered::{col2im_from, conv2d_im2col_with, im2col_into, ConvScratch};
use crate::Tensor;

/// Lowers `input [C,H,W]` into a patch matrix of shape
/// `[H_out·W_out, C·Kh·Kw]`: row `p` is the flattened receptive field of
/// output position `p` (row-major over `oy, ox`), column order `(c, ky, kx)`.
///
/// Allocating convenience wrapper over
/// [`im2col_into`](super::im2col_into); hot loops should call the slice
/// variant with a reused buffer.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or the window does not fit.
pub fn im2col(input: &Tensor, kh: usize, kw: usize, stride: usize, pad: usize) -> Tensor {
    let mut buf = Vec::new();
    let (rows, cols) = im2col_into(input, kh, kw, stride, pad, &mut buf);
    Tensor::from_vec(&[rows, cols], buf)
}

/// Inverse of [`im2col`]: scatters (accumulating) a patch matrix back into an
/// image of shape `[C,H,W]`. Overlapping patch positions sum, which makes
/// this the adjoint operator needed for gradient computations.
///
/// # Panics
///
/// Panics if `cols` is not rank-2 or its shape is inconsistent with the
/// geometry parameters.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(
        cols.shape().rank(),
        2,
        "col2im expects a rank-2 patch matrix"
    );
    let ho = conv_output_len(h, kh, stride, pad);
    let wo = conv_output_len(w, kw, stride, pad);
    assert_eq!(cols.dims()[0], ho * wo, "col2im row count mismatch");
    assert_eq!(cols.dims()[1], c * kh * kw, "col2im column count mismatch");
    let mut img = Tensor::zeros(&[c, h, w]);
    col2im_from(
        cols.as_slice(),
        c,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        img.as_mut_slice(),
    );
    img
}

/// Convolution forward via im2col + GEMM. Numerically identical to
/// [`conv2d`](super::conv2d) (up to float associativity) and considerably
/// faster for the MNIST-scale functional runs.
///
/// Allocating convenience wrapper over
/// [`conv2d_im2col_with`](super::conv2d_im2col_with); hot loops should call
/// the `_with` variant with a reused [`ConvScratch`].
///
/// # Panics
///
/// Panics on the same conditions as [`conv2d`](super::conv2d).
pub fn conv2d_im2col(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
) -> Tensor {
    let mut scratch = ConvScratch::new();
    conv2d_im2col_with(input, weight, bias, stride, pad, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::super::conv::conv2d;
    use super::*;

    #[test]
    fn im2col_known_patch() {
        let x = Tensor::from_fn(&[1, 3, 3], |i| (i[1] * 3 + i[2]) as f32);
        let cols = im2col(&x, 2, 2, 1, 0);
        assert_eq!(cols.dims(), &[4, 4]);
        // First patch (top-left 2x2): 0,1,3,4
        assert_eq!(
            &cols.as_slice()[0..4],
            &[0.0, 1.0, 3.0, 4.0],
            "first patch wrong"
        );
    }

    #[test]
    fn im2col_zero_pads() {
        let x = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&x, 3, 3, 1, 1);
        // 4 output positions; each 3x3 patch has exactly 4 ones (the image).
        assert_eq!(cols.dims(), &[4, 9]);
        for p in 0..4 {
            let s: f32 = (0..9).map(|c| cols[[p, c]]).sum();
            assert_eq!(s, 4.0);
        }
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        let x = Tensor::from_fn(&[3, 7, 7], |i| {
            ((i[0] * 49 + i[1] * 7 + i[2]) as f32 * 0.11).sin()
        });
        let w = Tensor::from_fn(&[4, 3, 3, 3], |i| {
            ((i[0] * 27 + i[1] * 9 + i[2] * 3 + i[3]) as f32 * 0.07).cos()
        });
        let b = Tensor::from_vec(&[4], vec![0.1, -0.2, 0.3, 0.0]);
        for (stride, pad) in [(1, 0), (1, 1), (2, 1), (2, 0)] {
            let direct = conv2d(&x, &w, &b, stride, pad);
            let lowered = conv2d_im2col(&x, &w, &b, stride, pad);
            assert!(
                direct.allclose(&lowered, 1e-4),
                "mismatch at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property.
        let x = Tensor::from_fn(&[2, 5, 5], |i| ((i[0] + i[1] + i[2]) as f32 * 0.29).sin());
        let cols = im2col(&x, 3, 3, 2, 1);
        let y = Tensor::from_fn(cols.dims(), |i| ((i[0] * 3 + i[1]) as f32 * 0.13).cos());
        let lhs: f32 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        let yi = col2im(&y, 2, 5, 5, 3, 3, 2, 1);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(yi.as_slice())
            .map(|(&a, &b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn patch_rows_equal_kernel_window_positions() {
        // The number of sequential input vectors of Fig. 4: a 24x24x28 layer
        // produced from 5x5 kernels over 28x28 input has 576 positions.
        let x = Tensor::zeros(&[1, 28, 28]);
        let cols = im2col(&x, 5, 5, 1, 0);
        assert_eq!(cols.dims()[0], 24 * 24);
        assert_eq!(cols.dims()[1], 25);
    }
}
