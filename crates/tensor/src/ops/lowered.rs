//! GEMM-lowered convolution: forward and both backward passes as matrix
//! products over reusable scratch buffers.
//!
//! The lowering mirrors how PipeLayer maps convolutions onto crossbars
//! (Fig. 4): the weight tensor `[C_out, C_in, K_h, K_w]` is row-major, so its
//! backing slice *is* the `[C_out, C_in·K_h·K_w]` kernel matrix with columns
//! in `(c, ky, kx)` order — exactly the column order `im2col` produces. No
//! transpose is ever materialised:
//!
//! * forward:           `out[P, C_out]   = patches · Wᵀ`          (`gemm_nt`)
//! * backward-input:    `dcols[P, cols]  = δᵀ · W`, then `col2im` (`gemm_tn`)
//! * backward-weights:  `dW[C_out, cols] = δ · patches`           (`gemm_nn`)
//!
//! where `P = H_out·W_out`, `cols = C_in·K_h·K_w`, and `δ` is the output
//! error flattened to `[C_out, P]`.
//!
//! [`ConvScratch`] holds the patch/product buffers so a training loop that
//! processes a whole batch through the same layer allocates them once, not
//! once per sample per pass.

use super::conv::conv_output_len;
use super::gemm::{gemm_nn, gemm_nt, gemm_tn};
use crate::Tensor;

/// Reusable scratch space for the lowered convolution kernels.
///
/// Holds three growable buffers: the im2col patch matrix, a second patch
/// buffer (so backward-to-input and backward-to-weights can coexist in one
/// layer's backward pass), and the GEMM product. Buffers grow to the largest
/// geometry seen and are then reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    pub(crate) cols: Vec<f32>,
    pub(crate) cols2: Vec<f32>,
    pub(crate) prod: Vec<f32>,
}

impl ConvScratch {
    /// Creates an empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Slice-based im2col: lowers `input [C,H,W]` into `out` as a row-major
/// `[H_out·W_out, C·Kh·Kw]` patch matrix (resizing `out` as needed) and
/// returns `(rows, cols)`.
///
/// Contiguous `kx` runs are block-copied from the input rows; out-of-bounds
/// (padding) positions are zero-filled.
///
/// # Panics
///
/// Panics if `input` is not rank-3 or the window does not fit.
pub fn im2col_into(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    out: &mut Vec<f32>,
) -> (usize, usize) {
    assert_eq!(input.shape().rank(), 3, "im2col expects [C,H,W]");
    let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let ho = conv_output_len(h, kh, stride, pad);
    let wo = conv_output_len(w, kw, stride, pad);
    let cols = c * kh * kw;
    let rows = ho * wo;
    out.clear();
    out.resize(rows * cols, 0.0);
    let src = input.as_slice();
    for oy in 0..ho {
        for ox in 0..wo {
            let rbase = (oy * wo + ox) * cols;
            // kx is valid where 0 <= ox·s + kx − pad < w; the valid run maps
            // to a contiguous span of the input row.
            let xbase = (ox * stride) as isize - pad as isize;
            let kx_lo = (-xbase).max(0) as usize;
            let kx_hi = ((w as isize - xbase).max(0) as usize).min(kw);
            for ci in 0..c {
                for ky in 0..kh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize || kx_lo >= kx_hi {
                        continue; // padding row: already zero-filled
                    }
                    let dst = rbase + (ci * kh + ky) * kw;
                    let s0 = (ci * h + iy as usize) * w + (xbase + kx_lo as isize) as usize;
                    out[dst + kx_lo..dst + kx_hi].copy_from_slice(&src[s0..s0 + kx_hi - kx_lo]);
                }
            }
        }
    }
    (rows, cols)
}

/// Slice-based adjoint of [`im2col_into`]: scatters (accumulating) a
/// `[H_out·W_out, C·Kh·Kw]` patch matrix back into `img` (`[C,H,W]`
/// row-major, fully overwritten).
///
/// # Panics
///
/// Panics if `cols_buf` or `img` have inconsistent lengths for the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im_from(
    cols_buf: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    img: &mut [f32],
) {
    let ho = conv_output_len(h, kh, stride, pad);
    let wo = conv_output_len(w, kw, stride, pad);
    let cols = c * kh * kw;
    assert_eq!(
        cols_buf.len(),
        ho * wo * cols,
        "col2im buffer size mismatch"
    );
    assert_eq!(img.len(), c * h * w, "col2im image size mismatch");
    img.fill(0.0);
    for oy in 0..ho {
        for ox in 0..wo {
            let rbase = (oy * wo + ox) * cols;
            let xbase = (ox * stride) as isize - pad as isize;
            let kx_lo = (-xbase).max(0) as usize;
            let kx_hi = ((w as isize - xbase).max(0) as usize).min(kw);
            for ci in 0..c {
                for ky in 0..kh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize || kx_lo >= kx_hi {
                        continue;
                    }
                    let srow = rbase + (ci * kh + ky) * kw;
                    let d0 = (ci * h + iy as usize) * w + (xbase + kx_lo as isize) as usize;
                    let dst = &mut img[d0..d0 + kx_hi - kx_lo];
                    let srcrun = &cols_buf[srow + kx_lo..srow + kx_hi];
                    for (d, &s) in dst.iter_mut().zip(srcrun) {
                        *d += s;
                    }
                }
            }
        }
    }
}

/// Convolution forward via im2col + GEMM, reusing `scratch` buffers.
///
/// # Panics
///
/// Panics on rank/size mismatches between `input`, `weight` and `bias`.
pub fn conv2d_im2col_with(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    stride: usize,
    pad: usize,
    scratch: &mut ConvScratch,
) -> Tensor {
    assert_eq!(weight.shape().rank(), 4, "weight must be [Cout,Cin,Kh,Kw]");
    let (c_out, c_in, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(input.dims()[0], c_in, "channel mismatch");
    assert_eq!(bias.dims(), [c_out], "bias must be [C_out]");
    let ho = conv_output_len(input.dims()[1], kh, stride, pad);
    let wo = conv_output_len(input.dims()[2], kw, stride, pad);

    let (p, cols) = im2col_into(input, kh, kw, stride, pad, &mut scratch.cols);
    // The weight slice is already the [C_out, cols] kernel matrix.
    scratch.prod.clear();
    scratch.prod.resize(p * c_out, 0.0);
    gemm_nt(
        &scratch.cols,
        weight.as_slice(),
        p,
        cols,
        c_out,
        &mut scratch.prod,
    );

    let bs = bias.as_slice();
    let mut out = vec![0.0f32; c_out * p];
    for (pi, prow) in scratch.prod.chunks_exact(c_out).enumerate() {
        for (co, (&v, &b)) in prow.iter().zip(bs).enumerate() {
            out[co * p + pi] = v + b;
        }
    }
    Tensor::from_vec(&[c_out, ho, wo], out)
}

/// GEMM-lowered backward pass to the input (`δ_l = conv2(δ, rot180(K),
/// 'full')` of Sec. 4.3), reusing `scratch` buffers.
///
/// Computes `dcols = δᵀ · W` and scatters it with the col2im adjoint —
/// handling any stride/padding natively, including the non-divisible
/// strided geometries of AlexNet conv1.
///
/// # Panics
///
/// Panics on rank/size mismatches or inconsistent geometry.
pub fn conv2d_backward_input_with(
    delta: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    stride: usize,
    pad: usize,
    scratch: &mut ConvScratch,
) -> Tensor {
    assert_eq!(delta.shape().rank(), 3, "delta must be [Cout,Ho,Wo]");
    assert_eq!(weight.shape().rank(), 4, "weight must be [Cout,Cin,Kh,Kw]");
    let (c_out, dh, dw) = (delta.dims()[0], delta.dims()[1], delta.dims()[2]);
    let (c_out_w, c_in, kh, kw) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    assert_eq!(c_out, c_out_w, "delta/weight channel mismatch");
    let (h, w) = input_hw;
    assert_eq!(
        dh,
        conv_output_len(h, kh, stride, pad),
        "delta height mismatch"
    );
    assert_eq!(
        dw,
        conv_output_len(w, kw, stride, pad),
        "delta width mismatch"
    );

    let p = dh * dw;
    let cols = c_in * kh * kw;
    scratch.cols.clear();
    scratch.cols.resize(p * cols, 0.0);
    // δ is [C_out, P] row-major; W is [C_out, cols]: dcols[P, cols] = δᵀ · W.
    gemm_tn(
        delta.as_slice(),
        weight.as_slice(),
        c_out,
        p,
        cols,
        &mut scratch.cols,
    );
    let mut dx = Tensor::zeros(&[c_in, h, w]);
    col2im_from(
        &scratch.cols,
        c_in,
        h,
        w,
        kh,
        kw,
        stride,
        pad,
        dx.as_mut_slice(),
    );
    dx
}

/// GEMM-lowered backward pass to the weights (the "data-as-kernels"
/// convolution of Sec. 4.4.1 / Fig. 12), reusing `scratch` buffers.
///
/// Computes `dW = δ · patches` plus the bias gradient `Σ δ[co,·,·]`.
///
/// # Panics
///
/// Panics on rank/size mismatches or inconsistent geometry.
pub fn conv2d_backward_weights_with(
    input: &Tensor,
    delta: &Tensor,
    kernel_hw: (usize, usize),
    stride: usize,
    pad: usize,
    scratch: &mut ConvScratch,
) -> (Tensor, Tensor) {
    assert_eq!(input.shape().rank(), 3, "input must be [Cin,H,W]");
    assert_eq!(delta.shape().rank(), 3, "delta must be [Cout,Ho,Wo]");
    let (c_in, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (c_out, dh, dw) = (delta.dims()[0], delta.dims()[1], delta.dims()[2]);
    let (kh, kw) = kernel_hw;
    assert_eq!(
        dh,
        conv_output_len(h, kh, stride, pad),
        "delta height mismatch"
    );
    assert_eq!(
        dw,
        conv_output_len(w, kw, stride, pad),
        "delta width mismatch"
    );

    let (p, cols) = im2col_into(input, kh, kw, stride, pad, &mut scratch.cols2);
    let mut dweight = vec![0.0f32; c_out * cols];
    // δ [C_out, P] · patches [P, cols] → dW [C_out, cols].
    gemm_nn(
        delta.as_slice(),
        &scratch.cols2,
        c_out,
        p,
        cols,
        &mut dweight,
    );
    let dbias: Vec<f32> = delta
        .as_slice()
        .chunks_exact(p)
        .map(|row| row.iter().sum())
        .collect();
    (
        Tensor::from_vec(&[c_out, c_in, kh, kw], dweight),
        Tensor::from_vec(&[c_out], dbias),
    )
}

#[cfg(test)]
mod tests {
    use super::super::conv::{
        conv2d, conv2d_backward_input_scalar, conv2d_backward_weights_scalar,
    };
    use super::super::im2col::{col2im, im2col};
    use super::*;

    fn test_case(c_in: usize, h: usize, w: usize, c_out: usize, k: usize) -> (Tensor, Tensor) {
        let x = Tensor::from_fn(&[c_in, h, w], |i| {
            ((i[0] * h * w + i[1] * w + i[2]) as f32 * 0.17).sin()
        });
        let wt = Tensor::from_fn(&[c_out, c_in, k, k], |i| {
            ((i[0] * 11 + i[1] * 7 + i[2] * 3 + i[3]) as f32 * 0.23).cos() * 0.4
        });
        (x, wt)
    }

    #[test]
    fn im2col_into_matches_tensor_im2col() {
        let (x, _) = test_case(2, 7, 6, 1, 3);
        for (k, stride, pad) in [(3, 1, 0), (3, 1, 1), (3, 2, 0), (3, 2, 1), (2, 3, 0)] {
            let want = im2col(&x, k, k, stride, pad);
            let mut buf = Vec::new();
            let (rows, cols) = im2col_into(&x, k, k, stride, pad, &mut buf);
            assert_eq!(&[rows, cols], want.dims());
            assert_eq!(buf, want.as_slice(), "k={k} s={stride} p={pad}");
        }
    }

    #[test]
    fn col2im_from_matches_tensor_col2im() {
        let cols = Tensor::from_fn(&[9, 8], |i| ((i[0] * 8 + i[1]) as f32 * 0.31).sin());
        let want = col2im(&cols, 2, 4, 4, 2, 2, 1, 0);
        let mut img = vec![42.0f32; 2 * 4 * 4]; // garbage: must be overwritten
        col2im_from(cols.as_slice(), 2, 4, 4, 2, 2, 1, 0, &mut img);
        assert_eq!(img, want.as_slice());
    }

    #[test]
    fn lowered_forward_matches_direct() {
        let (x, wt) = test_case(3, 8, 8, 4, 3);
        let b = Tensor::from_vec(&[4], vec![0.1, -0.2, 0.3, 0.0]);
        let mut scratch = ConvScratch::new();
        for (stride, pad) in [(1, 0), (1, 1), (2, 0), (2, 1)] {
            let direct = conv2d(&x, &wt, &b, stride, pad);
            let lowered = conv2d_im2col_with(&x, &wt, &b, stride, pad, &mut scratch);
            assert!(
                direct.allclose(&lowered, 1e-4),
                "forward mismatch at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn lowered_backward_input_matches_scalar_strided_nondivisible() {
        // (h + 2·pad − k) % stride != 0 — the AlexNet-conv1 edge geometry:
        // 8−3 = 5 ≡ 1 (mod 2) and 8+2−3 = 7 ≡ 1 (mod 2).
        let (x, wt) = test_case(2, 8, 8, 3, 3);
        let b = Tensor::zeros(&[3]);
        let mut scratch = ConvScratch::new();
        for (stride, pad) in [(1, 0), (2, 0), (2, 1), (3, 1)] {
            let delta = conv2d(&x, &wt, &b, stride, pad);
            let scalar = conv2d_backward_input_scalar(&delta, &wt, (8, 8), stride, pad);
            let lowered =
                conv2d_backward_input_with(&delta, &wt, (8, 8), stride, pad, &mut scratch);
            assert!(
                scalar.allclose(&lowered, 1e-4),
                "backward-input mismatch at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn lowered_backward_weights_matches_scalar_strided_nondivisible() {
        let (x, wt) = test_case(2, 8, 8, 3, 3);
        let b = Tensor::zeros(&[3]);
        let mut scratch = ConvScratch::new();
        for (stride, pad) in [(1, 0), (2, 0), (2, 1), (3, 1)] {
            let delta = conv2d(&x, &wt, &b, stride, pad);
            let (dw_s, db_s) = conv2d_backward_weights_scalar(&x, &delta, (3, 3), stride, pad);
            let (dw_l, db_l) =
                conv2d_backward_weights_with(&x, &delta, (3, 3), stride, pad, &mut scratch);
            assert!(
                dw_s.allclose(&dw_l, 1e-4),
                "backward-weights mismatch at stride={stride} pad={pad}"
            );
            assert!(
                db_s.allclose(&db_l, 1e-5),
                "bias mismatch at stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn scratch_reuse_across_geometries() {
        // Shrinking then growing geometry must not leave stale values behind.
        let mut scratch = ConvScratch::new();
        let (x1, w1) = test_case(2, 9, 9, 3, 3);
        let (x2, w2) = test_case(1, 4, 4, 2, 2);
        let b1 = Tensor::zeros(&[3]);
        let b2 = Tensor::zeros(&[2]);
        for _ in 0..2 {
            let big = conv2d_im2col_with(&x1, &w1, &b1, 1, 1, &mut scratch);
            assert!(big.allclose(&conv2d(&x1, &w1, &b1, 1, 1), 1e-4));
            let small = conv2d_im2col_with(&x2, &w2, &b2, 2, 0, &mut scratch);
            assert!(small.allclose(&conv2d(&x2, &w2, &b2, 2, 0), 1e-4));
        }
    }

    #[test]
    fn lowered_backward_input_propagates_nan() {
        // A NaN weight must reach dx even when every delta entry is zero.
        let wt = Tensor::from_vec(&[1, 1, 1, 1], vec![f32::NAN]);
        let delta = Tensor::zeros(&[1, 2, 2]);
        let mut scratch = ConvScratch::new();
        let dx = conv2d_backward_input_with(&delta, &wt, (2, 2), 1, 0, &mut scratch);
        assert!(dx.as_slice().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn lowered_backward_weights_propagates_nan() {
        // A NaN activation must reach dW even when delta is zero.
        let x = Tensor::from_vec(&[1, 1, 1], vec![f32::NAN]);
        let delta = Tensor::zeros(&[1, 1, 1]);
        let mut scratch = ConvScratch::new();
        let (dw, db) = conv2d_backward_weights_with(&x, &delta, (1, 1), 1, 0, &mut scratch);
        assert!(dw.as_slice()[0].is_nan());
        assert_eq!(db.as_slice()[0], 0.0);
    }

    #[test]
    fn lowered_forward_propagates_nan() {
        let x = Tensor::from_vec(&[1, 2, 2], vec![f32::NAN, 0.0, 0.0, 0.0]);
        let wt = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        let mut scratch = ConvScratch::new();
        let y = conv2d_im2col_with(&x, &wt, &b, 1, 0, &mut scratch);
        assert!(y.as_slice()[0].is_nan(), "0-weight · NaN input must be NaN");
    }
}
