//! Dense matrix products — the execution engine's workhorse kernels.
//!
//! Every convolution in the functional path (forward and both backward
//! passes) lowers onto these via im2col/col2im, exactly as PipeLayer maps
//! kernel windows onto crossbar columns (Fig. 4). The kernels are
//! cache-blocked but deliberately single-threaded: parallelism lives at the
//! batch level in `pipelayer-nn`'s trainer, which keeps every kernel's
//! per-element summation order fixed and makes training bitwise reproducible
//! at any thread count.
//!
//! None of the kernels short-circuits on zero operands. `0 · NaN` must stay
//! `NaN` so a diverged activation poisons the loss instead of vanishing into
//! a clean-looking zero — the zero-skip "fast paths" this module once had
//! silently dropped NaN/Inf propagation, a class of bug that corrupts
//! gradients without failing a single shape check.

use crate::Tensor;

/// K-panel depth for the blocked kernels: a `BLOCK_K × n` panel of `B` stays
/// hot in cache across the row sweep. Blocking only over `k` keeps the
/// per-element accumulation order identical to the naive `ikj` loop
/// (`p = 0..k`, ascending), so results are independent of the block size.
const BLOCK_K: usize = 256;

/// Column-lane width of the wide-lane microkernel behind [`gemm_nn`]. Each
/// lane owns exactly one output column, so widening needs **no cross-lane
/// reduction** — unlike [`dot`], where the lanes split one sum and a fixed
/// tree is required to stay deterministic.
const LANES: usize = 8;

/// `out ← A · B` over raw row-major slices, `A (m×k) · B (k×n) → (m×n)`.
///
/// `out` is fully overwritten. Accumulation order per output element is
/// `p = 0..k` ascending, regardless of blocking or lane width.
///
/// The inner loops are an explicitly vectorized wide-lane microkernel:
/// [`LANES`] adjacent output columns are held in a register block across the
/// whole k-panel, and each `p` step does `LANES` independent fused
/// multiply-adds the autovectorizer can lower to one vector op. Because each
/// lane is a *distinct* output element, the per-element chain of f32
/// additions is exactly the scalar `acc += a[i][p] · b[p][j]` walk — loading
/// `out` into registers first and storing once per panel performs the same
/// additions in the same order, so the result is bitwise identical to the
/// pre-lane kernel and independent of `LANES`/`BLOCK_K`. That is what keeps
/// data-parallel training bitwise reproducible at any thread count.
pub(crate) fn gemm_nn(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    let n_wide = n / LANES * LANES;
    let mut kb = 0;
    while kb < k {
        let kend = (kb + BLOCK_K).min(k);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j < n_wide {
                let mut acc = [0.0f32; LANES];
                acc.copy_from_slice(&orow[j..j + LANES]);
                for (p, &aip) in arow.iter().enumerate().take(kend).skip(kb) {
                    let bl = &b[p * n + j..p * n + j + LANES];
                    for (al, &bpj) in acc.iter_mut().zip(bl) {
                        *al += aip * bpj;
                    }
                }
                orow[j..j + LANES].copy_from_slice(&acc);
                j += LANES;
            }
            // Tail columns (n not a lane multiple): same chain, scalar lane.
            for (jt, o) in orow.iter_mut().enumerate().skip(n_wide) {
                let mut acc = *o;
                for (p, &aip) in arow.iter().enumerate().take(kend).skip(kb) {
                    acc += aip * b[p * n + jt];
                }
                *o = acc;
            }
        }
        kb = kend;
    }
}

/// Dot product with eight independent accumulator lanes (fixed reduction
/// tree, so the result is deterministic while the lanes vectorize).
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xs = &x[c * 8..c * 8 + 8];
        let ys = &y[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * 8..x.len() {
        tail += x[i] * y[i];
    }
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7])) + tail
}

/// `out ← A · Bᵀ` over raw slices, `A (m×k) · Bᵀ (k×n) → (m×n)` where `B`
/// is stored row-major as `(n×k)`. Both operands stream row-contiguously —
/// this is the layout-friendly product for `patches · Wᵀ` in the im2col
/// forward pass (no materialised transpose).
pub(crate) fn gemm_nt(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `out ← Aᵀ · B` over raw slices, `Aᵀ (m×k) · B (k×n) → (m×n)` where `A`
/// is stored row-major as `(k×m)`. Streams rows of both operands — this is
/// the layout-friendly product for `δᵀ · W` in the lowered backward-input
/// pass.
pub(crate) fn gemm_tn(a: &[f32], b: &[f32], k: usize, m: usize, n: usize, out: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &api) in arow.iter().enumerate() {
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow) {
                *o += api * bpj;
            }
        }
    }
}

fn dims2(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be rank-2");
    (t.dims()[0], t.dims()[1])
}

/// Matrix–matrix product `A (m×k) · B (k×n) → (m×n)`, cache-blocked.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul lhs");
    let (k2, n) = dims2(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm_nn(a.as_slice(), b.as_slice(), m, k, n, &mut out);
    Tensor::from_vec(&[m, n], out)
}

/// `A · Bᵀ` without materialising the transpose: `A (m×k)`, `B (n×k)`,
/// result `(m×n)`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the shared `k` dimensions
/// disagree.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = dims2(a, "matmul_nt lhs");
    let (n, k2) = dims2(b, "matmul_nt rhs");
    assert_eq!(k, k2, "matmul_nt shared dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm_nt(a.as_slice(), b.as_slice(), m, k, n, &mut out);
    Tensor::from_vec(&[m, n], out)
}

/// `Aᵀ · B` without materialising the transpose: `A (k×m)`, `B (k×n)`,
/// result `(m×n)`.
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the shared `k` dimensions
/// disagree.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = dims2(a, "matmul_tn lhs");
    let (k2, n) = dims2(b, "matmul_tn rhs");
    assert_eq!(k, k2, "matmul_tn shared dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    gemm_tn(a.as_slice(), b.as_slice(), k, m, n, &mut out);
    Tensor::from_vec(&[m, n], out)
}

/// Matrix–vector product `W (m×n) · x (n) → (m)`.
///
/// # Panics
///
/// Panics if `w` is not rank-2, `x` is not rank-1, or sizes disagree.
pub fn matvec(w: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(w.shape().rank(), 2, "matvec matrix must be rank-2");
    assert_eq!(x.shape().rank(), 1, "matvec vector must be rank-1");
    let (m, n) = (w.dims()[0], w.dims()[1]);
    assert_eq!(n, x.dims()[0], "matvec size mismatch");
    let wv = w.as_slice();
    let xv = x.as_slice();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            wv[i * n..(i + 1) * n]
                .iter()
                .zip(xv)
                .map(|(&a, &b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_vec(&[m], out)
}

/// Transposed matrix–vector product `Wᵀ (n×m) · y (m) → (n)`, without
/// materialising the transpose. This is the backward-error product
/// `δ_l = Wᵀ δ_{l+1}` of Sec. 2.2.
///
/// No zero-skip: a `NaN`/`Inf` weight multiplied by a zero error must still
/// poison the result.
///
/// # Panics
///
/// Panics if `w` is not rank-2, `y` is not rank-1, or sizes disagree.
pub fn matvec_transposed(w: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(
        w.shape().rank(),
        2,
        "matvec_transposed matrix must be rank-2"
    );
    assert_eq!(
        y.shape().rank(),
        1,
        "matvec_transposed vector must be rank-1"
    );
    let (m, n) = (w.dims()[0], w.dims()[1]);
    assert_eq!(m, y.dims()[0], "matvec_transposed size mismatch");
    let wv = w.as_slice();
    let yv = y.as_slice();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        let yi = yv[i];
        for (o, &wij) in out.iter_mut().zip(&wv[i * n..(i + 1) * n]) {
            *o += wij * yi;
        }
    }
    Tensor::from_vec(&[n], out)
}

/// Outer product `y (m) · xᵀ (n) → (m×n)` — the fully-connected weight
/// gradient `∂J/∂W = δ dᵀ` of Sec. 2.2.
///
/// # Panics
///
/// Panics if either operand is not rank-1.
pub fn outer(y: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(y.shape().rank(), 1, "outer lhs must be rank-1");
    assert_eq!(x.shape().rank(), 1, "outer rhs must be rank-1");
    let (m, n) = (y.dims()[0], x.dims()[0]);
    let yv = y.as_slice();
    let xv = x.as_slice();
    let mut out = Vec::with_capacity(m * n);
    for &yi in yv {
        out.extend(xv.iter().map(|&xj| yi * xj));
    }
    Tensor::from_vec(&[m, n], out)
}

/// Accumulating rank-1 update over raw slices:
/// `out[i·n + j] += y[i] · x[j]` with `n = x.len()`.
///
/// This is the lowered partial-derivative accumulation `ΔW += δ dᵀ` used by
/// the functional ReRAM layers (Fig. 12's outer product, bias folded into
/// `x`'s last element by the caller). No zero-skip, so `NaN`s in either
/// operand reach the accumulator.
///
/// # Panics
///
/// Panics if `out.len() != y.len() * x.len()`.
pub fn outer_acc(out: &mut [f32], y: &[f32], x: &[f32]) {
    assert_eq!(
        out.len(),
        y.len() * x.len(),
        "outer_acc buffer size mismatch"
    );
    for (orow, &yi) in out.chunks_exact_mut(x.len()).zip(y) {
        for (o, &xj) in orow.iter_mut().zip(x) {
            *o += yi * xj;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let i3 = Tensor::from_fn(&[3, 3], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let a = Tensor::from_fn(&[3, 3], |i| (i[0] * 3 + i[1]) as f32);
        assert!(matmul(&i3, &a).allclose(&a, 1e-6));
        assert!(matmul(&a, &i3).allclose(&a, 1e-6));
    }

    #[test]
    fn matmul_blocked_matches_naive_on_large_k() {
        // k > BLOCK_K exercises the panel loop.
        let (m, k, n) = (3usize, 2 * super::BLOCK_K + 17, 4usize);
        let a = Tensor::from_fn(&[m, k], |i| ((i[0] * k + i[1]) as f32 * 0.01).sin());
        let b = Tensor::from_fn(&[k, n], |i| ((i[0] * n + i[1]) as f32 * 0.02).cos());
        let got = matmul(&a, &b);
        let want = Tensor::from_fn(&[m, n], |i| {
            (0..k).map(|p| a[[i[0], p]] * b[[p, i[1]]]).sum::<f32>()
        });
        assert!(got.allclose(&want, 1e-2 * k as f32 * 1e-4 + 1e-3));
    }

    #[test]
    fn matmul_wide_lanes_are_bitwise_identical_to_naive_chain() {
        // The wide-lane microkernel must reproduce, bit for bit, the naive
        // per-element chain `acc = ((0 + t_0) + t_1) + …` with `p` ascending.
        // Shapes straddle both the lane tail (n % LANES != 0) and the
        // k-panel boundary (k > BLOCK_K).
        for &(m, k, n) in &[
            (3usize, 7usize, 5usize),        // tail-only columns
            (2, super::BLOCK_K + 9, 8),      // exact lane width, 2 panels
            (4, 2 * super::BLOCK_K + 1, 19), // lanes + tail, 3 panels
            (1, 1, super::LANES * 2 + 3),    // degenerate k
        ] {
            let a = Tensor::from_fn(&[m, k], |i| ((i[0] * k + i[1]) as f32 * 0.013).sin());
            let b = Tensor::from_fn(&[k, n], |i| ((i[0] * n + i[1]) as f32 * 0.029).cos());
            let got = matmul(&a, &b);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a[[i, p]] * b[[p, j]];
                    }
                    assert_eq!(
                        got[[i, j]].to_bits(),
                        acc.to_bits(),
                        "({m}x{k}x{n}) element ({i},{j}) diverged from the naive chain"
                    );
                }
            }
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_fn(&[3, 17], |i| ((i[0] + 2 * i[1]) as f32 * 0.1).sin());
        let b = Tensor::from_fn(&[5, 17], |i| ((i[0] * 3 + i[1]) as f32 * 0.07).cos());
        let bt = Tensor::from_fn(&[17, 5], |i| b[[i[1], i[0]]]);
        assert!(matmul_nt(&a, &b).allclose(&matmul(&a, &bt), 1e-4));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_fn(&[7, 4], |i| ((i[0] + 3 * i[1]) as f32 * 0.13).sin());
        let b = Tensor::from_fn(&[7, 6], |i| ((i[0] * 2 + i[1]) as f32 * 0.11).cos());
        let at = Tensor::from_fn(&[4, 7], |i| a[[i[1], i[0]]]);
        assert!(matmul_tn(&a, &b).allclose(&matmul(&at, &b), 1e-4));
    }

    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        // Regression: the old kernel skipped rows where a[i][p] == 0.0, so a
        // NaN in B vanished into a clean-looking 0.0 output.
        let a = Tensor::zeros(&[1, 1]);
        let b = Tensor::from_vec(&[1, 1], vec![f32::NAN]);
        assert!(matmul(&a, &b).as_slice()[0].is_nan(), "0 · NaN must be NaN");
        // And through the nt/tn variants.
        assert!(matmul_nt(&a, &b).as_slice()[0].is_nan());
        assert!(matmul_tn(&a, &b).as_slice()[0].is_nan());
    }

    #[test]
    fn matmul_propagates_inf_times_zero() {
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 1], vec![f32::INFINITY, 2.0]);
        // 0 · ∞ = NaN, NaN + 2 = NaN.
        assert!(matmul(&a, &b).as_slice()[0].is_nan());
    }

    #[test]
    fn matvec_known() {
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 2.0, 2.0, 2.0]);
        let x = Tensor::from_vec(&[3], vec![3.0, 4.0, 5.0]);
        let y = matvec(&w, &x);
        assert_eq!(y.as_slice(), &[-2.0, 24.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let w = Tensor::from_fn(&[4, 3], |i| (i[0] as f32) - (i[1] as f32) * 0.5);
        let y = Tensor::from_vec(&[4], vec![1.0, -2.0, 0.5, 3.0]);
        let got = matvec_transposed(&w, &y);
        // Explicit transpose.
        let wt = Tensor::from_fn(&[3, 4], |i| w[[i[1], i[0]]]);
        let want = matvec(&wt, &y);
        assert!(got.allclose(&want, 1e-6));
    }

    #[test]
    fn matvec_transposed_propagates_nan_through_zero_error() {
        // Regression: a zero error row used to skip the NaN weight.
        let w = Tensor::from_vec(&[1, 1], vec![f32::NAN]);
        let y = Tensor::zeros(&[1]);
        assert!(matvec_transposed(&w, &y).as_slice()[0].is_nan());
    }

    #[test]
    fn outer_known() {
        let y = Tensor::from_vec(&[2], vec![2.0, 3.0]);
        let x = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let o = outer(&y, &x);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[2.0, 0.0, -2.0, 3.0, 0.0, -3.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut out = vec![1.0f32; 6];
        outer_acc(&mut out, &[2.0, -1.0], &[1.0, 0.0, 3.0]);
        assert_eq!(out, vec![3.0, 1.0, 7.0, 0.0, 1.0, -2.0]);
    }

    #[test]
    fn outer_acc_propagates_nan() {
        let mut out = vec![0.0f32; 2];
        outer_acc(&mut out, &[0.0], &[f32::NAN, 1.0]);
        assert!(out[0].is_nan(), "0 · NaN must reach the accumulator");
        assert_eq!(out[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_associates_with_matvec() {
        // (A·B)·x == A·(B·x)
        let a = Tensor::from_fn(&[3, 4], |i| ((i[0] + 1) * (i[1] + 2)) as f32 * 0.1);
        let b = Tensor::from_fn(&[4, 2], |i| (i[0] as f32) - (i[1] as f32));
        let x = Tensor::from_vec(&[2], vec![0.5, -1.5]);
        let lhs = matvec(&matmul(&a, &b), &x);
        let rhs = matvec(&a, &matvec(&b, &x));
        assert!(lhs.allclose(&rhs, 1e-4));
    }
}
