//! Dense matrix products.

use crate::Tensor;

/// Matrix–matrix product `A (m×k) · B (k×n) → (m×n)`.
///
/// Uses an ikj loop order so the inner loop streams both `B` and the output
/// row — good enough for the MNIST-scale functional simulations this
/// reproduction executes (large nets are only *timed*, never executed).
///
/// # Panics
///
/// Panics if the operands are not rank-2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");

    let mut out = vec![0.0f32; m * n];
    let av = a.as_slice();
    let bv = b.as_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow) {
                *o += aip * bpj;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Matrix–vector product `W (m×n) · x (n) → (m)`.
///
/// # Panics
///
/// Panics if `w` is not rank-2, `x` is not rank-1, or sizes disagree.
pub fn matvec(w: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(w.shape().rank(), 2, "matvec matrix must be rank-2");
    assert_eq!(x.shape().rank(), 1, "matvec vector must be rank-1");
    let (m, n) = (w.dims()[0], w.dims()[1]);
    assert_eq!(n, x.dims()[0], "matvec size mismatch");
    let wv = w.as_slice();
    let xv = x.as_slice();
    let out: Vec<f32> = (0..m)
        .map(|i| {
            wv[i * n..(i + 1) * n]
                .iter()
                .zip(xv)
                .map(|(&a, &b)| a * b)
                .sum()
        })
        .collect();
    Tensor::from_vec(&[m], out)
}

/// Transposed matrix–vector product `Wᵀ (n×m) · y (m) → (n)`, without
/// materialising the transpose. This is the backward-error product
/// `δ_l = Wᵀ δ_{l+1}` of Sec. 2.2.
///
/// # Panics
///
/// Panics if `w` is not rank-2, `y` is not rank-1, or sizes disagree.
pub fn matvec_transposed(w: &Tensor, y: &Tensor) -> Tensor {
    assert_eq!(
        w.shape().rank(),
        2,
        "matvec_transposed matrix must be rank-2"
    );
    assert_eq!(
        y.shape().rank(),
        1,
        "matvec_transposed vector must be rank-1"
    );
    let (m, n) = (w.dims()[0], w.dims()[1]);
    assert_eq!(m, y.dims()[0], "matvec_transposed size mismatch");
    let wv = w.as_slice();
    let yv = y.as_slice();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        let yi = yv[i];
        if yi == 0.0 {
            continue;
        }
        for (o, &wij) in out.iter_mut().zip(&wv[i * n..(i + 1) * n]) {
            *o += wij * yi;
        }
    }
    Tensor::from_vec(&[n], out)
}

/// Outer product `y (m) · xᵀ (n) → (m×n)` — the fully-connected weight
/// gradient `∂J/∂W = δ dᵀ` of Sec. 2.2.
///
/// # Panics
///
/// Panics if either operand is not rank-1.
pub fn outer(y: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(y.shape().rank(), 1, "outer lhs must be rank-1");
    assert_eq!(x.shape().rank(), 1, "outer rhs must be rank-1");
    let (m, n) = (y.dims()[0], x.dims()[0]);
    let yv = y.as_slice();
    let xv = x.as_slice();
    let mut out = Vec::with_capacity(m * n);
    for &yi in yv {
        out.extend(xv.iter().map(|&xj| yi * xj));
    }
    Tensor::from_vec(&[m, n], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let i3 = Tensor::from_fn(&[3, 3], |i| if i[0] == i[1] { 1.0 } else { 0.0 });
        let a = Tensor::from_fn(&[3, 3], |i| (i[0] * 3 + i[1]) as f32);
        assert!(matmul(&i3, &a).allclose(&a, 1e-6));
        assert!(matmul(&a, &i3).allclose(&a, 1e-6));
    }

    #[test]
    fn matvec_known() {
        let w = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, -1.0, 2.0, 2.0, 2.0]);
        let x = Tensor::from_vec(&[3], vec![3.0, 4.0, 5.0]);
        let y = matvec(&w, &x);
        assert_eq!(y.as_slice(), &[-2.0, 24.0]);
    }

    #[test]
    fn matvec_transposed_matches_explicit_transpose() {
        let w = Tensor::from_fn(&[4, 3], |i| (i[0] as f32) - (i[1] as f32) * 0.5);
        let y = Tensor::from_vec(&[4], vec![1.0, -2.0, 0.5, 3.0]);
        let got = matvec_transposed(&w, &y);
        // Explicit transpose.
        let wt = Tensor::from_fn(&[3, 4], |i| w[[i[1], i[0]]]);
        let want = matvec(&wt, &y);
        assert!(got.allclose(&want, 1e-6));
    }

    #[test]
    fn outer_known() {
        let y = Tensor::from_vec(&[2], vec![2.0, 3.0]);
        let x = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let o = outer(&y, &x);
        assert_eq!(o.dims(), &[2, 3]);
        assert_eq!(o.as_slice(), &[2.0, 0.0, -2.0, 3.0, 0.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn matmul_associates_with_matvec() {
        // (A·B)·x == A·(B·x)
        let a = Tensor::from_fn(&[3, 4], |i| ((i[0] + 1) * (i[1] + 2)) as f32 * 0.1);
        let b = Tensor::from_fn(&[4, 2], |i| (i[0] as f32) - (i[1] as f32));
        let x = Tensor::from_vec(&[2], vec![0.5, -1.5]);
        let lhs = matvec(&matmul(&a, &b), &x);
        let rhs = matvec(&a, &matvec(&b, &x));
        assert!(lhs.allclose(&rhs, 1e-4));
    }
}
