//! 2-D convolution: forward, backward-to-input (the `conv2(δ, rot180(K),
//! 'full')` of Sec. 4.3 / Fig. 11) and backward-to-weights (the
//! "data-as-kernels" convolution of Sec. 4.4.1 / Fig. 12).
//!
//! Layout conventions (single image, channel-major):
//! * input `d_l`:  `[C_in, H, W]`
//! * kernels `K`:  `[C_out, C_in, K_h, K_w]`
//! * bias `b`:     `[C_out]`
//! * output:       `[C_out, H_out, W_out]`

use crate::Tensor;

/// Output length along one spatial axis for a convolution/pool window.
///
/// # Panics
///
/// Panics if the window does not fit (`input + 2*pad < k`) or `stride == 0`.
pub fn conv_output_len(input: usize, k: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be non-zero");
    assert!(
        input + 2 * pad >= k,
        "window {k} does not fit input {input} with padding {pad}"
    );
    (input + 2 * pad - k) / stride + 1
}

/// Direct (non-lowered) 2-D convolution forward pass, Eq. (1) of the paper.
///
/// # Panics
///
/// Panics on rank/size mismatches between `input`, `weight` and `bias`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, stride: usize, pad: usize) -> Tensor {
    let (c_in, h, w) = unpack3(input, "conv2d input");
    let (c_out, c_in_w, kh, kw) = unpack4(weight, "conv2d weight");
    assert_eq!(c_in, c_in_w, "conv2d channel mismatch: {c_in} vs {c_in_w}");
    assert_eq!(bias.dims(), [c_out], "conv2d bias must be [C_out]");

    let ho = conv_output_len(h, kh, stride, pad);
    let wo = conv_output_len(w, kw, stride, pad);
    let mut out = Tensor::zeros(&[c_out, ho, wo]);

    for co in 0..c_out {
        let b = bias.as_slice()[co];
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = b;
                for ci in 0..c_in {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += weight[[co, ci, ky, kx]] * input[[ci, iy as usize, ix as usize]];
                        }
                    }
                }
                out[[co, oy, ox]] = acc;
            }
        }
    }
    out
}

/// Rotates each spatial kernel plane by 180° and swaps the in/out channel
/// axes: `[C_out, C_in, Kh, Kw] → [C_in, C_out, Kh, Kw]` with flipped `Kh,Kw`.
///
/// This is exactly the "reordered kernels" of Fig. 11: the backward pass
/// convolves the next layer's error with `rot180` of the forward kernels,
/// grouped so that each *input* channel becomes an output channel.
pub fn rot180(weight: &Tensor) -> Tensor {
    let (c_out, c_in, kh, kw) = unpack4(weight, "rot180 weight");
    Tensor::from_fn(&[c_in, c_out, kh, kw], |i| {
        weight[[i[1], i[0], kh - 1 - i[2], kw - 1 - i[3]]]
    })
}

/// Backward pass to the input: given the error `delta` w.r.t. this layer's
/// output, returns the error w.r.t. the layer's input,
/// `conv2(delta, rot180(K), 'full')` (Sec. 4.3, Fig. 11).
///
/// Lowered onto `δᵀ·W` + col2im (see [`conv2d_backward_input_with`]); any
/// stride/padding combination is handled natively, including the
/// non-divisible strided geometry of AlexNet conv1. For buffer reuse across
/// batch samples call the `_with` variant directly.
///
/// # Panics
///
/// Panics on rank/size mismatches, or if `delta`'s spatial size is
/// inconsistent with `input_hw`, `stride` and `pad`.
pub fn conv2d_backward_input(
    delta: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let mut scratch = super::lowered::ConvScratch::new();
    super::lowered::conv2d_backward_input_with(delta, weight, input_hw, stride, pad, &mut scratch)
}

/// Scalar (non-lowered) reference implementation of
/// [`conv2d_backward_input`]: the scatter formulation, one multiply-add per
/// (output point × kernel tap). Kept as the ground truth the GEMM path is
/// tested against.
///
/// # Panics
///
/// Same conditions as [`conv2d_backward_input`].
pub fn conv2d_backward_input_scalar(
    delta: &Tensor,
    weight: &Tensor,
    input_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> Tensor {
    let (c_out, dh, dw) = unpack3(delta, "conv2d_backward_input delta");
    let (c_out_w, c_in, kh, kw) = unpack4(weight, "conv2d_backward_input weight");
    assert_eq!(c_out, c_out_w, "delta/weight channel mismatch");
    let (h, w) = input_hw;
    assert_eq!(
        dh,
        conv_output_len(h, kh, stride, pad),
        "delta height mismatch"
    );
    assert_eq!(
        dw,
        conv_output_len(w, kw, stride, pad),
        "delta width mismatch"
    );

    // Scatter formulation: each output-point error contributes to the
    // receptive field that produced it. For stride == 1 and zero padding this
    // is algebraically identical to conv2(delta, rot180(K), 'full').
    let mut dx = Tensor::zeros(&[c_in, h, w]);
    for co in 0..c_out {
        for oy in 0..dh {
            for ox in 0..dw {
                // No zero-skip on `d`: `0 · NaN` must stay NaN so a diverged
                // weight poisons the gradient instead of vanishing.
                let d = delta[[co, oy, ox]];
                for ci in 0..c_in {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dx[[ci, iy as usize, ix as usize]] += d * weight[[co, ci, ky, kx]];
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Backward pass to the weights: `∂J/∂K[co,ci,ky,kx] = Σ_{oy,ox}
/// δ[co,oy,ox] · d[ci, oy·s+ky−p, ox·s+kx−p]` — the convolution of the error
/// with the forward data, where the stored data act as kernels (Fig. 12).
/// Also returns the bias gradient `∂J/∂b[co] = Σ δ[co,·,·]`.
///
/// Lowered onto `δ · patches` (see [`conv2d_backward_weights_with`]); for
/// buffer reuse across batch samples call the `_with` variant directly.
///
/// # Panics
///
/// Panics on rank/size mismatches.
pub fn conv2d_backward_weights(
    input: &Tensor,
    delta: &Tensor,
    kernel_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let mut scratch = super::lowered::ConvScratch::new();
    super::lowered::conv2d_backward_weights_with(input, delta, kernel_hw, stride, pad, &mut scratch)
}

/// Scalar (non-lowered) reference implementation of
/// [`conv2d_backward_weights`], kept as the ground truth the GEMM path is
/// tested against.
///
/// # Panics
///
/// Same conditions as [`conv2d_backward_weights`].
pub fn conv2d_backward_weights_scalar(
    input: &Tensor,
    delta: &Tensor,
    kernel_hw: (usize, usize),
    stride: usize,
    pad: usize,
) -> (Tensor, Tensor) {
    let (c_in, h, w) = unpack3(input, "conv2d_backward_weights input");
    let (c_out, dh, dw) = unpack3(delta, "conv2d_backward_weights delta");
    let (kh, kw) = kernel_hw;
    assert_eq!(
        dh,
        conv_output_len(h, kh, stride, pad),
        "delta height mismatch"
    );
    assert_eq!(
        dw,
        conv_output_len(w, kw, stride, pad),
        "delta width mismatch"
    );

    let mut dweight = Tensor::zeros(&[c_out, c_in, kh, kw]);
    let mut dbias = Tensor::zeros(&[c_out]);
    for co in 0..c_out {
        let mut bsum = 0.0;
        for oy in 0..dh {
            for ox in 0..dw {
                // No zero-skip on `d`: NaN/Inf activations must reach dW.
                let d = delta[[co, oy, ox]];
                bsum += d;
                for ci in 0..c_in {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dweight[[co, ci, ky, kx]] += d * input[[ci, iy as usize, ix as usize]];
                        }
                    }
                }
            }
        }
        dbias[[co]] = bsum;
    }
    (dweight, dbias)
}

fn unpack3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        3,
        "{what} must be rank-3, got {:?}",
        t.shape()
    );
    (t.dims()[0], t.dims()[1], t.dims()[2])
}

fn unpack4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.shape().rank(),
        4,
        "{what} must be rank-4, got {:?}",
        t.shape()
    );
    (t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks dJ/dx against finite differences where J = Σ out².
    #[test]
    fn backward_input_matches_finite_difference() {
        let mut x = Tensor::from_fn(&[2, 5, 5], |i| {
            ((i[0] * 25 + i[1] * 5 + i[2]) as f32 * 0.13).sin()
        });
        let w = Tensor::from_fn(&[3, 2, 3, 3], |i| {
            ((i[0] + 2 * i[1] + 3 * i[2] + 5 * i[3]) as f32 * 0.21).cos() * 0.3
        });
        let b = Tensor::zeros(&[3]);
        let loss = |x: &Tensor| -> f32 { conv2d(x, &w, &b, 1, 1).norm_sq() * 0.5 };

        let out = conv2d(&x, &w, &b, 1, 1);
        let dx = conv2d_backward_input(&out, &w, (5, 5), 1, 1);

        let eps = 1e-3;
        for probe in [[0usize, 0, 0], [1, 2, 3], [0, 4, 4], [1, 0, 2]] {
            let orig = x[probe];
            x[probe] = orig + eps;
            let lp = loss(&x);
            x[probe] = orig - eps;
            let lm = loss(&x);
            x[probe] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx[probe];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "at {probe:?}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn backward_weights_matches_finite_difference() {
        let x = Tensor::from_fn(&[2, 4, 4], |i| ((i[0] + i[1] + i[2]) as f32 * 0.3).sin());
        let mut w = Tensor::from_fn(&[2, 2, 3, 3], |i| {
            ((i[0] + i[1] * 2 + i[2] * 3 + i[3]) as f32 * 0.17).cos() * 0.2
        });
        let b = Tensor::zeros(&[2]);
        let loss = |w: &Tensor| -> f32 { conv2d(&x, w, &b, 1, 0).norm_sq() * 0.5 };

        let out = conv2d(&x, &w, &b, 1, 0);
        let (dw, db) = conv2d_backward_weights(&x, &out, (3, 3), 1, 0);
        assert_eq!(db.dims(), &[2]);

        let eps = 1e-3;
        for probe in [[0usize, 0, 0, 0], [1, 1, 2, 2], [0, 1, 1, 0]] {
            let orig = w[probe];
            w[probe] = orig + eps;
            let lp = loss(&w);
            w[probe] = orig - eps;
            let lm = loss(&w);
            w[probe] = orig;
            let num = (lp - lm) / (2.0 * eps);
            let ana = dw[probe];
            assert!(
                (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                "at {probe:?}: numeric {num} vs analytic {ana}"
            );
        }
    }

    /// Finite-difference check of dJ/dx at stride 2 with non-divisible
    /// geometry — `(h + 2·pad − k) % stride = (8 + 2·pad − 3) % 2 = 1` for
    /// both pads, the AlexNet-conv1 upsampling edge case.
    #[test]
    fn backward_input_fd_strided_nondivisible() {
        for pad in [0usize, 1] {
            let mut x = Tensor::from_fn(&[2, 8, 8], |i| {
                ((i[0] * 64 + i[1] * 8 + i[2]) as f32 * 0.19).sin()
            });
            let w = Tensor::from_fn(&[3, 2, 3, 3], |i| {
                ((i[0] * 5 + i[1] * 3 + i[2] * 2 + i[3]) as f32 * 0.27).cos() * 0.3
            });
            let b = Tensor::zeros(&[3]);
            let loss = |x: &Tensor| -> f32 { conv2d(x, &w, &b, 2, pad).norm_sq() * 0.5 };

            let delta = conv2d(&x, &w, &b, 2, pad);
            let dx = conv2d_backward_input(&delta, &w, (8, 8), 2, pad);
            let dx_scalar = conv2d_backward_input_scalar(&delta, &w, (8, 8), 2, pad);
            assert!(
                dx.allclose(&dx_scalar, 1e-4),
                "GEMM and scalar paths disagree at pad={pad}"
            );

            let eps = 1e-3;
            for probe in [[0usize, 0, 0], [1, 3, 5], [0, 7, 7], [1, 4, 0]] {
                let orig = x[probe];
                x[probe] = orig + eps;
                let lp = loss(&x);
                x[probe] = orig - eps;
                let lm = loss(&x);
                x[probe] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = dx[probe];
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                    "pad={pad} at {probe:?}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    /// Finite-difference check of dJ/dK at stride 2 with non-divisible
    /// geometry, GEMM and scalar paths agreeing to 1e-4.
    #[test]
    fn backward_weights_fd_strided_nondivisible() {
        for pad in [0usize, 1] {
            let x = Tensor::from_fn(&[2, 8, 8], |i| {
                ((i[0] + i[1] * 2 + i[2]) as f32 * 0.21).sin()
            });
            let mut w = Tensor::from_fn(&[2, 2, 3, 3], |i| {
                ((i[0] * 7 + i[1] * 2 + i[2] * 3 + i[3]) as f32 * 0.15).cos() * 0.2
            });
            let b = Tensor::zeros(&[2]);
            let loss = |w: &Tensor| -> f32 { conv2d(&x, w, &b, 2, pad).norm_sq() * 0.5 };

            let delta = conv2d(&x, &w, &b, 2, pad);
            let (dw, _) = conv2d_backward_weights(&x, &delta, (3, 3), 2, pad);
            let (dw_scalar, db_scalar) = conv2d_backward_weights_scalar(&x, &delta, (3, 3), 2, pad);
            assert!(
                dw.allclose(&dw_scalar, 1e-4),
                "GEMM and scalar paths disagree at pad={pad}"
            );
            assert_eq!(db_scalar.dims(), &[2]);

            let eps = 1e-3;
            for probe in [[0usize, 0, 0, 0], [1, 1, 2, 2], [0, 1, 1, 0], [1, 0, 2, 1]] {
                let orig = w[probe];
                w[probe] = orig + eps;
                let lp = loss(&w);
                w[probe] = orig - eps;
                let lm = loss(&w);
                w[probe] = orig;
                let num = (lp - lm) / (2.0 * eps);
                let ana = dw[probe];
                assert!(
                    (num - ana).abs() < 1e-2 * (1.0 + num.abs()),
                    "pad={pad} at {probe:?}: numeric {num} vs analytic {ana}"
                );
            }
        }
    }

    #[test]
    fn forward_propagates_nan() {
        // A NaN input pixel must poison every output it participates in,
        // even under zero weights.
        let x = Tensor::from_vec(&[1, 2, 2], vec![f32::NAN, 1.0, 1.0, 1.0]);
        let w = Tensor::zeros(&[1, 1, 2, 2]);
        let b = Tensor::zeros(&[1]);
        let y = conv2d(&x, &w, &b, 1, 0);
        assert!(y.as_slice()[0].is_nan());
    }

    #[test]
    fn backward_input_propagates_nan_through_zero_delta() {
        // Regression: the old scatter loop skipped zero delta entries, so a
        // NaN weight never reached dx.
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![f32::NAN]);
        let delta = Tensor::zeros(&[1, 2, 2]);
        for dx in [
            conv2d_backward_input(&delta, &w, (2, 2), 1, 0),
            conv2d_backward_input_scalar(&delta, &w, (2, 2), 1, 0),
        ] {
            assert!(dx.as_slice().iter().all(|v| v.is_nan()));
        }
    }

    #[test]
    fn backward_weights_propagates_nan_through_zero_delta() {
        let x = Tensor::from_vec(&[1, 1, 1], vec![f32::NAN]);
        let delta = Tensor::zeros(&[1, 1, 1]);
        for (dw, _) in [
            conv2d_backward_weights(&x, &delta, (1, 1), 1, 0),
            conv2d_backward_weights_scalar(&x, &delta, (1, 1), 1, 0),
        ] {
            assert!(dw.as_slice()[0].is_nan());
        }
    }

    #[test]
    fn forward_known_values() {
        // 1-channel 3x3 input, 2x2 kernel of ones, no padding: sliding sums.
        let x = Tensor::from_fn(&[1, 3, 3], |i| (i[1] * 3 + i[2]) as f32);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::from_vec(&[1], vec![10.0]);
        let y = conv2d(&x, &w, &b, 1, 0);
        // windows: (0+1+3+4)=8, (1+2+4+5)=12, (3+4+6+7)=20, (4+5+7+8)=24; +10
        assert_eq!(y.as_slice(), &[18.0, 22.0, 30.0, 34.0]);
    }

    #[test]
    fn forward_with_stride_and_padding() {
        let x = Tensor::ones(&[1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let b = Tensor::zeros(&[1]);
        let y = conv2d(&x, &w, &b, 2, 1);
        assert_eq!(y.dims(), &[1, 2, 2]);
        // corner window covers 2x2 ones, interior-ish windows cover more.
        assert_eq!(y[[0, 0, 0]], 4.0);
        assert_eq!(y[[0, 1, 1]], 9.0);
    }

    #[test]
    fn rot180_flips_and_swaps() {
        let w = Tensor::from_fn(&[2, 3, 2, 2], |i| {
            (i[0] * 100 + i[1] * 10 + i[2] * 2 + i[3]) as f32
        });
        let r = rot180(&w);
        assert_eq!(r.dims(), &[3, 2, 2, 2]);
        // r[ci, co, ky, kx] == w[co, ci, 1-ky, 1-kx]
        assert_eq!(r[[2, 1, 0, 0]], w[[1, 2, 1, 1]]);
        assert_eq!(r[[0, 0, 1, 0]], w[[0, 0, 0, 1]]);
    }

    #[test]
    fn backward_input_equals_full_conv_with_rot180() {
        // For stride=1, pad=0: dx == conv2(delta, rot180(K), 'full'),
        // i.e. conv2d with padding (kh-1, kw-1) over the reordered kernel.
        let x = Tensor::from_fn(&[2, 6, 6], |i| {
            ((i[0] + i[1] * 2 + i[2]) as f32 * 0.1).sin()
        });
        let w = Tensor::from_fn(&[3, 2, 3, 3], |i| {
            ((i[0] * 7 + i[1] * 5 + i[2] * 3 + i[3]) as f32 * 0.23).cos()
        });
        let b = Tensor::zeros(&[3]);
        let delta = conv2d(&x, &w, &b, 1, 0); // any tensor of the right shape

        let dx_scatter = conv2d_backward_input(&delta, &w, (6, 6), 1, 0);
        let dx_full = conv2d(&delta, &rot180(&w), &Tensor::zeros(&[2]), 1, 2);
        assert!(
            dx_scatter.allclose(&dx_full, 1e-3),
            "scatter and full-conv formulations disagree"
        );
    }

    #[test]
    fn output_len_formula() {
        assert_eq!(conv_output_len(224, 3, 1, 1), 224);
        assert_eq!(conv_output_len(227, 11, 4, 0), 55);
        assert_eq!(conv_output_len(28, 5, 1, 0), 24);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn output_len_rejects_oversized_window() {
        conv_output_len(2, 5, 1, 0);
    }
}
