//! Numerical kernels: GEMM, 2-D convolution (forward and both backward
//! passes), pooling, and the im2col lowering used to run convolutions as
//! matrix products — the same lowering PipeLayer uses to map kernels onto
//! crossbar columns (Fig. 4 of the paper).

mod conv;
mod gemm;
mod im2col;
mod lowered;
mod pool;

pub use conv::{
    conv2d, conv2d_backward_input, conv2d_backward_input_scalar, conv2d_backward_weights,
    conv2d_backward_weights_scalar, conv_output_len, rot180,
};
pub use gemm::{matmul, matmul_nt, matmul_tn, matvec, matvec_transposed, outer, outer_acc};
pub use im2col::{col2im, conv2d_im2col, im2col};
pub use lowered::{
    col2im_from, conv2d_backward_input_with, conv2d_backward_weights_with, conv2d_im2col_with,
    im2col_into, ConvScratch,
};
pub use pool::{
    avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward, pool_output_len, PoolIndices,
};
