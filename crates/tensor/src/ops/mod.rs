//! Numerical kernels: GEMM, 2-D convolution (forward and both backward
//! passes), pooling, and the im2col lowering used to run convolutions as
//! matrix products — the same lowering PipeLayer uses to map kernels onto
//! crossbar columns (Fig. 4 of the paper).

mod conv;
mod gemm;
mod im2col;
mod pool;

pub use conv::{conv2d, conv2d_backward_input, conv2d_backward_weights, conv_output_len, rot180};
pub use gemm::{matmul, matvec, matvec_transposed, outer};
pub use im2col::{col2im, conv2d_im2col, im2col};
pub use pool::{
    avgpool2d, avgpool2d_backward, maxpool2d, maxpool2d_backward, pool_output_len, PoolIndices,
};
