//! Minimal ND tensor library for the PipeLayer reproduction.
//!
//! This crate provides the dense `f32` tensor type and the numerical kernels
//! (GEMM, 2-D convolution forward/backward, pooling forward/backward) that the
//! CNN training framework ([`pipelayer-nn`]) and the functional ReRAM
//! simulation are built on. It is deliberately small: row-major storage,
//! owned buffers, no views/broadcasting beyond what the reproduction needs.
//!
//! # Example
//!
//! ```
//! use pipelayer_tensor::{Tensor, ops};
//!
//! // A 1x4x4 single-channel image convolved with one 3x3 kernel.
//! let img = Tensor::from_fn(&[1, 4, 4], |i| i[1] as f32 + i[2] as f32);
//! let w = Tensor::ones(&[1, 1, 3, 3]);
//! let b = Tensor::zeros(&[1]);
//! let out = ops::conv2d(&img, &w, &b, 1, 0);
//! assert_eq!(out.dims(), &[1, 2, 2]);
//! ```
//!
//! [`pipelayer-nn`]: ../pipelayer_nn/index.html

pub mod ops;
mod shape;
mod tensor;

pub use shape::Shape;
pub use tensor::Tensor;
