//! The dense `f32` tensor type.

use crate::Shape;
use rand::distr::{Distribution, Uniform};
use rand::{Rng, RngExt as _};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub};

/// A dense, row-major, owned `f32` tensor.
///
/// All numerical state in the reproduction (weights, activations, errors,
/// partial derivatives) is stored in `Tensor`s. The type favours clarity over
/// generality: no views, no broadcasting, explicit shapes everywhere.
///
/// # Example
///
/// ```
/// use pipelayer_tensor::Tensor;
///
/// let mut t = Tensor::zeros(&[2, 2]);
/// t[[0, 1]] = 3.0;
/// assert_eq!(t.sum(), 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor whose element at multi-index `i` is `f(i)`.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        for off in 0..n {
            let idx = shape.unravel(off);
            data.push(f(&idx));
        }
        Tensor { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer length {} does not match shape {shape} ({} elements)",
            data.len(),
            shape.numel()
        );
        Tensor { shape, data }
    }

    /// Creates a tensor with elements sampled uniformly from `[lo, hi)`.
    pub fn uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let dist = Uniform::new(lo, hi).expect("invalid uniform range");
        let shape = Shape::new(dims);
        let n = shape.numel();
        let data = (0..n).map(|_| dist.sample(rng)).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with approximately standard-normal elements
    /// (Irwin–Hall sum of 12 uniforms, exact enough for weight init), scaled
    /// by `std`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut impl Rng) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        let data = (0..n)
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.random::<f32>()).sum::<f32>() - 6.0;
                s * std
            })
            .collect();
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {shape}",
            self.numel()
        );
        Tensor {
            shape,
            data: self.data.clone(),
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Hadamard (element-wise) product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `other * s` to `self` in place (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy_inplace(&mut self, s: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        for (x, &y) in self.data.iter_mut().zip(&other.data) {
            *x += s * y;
        }
    }

    /// Sets all elements to zero.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` only for NaN-filled input.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element in the flattened buffer (first if tied).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// `true` if every pairwise difference is within `tol`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}, ", self.shape)?;
        if self.numel() <= 16 {
            write!(f, "{:?})", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, .., {:.4}])",
                self.data[0],
                self.data[1],
                self.data[self.numel() - 1]
            )
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

impl<const N: usize> Index<[usize; N]> for Tensor {
    type Output = f32;
    fn index(&self, idx: [usize; N]) -> &f32 {
        &self.data[self.shape.offset(&idx)]
    }
}

impl<const N: usize> IndexMut<[usize; N]> for Tensor {
    fn index_mut(&mut self, idx: [usize; N]) -> &mut f32 {
        let off = self.shape.offset(&idx);
        &mut self.data[off]
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy_inplace(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full(&[4], 0.5).sum(), 2.0);
    }

    #[test]
    fn from_fn_indexing() {
        let t = Tensor::from_fn(&[2, 3], |i| (i[0] * 10 + i[1]) as f32);
        assert_eq!(t[[1, 2]], 12.0);
        assert_eq!(t.at(&[0, 1]), 1.0);
    }

    #[test]
    fn index_mut_writes() {
        let mut t = Tensor::zeros(&[3, 3]);
        t[[2, 2]] = 7.0;
        *t.at_mut(&[0, 0]) = 1.0;
        assert_eq!(t.sum(), 8.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| (i[0] * 6 + i[1]) as f32);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r[[2, 3]], 11.0);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).reshape(&[5]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::full(&[4], 2.0);
        let b = Tensor::full(&[4], 3.0);
        assert_eq!((&a + &b).sum(), 20.0);
        assert_eq!((&a - &b).sum(), -4.0);
        assert_eq!((&a * 2.0).sum(), 16.0);
        assert_eq!(a.hadamard(&b).sum(), 24.0);
    }

    #[test]
    fn axpy() {
        let mut a = Tensor::full(&[3], 1.0);
        let b = Tensor::full(&[3], 2.0);
        a.axpy_inplace(0.5, &b);
        assert!(a.allclose(&Tensor::full(&[3], 2.0), 1e-6));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(&[4], vec![1.0, -5.0, 3.0, 2.0]);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -5.0);
        assert_eq!(t.abs_max(), 5.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.mean(), 0.25);
        assert_eq!(t.norm_sq(), 1.0 + 25.0 + 9.0 + 4.0);
    }

    #[test]
    fn random_constructors_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let u = Tensor::uniform(&[100], -1.0, 1.0, &mut rng);
        assert!(u.max() < 1.0 && u.min() >= -1.0);
        let n = Tensor::randn(&[1000], 0.1, &mut rng);
        assert!(n.mean().abs() < 0.05, "mean {}", n.mean());
    }

    #[test]
    fn allclose_tolerance() {
        let a = Tensor::full(&[2], 1.0);
        let b = Tensor::full(&[2], 1.0005);
        assert!(a.allclose(&b, 1e-3));
        assert!(!a.allclose(&b, 1e-4));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_len() {
        Tensor::from_vec(&[3], vec![1.0, 2.0]);
    }
}
