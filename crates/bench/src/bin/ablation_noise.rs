//! Ablation — the unified analog non-ideality model versus noise-aware
//! training.
//!
//! Three campaigns in one binary:
//!
//! * **Strength × mitigation** — train each study network twice (naive:
//!   clean weights; noise-aware: every batch's passes run on weights
//!   carrying the same device draws inference will see), then evaluate
//!   both under the unified noise model (lognormal LRS/HRS spread, IR
//!   drop, read noise) across a strength sweep. The headline number is the
//!   *recovered fraction* at the mid-strength point: how much of the
//!   accuracy the naive network loses to noise the noise-aware network
//!   wins back. The CI gate requires ≥ half.
//! * **Noise + aging + scrub** — the functional ReRAM datapath with noise
//!   attached *and* drifting cells, with and without the online scrub
//!   scheduler: non-idealities compose, and scrub still earns its keep
//!   under analog noise.
//! * **Determinism** — noise-aware training repeated at 1/2(/8) worker
//!   threads must produce bitwise-identical weights (the perturbation is
//!   pure in `(seed, layer, batch)` and precedes the parallel section).
//!   Any divergence fails the binary (exit 1).
//!
//! Results land in `BENCH_noise.json`. `--smoke` shrinks everything for CI.

use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::variation::{noise_sweep, VariationPoint};
use pipelayer::{ReramNoiseHook, ScrubPolicy};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::serialize::atomic_write;
use pipelayer_nn::trainer::{TrainConfig, Trainer};
use pipelayer_nn::{zoo, Network};
use pipelayer_reram::{DriftModel, NoiseModel, ReramParams, VerifyPolicy};
use pipelayer_tensor::Tensor;
use std::path::Path;
use std::sync::Arc;

/// One chip instance: the seed every device-variation stream (training
/// hook AND evaluation corruption) derives from.
const NOISE_SEED: u64 = 0xA11A;
/// Strength sweep: clean, the gated mid point, and a harsh tail.
const STRENGTHS: [f64; 3] = [0.0, 4.0, 6.0];
/// Index of the gated point in [`STRENGTHS`].
const MID: usize = 1;
/// Accuracy the naive net must actually lose before the recovery gate is
/// meaningful; below this the noise didn't bite and the point passes.
const MIN_LOSS: f32 = 0.02;

struct NetResult {
    name: &'static str,
    naive: Vec<VariationPoint>,
    aware: Vec<VariationPoint>,
    /// `(aware − naive) / (clean − naive)` at the mid strength, or `None`
    /// when the naive loss there is under [`MIN_LOSS`].
    recovered_fraction: Option<f32>,
}

fn weight_bits(net: &mut Network) -> Vec<u32> {
    let mut bits = Vec::new();
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            bits.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
            bits.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
        }
    }
    bits
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn points_json(points: &[VariationPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"strength\": {}, \"accuracy\": {}, \"normalized\": {}}}",
                json_num(p.sigma),
                json_num(f64::from(p.accuracy)),
                json_num(f64::from(p.normalized))
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_train, n_test, epochs) = if smoke { (300, 100, 4) } else { (600, 200, 6) };
    let trials = if smoke { 3 } else { 4 };
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 8] };
    type NetCtor = fn(u64) -> Network;
    let nets: &[(&'static str, NetCtor)] = if smoke {
        &[("Mnist-A", zoo::mnist_a)]
    } else {
        &[
            ("Mnist-A", zoo::mnist_a),
            ("Mnist-0", zoo::mnist_0),
            ("C-4", zoo::c4),
        ]
    };
    let params = ReramParams::default();
    let mid_model = NoiseModel::with_strength(STRENGTHS[MID]);
    // The training hook injects only the REPEATABLE error components
    // (lognormal device spread, IR drop): per-read noise is temporally
    // white, so it carries no learnable structure — feeding it to the
    // gradients would only add variance without moving the optimum.
    let hook_model = NoiseModel {
        read_sigma: 0.0,
        ..mid_model
    };
    let config = TrainConfig {
        epochs,
        batch_size: 16,
        lr: 0.1,
        threads: 1,
    };

    // ---- Campaign 1: strength × mitigation on the study networks.
    println!(
        "noise campaign — {n_train} train / {n_test} test, {epochs} epochs{}",
        if smoke { " [smoke]" } else { "" }
    );
    let data = SyntheticMnist::generate(n_train, n_test, 4243);
    let mut results: Vec<NetResult> = Vec::new();
    let mut table = Table::new(
        "Ablation: accuracy under analog noise — naive vs noise-aware training",
        &[
            "network",
            "arm",
            "clean",
            &format!("s={}", STRENGTHS[MID]),
            &format!("s={}", STRENGTHS[2]),
            "recovered",
        ],
    );
    for &(name, build) in nets {
        let mut naive_net = build(4243);
        Trainer::new(config).fit(&mut naive_net, &data);

        let hook = ReramNoiseHook::new(hook_model, params, NOISE_SEED);
        let mut aware_net = build(4243);
        Trainer::new(config)
            .with_noise(Arc::new(hook))
            .fit(&mut aware_net, &data);

        let naive = noise_sweep(
            &mut naive_net,
            &data.test,
            &STRENGTHS,
            trials,
            &params,
            NOISE_SEED,
        );
        let aware = noise_sweep(
            &mut aware_net,
            &data.test,
            &STRENGTHS,
            trials,
            &params,
            NOISE_SEED,
        );

        let loss = naive[0].accuracy - naive[MID].accuracy;
        let recovered_fraction = if loss >= MIN_LOSS {
            Some((aware[MID].accuracy - naive[MID].accuracy) / loss)
        } else {
            None
        };
        for (arm, pts) in [("naive", &naive), ("noise-aware", &aware)] {
            table.row(vec![
                name.to_string(),
                arm.to_string(),
                fmt_f(f64::from(pts[0].accuracy), 3),
                fmt_f(f64::from(pts[MID].accuracy), 3),
                fmt_f(f64::from(pts[2].accuracy), 3),
                if arm == "naive" {
                    fmt_f(f64::from(loss), 3) + " lost"
                } else {
                    match recovered_fraction {
                        Some(f) => fmt_f(f64::from(f), 2),
                        None => "n/a (loss < gate)".into(),
                    }
                },
            ]);
        }
        results.push(NetResult {
            name,
            naive,
            aware,
            recovered_fraction,
        });
    }
    table.print();

    // ---- Campaign 2: noise + aging + scrub on the functional datapath.
    println!();
    let (f_epochs, age_steps, step_cycles) = if smoke {
        (6, 3, 50_000u64)
    } else {
        (8, 6, 100_000u64)
    };
    let fdata = SyntheticMnist::generate(120, 40, 77);
    let tr: Vec<Tensor> = fdata
        .train
        .images
        .iter()
        .map(|t| downsample(t, 4))
        .collect();
    let te: Vec<Tensor> = fdata.test.images.iter().map(|t| downsample(t, 4)).collect();
    let (trl, tel) = (&fdata.train.labels, &fdata.test.labels);
    let drift = DriftModel {
        nu: 0.2,
        nu_sigma: 0.15,
        t0_cycles: 10_000,
        disturb_per_level: 0,
    };
    let mut mlp = ReramMlp::with_resilience(
        &[49, 16, 10],
        &params,
        5,
        drift,
        ScrubPolicy::off(),
        VerifyPolicy::default(),
    );
    // Milder than the weight-level sweep: here EVERY analog MVM (forward,
    // backward, and the Fig. 14(b) read-back of the update) is noisy, so
    // the datapath trains through the noise rather than around it.
    mlp.attach_noise(NoiseModel::with_strength(0.25), NOISE_SEED);
    for _ in 0..f_epochs {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, 0.3);
        }
    }
    let func_baseline = f64::from(mlp.accuracy(&te, tel));
    let mut func_rows: Vec<(String, f64, u64)> = Vec::new();
    for scrub_on in [false, true] {
        let mut arm = mlp.clone();
        if scrub_on {
            arm.set_scrub(ScrubPolicy::every(1_000, 16));
        }
        arm.advance_cycles(age_steps * step_cycles);
        func_rows.push((
            if scrub_on { "scrub on" } else { "scrub off" }.to_string(),
            f64::from(arm.accuracy(&te, tel)),
            arm.scrub_passes(),
        ));
    }
    let mut func_table = Table::new(
        "Functional datapath: noisy arrays aging, with/without scrub",
        &["arm", "accuracy after aging", "scrub passes"],
    );
    for (arm, acc, passes) in &func_rows {
        func_table.row(vec![arm.clone(), fmt_f(*acc, 3), passes.to_string()]);
    }
    func_table.print();
    println!(
        "noisy baseline before aging: {} ({} aging cycles applied)",
        fmt_f(func_baseline, 3),
        age_steps * step_cycles
    );

    // ---- Campaign 3: thread-count determinism of noise-aware training.
    println!();
    let ddata = SyntheticMnist::generate(96, 24, 57);
    let mut reference: Option<Vec<u32>> = None;
    let mut deterministic = true;
    for &threads in thread_counts {
        let hook = ReramNoiseHook::new(hook_model, params, NOISE_SEED);
        let mut net = zoo::mnist_a(57);
        Trainer::new(TrainConfig {
            epochs: 2,
            batch_size: 16,
            lr: 0.1,
            threads,
        })
        .with_noise(Arc::new(hook))
        .fit(&mut net, &ddata);
        let bits = weight_bits(&mut net);
        match &reference {
            None => reference = Some(bits),
            Some(r) => {
                let same = *r == bits;
                deterministic &= same;
                println!(
                    "noise-aware training at {threads} threads: {}",
                    if same {
                        "bitwise identical"
                    } else {
                        "DIVERGED"
                    }
                );
            }
        }
    }

    // ---- JSON artifact.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"noise\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"model_at_strength_1\": {{\"lrs_sigma\": {}, \"hrs_sigma\": {}, \"ir_drop\": {}, \"read_sigma\": {}, \"g_ratio\": {}}},\n",
        json_num(NoiseModel::with_strength(1.0).lrs_sigma),
        json_num(NoiseModel::with_strength(1.0).hrs_sigma),
        json_num(NoiseModel::with_strength(1.0).ir_drop),
        json_num(NoiseModel::with_strength(1.0).read_sigma),
        json_num(NoiseModel::with_strength(1.0).g_ratio),
    ));
    let strengths: Vec<String> = STRENGTHS.iter().map(|s| json_num(*s)).collect();
    json.push_str(&format!(
        "  \"strengths\": [{}],\n  \"mid_strength\": {},\n  \"seed\": {},\n",
        strengths.join(", "),
        json_num(STRENGTHS[MID]),
        NOISE_SEED
    ));
    json.push_str("  \"networks\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"network\": \"{}\", \"naive\": {}, \"noise_aware\": {}, \"recovered_fraction\": {}}}{}\n",
            r.name,
            points_json(&r.naive),
            points_json(&r.aware),
            r.recovered_fraction
                .map_or("null".to_string(), |f| json_num(f64::from(f))),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"functional_scrub\": [\n");
    for (i, (arm, acc, passes)) in func_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"arm\": \"{arm}\", \"accuracy\": {}, \"scrub_passes\": {passes}}}{}\n",
            json_num(*acc),
            if i + 1 < func_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let threads: Vec<String> = thread_counts.iter().map(|t| t.to_string()).collect();
    json.push_str(&format!(
        "  \"determinism\": {{\"thread_counts\": [{}], \"bitwise_identical\": {deterministic}}}\n",
        threads.join(", ")
    ));
    json.push_str("}\n");
    if let Err(e) = atomic_write(Path::new("BENCH_noise.json"), json.as_bytes()) {
        eprintln!("failed to write BENCH_noise.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_noise.json");

    // ---- Gates.
    if !deterministic {
        eprintln!("noise-aware training diverged across thread counts — failing");
        std::process::exit(1);
    }
    let mut gate_ok = true;
    for r in &results {
        if let Some(f) = r.recovered_fraction {
            let ok = f >= 0.5;
            gate_ok &= ok;
            println!(
                "{}: noise-aware training recovered {} of the naive loss at strength {} — {}",
                r.name,
                fmt_f(f64::from(f), 2),
                STRENGTHS[MID],
                if ok { "ok" } else { "BELOW the 0.5 gate" }
            );
        } else {
            println!(
                "{}: naive loss at strength {} under {} — recovery gate not exercised",
                r.name, STRENGTHS[MID], MIN_LOSS
            );
        }
    }
    if !gate_ok {
        eprintln!("noise-aware training recovered less than half the naive loss — failing");
        std::process::exit(1);
    }
    println!("noise-aware training meets the half-recovery gate everywhere it applies");
}
