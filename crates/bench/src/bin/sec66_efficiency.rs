//! Section 6.6 — computational efficiency (GOPS/s/mm²) and power efficiency
//! (GOPS/s/W) of PipeLayer against DaDianNao and ISAAC, plus the total
//! accelerator area.

use pipelayer::area::{training_area, AreaModel};
use pipelayer::config::PipeLayerConfig;
use pipelayer::mapping::MappedNetwork;
use pipelayer::perf::PerfModel;
use pipelayer_baselines::dadiannao::{DADIANNAO, ISAAC, PIPELAYER_AREA_MM2, PIPELAYER_PUBLISHED};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::zoo;

fn main() {
    // The paper quotes efficiency for the (AlexNet) training deployment.
    let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
    let perf = PerfModel::new(&net);
    let n = 6400;

    let est = perf.training(n, true);
    let gops = perf.training_gops(n);
    let area = training_area(&net, &AreaModel::default());
    let compute_eff = gops / area.mm2;
    let power_eff = gops / est.power_w();

    let mut table = Table::new(
        "Sec. 6.6: efficiency comparison (AlexNet training workload)",
        &["design", "GOPS/s/mm^2", "GOPS/s/W"],
    );
    table.row(vec![
        "DaDianNao (published)".into(),
        fmt_f(DADIANNAO.gops_per_mm2, 2),
        fmt_f(DADIANNAO.gops_per_w, 1),
    ]);
    table.row(vec![
        "ISAAC (published)".into(),
        fmt_f(ISAAC.gops_per_mm2, 2),
        fmt_f(ISAAC.gops_per_w, 1),
    ]);
    table.row(vec![
        PIPELAYER_PUBLISHED.name.into(),
        fmt_f(PIPELAYER_PUBLISHED.gops_per_mm2, 1),
        fmt_f(PIPELAYER_PUBLISHED.gops_per_w, 1),
    ]);
    table.row(vec![
        "PipeLayer (this reproduction)".into(),
        fmt_f(compute_eff, 1),
        fmt_f(power_eff, 1),
    ]);
    table.print();

    println!();
    println!(
        "area: {:.1} mm^2 ({} crossbars); paper: {PIPELAYER_AREA_MM2} mm^2",
        area.mm2, area.crossbars
    );
    println!(
        "sustained training throughput: {gops:.1} GOPS at {:.1} W",
        est.power_w()
    );
    println!();
    println!("paper shape: PipeLayer's computational efficiency beats both baselines");
    println!("(no ADCs, storage arrays double as compute arrays), while its power");
    println!("efficiency trails both (all data is written to ReRAM, not eDRAM).");

    // Verify the two ordering claims hold for the reproduction.
    assert!(
        compute_eff > ISAAC.gops_per_mm2,
        "computational efficiency should beat ISAAC: {compute_eff}"
    );
    assert!(
        power_eff < DADIANNAO.gops_per_w,
        "power efficiency should trail DaDianNao: {power_eff}"
    );
    println!();
    println!("ordering claims verified.");
}
