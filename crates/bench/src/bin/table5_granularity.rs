//! Table 5 — default parallelism-granularity configuration of every
//! convolution layer in the five VGG networks.
//!
//! The published table's digits are OCR-damaged in the available text, so
//! these are the *reconstructed* defaults from the balanced, area-budgeted
//! search described in `pipelayer::granularity` (DESIGN.md §8).

use pipelayer::config::PipeLayerConfig;
use pipelayer::granularity::default_granularity;
use pipelayer::mapping::MappedNetwork;
use pipelayer_bench::Table;
use pipelayer_nn::zoo::{vgg, VggVariant};

fn main() {
    // Collect conv-layer G per network; pad to the longest (VGG-E, 16).
    let mut columns: Vec<(String, Vec<usize>)> = Vec::new();
    for variant in VggVariant::ALL {
        let spec = vgg(variant);
        let layers = spec.resolve();
        let g = default_granularity(&layers);
        let conv_g: Vec<usize> = layers
            .iter()
            .zip(&g)
            .filter(|(l, _)| l.is_conv)
            .map(|(_, &g)| g)
            .collect();
        columns.push((spec.name.clone(), conv_g));
    }
    let max_convs = columns.iter().map(|(_, c)| c.len()).max().unwrap_or(0);

    let mut headers = vec!["layer".to_string()];
    headers.extend(columns.iter().map(|(n, _)| n.clone()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Table 5: default parallelism granularity G per VGG conv layer (reconstructed)",
        &header_refs,
    );
    for i in 0..max_convs {
        let mut row = vec![format!("conv{}", i + 1)];
        for (_, g) in &columns {
            row.push(g.get(i).map_or("-".to_string(), |v| v.to_string()));
        }
        table.row(row);
    }
    table.print();

    println!();
    for variant in VggVariant::ALL {
        let spec = vgg(variant);
        let m = MappedNetwork::from_spec(&spec, PipeLayerConfig::default());
        let reads = m.layers.iter().map(|l| l.reads_forward).max().unwrap_or(0);
        println!(
            "{}: balanced to <= {} sequential reads per cycle, {} forward crossbars",
            spec.name,
            reads,
            m.forward_crossbars()
        );
    }
}
