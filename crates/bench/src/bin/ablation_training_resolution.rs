//! Ablation — *training* at limited weight resolution (quantization-aware).
//!
//! PipeLayer trains with its weights living in ReRAM: every update is a
//! read-modify-write on the 16-bit grid that the four 4-bit segment groups
//! realise (Fig. 14b). This ablation trains with the weights pinned to an
//! N-bit grid throughout: 16-bit matches float (validating the default
//! design point), while low-resolution grids swallow the averaged SGD steps
//! and training stalls — the failure that resolution compensation exists to
//! prevent.
//!
//! Run with `--release`; `--quick` shrinks the budget.

use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::trainer::{TrainConfig, Trainer};
use pipelayer_nn::zoo;
use pipelayer_quant::train_at_resolution;

const BITS: [u8; 6] = [16, 8, 6, 4, 3, 2];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, n_test, epochs) = if quick { (400, 150, 3) } else { (1500, 400, 5) };
    let data = SyntheticMnist::generate(n_train, n_test, 2718);
    let cfg = TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.1,
        threads: 0,
    };

    let mut headers = vec!["network".to_string(), "float".to_string()];
    headers.extend(BITS.iter().map(|b| format!("{b}-bit")));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Ablation: final test accuracy when TRAINING at N-bit weights",
        &hrefs,
    );

    for (name, build) in [
        ("M-1", zoo::m1 as fn(u64) -> pipelayer_nn::Network),
        ("M-3", zoo::m3 as fn(u64) -> pipelayer_nn::Network),
    ] {
        let mut float_net = build(2718);
        let float_report = Trainer::new(cfg).fit(&mut float_net, &data);
        let mut row = vec![
            name.to_string(),
            fmt_f(float_report.final_test_accuracy as f64, 3),
        ];
        for &bits in &BITS {
            let mut net = build(2718);
            let report = train_at_resolution(&mut net, &data, &cfg, bits);
            row.push(fmt_f(report.final_test_accuracy as f64, 3));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!("shape: 16-bit training is float-equivalent (the paper's default);");
    println!("accuracy collapses once the grid step exceeds the averaged SGD update.");
}
