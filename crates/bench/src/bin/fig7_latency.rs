//! Figure 7 — per-batch latency of the PipeLayer architecture without and
//! with the inter-layer pipeline: `(2L+1)B + 1` vs `2L + B + 1` cycles.

use pipelayer::analysis::Analysis;
use pipelayer_bench::{fmt_f, Table};

fn main() {
    let mut table = Table::new(
        "Figure 7: cycles per batch, non-pipelined vs pipelined",
        &[
            "L",
            "B",
            "(2L+1)B+1",
            "2L+B+1",
            "speedup",
            "limit (2L+1)B/(2L+B+1)",
        ],
    );
    for l in [3usize, 8, 11, 13, 16, 19] {
        for b in [16usize, 64, 256] {
            let a = Analysis::new(l, b);
            let np = a.training_cycles_nonpipelined(b as u64);
            let p = a.training_cycles_pipelined(b as u64);
            table.row(vec![
                l.to_string(),
                b.to_string(),
                np.to_string(),
                p.to_string(),
                fmt_f(np as f64 / p as f64, 2),
                fmt_f(a.training_pipeline_speedup_limit(), 2),
            ]);
        }
    }
    table.print();
    println!();
    println!("the pipelined batch costs fill (2L+1) + stream (B-1) + update (1) cycles (Fig. 7b);");
    println!(
        "for B >> L the pipeline approaches the ideal 2L+1 speedup over sequential execution."
    );
}
