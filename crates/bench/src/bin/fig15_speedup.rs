//! Figure 15 — speedups of the ten evaluation networks over the GPU
//! baseline, in training and testing, for PipeLayer without and with the
//! inter-layer pipeline.
//!
//! Regenerates the series of Fig. 15: GPU (normalised to 1), PipeLayer
//! w/o pipeline, PipeLayer (pipelined), plus the geometric means the paper
//! quotes in Sec. 6.3.

use pipelayer::Accelerator;
use pipelayer_baselines::GpuModel;
use pipelayer_bench::workloads::{evaluation_workloads, BATCH};
use pipelayer_bench::{fmt_f, geomean, paper, Table};

fn main() {
    let gpu = GpuModel::default();
    let mut table = Table::new(
        "Figure 15: speedup vs GPU (training and testing)",
        &[
            "network",
            "train w/o pipe",
            "train PipeLayer",
            "test w/o pipe",
            "test PipeLayer",
        ],
    );

    let mut train_pipe = Vec::new();
    let mut train_nopipe = Vec::new();
    let mut test_pipe = Vec::new();
    let mut test_nopipe = Vec::new();

    for (spec, n) in evaluation_workloads() {
        let gpu_train = gpu.training(&spec, n, BATCH).time_s;
        let gpu_test = gpu.testing(&spec, n, BATCH).time_s;

        let accel = Accelerator::builder(spec.clone()).batch_size(BATCH).build();
        let np = Accelerator::builder(spec.clone())
            .batch_size(BATCH)
            .pipelined(false)
            .build();

        let s_train_pipe = gpu_train / accel.estimate_training(n).time_s;
        let s_train_np = gpu_train / np.estimate_training(n).time_s;
        let s_test_pipe = gpu_test / accel.estimate_testing(n).time_s;
        let s_test_np = gpu_test / np.estimate_testing(n).time_s;

        train_pipe.push(s_train_pipe);
        train_nopipe.push(s_train_np);
        test_pipe.push(s_test_pipe);
        test_nopipe.push(s_test_np);

        table.row(vec![
            spec.name.clone(),
            fmt_f(s_train_np, 2),
            fmt_f(s_train_pipe, 2),
            fmt_f(s_test_np, 2),
            fmt_f(s_test_pipe, 2),
        ]);
    }

    table.row(vec![
        "Gmean".into(),
        fmt_f(geomean(&train_nopipe), 2),
        fmt_f(geomean(&train_pipe), 2),
        fmt_f(geomean(&test_nopipe), 2),
        fmt_f(geomean(&test_pipe), 2),
    ]);
    table.print();

    let overall: Vec<f64> = train_pipe.iter().chain(&test_pipe).copied().collect();
    println!();
    println!(
        "geomean speedup — training {:.2}x, testing {:.2}x, overall {:.2}x",
        geomean(&train_pipe),
        geomean(&test_pipe),
        geomean(&overall),
    );
    println!(
        "paper reference — testing geomean {:.2}x (Sec. 6.3; other geomeans OCR-damaged, see EXPERIMENTS.md)",
        paper::SPEEDUP_GEOMEAN_TEST
    );
    println!(
        "highest pipelined speedup observed: {:.2}x",
        train_pipe
            .iter()
            .chain(&test_pipe)
            .fold(0.0f64, |m, &x| m.max(x))
    );
}
