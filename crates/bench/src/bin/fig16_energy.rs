//! Figure 16 — energy savings of PipeLayer (pipelined) over the GPU
//! baseline, training and testing, for the ten evaluation networks.

use pipelayer::Accelerator;
use pipelayer_baselines::GpuModel;
use pipelayer_bench::workloads::{evaluation_workloads, BATCH};
use pipelayer_bench::{fmt_f, geomean, paper, Table};

fn main() {
    let gpu = GpuModel::default();
    let mut table = Table::new(
        "Figure 16: energy saving vs GPU (training and testing)",
        &["network", "train saving", "test saving"],
    );

    let mut train = Vec::new();
    let mut test = Vec::new();
    for (spec, n) in evaluation_workloads() {
        let accel = Accelerator::builder(spec.clone()).batch_size(BATCH).build();
        let s_train = gpu.training(&spec, n, BATCH).energy_j / accel.estimate_training(n).energy_j;
        let s_test = gpu.testing(&spec, n, BATCH).energy_j / accel.estimate_testing(n).energy_j;
        train.push(s_train);
        test.push(s_test);
        table.row(vec![spec.name.clone(), fmt_f(s_train, 2), fmt_f(s_test, 2)]);
    }
    table.row(vec![
        "Gmean".into(),
        fmt_f(geomean(&train), 2),
        fmt_f(geomean(&test), 2),
    ]);
    table.print();

    let overall: Vec<f64> = train.iter().chain(&test).copied().collect();
    println!();
    println!(
        "geomean energy saving — training {:.2}x, testing {:.2}x, overall {:.2}x",
        geomean(&train),
        geomean(&test),
        geomean(&overall)
    );
    println!(
        "paper reference — training {:.2}x, testing {:.2}x, overall {:.2}x; peaks: train {:.1}x (Mnist-C), test {:.1}x (Mnist-A)",
        paper::ENERGY_SAVING_GEOMEAN_TRAIN,
        paper::ENERGY_SAVING_GEOMEAN_TEST,
        paper::ENERGY_SAVING_GEOMEAN_ALL,
        paper::ENERGY_SAVING_MAX_TRAIN,
        paper::ENERGY_SAVING_MAX_TEST,
    );
    let max_train = train.iter().cloned().fold(0.0f64, f64::max);
    let max_test = test.iter().cloned().fold(0.0f64, f64::max);
    println!("our peaks — train {max_train:.1}x, test {max_test:.1}x");
}
