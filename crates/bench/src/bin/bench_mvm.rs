//! Packed-vs-scalar spiked-MVM microbenchmark.
//!
//! Times `Crossbar::mvm_spiked` (the bit-packed popcount datapath) against
//! `Crossbar::mvm_spiked_scalar` (the pinned per-slot boolean walk) on
//! Mnist-A-shaped layers — 785×100 and 101×10 crossbars, the fc1/fc2
//! weight arrays with the bias row folded in — at the functional path's
//! 8-bit input resolution. Both paths are exact by construction, so the
//! benchmark double-checks bitwise equality of every output before trusting
//! the clock, and exits non-zero if the packed path is not at least the
//! floor factor faster (5× full, 2.5× under `--smoke` where tiny workloads
//! make the clock noisy). The gated figure is the *network* speedup — total
//! scalar time over total packed time for one MVM per layer — because the
//! 101×10 output layer is too small for packing to amortize its fixed
//! per-call costs and would otherwise mask the win on the layer that
//! carries ~98% of the work. Per-layer rates are still reported, and full
//! runs record everything in `BENCH_mvm.json`.
//!
//! Single-threaded on purpose: the claim under test is the kernel's own
//! throughput, not batch-level parallelism.

use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::serialize::atomic_write;
use pipelayer_reram::Crossbar;
use std::path::Path;
use std::time::Instant;

/// Input resolution of the functional training paths (time slots per MVM).
const INPUT_BITS: u8 = 8;

/// Per-cell resolution of the Fig. 14 weight decomposition.
const CELL_BITS: u8 = 4;

/// Distinct input vectors cycled through while timing, so the measurement
/// is not a single-vector cache artifact.
const INPUT_POOL: usize = 32;

struct LayerArm {
    name: &'static str,
    rows: usize,
    cols: usize,
    packed_secs: f64,
    scalar_secs: f64,
    packed_mvms_per_sec: f64,
    scalar_mvms_per_sec: f64,
    speedup: f64,
}

/// SplitMix64 step — a tiny self-contained stream so the benchmark does not
/// depend on any RNG crate surface.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Builds a deterministically-programmed crossbar and an input pool for one
/// layer shape. Two independently-built crossbars with the same seed hold
/// identical levels, so the packed and scalar arms read the same array.
fn build(rows: usize, cols: usize, seed: u64) -> (Crossbar, Vec<Vec<u32>>) {
    let mut state = seed;
    let max_level = (1u64 << CELL_BITS) - 1;
    let levels: Vec<Vec<u8>> = (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| (splitmix(&mut state) % (max_level + 1)) as u8)
                .collect()
        })
        .collect();
    let mut xbar = Crossbar::new(rows, cols, CELL_BITS);
    xbar.program(&levels);
    let max_in = 1u64 << INPUT_BITS;
    let inputs: Vec<Vec<u32>> = (0..INPUT_POOL)
        .map(|_| {
            (0..rows)
                .map(|_| (splitmix(&mut state) % max_in) as u32)
                .collect()
        })
        .collect();
    (xbar, inputs)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (reps, floor) = if smoke { (24usize, 2.5f64) } else { (400, 5.0) };

    // fc1/fc2 of Table 3's Mnist-A (784-100-10), bias row folded in.
    let layers: [(&str, usize, usize, u64); 2] = [
        ("mnist_a fc1", 785, 100, 0xA11CE),
        ("mnist_a fc2", 101, 10, 0xB0B5),
    ];

    println!(
        "spiked-MVM throughput — packed popcount vs scalar slot walk, {INPUT_BITS}-bit inputs, {reps} reps{}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut arms: Vec<LayerArm> = Vec::new();
    let mut all_identical = true;
    for &(name, rows, cols, seed) in &layers {
        let (mut packed_xbar, inputs) = build(rows, cols, seed);
        let (mut scalar_xbar, _) = build(rows, cols, seed);

        // Correctness gate before trusting the clock: every pooled input
        // must produce bitwise-identical outputs on both paths.
        for x in &inputs {
            let p = packed_xbar.mvm_spiked(x, INPUT_BITS);
            let s = scalar_xbar.mvm_spiked_scalar(x, INPUT_BITS);
            if p != s {
                all_identical = false;
                eprintln!("CORRECTNESS FAILURE: {name} packed != scalar");
                break;
            }
        }

        // Warmup already happened above (plane cache is hot, pages faulted).
        let t0 = Instant::now();
        let mut sink = 0u64;
        for i in 0..reps {
            let y = packed_xbar.mvm_spiked(&inputs[i % INPUT_POOL], INPUT_BITS);
            sink = sink.wrapping_add(y[0]);
        }
        let packed_secs = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for i in 0..reps {
            let y = scalar_xbar.mvm_spiked_scalar(&inputs[i % INPUT_POOL], INPUT_BITS);
            sink = sink.wrapping_add(y[0]);
        }
        let scalar_secs = t0.elapsed().as_secs_f64();
        std::hint::black_box(sink);

        let packed_rate = reps as f64 / packed_secs;
        let scalar_rate = reps as f64 / scalar_secs;
        arms.push(LayerArm {
            name,
            rows,
            cols,
            packed_secs,
            scalar_secs,
            packed_mvms_per_sec: packed_rate,
            scalar_mvms_per_sec: scalar_rate,
            speedup: packed_rate / scalar_rate,
        });
    }

    let mut table = Table::new(
        "Spiked-MVM throughput (single thread)".to_string(),
        &["layer", "shape", "packed MVM/s", "scalar MVM/s", "speedup"],
    );
    for arm in &arms {
        table.row(vec![
            arm.name.to_string(),
            format!("{}x{}", arm.rows, arm.cols),
            fmt_f(arm.packed_mvms_per_sec, 1),
            fmt_f(arm.scalar_mvms_per_sec, 1),
            format!("{}x", fmt_f(arm.speedup, 2)),
        ]);
    }
    table.print();

    // Network speedup: one MVM per layer (a full forward pass). Equal rep
    // counts per layer make the timed totals directly comparable.
    let scalar_total: f64 = arms.iter().map(|a| a.scalar_secs).sum();
    let packed_total: f64 = arms.iter().map(|a| a.packed_secs).sum();
    let network_speedup = scalar_total / packed_total;

    if !smoke {
        // Hand-written JSON (no serde in the workspace).
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"mvm\",\n");
        json.push_str("  \"mode\": \"full\",\n");
        json.push_str(&format!("  \"input_bits\": {INPUT_BITS},\n"));
        json.push_str(&format!("  \"cell_bits\": {CELL_BITS},\n"));
        json.push_str(&format!("  \"reps\": {reps},\n"));
        json.push_str(&format!(
            "  \"outputs_bitwise_identical\": {all_identical},\n"
        ));
        json.push_str(&format!(
            "  \"network_speedup\": {},\n",
            json_num(network_speedup)
        ));
        json.push_str(&format!("  \"speedup_floor\": {floor},\n"));
        json.push_str("  \"layers\": [\n");
        for (i, arm) in arms.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"layer\": \"{}\", \"rows\": {}, \"cols\": {}, \"packed_mvms_per_sec\": {}, \"scalar_mvms_per_sec\": {}, \"speedup\": {}}}{}\n",
                arm.name,
                arm.rows,
                arm.cols,
                json_num(arm.packed_mvms_per_sec),
                json_num(arm.scalar_mvms_per_sec),
                json_num(arm.speedup),
                if i + 1 < arms.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        if let Err(e) = atomic_write(Path::new("BENCH_mvm.json"), json.as_bytes()) {
            eprintln!("failed to write BENCH_mvm.json: {e}");
            std::process::exit(1);
        }
        println!("\nwrote BENCH_mvm.json");
    }

    if !all_identical {
        eprintln!("packed datapath diverged from the scalar reference — failing");
        std::process::exit(1);
    }
    if network_speedup < floor {
        eprintln!(
            "packed network speedup {network_speedup:.2}x below the {floor}x floor — failing"
        );
        std::process::exit(1);
    }
    println!(
        "packed outputs bitwise identical to scalar; network speedup {:.2}x (floor {floor}x)",
        network_speedup
    );
}
