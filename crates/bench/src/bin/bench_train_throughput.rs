//! Training-throughput benchmark for the data-parallel execution engine.
//!
//! Trains the Mnist-A network on synthetic MNIST at 1, 2, 4 and 8 worker
//! threads and reports images/sec per arm. Because the batch reduction
//! order is fixed per sample, every arm must produce a bitwise-identical
//! loss curve; the binary exits non-zero if any arm diverges from the
//! serial one, which makes it usable as a CI determinism gate
//! (`--smoke` shrinks the workload for that purpose).
//!
//! Results are written to `BENCH_train.json` alongside the machine's
//! available core count — speedups are only meaningful when the host
//! actually has the cores (a 1-core container reports ~1× at every arm).

use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::serialize::atomic_write;
use pipelayer_nn::trainer::{TrainConfig, Trainer};
use pipelayer_nn::zoo;
use std::path::Path;
use std::time::Instant;

const THREAD_ARMS: [usize; 4] = [1, 2, 4, 8];

struct Arm {
    threads: usize,
    effective_threads: usize,
    clamped: bool,
    seconds: f64,
    images_per_sec: f64,
    epoch_losses: Vec<f32>,
}

fn json_escape_free_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (train_n, test_n, epochs, batch) = if smoke {
        (64usize, 16usize, 1usize, 16usize)
    } else {
        (512, 64, 3, 64)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let data = SyntheticMnist::generate(train_n, test_n, 7);

    println!(
        "training throughput — Mnist-A, {train_n} samples, {epochs} epoch(s), batch {batch}, {cores} core(s){}",
        if smoke { " [smoke]" } else { "" }
    );

    let mut arms: Vec<Arm> = Vec::new();
    for &threads in &THREAD_ARMS {
        let mut net = zoo::mnist_a(7);
        let trainer = Trainer::new(TrainConfig {
            epochs,
            batch_size: batch,
            lr: 0.1,
            threads,
        });
        // Record the oversubscription clamp: on a small host the 8-thread
        // arm may actually run with fewer workers, and the JSON must say so
        // or its "speedup" column misleads.
        let resolution = trainer.config().resolve_threads();
        let t0 = Instant::now();
        let report = trainer.fit(&mut net, &data);
        let seconds = t0.elapsed().as_secs_f64();
        arms.push(Arm {
            threads,
            effective_threads: resolution.effective,
            clamped: resolution.clamped,
            seconds,
            images_per_sec: (train_n * epochs) as f64 / seconds,
            epoch_losses: report.epoch_losses,
        });
    }

    // Determinism gate: every arm's loss curve must be bitwise identical
    // to the serial arm's.
    let serial_bits: Vec<u32> = arms[0].epoch_losses.iter().map(|l| l.to_bits()).collect();
    let mut identical = true;
    for arm in &arms[1..] {
        let bits: Vec<u32> = arm.epoch_losses.iter().map(|l| l.to_bits()).collect();
        if bits != serial_bits {
            identical = false;
            eprintln!(
                "DETERMINISM FAILURE: {}-thread loss curve {:?} != serial {:?}",
                arm.threads, arm.epoch_losses, arms[0].epoch_losses
            );
        }
    }

    let mut table = Table::new(
        "Training throughput by worker-thread count".to_string(),
        &[
            "threads",
            "effective",
            "seconds",
            "img/s",
            "speedup",
            "final loss",
        ],
    );
    let base = arms[0].images_per_sec;
    for arm in &arms {
        table.row(vec![
            arm.threads.to_string(),
            if arm.clamped {
                format!("{} (clamped)", arm.effective_threads)
            } else {
                arm.effective_threads.to_string()
            },
            fmt_f(arm.seconds, 3),
            fmt_f(arm.images_per_sec, 1),
            format!("{}x", fmt_f(arm.images_per_sec / base, 2)),
            format!(
                "{:.6}",
                arm.epoch_losses.last().copied().unwrap_or(f32::NAN)
            ),
        ]);
    }
    table.print();

    // Hand-written JSON (no serde in the workspace).
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"train_throughput\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"network\": \"mnist_a\",\n");
    json.push_str(&format!("  \"available_cores\": {cores},\n"));
    json.push_str(&format!("  \"train_samples\": {train_n},\n"));
    json.push_str(&format!("  \"epochs\": {epochs},\n"));
    json.push_str(&format!("  \"batch_size\": {batch},\n"));
    json.push_str(&format!(
        "  \"loss_curves_bitwise_identical\": {identical},\n"
    ));
    json.push_str("  \"arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let losses: Vec<String> = arm
            .epoch_losses
            .iter()
            .map(|l| json_escape_free_number(f64::from(*l)))
            .collect();
        json.push_str(&format!(
            "    {{\"requested_threads\": {}, \"effective_threads\": {}, \"clamped\": {}, \"seconds\": {}, \"images_per_sec\": {}, \"speedup_vs_serial\": {}, \"epoch_losses\": [{}]}}{}\n",
            arm.threads,
            arm.effective_threads,
            arm.clamped,
            json_escape_free_number(arm.seconds),
            json_escape_free_number(arm.images_per_sec),
            json_escape_free_number(arm.images_per_sec / base),
            losses.join(", "),
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = atomic_write(Path::new("BENCH_train.json"), json.as_bytes()) {
        eprintln!("failed to write BENCH_train.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_train.json");

    if !identical {
        eprintln!("parallel training diverged from serial — failing");
        std::process::exit(1);
    }
    println!("loss curves bitwise identical across 1/2/4/8 threads");
}
