//! Ablation — runtime resilience: device aging versus the online scrub
//! scheduler, and crash-safe checkpoint/resume.
//!
//! Two campaigns in one binary:
//!
//! * **Drift × scrub interval** — train Mnist-A-class weights on the
//!   functional ReRAM datapath, then deploy cloned arms under different
//!   scrub schedules while the arrays age (conductance drift with per-cell
//!   ν heterogeneity). Accuracy is sampled along the aging axis; the
//!   analytic models price each schedule's time/energy/endurance cost on
//!   the mapped design.
//! * **Kill × resume** — run the resumable trainer, kill it at awkward
//!   image counts, resume each time into a freshly-initialised network
//!   from the PLW2 checkpoint alone, and require the final weights to be
//!   BITWISE identical to a never-interrupted run. Any divergence fails
//!   the binary (exit 1), which makes it a CI gate.
//!
//! Results land in `BENCH_resilience.json`. `--smoke` shrinks both
//! campaigns for CI.

use pipelayer::endurance::{training_lifetime, EnduranceModel};
use pipelayer::energy::EnergyModel;
use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::timing::TimingModel;
use pipelayer::{DriftReport, DriftSample, MappedNetwork, PipeLayerConfig, ScrubPolicy};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::serialize::atomic_write;
use pipelayer_nn::trainer::{CheckpointPolicy, FitOutcome, TrainConfig, Trainer};
use pipelayer_nn::{zoo, Network};
use pipelayer_reram::{DriftModel, ReramParams, VerifyPolicy};
use pipelayer_tensor::Tensor;
use std::path::Path;

const DIMS: [usize; 3] = [49, 16, 10];
const SEED: u64 = 5;
const LR: f32 = 0.3;
const ROWS_PER_PASS: usize = 16;

/// The campaign drift model: retention knee at 10k cycles (beyond the
/// training run, within deployment scale) and a large cell-to-cell ν
/// spread — heterogeneity, not mean drift, is what distorts relative
/// weights and costs accuracy.
fn aging_model() -> DriftModel {
    DriftModel {
        nu: 0.2,
        nu_sigma: 0.15,
        t0_cycles: 10_000,
        disturb_per_level: 0,
    }
}

struct DriftArm {
    interval_images: u64,
    samples: Vec<DriftSample>,
    drifted_cells: usize,
    scrub_passes: u64,
}

fn weight_bits(net: &mut Network) -> Vec<u32> {
    let mut bits = Vec::new();
    for layer in net.layers_mut() {
        if let Some(p) = layer.params_mut() {
            bits.extend(p.weight.as_slice().iter().map(|v| v.to_bits()));
            bits.extend(p.bias.as_slice().iter().map(|v| v.to_bits()));
        }
    }
    bits
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_train, n_test, epochs) = if smoke { (80, 40, 2) } else { (120, 40, 8) };
    let (age_steps, step_cycles) = if smoke {
        (4, 50_000u64)
    } else {
        (10, 100_000u64)
    };
    let intervals: &[u64] = if smoke {
        &[0, 1_000]
    } else {
        &[0, 4_000, 1_000]
    };

    // ---- Campaign 1: drift × scrub interval on the functional datapath.
    let data = SyntheticMnist::generate(n_train, n_test, 77);
    let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
    let (trl, tel) = (&data.train.labels, &data.test.labels);

    let mut mlp = ReramMlp::with_resilience(
        &DIMS,
        &ReramParams::default(),
        SEED,
        aging_model(),
        ScrubPolicy::off(),
        VerifyPolicy::default(),
    );
    for _ in 0..epochs {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, LR);
        }
    }
    let baseline = f64::from(mlp.accuracy(&te, tel));
    println!(
        "drift campaign — {n_train} train / {n_test} test, {epochs} epochs, baseline {} {}",
        fmt_f(baseline, 3),
        if smoke { "[smoke]" } else { "" }
    );

    let mut arms: Vec<DriftArm> = Vec::new();
    for &interval in intervals {
        let mut arm = mlp.clone();
        if interval > 0 {
            arm.set_scrub(ScrubPolicy::every(interval, ROWS_PER_PASS));
        }
        let mut samples = Vec::with_capacity(age_steps);
        for step in 1..=age_steps {
            arm.advance_cycles(step_cycles);
            samples.push(DriftSample {
                cycles: step as u64 * step_cycles,
                accuracy: f64::from(arm.accuracy(&te, tel)),
            });
        }
        arms.push(DriftArm {
            interval_images: interval,
            samples,
            drifted_cells: arm.drifted_cells(),
            scrub_passes: arm.scrub_passes(),
        });
    }

    let report = DriftReport {
        baseline_accuracy: baseline,
        scrub_on: arms.last().map(|a| a.samples.clone()).unwrap_or_default(),
        scrub_off: arms.first().map(|a| a.samples.clone()).unwrap_or_default(),
    };

    let mut table = Table::new(
        "Ablation: accuracy after aging vs scrub interval",
        &[
            "scrub interval (imgs)",
            "final accuracy",
            "Δ vs baseline (pts)",
            "drifted cells left",
            "scrub passes",
        ],
    );
    for arm in &arms {
        let fin = arm.samples.last().map_or(baseline, |s| s.accuracy);
        table.row(vec![
            if arm.interval_images == 0 {
                "off".into()
            } else {
                arm.interval_images.to_string()
            },
            fmt_f(fin, 3),
            fmt_f((fin - baseline) * 100.0, 1),
            arm.drifted_cells.to_string(),
            arm.scrub_passes.to_string(),
        ]);
    }
    table.print();
    println!(
        "scrub scheduler saved {} accuracy points over {} aging cycles",
        fmt_f(report.accuracy_saved() * 100.0, 1),
        age_steps as u64 * step_cycles
    );

    // ---- Analytic cost of each schedule on the mapped Mnist-A design.
    println!();
    let spec = zoo::spec_mnist_a();
    let base_net = MappedNetwork::from_spec(&spec, PipeLayerConfig::default());
    let base_life = training_lifetime(&base_net, &EnduranceModel::research_grade());
    let batch = PipeLayerConfig::default().batch_size as f64;
    let images_to_death =
        |l: &pipelayer::endurance::Lifetime| -> f64 { l.seconds * l.updates_per_second * batch };
    let mut cost = Table::new(
        "Analytic: scrub cost on mapped Mnist-A (research-grade cells)",
        &[
            "interval (imgs)",
            "scrub ns/img",
            "scrub µJ/img",
            "images-to-death (×off)",
        ],
    );
    let mut analytic_rows: Vec<(u64, f64, f64, f64)> = Vec::new();
    cost.row(vec![
        "off".into(),
        "0.000".into(),
        "0.000".into(),
        "1.000".into(),
    ]);
    for &interval in intervals.iter().filter(|&&i| i > 0) {
        let cfg = PipeLayerConfig {
            scrub: ScrubPolicy::every(interval, ROWS_PER_PASS),
            ..PipeLayerConfig::default()
        };
        let net = MappedNetwork::from_spec(&spec, cfg);
        let ns_per_image = TimingModel::new(&net).scrub_ns_per_image();
        let uj_per_image = EnergyModel::new(&net).scrub_j_per_image() * 1e6;
        let life = training_lifetime(&net, &EnduranceModel::research_grade());
        let ratio = images_to_death(&life) / images_to_death(&base_life);
        cost.row(vec![
            interval.to_string(),
            fmt_f(ns_per_image, 3),
            fmt_f(uj_per_image, 3),
            fmt_f(ratio, 3),
        ]);
        analytic_rows.push((interval, ns_per_image, uj_per_image, ratio));
    }
    cost.print();

    // ---- Campaign 2: kill × resume bitwise determinism.
    println!();
    let kill_points: &[u64] = if smoke { &[17] } else { &[29, 67] };
    let (rn_train, rn_test, r_epochs) = if smoke { (48, 16, 1) } else { (96, 24, 2) };
    let rdata = SyntheticMnist::generate(rn_train, rn_test, 37);
    let trainer = Trainer::new(TrainConfig {
        epochs: r_epochs,
        batch_size: 16,
        lr: 0.1,
        threads: 0,
    });
    let ckpt = std::env::temp_dir().join(format!("plw2-resilience-{}.ckpt", std::process::id()));

    let mut reference_net = zoo::mnist_a(37);
    let policy = CheckpointPolicy::every(&ckpt, 64);
    match trainer.fit_resumable(&mut reference_net, &rdata, &policy) {
        Ok(FitOutcome::Completed(_)) => {}
        other => {
            eprintln!("uninterrupted reference run did not complete: {other:?}");
            std::process::exit(1);
        }
    }
    let reference = weight_bits(&mut reference_net);

    let mut all_identical = true;
    for &kill in kill_points {
        let mut policy = CheckpointPolicy::every(&ckpt, 64);
        policy.stop_after_images = Some(kill);
        let mut net = zoo::mnist_a(37);
        let mut outcome = trainer.fit_resumable(&mut net, &rdata, &policy);
        let mut hops = 0u64;
        loop {
            match outcome {
                Ok(FitOutcome::Interrupted { .. }) => {
                    hops += 1;
                    if hops > 256 {
                        eprintln!("resume loop stuck at kill point {kill}");
                        std::process::exit(1);
                    }
                    // A fresh, differently-seeded net: everything must be
                    // restored from the checkpoint file alone.
                    net = zoo::mnist_a(37 + hops);
                    outcome = trainer.resume_from(&mut net, &rdata, &policy);
                }
                Ok(FitOutcome::Completed(_)) => break,
                Err(e) => {
                    eprintln!("kill point {kill}: checkpoint round-trip failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        let identical = weight_bits(&mut net) == reference;
        all_identical &= identical;
        println!(
            "kill every {kill} images ({hops} resumes): final weights {}",
            if identical {
                "bitwise identical"
            } else {
                "DIVERGED"
            }
        );
    }
    let _ = std::fs::remove_file(&ckpt);

    // ---- JSON artifact.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"resilience\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str("  \"drift_model\": {\"nu\": 0.2, \"nu_sigma\": 0.15, \"t0_cycles\": 10000},\n");
    json.push_str(&format!(
        "  \"baseline_accuracy\": {},\n",
        json_num(baseline)
    ));
    json.push_str(&format!(
        "  \"accuracy_saved_points\": {},\n",
        json_num(report.accuracy_saved() * 100.0)
    ));
    json.push_str("  \"drift_arms\": [\n");
    for (i, arm) in arms.iter().enumerate() {
        let samples: Vec<String> = arm
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"cycles\": {}, \"accuracy\": {}}}",
                    s.cycles,
                    json_num(s.accuracy)
                )
            })
            .collect();
        json.push_str(&format!(
            "    {{\"scrub_interval_images\": {}, \"rows_per_pass\": {}, \"drifted_cells\": {}, \"scrub_passes\": {}, \"samples\": [{}]}}{}\n",
            arm.interval_images,
            if arm.interval_images == 0 { 0 } else { ROWS_PER_PASS },
            arm.drifted_cells,
            arm.scrub_passes,
            samples.join(", "),
            if i + 1 < arms.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"analytic_costs\": [\n");
    for (i, (interval, ns_per_image, uj_per_image, ratio)) in analytic_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scrub_interval_images\": {}, \"scrub_ns_per_image\": {}, \"scrub_uj_per_image\": {}, \"images_to_death_ratio\": {}}}{}\n",
            interval,
            json_num(*ns_per_image),
            json_num(*uj_per_image),
            json_num(*ratio),
            if i + 1 < analytic_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let kills: Vec<String> = kill_points.iter().map(|k| k.to_string()).collect();
    json.push_str(&format!(
        "  \"resume\": {{\"kill_points\": [{}], \"bitwise_identical\": {all_identical}}}\n",
        kills.join(", ")
    ));
    json.push_str("}\n");
    if let Err(e) = atomic_write(Path::new("BENCH_resilience.json"), json.as_bytes()) {
        eprintln!("failed to write BENCH_resilience.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_resilience.json");

    if !all_identical {
        eprintln!("kill-and-resume diverged from the uninterrupted run — failing");
        std::process::exit(1);
    }
    println!("kill-and-resume is bitwise identical at every kill point");
}
