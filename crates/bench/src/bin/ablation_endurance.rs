//! Ablation — training lifetime under ReRAM cell endurance limits.
//!
//! The paper's weight cells are reprogrammed once per batch (Fig. 14b).
//! Depending on device endurance (10⁶ storage-class … 10¹² optimistic),
//! continuous training wears the weight arrays out in minutes or decades —
//! the adoption question the paper leaves open, made quantitative here from
//! the reproduction's own update-rate model.

use pipelayer::config::PipeLayerConfig;
use pipelayer::endurance::{training_lifetime, EnduranceModel};
use pipelayer::mapping::MappedNetwork;
use pipelayer_bench::{fmt_f, fmt_si, Table};
use pipelayer_nn::zoo;

fn human_time(seconds: f64) -> String {
    if seconds < 60.0 {
        format!("{seconds:.1} s")
    } else if seconds < 3_600.0 {
        format!("{:.1} min", seconds / 60.0)
    } else if seconds < 86_400.0 {
        format!("{:.1} h", seconds / 3_600.0)
    } else if seconds < 86_400.0 * 365.25 {
        format!("{:.1} days", seconds / 86_400.0)
    } else {
        format!("{:.1} years", seconds / (86_400.0 * 365.25))
    }
}

fn main() {
    let models = [
        ("1e6 (storage-class)", EnduranceModel::storage_class()),
        ("1e9 (research-grade)", EnduranceModel::research_grade()),
        ("1e12 (optimistic)", EnduranceModel::optimistic()),
    ];
    let mut table = Table::new(
        "Ablation: continuous-training lifetime of the weight cells",
        &["network", "updates/s", "@1e6", "@1e9", "@1e12"],
    );
    for spec in [
        zoo::spec_mnist_a(),
        zoo::spec_mnist_0(),
        zoo::alexnet(),
        zoo::vgg(zoo::VggVariant::D),
    ] {
        let net = MappedNetwork::from_spec(&spec, PipeLayerConfig::default());
        let lifetimes: Vec<_> = models
            .iter()
            .map(|(_, m)| training_lifetime(&net, m))
            .collect();
        let mut row = vec![spec.name.clone(), fmt_f(lifetimes[0].updates_per_second, 1)];
        row.extend(lifetimes.iter().map(|l| human_time(l.seconds)));
        table.row(row);
    }
    table.print();

    println!();
    println!(
        "weight cells per update (AlexNet): {} — every batch reprograms every weight",
        fmt_si(zoo::alexnet().weight_count() as f64)
    );
    println!();
    println!("takeaway: storage-class endurance rules out in-ReRAM training for the");
    println!("fast MNIST pipelines (cells die in minutes); research-grade (1e9) cells");
    println!("sustain years of the slower ImageNet-scale training — the device");
    println!("requirement the paper's training support implicitly assumes.");
}
