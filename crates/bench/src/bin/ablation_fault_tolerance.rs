//! Ablation — fault rate × {repair on, repair off} on the functional
//! ReRAM datapath.
//!
//! Three arms per stuck-at fault rate, all trained identically on the
//! downsampled synthetic-MNIST task through the full spike-coded crossbar
//! model:
//!
//! * **ideal** — fault-free arrays, fire-and-forget writes (the baseline);
//! * **repair off** — arrays carry persistent stuck-at faults, writes are
//!   fire-and-forget, stuck cells silently corrupt every MVM;
//! * **repair on** — the same fault rate, but every write runs the bounded
//!   program-and-verify loop and unrecoverable columns are remapped to
//!   spare columns (masked once the per-matrix budget runs out).
//!
//! Alongside accuracy the ablation reports the repair arm's measured
//! retry-pulse overhead (verified pulses / ideal pulses), the spare and
//! mask consumption, and — from the analytic models — the update-cycle
//! stretch and training-lifetime cost the verify discipline charges.
//!
//! Run with `--release` (training included). `--quick` shrinks the budget.

use pipelayer::config::PipeLayerConfig;
use pipelayer::endurance::{training_lifetime, EnduranceModel};
use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::mapping::MappedNetwork;
use pipelayer::repair::SpareBudget;
use pipelayer::timing::TimingModel;
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::metrics::DegradationReport;
use pipelayer_nn::zoo;
use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy};
use pipelayer_tensor::Tensor;

const DIMS: [usize; 3] = [49, 16, 10];
const SEED: u64 = 5;
const LR: f32 = 0.3;

fn train(mlp: &mut ReramMlp, tr: &[Tensor], trl: &[usize], epochs: usize) {
    for _ in 0..epochs {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, LR);
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, n_test, epochs) = if quick { (80, 40, 2) } else { (120, 40, 6) };
    let rates: &[f64] = if quick {
        &[1e-3, 2e-2]
    } else {
        &[1e-4, 1e-3, 5e-3, 2e-2]
    };
    let data = SyntheticMnist::generate(n_train, n_test, 77);
    let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
    let (trl, tel) = (&data.train.labels, &data.test.labels);
    let params = ReramParams::default();
    let verify = VerifyPolicy {
        max_attempts: 3,
        write_sigma: 0.2,
    };

    // Fault-free baseline, trained once.
    let mut ideal = ReramMlp::new(&DIMS, &params, SEED);
    train(&mut ideal, &tr, trl, epochs);
    let base_acc = ideal.accuracy(&te, tel);
    println!(
        "fault-free baseline: {} test accuracy ({n_train} train / {n_test} test, {epochs} epochs)",
        fmt_f(base_acc as f64, 3)
    );
    println!();

    let mut table = Table::new(
        "Ablation: test accuracy and repair cost vs stuck-at fault rate",
        &[
            "fault rate",
            "repair",
            "accuracy",
            "Δ vs ideal (pts)",
            "pulse overhead",
            "spares used",
            "masked cols",
        ],
    );
    for &rate in rates {
        let faults = FaultModel::with_stuck_rate(rate);

        let mut off = ReramMlp::with_faults(&DIMS, &params, SEED, &faults);
        train(&mut off, &tr, trl, epochs);
        let acc_off = off.accuracy(&te, tel);
        let d_off = DegradationReport::new(base_acc, acc_off);
        table.row(vec![
            format!("{rate}"),
            "off".into(),
            fmt_f(acc_off as f64, 3),
            fmt_f(d_off.drop_points() as f64, 1),
            "1.000".into(),
            "-".into(),
            "-".into(),
        ]);

        let mut on = ReramMlp::with_fault_tolerance(
            &DIMS,
            &params,
            SEED,
            &faults,
            verify,
            SpareBudget::typical(),
        );
        train(&mut on, &tr, trl, epochs);
        let acc_on = on.accuracy(&te, tel);
        let d_on = DegradationReport::new(base_acc, acc_on)
            .with_repair_state(on.spares_left(), on.masked_units());
        let overhead = on
            .fault_report()
            .map_or_else(|| "-".into(), |r| fmt_f(r.overhead(), 3));
        table.row(vec![
            format!("{rate}"),
            "on".into(),
            fmt_f(acc_on as f64, 3),
            fmt_f(d_on.drop_points() as f64, 1),
            overhead,
            on.spares_used().to_string(),
            on.masked_units().to_string(),
        ]);
    }
    table.print();

    // Analytic cost of the verify discipline on the mapped Mnist-A design:
    // update-cycle stretch and endurance-lifetime impact.
    println!();
    let spec = zoo::spec_mnist_a();
    let base_map = MappedNetwork::from_spec(&spec, PipeLayerConfig::default());
    let base_cycle_ns = TimingModel::new(&base_map).update_cycle_ns();
    let endurance = EnduranceModel::research_grade();
    let base_life = training_lifetime(&base_map, &endurance);
    let mut cost = Table::new(
        "Analytic: verify-write cost on Mnist-A (3-attempt verify, σ_w=0.2, 10⁹-cycle cells)",
        &[
            "fault rate",
            "pulses/update",
            "update cycle (×ideal)",
            "lifetime (days)",
            "lifetime (×ideal)",
        ],
    );
    cost.row(vec![
        "ideal".into(),
        fmt_f(base_life.pulses_per_update, 3),
        "1.000".into(),
        fmt_f(base_life.days(), 1),
        "1.000".into(),
    ]);
    for &rate in rates {
        let cfg = PipeLayerConfig::default().with_fault_tolerance(
            FaultModel::with_stuck_rate(rate),
            verify,
            SpareBudget::typical(),
        );
        let m = MappedNetwork::from_spec(&spec, cfg);
        let life = training_lifetime(&m, &endurance);
        let cycle = TimingModel::new(&m).update_cycle_ns();
        cost.row(vec![
            format!("{rate}"),
            fmt_f(life.pulses_per_update, 3),
            fmt_f(cycle / base_cycle_ns, 3),
            fmt_f(life.days(), 1),
            fmt_f(life.seconds / base_life.seconds, 3),
        ]);
    }
    cost.print();
    println!();
    println!("shape: repair holds accuracy at the ideal baseline while spares last; once");
    println!("the budget is exhausted, masking degrades gracefully but bluntly (a whole");
    println!("column per unrecoverable cell). The verify loop's bounded pulse overhead is");
    println!("paid again in update-cycle time and cell lifetime.");
}
