//! Figure 6 — the pipelined training schedule: which unit processes which
//! image at every logical cycle, for the paper's running example (a 3-layer
//! network), traced by the cycle-accurate simulator.
//!
//! Legend: `A<l>[i]` = forward layer `l` on image `i`; `ErrL[i]` = output
//! error; `B<m>[i]` = backward stage `m` (computes `∂W_m` and, for `m > 1`,
//! `δ_{m-1}`); `Upd[k]` = weight update closing batch `k`.

use pipelayer::pipeline::PipelineSim;

fn main() {
    let (l, b) = (3usize, 8usize);
    let sim = PipelineSim::new(l, b);
    let out = sim.simulate_training(2, 0, 40);

    println!("== Figure 6: pipelined training schedule (L = {l}, B = {b}, 2 batches) ==");
    for row in &out.trace {
        println!("{row}");
    }
    println!();
    println!(
        "total cycles: {} (formula (N/B)(2L+B+1) = {})",
        out.cycles,
        2 * (2 * l + b + 1)
    );
    println!("dependency violations: {}", out.dependency_violations);
    println!(
        "peak concurrent stages: {} (full pipeline = 2L+1 = {})",
        out.peak_parallel_stages,
        2 * l + 1
    );
    println!(
        "buffers needing duplication (same-cycle read+write): {:?}",
        out.same_cycle_buffers
    );
}
