//! Figure 17 — speedup (vs GPU) as a function of the parallelism-granularity
//! scale λ ∈ {0, 0.25, 0.5, 1, 2, 4, max} for the five VGG networks.
//!
//! The paper's observation: speedup increases monotonically with λ (Fig. 17)
//! while area grows too (Fig. 18) — choosing λ balances the two.

use pipelayer::Accelerator;
use pipelayer_baselines::GpuModel;
use pipelayer_bench::workloads::{BATCH, N_IMAGENET};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::zoo::{vgg, VggVariant};

fn main() {
    let gpu = GpuModel::default();
    let lambdas: [(&str, Option<f64>); 7] = [
        ("λ=0", Some(0.0)),
        ("λ=0.25", Some(0.25)),
        ("λ=0.5", Some(0.5)),
        ("λ=1", Some(1.0)),
        ("λ=2", Some(2.0)),
        ("λ=4", Some(4.0)),
        ("λ=max", None),
    ];

    let mut headers = vec!["network"];
    headers.extend(lambdas.iter().map(|(n, _)| *n));
    let mut table = Table::new(
        "Figure 17: training speedup vs parallelism granularity",
        &headers,
    );

    for variant in VggVariant::ALL {
        let spec = vgg(variant);
        let gpu_time = gpu.training(&spec, N_IMAGENET, BATCH).time_s;
        let mut row = vec![spec.name.clone()];
        for &(_, lambda) in &lambdas {
            let mut b = Accelerator::builder(spec.clone()).batch_size(BATCH);
            b = match lambda {
                Some(l) => b.lambda(l),
                None => b.lambda(1e12), // clamps to G = P per layer
            };
            let accel = b.build();
            let speedup = gpu_time / accel.estimate_training(N_IMAGENET).time_s;
            row.push(fmt_f(speedup, 2));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!("paper shape: speedup increases monotonically with λ for every VGG (Fig. 17).");
}
