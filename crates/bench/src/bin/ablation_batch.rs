//! Ablation — batch-size sensitivity of the training pipeline.
//!
//! The pipelined batch costs `2L + B + 1` cycles (Fig. 7b), so throughput
//! efficiency is `B/(2L+B+1)`: small batches pay the fill repeatedly, large
//! batches amortise it. This sweep quantifies the effect for a shallow and
//! a deep network and contrasts it with an ISAAC-style deep pipeline whose
//! drain cost scales with its (much larger) stage count.

use pipelayer::analysis::Analysis;
use pipelayer::Accelerator;
use pipelayer_baselines::IsaacModel;
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::zoo;

const BATCHES: [usize; 6] = [8, 16, 32, 64, 128, 256];

fn main() {
    let isaac = IsaacModel::default();
    for spec in [zoo::spec_mnist_0(), zoo::vgg(zoo::VggVariant::E)] {
        let l = spec.weighted_layers();
        let mut table = Table::new(
            format!("Batch sensitivity: {} (L = {l})", spec.name),
            &[
                "B",
                "cycles/batch",
                "pipeline util (%)",
                "img/s",
                "J/img",
                "ISAAC util (%)",
            ],
        );
        for &b in &BATCHES {
            let n = (4 * b) as u64;
            let accel = Accelerator::builder(spec.clone()).batch_size(b).build();
            let est = accel.estimate_training(n);
            let a = Analysis::new(l, b);
            let util = 100.0 * b as f64 / a.training_cycles_pipelined(b as u64) as f64;
            let isaac_util = 100.0 * (1.0 - isaac.training_drain_fraction(&spec, b));
            table.row(vec![
                b.to_string(),
                a.training_cycles_pipelined(b as u64).to_string(),
                fmt_f(util, 1),
                fmt_f(est.throughput(), 0),
                fmt_f(est.energy_j / n as f64, 4),
                fmt_f(isaac_util, 1),
            ]);
        }
        table.print();
        println!();
    }
    println!("shape: PipeLayer's utilisation climbs quickly (fill is only 2L+1 cycles)");
    println!("while the deep pipeline needs very large batches to amortise its drain —");
    println!("the paper's core argument for layer-granular training pipelining.");
}
