//! Figure 13 — trade-off between ReRAM cell resolution and application
//! accuracy for the five resolution-study networks (M-1, M-2, M-3
//! perceptrons; M-C, C-4 convolutional).
//!
//! Each network is trained in float on the synthetic MNIST task, then its
//! weights are quantized to 8..1 bits and the test accuracy re-measured,
//! normalised to the float baseline (the paper's y-axis). Expected shape:
//! the perceptrons stay near 1.0 down to ~4 bits; the convolutional
//! networks — C-4 most of all — collapse at low resolution.
//!
//! Run with `--release`; training five networks takes a couple of minutes
//! in debug mode. Pass `--quick` for a reduced dataset/epoch budget.

use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::trainer::{TrainConfig, Trainer};
use pipelayer_nn::zoo;
use pipelayer_nn::Network;
use pipelayer_quant::resolution_sweep;

const BITS: [u8; 7] = [8, 7, 6, 5, 4, 3, 2];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n_train, n_test, epochs) = if quick { (600, 200, 3) } else { (2000, 500, 6) };
    let data = SyntheticMnist::generate(n_train, n_test, 1213);

    type NetBuilder = Box<dyn Fn(u64) -> Network>;
    let nets: Vec<(&str, NetBuilder)> = vec![
        ("M-1", Box::new(zoo::m1)),
        ("M-2", Box::new(zoo::m2)),
        ("M-3", Box::new(zoo::m3)),
        ("M-C", Box::new(zoo::mc)),
        ("C-4", Box::new(zoo::c4)),
    ];

    let mut headers = vec!["network".to_string(), "float acc".to_string()];
    headers.extend(BITS.iter().map(|b| format!("{b}-bit")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Figure 13: normalized accuracy vs weight resolution",
        &header_refs,
    );

    for (name, build) in nets {
        let mut net = build(1213);
        let report = Trainer::new(TrainConfig {
            epochs,
            batch_size: 32,
            lr: if name.starts_with('M') { 0.1 } else { 0.05 },
            threads: 0,
        })
        .fit(&mut net, &data);
        eprintln!(
            "trained {name}: train acc {:.3}, test acc {:.3}",
            report.final_train_accuracy, report.final_test_accuracy
        );

        let points = resolution_sweep(&mut net, &data.test, &BITS);
        let mut row = vec![name.to_string(), fmt_f(points[0].accuracy as f64, 3)];
        row.extend(points[1..].iter().map(|p| fmt_f(p.normalized as f64, 3)));
        table.row(row);
    }
    table.print();
    println!();
    println!("paper shape: perceptrons ~flat to 4-bit; M-C/C-4 drop sharply below ~4-bit (C-4 to ~0.2 at 4-bit in the paper).");
}
