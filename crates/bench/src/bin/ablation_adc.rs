//! Ablation — the DAC/ADC-elimination claim (Sec. 1, Sec. 4.2).
//!
//! Compares three peripheral schemes on the same crossbar workload:
//! PipeLayer's weighted spikes + integrate-and-fire, ISAAC's spikes + ADC,
//! and a PRIME-style voltage-level (DAC) input with ADC read-out. The spike
//! scheme needs more input slots (the paper's acknowledged drawback), but
//! removes the converter energy — and the inter-layer pipeline hides the
//! extra slots.

use pipelayer::analysis::Analysis;
use pipelayer_baselines::peripherals::{PeripheralModel, PeripheralScheme};
use pipelayer_bench::{fmt_f, fmt_si, Table};
use pipelayer_nn::zoo;

const SCHEMES: [PeripheralScheme; 3] = [
    PeripheralScheme::SpikeIntegrateFire,
    PeripheralScheme::SpikeAdc,
    PeripheralScheme::DacAdc,
];

fn main() {
    let m = PeripheralModel::default();

    // Per-phase view: one 128x128 array, 16-bit inputs.
    let mut table = Table::new(
        "Ablation: one 128x128 read phase at 16-bit input resolution",
        &["scheme", "input slots", "latency (ns)", "energy (pJ)"],
    );
    for scheme in SCHEMES {
        let c = m.phase_cost(scheme, 128, 128, 16);
        table.row(vec![
            scheme.name().to_string(),
            c.input_slots.to_string(),
            fmt_f(c.latency_ns, 1),
            fmt_f(c.energy_pj, 1),
        ]);
    }
    table.print();

    // Network view: peripheral energy of one forward pass.
    println!();
    let mut net_table = Table::new(
        "Peripheral energy per forward pass (pJ)",
        &["network", "spike+I&F", "spike+ADC", "DAC+ADC"],
    );
    for spec in [
        zoo::spec_mnist_0(),
        zoo::alexnet(),
        zoo::vgg(zoo::VggVariant::D),
    ] {
        let row: Vec<String> = SCHEMES
            .iter()
            .map(|&s| fmt_si(m.network_forward_energy_pj(&spec, s, 128, 16) * 1e-12 * 1e12))
            .collect();
        net_table.row(vec![
            spec.name.clone(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    net_table.print();

    // The pipeline's role: extra slots are throughput-neutral once the
    // pipeline is full — latency per image is one cycle regardless.
    println!();
    let a = Analysis::new(8, 64);
    println!(
        "pipeline absorption: with the inter-layer pipeline, {} images retire in {} cycles",
        6400,
        a.testing_cycles_pipelined(6400)
    );
    println!("— one result per logical cycle, independent of the 16 input slots inside the cycle.");
    println!();
    println!("shape: spikes cost 16 slots instead of 6 (voltage levels), but remove the");
    println!("ADC term that dominates read-out energy — the Sec. 4.2 design argument.");
}
