//! Table 2 — cycle counts and array/buffer group costs of the non-pipelined
//! and pipelined architectures, with every closed-form formula validated
//! against the cycle-accurate simulator.

use pipelayer::analysis::Analysis;
use pipelayer::nonpipelined::NonPipelined;
use pipelayer::pipeline::PipelineSim;
use pipelayer_bench::Table;

fn main() {
    let configs = [(3usize, 64usize), (8, 64), (11, 64), (19, 64), (4, 16)];
    let n_batches = 2usize;

    let mut table = Table::new(
        "Table 2: cycles and costs, formulas vs cycle-accurate simulation",
        &[
            "L",
            "B",
            "N",
            "train cycles (formula, non-pipe)",
            "simulated",
            "train cycles (formula, pipe)",
            "simulated",
            "morphable groups (pipe, G=1)",
            "mem groups (pipe)",
        ],
    );

    for (l, b) in configs {
        let a = Analysis::new(l, b);
        let n = (n_batches * b) as u64;
        let np_formula = a.training_cycles_nonpipelined(n);
        let np_sim = NonPipelined::new(l, b).training_cycles(n);
        let p_formula = a.training_cycles_pipelined(n);
        let sim = PipelineSim::new(l, b).simulate_training(n_batches, 0, 0);
        assert_eq!(sim.dependency_violations, 0, "pipeline must be stall-free");
        table.row(vec![
            l.to_string(),
            b.to_string(),
            n.to_string(),
            np_formula.to_string(),
            np_sim.to_string(),
            p_formula.to_string(),
            sim.cycles.to_string(),
            a.morphable_groups_pipelined(1).to_string(),
            a.memory_groups_pipelined().to_string(),
        ]);
    }
    table.print();

    println!();
    println!("formulas: non-pipelined (2L+1)N + N/B; pipelined (N/B)(2L+B+1);");
    println!("morphable groups GL + G(L-1) + BL; buffers Σ(2(L-l)+1) + duplicated d_L/δ.");
    println!("all simulated runs completed with zero dependency violations.");
}
