//! `plsim` — a small CLI over the PipeLayer model, for exploring
//! configurations without writing code.
//!
//! ```text
//! plsim list
//! plsim map      --net vgg-d [--lambda 2] [--batch 64]
//! plsim estimate --net alexnet [--lambda 1] [--batch 64] [--images 6400] [--no-pipeline]
//! plsim sweep    --net vgg-a [--batch 64]
//! plsim schedule --layers 3 --batch 8
//! ```

use pipelayer::pipeline::PipelineSim;
use pipelayer::Accelerator;
use pipelayer_baselines::GpuModel;
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::{zoo, NetSpec};
use std::process::ExitCode;

fn spec_by_name(name: &str) -> Option<NetSpec> {
    let lower = name.to_ascii_lowercase();
    zoo::evaluation_specs()
        .into_iter()
        .find(|s| s.name.to_ascii_lowercase() == lower)
}

struct Args {
    flags: Vec<(String, String)>,
    bools: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut bools = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let value = (*v).clone();
                        it.next();
                        flags.push((name.to_string(), value));
                    }
                    _ => bools.push(name.to_string()),
                }
            } else {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(Args { flags, bools })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{name}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "plsim — PipeLayer configuration explorer\n\n\
         commands:\n\
           list                         list the evaluation networks\n\
           map      --net <name>        show the array mapping\n\
           estimate --net <name>        time/energy/area + GPU comparison\n\
           report   --net <name>        full configuration report\n\
           optimize --net <name> --budget <xbars>  compiler-optimized granularity\n\
           sweep    --net <name>        lambda sweep (speedup vs area)\n\
           schedule --layers L --batch B  trace the training pipeline\n\n\
         common flags: --lambda <f64> --batch <usize> --images <u64> --no-pipeline"
    );
    ExitCode::from(2)
}

fn build(args: &Args) -> Result<Accelerator, String> {
    let name = args.get("net").ok_or("missing --net <name>")?;
    let spec =
        spec_by_name(name).ok_or_else(|| format!("unknown network `{name}` (try `plsim list`)"))?;
    let batch: usize = args.get_parsed("batch", 64)?;
    let lambda: f64 = args.get_parsed("lambda", 1.0)?;
    Ok(Accelerator::builder(spec)
        .batch_size(batch)
        .lambda(lambda)
        .pipelined(!args.has("no-pipeline"))
        .build())
}

fn run() -> Result<(), String> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = raw.split_first().ok_or("no command")?;
    let args = Args::parse(rest)?;

    match cmd.as_str() {
        "list" => {
            let mut t = Table::new(
                "evaluation networks",
                &["name", "layers", "weights (M)", "fwd GOP/img"],
            );
            for s in zoo::evaluation_specs() {
                t.row(vec![
                    s.name.clone(),
                    s.weighted_layers().to_string(),
                    fmt_f(s.weight_count() as f64 / 1e6, 2),
                    fmt_f(s.ops_forward() as f64 / 1e9, 2),
                ]);
            }
            t.print();
        }
        "map" => {
            let accel = build(&args)?;
            let mut t = Table::new(
                format!("mapping: {}", accel.spec().name),
                &["layer", "matrix", "tiles", "G", "reads/cycle"],
            );
            for l in &accel.mapped().layers {
                t.row(vec![
                    l.resolved.name.clone(),
                    format!("{}x{}", l.resolved.matrix_rows, l.resolved.matrix_cols),
                    l.tiles.to_string(),
                    l.g.to_string(),
                    l.reads_forward.to_string(),
                ]);
            }
            t.print();
            println!(
                "crossbars: fwd {} / training total {}; area {:.1} mm^2",
                accel.mapped().forward_crossbars(),
                accel.mapped().total_crossbars_training(),
                accel.training_area_mm2()
            );
        }
        "estimate" => {
            let accel = build(&args)?;
            let images: u64 = args.get_parsed("images", 6400)?;
            let batch = accel.mapped().config.batch_size as u64;
            let images = images - images % batch;
            let gpu = GpuModel::default();
            let train = accel.estimate_training(images);
            let test = accel.estimate_testing(images);
            let g_train = gpu.training(accel.spec(), images, batch as usize);
            let g_test = gpu.testing(accel.spec(), images, batch as usize);
            let mut t = Table::new(
                format!("{} | {} images", accel.spec().name, images),
                &[
                    "phase",
                    "time (ms)",
                    "energy (J)",
                    "img/s",
                    "GPU speedup",
                    "GPU saving",
                ],
            );
            t.row(vec![
                "training".into(),
                fmt_f(train.time_s * 1e3, 2),
                fmt_f(train.energy_j, 3),
                fmt_f(train.throughput(), 0),
                fmt_f(g_train.time_s / train.time_s, 2),
                fmt_f(g_train.energy_j / train.energy_j, 2),
            ]);
            t.row(vec![
                "testing".into(),
                fmt_f(test.time_s * 1e3, 2),
                fmt_f(test.energy_j, 3),
                fmt_f(test.throughput(), 0),
                fmt_f(g_test.time_s / test.time_s, 2),
                fmt_f(g_test.energy_j / test.energy_j, 2),
            ]);
            t.print();
            println!(
                "area: {:.1} mm^2 (training deployment)",
                accel.training_area_mm2()
            );
        }
        "report" => {
            let accel = build(&args)?;
            let images: u64 = args.get_parsed("images", 6400)?;
            print!("{}", accel.report(images));
        }
        "optimize" => {
            let name = args.get("net").ok_or("missing --net <name>")?;
            let spec = spec_by_name(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let budget: u64 = args.get_parsed("budget", 65_536u64)?;
            let layers = spec.resolve();
            let g = pipelayer::granularity::optimize_granularity(&layers, budget);
            let mut t = Table::new(
                format!(
                    "compiler-optimized G: {} (replication budget {budget} crossbars)",
                    spec.name
                ),
                &["layer", "P", "G", "reads/cycle"],
            );
            for (l, &gl) in layers.iter().zip(&g) {
                t.row(vec![
                    l.name.clone(),
                    l.window_positions.to_string(),
                    gl.to_string(),
                    l.window_positions.max(1).div_ceil(gl).to_string(),
                ]);
            }
            t.print();
        }
        "sweep" => {
            let name = args.get("net").ok_or("missing --net <name>")?;
            let spec = spec_by_name(name).ok_or_else(|| format!("unknown network `{name}`"))?;
            let batch: usize = args.get_parsed("batch", 64)?;
            let gpu = GpuModel::default();
            let n = 10 * batch as u64;
            let gpu_t = gpu.training(&spec, n, batch).time_s;
            let mut t = Table::new(
                format!("lambda sweep: {}", spec.name),
                &["lambda", "speedup", "area mm^2"],
            );
            for lambda in [0.25, 0.5, 1.0, 2.0, 4.0] {
                let accel = Accelerator::builder(spec.clone())
                    .batch_size(batch)
                    .lambda(lambda)
                    .build();
                t.row(vec![
                    lambda.to_string(),
                    fmt_f(gpu_t / accel.estimate_training(n).time_s, 2),
                    fmt_f(accel.training_area_mm2(), 1),
                ]);
            }
            t.print();
        }
        "schedule" => {
            let l: usize = args.get_parsed("layers", 3)?;
            let b: usize = args.get_parsed("batch", 4)?;
            let out = PipelineSim::new(l, b).simulate_training(1, 0, 64);
            for row in &out.trace {
                println!("{row}");
            }
            println!(
                "cycles {} | violations {} | peak stages {}",
                out.cycles, out.dependency_violations, out.peak_parallel_stages
            );
        }
        other => return Err(format!("unknown command `{other}`")),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n");
            usage()
        }
    }
}
