//! Table 1 — the operation sequence a logical cycle must accommodate in
//! each of the four phase cases, with the modelled duration of every stage
//! for a concrete layer (AlexNet conv2 at default granularity).

use pipelayer::config::PipeLayerConfig;
use pipelayer::mapping::MappedNetwork;
use pipelayer::timing::TimingModel;
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::zoo;

fn main() {
    let mut table = Table::new(
        "Table 1: operations in a cycle (per phase case)",
        &["phase", "operation sequence"],
    );
    table.row(vec![
        "Forward".into(),
        "Memory read -> Spike -> Morphable A_l(d_{l-1}) -> Integrate&Fire -> Activation -> Memory write (d_l)".into(),
    ]);
    table.row(vec![
        "Backward (output)".into(),
        "Memory read (d_L, label) -> Activation (f' AND) -> Memory write (delta_L)".into(),
    ]);
    table.row(vec![
        "Backward (hidden)".into(),
        "Memory read (delta_l) -> Spike -> Morphable A_l2((W_l)*) & stored-d arrays (dW_l) -> I&F -> Activation -> Memory write (delta_{l-1}, dW buffers)".into(),
    ]);
    table.row(vec![
        "Update (batch end)".into(),
        "1/B-spike read of averaged dW -> read old weights -> subtract -> write new weights to morphable arrays".into(),
    ]);
    table.print();

    // Concrete durations for AlexNet at default granularity.
    let net = MappedNetwork::from_spec(&zoo::alexnet(), PipeLayerConfig::default());
    let t = TimingModel::new(&net);
    println!();
    println!("modelled phase durations, AlexNet, default G:");
    let mut detail = Table::new(
        "per-layer phase durations (us)",
        &["layer", "G", "fwd reads", "forward", "backward"],
    );
    for l in &net.layers {
        detail.row(vec![
            l.resolved.name.clone(),
            l.g.to_string(),
            l.reads_forward.to_string(),
            fmt_f(t.forward_phase_ns(l) / 1e3, 2),
            fmt_f(t.backward_phase_ns(l) / 1e3, 2),
        ]);
    }
    detail.print();
    println!();
    println!(
        "cycle time = max phase: testing {:.2} us, training {:.2} us, update cycle {:.2} us",
        t.cycle_testing_ns() / 1e3,
        t.cycle_training_ns() / 1e3,
        t.update_cycle_ns() / 1e3
    );
}
