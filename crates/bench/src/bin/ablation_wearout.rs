//! Ablation — runtime wear-out: endurance grade × repair policy.
//!
//! Trains the Mnist-A-class functional ReRAM MLP under the seeded
//! per-cell write-budget wear model and sweeps two axes:
//!
//! * **Endurance grade** — the lognormal median write budget, from a
//!   storage-class grade that exhausts cells *during* the run to a
//!   research grade that never does.
//! * **Repair policy** — `off` (cells die silently on the legacy update
//!   path: no verify, no spares), `immediate` (first verify failure
//!   spends a spare, and with spares gone every failing column is
//!   masked — the amputation-happy strawman), and `laddered` (retry →
//!   backoff → remap, masking only columns whose damage crosses the
//!   quarantine threshold).
//!
//! Two no-wear baselines anchor the comparison: the plain datapath (the
//! fair reference for the `off` arms) and the verify + spare stack with
//! wear detached (the fair reference for the repair arms). The binary is
//! a CI gate (exit 1) on the headline robustness claims: at the
//! storage grade the unrepaired arm must lose ≥ 10 accuracy points to
//! the laddered arm, and every laddered arm that still holds spare
//! columns must sit within 2 points of its no-wear baseline.
//!
//! Results land in `BENCH_wearout.json`. `--smoke` shrinks the run for CI.

use pipelayer::functional::{downsample, ReramMlp};
use pipelayer::{RepairPolicy, SpareBudget};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::metrics::DegradationReport;
use pipelayer_nn::serialize::atomic_write;
use pipelayer_reram::{FaultModel, ReramParams, VerifyPolicy, WearModel};
use pipelayer_tensor::Tensor;
use std::path::Path;

const DIMS: [usize; 3] = [49, 16, 10];
const SEED: u64 = 5;
const LR: f32 = 0.3;

/// One trained arm's outcome, with the repair book-keeping captured at
/// the moment accuracy was measured.
struct Arm {
    policy: &'static str,
    report: DegradationReport,
    dead_cells: usize,
    spares_used: usize,
    program_spikes: u64,
}

/// One endurance grade's row of the sweep.
struct Grade {
    name: &'static str,
    median_writes: f64,
    sigma: f64,
    arms: Vec<Arm>,
}

fn train(mlp: &mut ReramMlp, tr: &[Tensor], trl: &[usize], epochs: usize) {
    for _ in 0..epochs {
        for (imgs, labs) in tr.chunks(10).zip(trl.chunks(10)) {
            mlp.train_batch(imgs, labs, LR);
        }
    }
}

/// The verify + spare-budget stack shared by every repair-on arm; wear
/// and the escalation policy are attached per arm. The campaign
/// provisions 8 spare bit lines per matrix (double the macro-typical 4):
/// a device expected to *survive* storage-class endurance buys the
/// redundancy for it, and the `mapcheck` PL024 feasibility warning is
/// exactly the tool that tells a designer the typical budget is short.
fn repair_stack() -> ReramMlp {
    ReramMlp::with_fault_tolerance(
        &DIMS,
        &ReramParams::default(),
        SEED,
        &FaultModel::ideal(),
        VerifyPolicy::with_attempts(2),
        SpareBudget::with_cols(8),
    )
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_train, n_test, epochs) = (120, 80, 8);
    // `storage` exhausts cells mid-run, `foundry` loses a first wave late
    // enough for the spare budget to absorb it, `research` never sees a
    // death. σ = 0.2 is a tight production spread — deaths arrive in
    // waves ordered by cell activity rather than as a trickle. The task
    // is small enough that smoke mode only drops the middle grade, so the
    // gated storage numbers are identical in both modes.
    let grades: &[(&'static str, f64, f64)] = if smoke {
        &[("storage", 200.0, 0.2), ("research", 1e9, 0.2)]
    } else {
        &[
            ("storage", 200.0, 0.2),
            ("foundry", 800.0, 0.2),
            ("research", 1e9, 0.2),
        ]
    };

    let data = SyntheticMnist::generate(n_train, n_test, 77);
    let tr: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let te: Vec<Tensor> = data.test.images.iter().map(|t| downsample(t, 4)).collect();
    let (trl, tel) = (&data.train.labels, &data.test.labels);

    // ---- No-wear baselines, one per datapath flavour.
    let mut plain = ReramMlp::new(&DIMS, &ReramParams::default(), SEED);
    train(&mut plain, &tr, trl, epochs);
    let base_plain = plain.accuracy(&te, tel);
    let mut stack = repair_stack();
    train(&mut stack, &tr, trl, epochs);
    let base_verify = stack.accuracy(&te, tel);
    println!(
        "wear-out campaign — {n_train} train / {n_test} test, {epochs} epochs{}",
        if smoke { " [smoke]" } else { "" }
    );
    println!(
        "no-wear baselines: plain {} / verify+spares {}",
        fmt_f(f64::from(base_plain), 3),
        fmt_f(f64::from(base_verify), 3)
    );

    // ---- The sweep: endurance grade × repair policy.
    let mut results: Vec<Grade> = Vec::new();
    for &(name, median_writes, sigma) in grades {
        let wear = WearModel {
            median_writes,
            sigma,
        };
        let mut arms = Vec::new();

        // Repair off: the legacy update path still books wear pulses, so
        // cells die silently — no verify read ever notices.
        let mut off = ReramMlp::new(&DIMS, &ReramParams::default(), SEED);
        off.attach_wear(wear, SEED);
        train(&mut off, &tr, trl, epochs);
        arms.push(Arm {
            policy: "off",
            report: DegradationReport::new(base_plain, off.accuracy(&te, tel)),
            dead_cells: off.wear_exhausted_cells(),
            spares_used: 0,
            program_spikes: off.write_spikes(),
        });

        for (policy_name, policy) in [
            ("immediate", RepairPolicy::immediate()),
            ("laddered", RepairPolicy::laddered()),
        ] {
            let mut arm = repair_stack();
            arm.attach_wear(wear, SEED);
            arm.set_repair_policy(policy);
            train(&mut arm, &tr, trl, epochs);
            arms.push(Arm {
                policy: policy_name,
                report: DegradationReport::new(base_verify, arm.accuracy(&te, tel))
                    .with_repair_state(arm.spares_left(), arm.masked_units()),
                dead_cells: arm.wear_exhausted_cells(),
                spares_used: arm.spares_used(),
                program_spikes: arm.write_spikes(),
            });
        }
        results.push(Grade {
            name,
            median_writes,
            sigma,
            arms,
        });
    }

    let mut table = Table::new(
        "Ablation: accuracy under wear-out vs repair policy",
        &[
            "grade",
            "median writes",
            "repair",
            "accuracy",
            "Δ vs baseline (pts)",
            "dead cells",
            "spares used/left",
            "masked cols",
        ],
    );
    for grade in &results {
        for arm in &grade.arms {
            table.row(vec![
                grade.name.to_string(),
                fmt_f(grade.median_writes, 0),
                arm.policy.to_string(),
                fmt_f(f64::from(arm.report.degraded), 3),
                fmt_f(-f64::from(arm.report.drop_points()), 1),
                arm.dead_cells.to_string(),
                format!("{}/{}", arm.spares_used, arm.report.spares_left),
                arm.report.masked_units.to_string(),
            ]);
        }
    }
    table.print();

    // ---- Gates: the headline robustness claims, CI-enforced.
    let mut pass = true;
    let storage = &results[0];
    let acc_off = storage.arms[0].report.degraded;
    let ladder = storage
        .arms
        .iter()
        .find(|a| a.policy == "laddered")
        .map_or(acc_off, |a| a.report.degraded);
    let gap_points = f64::from(ladder - acc_off) * 100.0;
    if gap_points < 10.0 {
        eprintln!(
            "GATE: storage-grade repair must be worth >= 10 accuracy points \
             over no repair, got {}",
            fmt_f(gap_points, 1)
        );
        pass = false;
    }
    let mut worst_repaired_drop_points = f64::NEG_INFINITY;
    for grade in &results {
        for arm in grade.arms.iter().filter(|a| a.policy == "laddered") {
            if arm.report.spares_left == 0 {
                println!(
                    "{}: spares exhausted — graceful degradation, 2-point gate waived",
                    grade.name
                );
                continue;
            }
            worst_repaired_drop_points =
                worst_repaired_drop_points.max(f64::from(arm.report.drop_points()));
            if !arm.report.within(2.0) {
                eprintln!(
                    "GATE: {} laddered arm still holds {} spares but dropped {} points",
                    grade.name,
                    arm.report.spares_left,
                    fmt_f(f64::from(arm.report.drop_points()), 1)
                );
                pass = false;
            }
        }
    }
    println!(
        "storage-grade repair gap {} points; worst gated laddered drop {} points",
        fmt_f(gap_points, 1),
        if worst_repaired_drop_points.is_finite() {
            fmt_f(worst_repaired_drop_points, 1)
        } else {
            "n/a".to_string()
        }
    );

    // ---- JSON artifact.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"wearout\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"task\": {{\"train_images\": {n_train}, \"test_images\": {n_test}, \"epochs\": {epochs}}},\n"
    ));
    json.push_str(&format!(
        "  \"baseline\": {{\"plain_accuracy\": {}, \"verify_accuracy\": {}}},\n",
        json_num(f64::from(base_plain)),
        json_num(f64::from(base_verify))
    ));
    json.push_str("  \"grades\": [\n");
    for (gi, grade) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"grade\": \"{}\", \"endurance_median_writes\": {}, \"sigma_ln_writes\": {}, \"arms\": [\n",
            grade.name,
            json_num(grade.median_writes),
            json_num(grade.sigma)
        ));
        for (ai, arm) in grade.arms.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"repair_policy\": \"{}\", \"accuracy\": {}, \"drop_points\": {}, \"dead_cells\": {}, \"spares_used\": {}, \"spares_left\": {}, \"masked_cols\": {}, \"program_spikes\": {}}}{}\n",
                arm.policy,
                json_num(f64::from(arm.report.degraded)),
                json_num(f64::from(arm.report.drop_points())),
                arm.dead_cells,
                arm.spares_used,
                arm.report.spares_left,
                arm.report.masked_units,
                arm.program_spikes,
                if ai + 1 < grade.arms.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if gi + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"gates\": {{\"storage_repair_gap_points\": {}, \"repair_tolerance_points\": 2, \"passed\": {pass}}}\n",
        json_num(gap_points)
    ));
    json.push_str("}\n");
    if let Err(e) = atomic_write(Path::new("BENCH_wearout.json"), json.as_bytes()) {
        eprintln!("failed to write BENCH_wearout.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_wearout.json");

    if !pass {
        eprintln!("wear-out robustness gates failed");
        std::process::exit(1);
    }
    println!("wear-out robustness gates passed");
}
