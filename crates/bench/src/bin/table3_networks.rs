//! Table 3 — hyper-parameters of the four self-built MNIST networks
//! (reconstructed instantiation; the published cells are OCR-damaged, see
//! the `pipelayer-nn` zoo documentation), plus derived geometry.

use pipelayer_bench::{fmt_si, Table};
use pipelayer_nn::zoo;

fn main() {
    let mut table = Table::new(
        "Table 3: MNIST network hyper-parameters",
        &[
            "network",
            "hyper parameters",
            "weighted layers",
            "weights",
            "fwd ops/image",
        ],
    );
    let describe = |spec: &pipelayer_nn::NetSpec| -> String {
        let mut parts: Vec<String> = vec![format!(
            "{}x{}x{}",
            spec.input.0, spec.input.1, spec.input.2
        )];
        for layer in &spec.layers {
            parts.push(match layer {
                pipelayer_nn::LayerSpec::Conv { k, c_out, .. } => format!("conv{k}x{c_out}"),
                pipelayer_nn::LayerSpec::Pool { k, .. } => format!("pool{k}"),
                pipelayer_nn::LayerSpec::Fc { n_out } => n_out.to_string(),
            });
        }
        parts.join("-")
    };
    for spec in zoo::mnist_net_specs() {
        table.row(vec![
            spec.name.clone(),
            describe(&spec),
            spec.weighted_layers().to_string(),
            fmt_si(spec.weight_count() as f64),
            fmt_si(spec.ops_forward() as f64),
        ]);
    }
    table.print();

    println!();
    let mut fig13 = Table::new(
        "Fig. 13 study networks",
        &["network", "hyper parameters", "weights"],
    );
    for spec in [
        zoo::spec_m1(),
        zoo::spec_m2(),
        zoo::spec_m3(),
        zoo::spec_mc(),
        zoo::spec_c4(),
    ] {
        fig13.row(vec![
            spec.name.clone(),
            describe(&spec),
            fmt_si(spec.weight_count() as f64),
        ]);
    }
    fig13.print();
}
