//! Figure 18 — accelerator area (mm², log scale in the paper) as a function
//! of the parallelism-granularity scale λ for the five VGG networks.

use pipelayer::Accelerator;
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::zoo::{vgg, VggVariant};

fn main() {
    let lambdas: [(&str, Option<f64>); 7] = [
        ("λ=0", Some(0.0)),
        ("λ=0.25", Some(0.25)),
        ("λ=0.5", Some(0.5)),
        ("λ=1", Some(1.0)),
        ("λ=2", Some(2.0)),
        ("λ=4", Some(4.0)),
        ("λ=max", None),
    ];

    let mut headers = vec!["network"];
    headers.extend(lambdas.iter().map(|(n, _)| *n));
    let mut table = Table::new(
        "Figure 18: training-configuration area (mm^2) vs granularity",
        &headers,
    );

    for variant in VggVariant::ALL {
        let spec = vgg(variant);
        let mut row = vec![spec.name.clone()];
        for &(_, lambda) in &lambdas {
            let mut b = Accelerator::builder(spec.clone());
            b = match lambda {
                Some(l) => b.lambda(l),
                None => b.lambda(1e12),
            };
            row.push(fmt_f(b.build().training_area_mm2(), 1));
        }
        table.row(row);
    }
    table.print();
    println!();
    println!("paper shape: area grows monotonically with λ, spanning roughly two orders of magnitude (Fig. 18's log axis).");
}
