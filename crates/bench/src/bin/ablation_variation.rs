//! Ablation — accuracy under ReRAM write variation and stuck-at faults.
//!
//! Sec. 5.1 justifies limited-precision cells by neural networks' "inherent
//! error tolerance"; this ablation quantifies that tolerance on the
//! resolution-study networks: programmed levels are perturbed by Gaussian
//! write noise (σ in conductance levels of the 4-bit cells) and by dead
//! cells, and test accuracy is re-measured.
//!
//! Run with `--release` (training included). `--quick` shrinks the budget.
//! `--noise` adds a second axis: the same networks re-evaluated under the
//! unified analog non-ideality model (lognormal spread + IR drop + read
//! noise, `NoiseModel::with_strength`), reported in the same
//! normalized-accuracy schema as the write-variation sweep.

use pipelayer::variation::corrupt_network;
use pipelayer::variation::{noise_sweep, variation_sweep};
use pipelayer_bench::{fmt_f, Table};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_nn::trainer::{TrainConfig, Trainer};
use pipelayer_nn::zoo;
use pipelayer_quant::{restore_params, snapshot_params};
use pipelayer_reram::{ReramParams, VariationModel};

const SIGMAS: [f64; 5] = [0.0, 0.25, 0.5, 1.0, 2.0];
/// `--noise` axis: `NoiseModel::with_strength` sweep points.
const STRENGTHS: [f64; 5] = [0.0, 1.0, 2.0, 4.0, 6.0];
/// Device-draw seed of the `--noise` axis (one simulated chip).
const NOISE_SEED: u64 = 0xA11A;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let noise = std::env::args().any(|a| a == "--noise");
    let (n_train, n_test, epochs) = if quick { (400, 150, 3) } else { (1500, 400, 5) };
    let data = SyntheticMnist::generate(n_train, n_test, 3141);
    let params = ReramParams::default();

    let mut headers = vec!["network".to_string(), "float".to_string()];
    headers.extend(SIGMAS.iter().map(|s| format!("σ={s}")));
    let hrefs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        "Ablation: normalized accuracy vs write variation (4-bit cells, 16-bit words)",
        &hrefs,
    );

    let mut noise_headers = vec!["network".to_string(), "float".to_string()];
    noise_headers.extend(STRENGTHS.iter().map(|s| format!("s={s}")));
    let nrefs: Vec<&str> = noise_headers.iter().map(|s| s.as_str()).collect();
    let mut noise_table = Table::new(
        "Ablation: normalized accuracy vs analog non-ideality strength",
        &nrefs,
    );

    for (name, build) in [
        ("M-1", zoo::m1 as fn(u64) -> pipelayer_nn::Network),
        ("M-C", zoo::mc as fn(u64) -> pipelayer_nn::Network),
        ("C-4", zoo::c4 as fn(u64) -> pipelayer_nn::Network),
    ] {
        let mut net = build(3141);
        let report = Trainer::new(TrainConfig {
            epochs,
            batch_size: 32,
            lr: 0.08,
            threads: 0,
        })
        .fit(&mut net, &data);
        let points = variation_sweep(&mut net, &data.test, &SIGMAS, 3, &params);
        let mut row = vec![
            name.to_string(),
            fmt_f(report.final_test_accuracy as f64, 3),
        ];
        row.extend(points.iter().map(|p| fmt_f(p.normalized as f64, 3)));
        table.row(row);
        if noise {
            let pts = noise_sweep(&mut net, &data.test, &STRENGTHS, 3, &params, NOISE_SEED);
            let mut row = vec![
                name.to_string(),
                fmt_f(report.final_test_accuracy as f64, 3),
            ];
            row.extend(pts.iter().map(|p| fmt_f(p.normalized as f64, 3)));
            noise_table.row(row);
        }
    }
    table.print();
    if noise {
        println!();
        noise_table.print();
    }

    // Stuck-at fault sweep on the MLP.
    println!();
    let mut net = zoo::m1(3141);
    Trainer::new(TrainConfig {
        epochs,
        batch_size: 32,
        lr: 0.08,
        threads: 0,
    })
    .fit(&mut net, &data);
    let base = net.accuracy(&data.test.images, &data.test.labels);
    let snapshot = snapshot_params(&mut net);
    let mut fault_table = Table::new(
        "Ablation: M-1 normalized accuracy vs dead-cell (stuck-at-0) fraction",
        &["fault rate", "normalized accuracy"],
    );
    for rate in [0.0f64, 0.01, 0.05, 0.1, 0.2, 0.4] {
        let model = VariationModel {
            write_sigma: 0.0,
            stuck_at_zero: rate,
            stuck_at_max: 0.0,
        };
        corrupt_network(&mut net, &model, &params, 999);
        let acc = net.accuracy(&data.test.images, &data.test.labels);
        restore_params(&mut net, &snapshot);
        fault_table.row(vec![format!("{rate}"), fmt_f((acc / base) as f64, 3)]);
    }
    fault_table.print();
    println!();
    println!("shape: graceful degradation up to ~σ=0.5 / a few % dead cells — the");
    println!("error-tolerance premise behind PipeLayer's 4-bit cell choice (Sec. 5.1).");
}
