//! Plain-text report rendering.

/// Geometric mean of strictly positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive values.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    assert!(xs.iter().all(|&x| x > 0.0), "geomean needs positive values");
    (xs.iter().map(|&x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a value with an SI suffix (k/M/G/T).
pub fn fmt_si(x: f64) -> String {
    let (v, suffix) = if x.abs() >= 1e12 {
        (x / 1e12, "T")
    } else if x.abs() >= 1e9 {
        (x / 1e9, "G")
    } else if x.abs() >= 1e6 {
        (x / 1e6, "M")
    } else if x.abs() >= 1e3 {
        (x / 1e3, "k")
    } else {
        (x, "")
    };
    format!("{v:.2}{suffix}")
}

/// An aligned-column text table, the output format of every figure/table
/// binary.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&line(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("demo", &["net", "speedup"]);
        t.row(vec!["Mnist-A".into(), "42.45".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("Mnist-A"));
        assert!(r.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        Table::new("t", &["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn si_formatting() {
        assert_eq!(fmt_si(1485.0e9), "1.49T");
        assert_eq!(fmt_si(2_500_000.0), "2.50M");
        assert_eq!(fmt_si(12.0), "12.00");
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[0.0, 1.0]);
    }
}
