//! Shared infrastructure for the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one artifact of the paper's
//! evaluation section (see DESIGN.md §4 for the index); this library holds
//! the common pieces: an aligned-column table printer, geometric means,
//! the standard workload sizes, and the paper-reported reference values
//! that EXPERIMENTS.md compares against.

pub mod paper;
pub mod report;
pub mod workloads;

pub use report::{fmt_f, fmt_si, geomean, Table};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
