//! Paper-reported reference values, printed next to our measurements.
//!
//! Some digits in the available paper text are OCR-damaged; where that is
//! the case the canonical published value is used and flagged in
//! EXPERIMENTS.md (DESIGN.md §8 lists them all).

/// Geometric-mean speedup over the GPU baseline, testing (Sec. 6.3).
pub const SPEEDUP_GEOMEAN_TEST: f64 = 42.45;
/// Geometric-mean energy saving over GPU, training (Sec. 6.4).
pub const ENERGY_SAVING_GEOMEAN_TRAIN: f64 = 6.52;
/// Geometric-mean energy saving over GPU, testing (Sec. 6.4).
pub const ENERGY_SAVING_GEOMEAN_TEST: f64 = 7.88;
/// Overall geometric-mean energy saving (abstract/Sec. 6.4).
pub const ENERGY_SAVING_GEOMEAN_ALL: f64 = 7.17;
/// Highest per-network energy saving, training (Mnist-C, Sec. 6.4).
pub const ENERGY_SAVING_MAX_TRAIN: f64 = 27.3;
/// Highest per-network energy saving, testing (Mnist-A, Sec. 6.4).
pub const ENERGY_SAVING_MAX_TEST: f64 = 70.1;
/// Total accelerator area, mm² (Sec. 6.6).
pub const AREA_MM2: f64 = 82.6;
/// Computational efficiency, GOPS/s/mm² (Sec. 6.6).
pub const COMPUTE_EFFICIENCY: f64 = 1485.0;
/// Power efficiency, GOPS/s/W (Sec. 6.6).
pub const POWER_EFFICIENCY: f64 = 142.9;

/// Evaluation network names in figure order.
pub const NETWORKS: [&str; 10] = [
    "Mnist-A", "Mnist-B", "Mnist-C", "Mnist-0", "AlexNet", "VGG-A", "VGG-B", "VGG-C", "VGG-D",
    "VGG-E",
];

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn reference_values_consistent() {
        // Overall energy geomean must sit between the train and test means.
        assert!(super::ENERGY_SAVING_GEOMEAN_ALL > super::ENERGY_SAVING_GEOMEAN_TRAIN);
        assert!(super::ENERGY_SAVING_GEOMEAN_ALL < super::ENERGY_SAVING_GEOMEAN_TEST);
    }
}
