//! Standard workloads: the ten evaluation networks with per-class image
//! counts sized so every run is a multiple of the batch size.

use pipelayer_nn::spec::NetSpec;
use pipelayer_nn::zoo;

/// Default batch size `B` (the paper's running example).
pub const BATCH: usize = 64;

/// Images per evaluation run for the MNIST-scale networks.
pub const N_MNIST: u64 = 6400;

/// Images per evaluation run for the ImageNet-scale networks.
pub const N_IMAGENET: u64 = 640;

/// The ten evaluation networks paired with their workload sizes, in the
/// paper's figure order.
pub fn evaluation_workloads() -> Vec<(NetSpec, u64)> {
    zoo::evaluation_specs()
        .into_iter()
        .map(|spec| {
            let n = if spec.input.1 <= 32 {
                N_MNIST
            } else {
                N_IMAGENET
            };
            (spec, n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_batch_multiples() {
        for (spec, n) in evaluation_workloads() {
            assert_eq!(
                n % BATCH as u64,
                0,
                "{} workload not a batch multiple",
                spec.name
            );
        }
    }

    #[test]
    fn mnist_nets_get_larger_runs() {
        let w = evaluation_workloads();
        assert_eq!(w[0].1, N_MNIST); // Mnist-A
        assert_eq!(w[5].1, N_IMAGENET); // VGG-A
    }
}
