//! Criterion benchmarks for the cycle-accurate pipeline simulator and the
//! analytical models built on it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipelayer::config::PipeLayerConfig;
use pipelayer::mapping::MappedNetwork;
use pipelayer::perf::PerfModel;
use pipelayer::pipeline::PipelineSim;
use pipelayer_nn::zoo;
use std::hint::black_box;

fn bench_training_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_sim_training");
    for &(l, b) in &[(3usize, 64usize), (8, 64), (19, 64)] {
        let sim = PipelineSim::new(l, b);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("L{l}_B{b}")),
            &sim,
            |bench, sim| bench.iter(|| black_box(sim.simulate_training(1, 0, 0))),
        );
    }
    group.finish();
}

fn bench_testing_sim(c: &mut Criterion) {
    let sim = PipelineSim::new(8, 64);
    c.bench_function("pipeline_sim_testing_1000img", |b| {
        b.iter(|| black_box(sim.simulate_testing(1000, 0)))
    });
}

fn bench_mapping_and_estimates(c: &mut Criterion) {
    c.bench_function("map_vgg_e", |b| {
        let spec = zoo::vgg(zoo::VggVariant::E);
        b.iter(|| {
            black_box(MappedNetwork::from_spec(
                black_box(&spec),
                PipeLayerConfig::default(),
            ))
        })
    });
    let net = MappedNetwork::from_spec(&zoo::vgg(zoo::VggVariant::E), PipeLayerConfig::default());
    c.bench_function("estimate_vgg_e_training", |b| {
        let perf = PerfModel::new(&net);
        b.iter(|| black_box(perf.training(640, true)))
    });
}

criterion_group!(
    benches,
    bench_training_sim,
    bench_testing_sim,
    bench_mapping_and_estimates
);
criterion_main!(benches);
