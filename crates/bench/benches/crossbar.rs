//! Criterion micro-benchmarks for the ReRAM substrate: spike-coded crossbar
//! MVM at several array sizes, spike encoding, and programming.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipelayer_reram::spike::SpikeDriver;
use pipelayer_reram::{Crossbar, ReramMatrix, ReramParams};
use std::hint::black_box;

fn levels(rows: usize, cols: usize) -> Vec<Vec<u8>> {
    (0..rows)
        .map(|r| (0..cols).map(|c| ((r * 31 + c * 7) % 16) as u8).collect())
        .collect()
}

fn bench_mvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar_mvm");
    for &size in &[16usize, 64, 128] {
        let mut xbar = Crossbar::new(size, size, 4);
        xbar.program(&levels(size, size));
        let input: Vec<u32> = (0..size).map(|i| ((i * 977) % 65536) as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(xbar.mvm_spiked(black_box(&input), 16)))
        });
    }
    group.finish();
}

fn bench_spike_encoding(c: &mut Criterion) {
    let driver = SpikeDriver::new(16);
    let values: Vec<u32> = (0..1024).map(|i| (i * 63) % 65536).collect();
    c.bench_function("spike_encode_1024x16bit", |b| {
        b.iter(|| black_box(driver.encode_vector(black_box(&values))))
    });
}

fn bench_signed_matvec(c: &mut Criterion) {
    let params = ReramParams::default();
    let n = 64;
    let w: Vec<f32> = (0..n * n).map(|i| ((i as f32) * 0.37).sin()).collect();
    let mut m = ReramMatrix::program(&w, n, n, &params);
    let x: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.21).cos()).collect();
    c.bench_function("reram_matrix_matvec_64x64_16bit", |b| {
        b.iter(|| black_box(m.matvec(black_box(&x))))
    });
}

fn bench_programming(c: &mut Criterion) {
    let lv = levels(128, 128);
    c.bench_function("crossbar_program_128x128", |b| {
        b.iter(|| {
            let mut xbar = Crossbar::new(128, 128, 4);
            black_box(xbar.program(black_box(&lv)))
        })
    });
}

criterion_group!(
    benches,
    bench_mvm,
    bench_spike_encoding,
    bench_signed_matvec,
    bench_programming
);
criterion_main!(benches);
