//! Criterion benchmarks for the tensor kernels behind the functional
//! simulations: direct vs im2col convolution, both backward passes, GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use pipelayer_tensor::{ops, Tensor};
use std::hint::black_box;

fn probe_input() -> (Tensor, Tensor, Tensor) {
    let x = Tensor::from_fn(&[8, 28, 28], |i| {
        ((i[0] * 784 + i[1] * 28 + i[2]) as f32 * 0.017).sin()
    });
    let w = Tensor::from_fn(&[16, 8, 3, 3], |i| {
        ((i[0] * 72 + i[1] * 9 + i[2] * 3 + i[3]) as f32 * 0.093).cos() * 0.2
    });
    let b = Tensor::zeros(&[16]);
    (x, w, b)
}

fn bench_conv_forward(c: &mut Criterion) {
    let (x, w, b) = probe_input();
    c.bench_function("conv2d_direct_8x28x28_k3x16", |bch| {
        bch.iter(|| black_box(ops::conv2d(black_box(&x), &w, &b, 1, 1)))
    });
    c.bench_function("conv2d_im2col_8x28x28_k3x16", |bch| {
        bch.iter(|| black_box(ops::conv2d_im2col(black_box(&x), &w, &b, 1, 1)))
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let (x, w, b) = probe_input();
    let delta = ops::conv2d(&x, &w, &b, 1, 1);
    c.bench_function("conv2d_backward_input", |bch| {
        bch.iter(|| {
            black_box(ops::conv2d_backward_input(
                black_box(&delta),
                &w,
                (28, 28),
                1,
                1,
            ))
        })
    });
    c.bench_function("conv2d_backward_weights", |bch| {
        bch.iter(|| {
            black_box(ops::conv2d_backward_weights(
                black_box(&x),
                &delta,
                (3, 3),
                1,
                1,
            ))
        })
    });
}

fn bench_gemm(c: &mut Criterion) {
    let a = Tensor::from_fn(&[128, 256], |i| ((i[0] + i[1]) as f32 * 0.011).sin());
    let b = Tensor::from_fn(&[256, 128], |i| ((i[0] * 2 + i[1]) as f32 * 0.013).cos());
    c.bench_function("matmul_128x256x128", |bch| {
        bch.iter(|| black_box(ops::matmul(black_box(&a), black_box(&b))))
    });
    let w = Tensor::from_fn(&[512, 784], |i| ((i[0] + 3 * i[1]) as f32 * 0.007).sin());
    let x = Tensor::from_fn(&[784], |i| (i[0] as f32 * 0.031).cos());
    c.bench_function("matvec_512x784", |bch| {
        bch.iter(|| black_box(ops::matvec(black_box(&w), black_box(&x))))
    });
}

fn bench_pooling(c: &mut Criterion) {
    let x = Tensor::from_fn(&[16, 24, 24], |i| {
        ((i[0] + i[1] * 5 + i[2]) as f32 * 0.03).sin()
    });
    c.bench_function("maxpool2d_16x24x24", |bch| {
        bch.iter(|| black_box(ops::maxpool2d(black_box(&x), 2, 2)))
    });
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_conv_backward,
    bench_gemm,
    bench_pooling
);
criterion_main!(benches);
