//! Ablation bench: spike-based (bit-serial) input versus a voltage-level
//! scheme.
//!
//! PipeLayer injects an `N`-bit input over `N` weighted time slots (no DAC);
//! a voltage-level scheme (PRIME-style) injects it in one slot but needs a
//! DAC per word line. The simulated-crossbar cost scales with the slot
//! count, mirroring the architectural trade-off the paper makes: more input
//! cycles, offset by the inter-layer pipeline (Sec. 1, bullet 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipelayer_reram::Crossbar;
use std::hint::black_box;

fn bench_input_resolution(c: &mut Criterion) {
    let size = 64usize;
    let levels: Vec<Vec<u8>> = (0..size)
        .map(|r| (0..size).map(|cc| ((r + cc * 3) % 16) as u8).collect())
        .collect();
    let mut group = c.benchmark_group("mvm_by_input_bits");
    for &bits in &[1u8, 4, 8, 16] {
        let mut xbar = Crossbar::new(size, size, 4);
        xbar.program(&levels);
        let max = (1u64 << bits) as u32;
        let input: Vec<u32> = (0..size).map(|i| ((i * 977) as u32) % max).collect();
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            b.iter(|| black_box(xbar.mvm_spiked(black_box(&input), bits)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_input_resolution);
criterion_main!(benches);
