//! Criterion benchmarks for the functional ReRAM training datapath.

use criterion::{criterion_group, criterion_main, Criterion};
use pipelayer::functional::{downsample, ReramMlp};
use pipelayer_nn::data::SyntheticMnist;
use pipelayer_reram::ReramParams;
use pipelayer_tensor::Tensor;
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let mut mlp = ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 3);
    let x: Vec<f32> = (0..49).map(|i| (i as f32 * 0.13).sin().abs()).collect();
    c.bench_function("reram_mlp_forward_49_16_10", |b| {
        b.iter(|| black_box(mlp.forward(black_box(&x))))
    });
}

fn bench_train_batch(c: &mut Criterion) {
    let data = SyntheticMnist::generate(16, 4, 9);
    let images: Vec<Tensor> = data.train.images.iter().map(|t| downsample(t, 4)).collect();
    let mut mlp = ReramMlp::new(&[49, 16, 10], &ReramParams::default(), 4);
    c.bench_function("reram_mlp_train_batch16", |b| {
        b.iter(|| black_box(mlp.train_batch(black_box(&images), &data.train.labels, 0.1)))
    });
}

criterion_group!(benches, bench_forward, bench_train_batch);
criterion_main!(benches);
