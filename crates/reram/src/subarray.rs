//! Morphable and memory subarrays (Sec. 4.1).
//!
//! PipeLayer partitions the ReRAM main memory into two regions: *morphable*
//! subarrays that can operate either as conventional storage or as
//! compute arrays (matrix–vector multiplication), and *memory* subarrays
//! that only store data. The mode of a morphable subarray is configured by
//! the controller; this module models the state machine and enforces its
//! protocol:
//!
//! * in **memory mode** a subarray serves word reads/writes and refuses
//!   compute requests;
//! * in **compute mode** it serves spike-coded MVMs against its programmed
//!   weights and refuses word accesses;
//! * switching modes is explicit (the controller's `Topology_set` path) and
//!   counted, because each conversion reprograms the peripheral
//!   configuration — e.g. in training, the stored forward data `d` is
//!   written while the subarray is in memory mode, then the subarray is
//!   *converted to compute mode* to run the gradient convolution
//!   (Sec. 6.6).

use crate::crossbar::Crossbar;

/// The operating mode of a morphable subarray.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubarrayMode {
    /// Conventional data storage (words of `cells_per_word` cells).
    Memory,
    /// In-situ matrix–vector multiplication.
    Compute,
}

/// Errors returned when the subarray protocol is violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubarrayError {
    /// A compute request arrived while in memory mode.
    NotInComputeMode,
    /// A word access arrived while in compute mode.
    NotInMemoryMode,
    /// Address out of range.
    AddressOutOfRange,
}

impl std::fmt::Display for SubarrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubarrayError::NotInComputeMode => write!(f, "subarray is in memory mode"),
            SubarrayError::NotInMemoryMode => write!(f, "subarray is in compute mode"),
            SubarrayError::AddressOutOfRange => write!(f, "address out of range"),
        }
    }
}

impl std::error::Error for SubarrayError {}

/// A morphable subarray: one crossbar plus the mode state machine.
///
/// In memory mode, cells store data words nibble-wise (4 bits per cell,
/// matching [`ReramParams::cells_per_word`]); in compute mode the same
/// cells hold weight levels and the spike path is active.
///
/// [`ReramParams::cells_per_word`]: crate::ReramParams::cells_per_word
#[derive(Debug, Clone)]
pub struct MorphableSubarray {
    xbar: Crossbar,
    mode: SubarrayMode,
    conversions: u64,
}

impl MorphableSubarray {
    /// A fresh subarray in memory mode (the reset state of the main-memory
    /// region).
    pub fn new(size: usize, cell_bits: u8) -> Self {
        MorphableSubarray {
            xbar: Crossbar::new(size, size, cell_bits),
            mode: SubarrayMode::Memory,
            conversions: 0,
        }
    }

    /// Current mode.
    pub fn mode(&self) -> SubarrayMode {
        self.mode
    }

    /// Number of mode conversions performed.
    pub fn conversions(&self) -> u64 {
        self.conversions
    }

    /// Words storable in memory mode: `size²` cells / cells-per-word.
    pub fn capacity_words(&self, cells_per_word: usize) -> usize {
        (self.xbar.rows() * self.xbar.cols()) / cells_per_word
    }

    /// Switches mode; a no-op if already there (no conversion counted).
    pub fn set_mode(&mut self, mode: SubarrayMode) {
        if self.mode != mode {
            self.mode = mode;
            self.conversions += 1;
        }
    }

    /// Stores a 16-bit word at `addr` (memory mode only): four consecutive
    /// cells take its nibbles, LSB first.
    ///
    /// # Errors
    ///
    /// [`SubarrayError::NotInMemoryMode`] in compute mode;
    /// [`SubarrayError::AddressOutOfRange`] past capacity.
    pub fn write_word(&mut self, addr: usize, value: u16) -> Result<(), SubarrayError> {
        if self.mode != SubarrayMode::Memory {
            return Err(SubarrayError::NotInMemoryMode);
        }
        let cells_per_word = (16 / self.xbar.cell_bits()) as usize;
        if addr >= self.capacity_words(cells_per_word) {
            return Err(SubarrayError::AddressOutOfRange);
        }
        let cols = self.xbar.cols();
        // Program the word's nibbles into consecutive cells via a one-row
        // level patch (reusing the crossbar programming path so write
        // spikes are counted).
        let base = addr * cells_per_word;
        let mask = (1u16 << self.xbar.cell_bits()) - 1;
        for g in 0..cells_per_word {
            let cell = base + g;
            let (r, c) = (cell / cols, cell % cols);
            let nibble = ((value >> (g as u16 * self.xbar.cell_bits() as u16)) & mask) as u8;
            self.program_cell(r, c, nibble);
        }
        Ok(())
    }

    /// Reads a 16-bit word from `addr` (memory mode only).
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_word`](Self::write_word).
    pub fn read_word(&self, addr: usize) -> Result<u16, SubarrayError> {
        if self.mode != SubarrayMode::Memory {
            return Err(SubarrayError::NotInMemoryMode);
        }
        let cells_per_word = (16 / self.xbar.cell_bits()) as usize;
        if addr >= self.capacity_words(cells_per_word) {
            return Err(SubarrayError::AddressOutOfRange);
        }
        let cols = self.xbar.cols();
        let base = addr * cells_per_word;
        let mut value = 0u16;
        for g in 0..cells_per_word {
            let cell = base + g;
            let (r, c) = (cell / cols, cell % cols);
            value |= (self.xbar.level(r, c) as u16) << (g as u16 * self.xbar.cell_bits() as u16);
        }
        Ok(value)
    }

    /// Programs the whole array with weight levels (compute mode only).
    ///
    /// # Errors
    ///
    /// [`SubarrayError::NotInComputeMode`] in memory mode.
    pub fn program_weights(&mut self, levels: &[Vec<u8>]) -> Result<u64, SubarrayError> {
        if self.mode != SubarrayMode::Compute {
            return Err(SubarrayError::NotInComputeMode);
        }
        Ok(self.xbar.program(levels))
    }

    /// Spike-coded MVM (compute mode only).
    ///
    /// # Errors
    ///
    /// [`SubarrayError::NotInComputeMode`] in memory mode.
    pub fn mvm(&mut self, input: &[u32], input_bits: u8) -> Result<Vec<u64>, SubarrayError> {
        if self.mode != SubarrayMode::Compute {
            return Err(SubarrayError::NotInComputeMode);
        }
        Ok(self.xbar.mvm_spiked(input, input_bits))
    }

    /// Underlying crossbar (spike counters etc.).
    pub fn crossbar(&self) -> &Crossbar {
        &self.xbar
    }

    fn program_cell(&mut self, row: usize, col: usize, level: u8) {
        // One-cell patch: keep all other cells as they are.
        let mut levels: Vec<Vec<u8>> = (0..self.xbar.rows())
            .map(|r| {
                (0..self.xbar.cols())
                    .map(|c| self.xbar.level(r, c))
                    .collect()
            })
            .collect();
        levels[row][col] = level;
        self.xbar.program(&levels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_in_memory_mode() {
        let sa = MorphableSubarray::new(16, 4);
        assert_eq!(sa.mode(), SubarrayMode::Memory);
        assert_eq!(sa.conversions(), 0);
    }

    #[test]
    fn word_roundtrip_in_memory_mode() {
        let mut sa = MorphableSubarray::new(16, 4);
        sa.write_word(0, 0xBEEF).unwrap();
        sa.write_word(5, 0x1234).unwrap();
        assert_eq!(sa.read_word(0).unwrap(), 0xBEEF);
        assert_eq!(sa.read_word(5).unwrap(), 0x1234);
        assert_eq!(sa.read_word(1).unwrap(), 0);
    }

    #[test]
    fn compute_requests_rejected_in_memory_mode() {
        let mut sa = MorphableSubarray::new(4, 4);
        assert_eq!(
            sa.mvm(&[1, 2, 3, 4], 8),
            Err(SubarrayError::NotInComputeMode)
        );
        let zeros = vec![vec![0u8; 4]; 4];
        assert_eq!(
            sa.program_weights(&zeros),
            Err(SubarrayError::NotInComputeMode)
        );
    }

    #[test]
    fn word_access_rejected_in_compute_mode() {
        let mut sa = MorphableSubarray::new(4, 4);
        sa.set_mode(SubarrayMode::Compute);
        assert_eq!(sa.write_word(0, 1), Err(SubarrayError::NotInMemoryMode));
        assert_eq!(sa.read_word(0), Err(SubarrayError::NotInMemoryMode));
    }

    #[test]
    fn conversion_counting() {
        let mut sa = MorphableSubarray::new(4, 4);
        sa.set_mode(SubarrayMode::Compute);
        sa.set_mode(SubarrayMode::Compute); // no-op
        sa.set_mode(SubarrayMode::Memory);
        assert_eq!(sa.conversions(), 2);
    }

    #[test]
    fn stored_data_becomes_weights_after_conversion() {
        // The Sec. 6.6 trick: write d in memory mode, convert, and the same
        // cells act as kernel weights for the gradient convolution.
        let mut sa = MorphableSubarray::new(4, 4);
        // Word 0 -> nibbles of 0x4321 into cells (0,0..4): 1,2,3,4.
        sa.write_word(0, 0x4321).unwrap();
        sa.set_mode(SubarrayMode::Compute);
        // Drive word line 0: outputs are the nibble levels times the input.
        let out = sa.mvm(&[10, 0, 0, 0], 8).unwrap();
        assert_eq!(out, vec![10, 20, 30, 40]);
    }

    #[test]
    fn capacity_and_bounds() {
        let mut sa = MorphableSubarray::new(16, 4);
        assert_eq!(sa.capacity_words(4), 64);
        assert_eq!(sa.write_word(64, 1), Err(SubarrayError::AddressOutOfRange));
    }

    #[test]
    fn errors_are_displayable() {
        assert!(SubarrayError::NotInComputeMode
            .to_string()
            .contains("memory mode"));
    }
}
