//! The integrate-and-fire circuit of Fig. 9(b).
//!
//! A controlled current source mirrors the bitline current onto a capacitor;
//! whenever the capacitor voltage crosses the comparator threshold `Vth`, an
//! output spike fires (discharging the capacitor by one threshold's worth)
//! and a digital counter increments. A `K`-times stronger current yields `K`
//! times the output spikes — so the counter value *is* the digitised dot
//! product, and no ADC is needed (the paper's advantage over ISAAC).

/// Integrate-and-fire converter attached to one bitline.
///
/// Charge is tracked in integer LSB units: one unit is the charge a
/// unit-conductance cell deposits during the least-significant spike slot.
/// The threshold is one unit, so the spike count equals the accumulated
/// charge — exact fixed-point conversion.
///
/// # Example
///
/// ```
/// use pipelayer_reram::IntegrateFire;
///
/// let mut inf = IntegrateFire::new();
/// inf.integrate(5);  // current 5 units during one slot
/// inf.integrate(11);
/// assert_eq!(inf.fire(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IntegrateFire {
    charge: u64,
    fired_total: u64,
}

impl IntegrateFire {
    /// A fresh converter with an empty capacitor.
    pub fn new() -> Self {
        IntegrateFire::default()
    }

    /// Accumulates `units` of charge (current × slot weight).
    pub fn integrate(&mut self, units: u64) {
        self.charge += units;
    }

    /// Fires: converts all accumulated charge into output spikes, counted by
    /// the attached counter, and resets the capacitor. Returns the count.
    pub fn fire(&mut self) -> u64 {
        let spikes = self.charge;
        self.fired_total += spikes;
        self.charge = 0;
        spikes
    }

    /// Total output spikes ever fired (for energy accounting).
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Charge currently on the capacitor.
    pub fn pending_charge(&self) -> u64 {
        self.charge
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_times_current_gives_k_times_spikes() {
        // The linearity property the paper states explicitly.
        let mut a = IntegrateFire::new();
        let mut b = IntegrateFire::new();
        a.integrate(7);
        b.integrate(7 * 3);
        assert_eq!(b.fire(), 3 * a.fire());
    }

    #[test]
    fn fire_resets_capacitor() {
        let mut inf = IntegrateFire::new();
        inf.integrate(4);
        assert_eq!(inf.fire(), 4);
        assert_eq!(inf.pending_charge(), 0);
        assert_eq!(inf.fire(), 0);
    }

    #[test]
    fn fired_total_accumulates() {
        let mut inf = IntegrateFire::new();
        inf.integrate(2);
        inf.fire();
        inf.integrate(3);
        inf.fire();
        assert_eq!(inf.fired_total(), 5);
    }
}
