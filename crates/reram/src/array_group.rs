//! Signed, full-resolution matrices on ReRAM: positive/negative array pairs
//! plus the resolution-compensation scheme of Fig. 14.
//!
//! A 16-bit signed weight matrix is realised as **eight** crossbars:
//! positive and negative magnitude parts (the subtractor in the activation
//! component recombines them, Sec. 4.2.3), each split into four 4-bit
//! segments stored in four array groups whose outputs are shift-added
//! (`<<0, <<4, <<8, <<12` — Fig. 14a). Weight updates read the old segments,
//! apply the averaged partial derivative and write all groups back
//! (Fig. 14b).

use crate::crossbar::Crossbar;
use crate::drift::DriftModel;
use crate::energy::ReramParams;
use crate::fault::{FaultMap, FaultModel, ProgramReport, VerifyPolicy};
use crate::noise::NoiseModel;
use crate::seedstream;
use crate::wear::WearModel;
use rand::Rng;

/// A float matrix programmed onto ReRAM crossbars, supporting exact
/// fixed-point matrix–vector products and in-place weight updates.
///
/// Layout: `weights[out][in]` (row-major `[out_dim × in_dim]`, matching an
/// inner-product layer's `W`), mapped with one bit line per output and one
/// word line per input.
///
/// # Example
///
/// ```
/// use pipelayer_reram::{ReramMatrix, ReramParams};
///
/// let w = vec![1.0f32, -0.5, 0.25, 0.75]; // 2x2, row-major
/// let mut m = ReramMatrix::program(&w, 2, 2, &ReramParams::default());
/// let y = m.matvec(&[1.0, 1.0]);
/// assert!((y[0] - 0.5).abs() < 1e-3);
/// assert!((y[1] - 1.0).abs() < 1e-3);
/// ```
/// Per-segment-group `(positive, negative)` level matrices, `[row][col]`.
type GroupLevels = Vec<(Vec<Vec<u8>>, Vec<Vec<u8>>)>;

#[derive(Debug, Clone)]
pub struct ReramMatrix {
    in_dim: usize,
    out_dim: usize,
    weight_scale: f32,
    data_bits: u8,
    cell_bits: u8,
    /// One `(positive, negative)` crossbar pair per 4-bit segment group,
    /// least-significant group first.
    groups: Vec<(Crossbar, Crossbar)>,
    /// Outputs disconnected by the degradation path (spares exhausted);
    /// masked bit lines contribute 0 to every matvec and read.
    masked_outputs: Vec<bool>,
}

impl ReramMatrix {
    /// Quantizes and programs `weights` (`out_dim × in_dim`, row-major).
    ///
    /// The weight scale is chosen so the largest magnitude maps to the full
    /// signed range of `params.data_bits`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero or inconsistent with `weights.len()`,
    /// or `data_bits` is not a multiple of `cell_bits`.
    pub fn program(weights: &[f32], out_dim: usize, in_dim: usize, params: &ReramParams) -> Self {
        assert!(out_dim > 0 && in_dim > 0, "matrix must be non-empty");
        assert_eq!(
            weights.len(),
            out_dim * in_dim,
            "weight buffer size mismatch"
        );
        assert_eq!(
            params.data_bits % params.cell_bits,
            0,
            "data bits must be a multiple of cell bits"
        );
        let n_groups = (params.data_bits / params.cell_bits) as usize;
        let mut m = ReramMatrix {
            in_dim,
            out_dim,
            weight_scale: 0.0,
            data_bits: params.data_bits,
            cell_bits: params.cell_bits,
            groups: (0..n_groups)
                .map(|_| {
                    (
                        Crossbar::new(in_dim, out_dim, params.cell_bits),
                        Crossbar::new(in_dim, out_dim, params.cell_bits),
                    )
                })
                .collect(),
            masked_outputs: vec![false; out_dim],
        };
        m.write(weights);
        m
    }

    /// Like [`program`](Self::program), but each member crossbar first draws
    /// a persistent [`FaultMap`] from `faults` (deterministically in `seed`,
    /// with per-crossbar sub-seeds so the eight arrays fail independently).
    /// The initial write is *not* verified — pair with
    /// [`write_verify`](Self::write_verify) to discover unrecoverable cells.
    ///
    /// # Panics
    ///
    /// Same conditions as [`program`](Self::program), plus invalid fault
    /// rates.
    pub fn program_with_faults(
        weights: &[f32],
        out_dim: usize,
        in_dim: usize,
        params: &ReramParams,
        faults: &FaultModel,
        seed: u64,
    ) -> Self {
        let mut m = Self::program(weights, out_dim, in_dim, params);
        for (g, (pos, neg)) in m.groups.iter_mut().enumerate() {
            let pos_seed = seedstream::crossbar_seed(seed, 2 * g as u64);
            let neg_seed = seedstream::crossbar_seed(seed, 2 * g as u64 + 1);
            pos.attach_faults(FaultMap::generate(in_dim, out_dim, faults, pos_seed));
            neg.attach_faults(FaultMap::generate(in_dim, out_dim, faults, neg_seed));
        }
        m
    }

    /// Attaches the time-dependent degradation model to every member
    /// crossbar, with per-crossbar sub-seeds from the documented
    /// `(seed, crossbar, row, col, epoch)` scheme so the eight arrays
    /// age independently.
    pub fn attach_drift(&mut self, model: DriftModel, seed: u64) {
        for (g, (pos, neg)) in self.groups.iter_mut().enumerate() {
            pos.attach_drift(model, seedstream::crossbar_seed(seed, 2 * g as u64));
            neg.attach_drift(model, seedstream::crossbar_seed(seed, 2 * g as u64 + 1));
        }
    }

    /// Attaches the analog non-ideality model to every member crossbar,
    /// with per-crossbar sub-seeds from the documented
    /// `(seed, crossbar, row, col, epoch)` scheme so the eight arrays see
    /// independent device lotteries and read noise.
    pub fn attach_noise(&mut self, model: NoiseModel, seed: u64) {
        for (g, (pos, neg)) in self.groups.iter_mut().enumerate() {
            pos.attach_noise(model, seedstream::crossbar_seed(seed, 2 * g as u64));
            neg.attach_noise(model, seedstream::crossbar_seed(seed, 2 * g as u64 + 1));
        }
    }

    /// Attaches the endurance wear-out model to every member crossbar,
    /// with per-crossbar sub-seeds from the documented
    /// `(seed, crossbar, row, col, epoch)` scheme so the eight arrays draw
    /// independent write-budget lotteries. An ideal model detaches wear
    /// (exact no-op).
    pub fn attach_wear(&mut self, model: WearModel, seed: u64) {
        for (g, (pos, neg)) in self.groups.iter_mut().enumerate() {
            pos.attach_wear(model, seedstream::crossbar_seed(seed, 2 * g as u64));
            neg.attach_wear(model, seedstream::crossbar_seed(seed, 2 * g as u64 + 1));
        }
    }

    /// Cells across all member crossbars that have exhausted their write
    /// budget (0 without an attached wear model).
    pub fn wear_exhausted_cells(&self) -> usize {
        self.groups
            .iter()
            .flat_map(|(p, n)| [p, n])
            .filter_map(|x| x.wear_state())
            .map(|w| w.exhausted_cells())
            .sum()
    }

    /// The smallest remaining write budget on word line `row` across all
    /// member crossbars — `u64::MAX` without wear. A scrub pass below its
    /// headroom threshold skips the row instead of burning its last writes.
    pub fn row_wear_headroom(&self, row: usize) -> u64 {
        self.groups
            .iter()
            .flat_map(|(p, n)| [p, n])
            .map(|x| x.row_wear_headroom(row))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Shared read access to the member crossbars (pos, neg interleaved,
    /// least-significant group first) — checkpoint snapshot plumbing.
    pub fn crossbars(&self) -> impl Iterator<Item = &Crossbar> {
        self.groups.iter().flat_map(|(p, n)| [p, n])
    }

    /// Mutable access to the member crossbars in the same order as
    /// [`crossbars`](Self::crossbars) — checkpoint restore plumbing.
    pub fn crossbars_mut(&mut self) -> impl Iterator<Item = &mut Crossbar> {
        self.groups.iter_mut().flat_map(|(p, n)| [p, n].into_iter())
    }

    /// Restores the weight scale persisted by a checkpoint (the quantizer
    /// recomputes it on every write, so this only matters between a restore
    /// and the first update).
    pub fn restore_weight_scale(&mut self, scale: f32) {
        self.weight_scale = scale;
    }

    /// Restores the masked-output set persisted by a checkpoint;
    /// out-of-range indices are ignored.
    pub fn restore_masked_outputs(&mut self, masked: &[usize]) {
        self.masked_outputs.fill(false);
        for &o in masked {
            if let Some(m) = self.masked_outputs.get_mut(o) {
                *m = true;
            }
        }
    }

    /// Advances every member crossbar's degradation clock by `cycles`
    /// logical pipeline cycles (one processed image = one cycle).
    pub fn advance_cycles(&mut self, cycles: u64) {
        for (pos, neg) in self.groups.iter_mut() {
            pos.advance_cycles(cycles);
            neg.advance_cycles(cycles);
        }
    }

    /// Cells across all member crossbars that currently read at a level
    /// other than the one programmed (drift/disturb damage scrub can fix).
    pub fn drifted_cells(&self) -> usize {
        self.groups
            .iter()
            .map(|(p, n)| p.drifted_cells() + n.drifted_cells())
            .sum()
    }

    /// Scrubs `row_count` word lines (wrapping from `row_start`) on every
    /// member crossbar: drifted cells are re-programmed back to their
    /// stored level through the program-and-verify loop; the merged report
    /// carries the exact pulse/read cost of the pass.
    pub fn scrub_rows(
        &mut self,
        row_start: usize,
        row_count: usize,
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        let mut report = ProgramReport::default();
        for (pos, neg) in self.groups.iter_mut() {
            report.merge(pos.scrub_rows(row_start, row_count, policy, rng));
            report.merge(neg.scrub_rows(row_start, row_count, policy, rng));
        }
        report
    }

    /// Input dimension (word lines).
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension (bit lines).
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The LSB value of the stored fixed-point weights.
    pub fn weight_scale(&self) -> f32 {
        self.weight_scale
    }

    fn qmax(&self) -> i64 {
        (1i64 << (self.data_bits - 1)) - 1
    }

    /// (Re)programs the matrix — the weight-update write of Fig. 14(b).
    /// Recomputes the weight scale from the new values.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` mismatches the geometry.
    pub fn write(&mut self, weights: &[f32]) {
        let levels = self.quantize_levels(weights);
        for ((pos, neg), (pos_levels, neg_levels)) in self.groups.iter_mut().zip(&levels) {
            pos.program(pos_levels);
            neg.program(neg_levels);
        }
    }

    /// (Re)programs the matrix through the bounded program-and-verify loop.
    /// The merged report's [`UnrecoverableCell::col`](crate::fault::UnrecoverableCell)
    /// values are *logical output indices* (bit lines map one-to-one onto
    /// outputs), ready for the spare-remapping layer.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` mismatches the geometry.
    pub fn write_verify(
        &mut self,
        weights: &[f32],
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        let levels = self.quantize_levels(weights);
        let mut report = ProgramReport::default();
        for ((pos, neg), (pos_levels, neg_levels)) in self.groups.iter_mut().zip(&levels) {
            report.merge(pos.program_verify(pos_levels, policy, rng));
            report.merge(neg.program_verify(neg_levels, policy, rng));
        }
        report
    }

    /// Quantizes `weights` into per-group `(positive, negative)` level
    /// matrices and updates the weight scale.
    fn quantize_levels(&mut self, weights: &[f32]) -> GroupLevels {
        assert_eq!(
            weights.len(),
            self.out_dim * self.in_dim,
            "weight buffer size mismatch"
        );
        let absmax = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        self.weight_scale = if absmax == 0.0 {
            1.0
        } else {
            absmax / self.qmax() as f32
        };
        let mask = (1u32 << self.cell_bits) - 1;
        let (in_dim, out_dim, cell_bits) = (self.in_dim, self.out_dim, self.cell_bits);
        let (qmax, scale) = (self.qmax(), self.weight_scale);
        (0..self.groups.len())
            .map(|g| {
                let shift = g as u32 * cell_bits as u32;
                let mut pos_levels = vec![vec![0u8; out_dim]; in_dim];
                let mut neg_levels = vec![vec![0u8; out_dim]; in_dim];
                for o in 0..out_dim {
                    for i in 0..in_dim {
                        let w = weights[o * in_dim + i];
                        let q = (w / scale).round() as i64;
                        let q = q.clamp(-qmax, qmax);
                        let nibble = (((q.unsigned_abs()) >> shift) as u32 & mask) as u8;
                        if q >= 0 {
                            pos_levels[i][o] = nibble;
                        } else {
                            neg_levels[i][o] = nibble;
                        }
                    }
                }
                (pos_levels, neg_levels)
            })
            .collect()
    }

    /// Remaps the given logical outputs onto fault-free spare bit lines:
    /// every member crossbar's faults in those columns are cleared. The
    /// stored levels already hold the intended values, so no rewrite is
    /// needed.
    ///
    /// # Panics
    ///
    /// Panics if an output index is out of range.
    pub fn repair_outputs(&mut self, outputs: &[usize]) {
        for &o in outputs {
            assert!(o < self.out_dim, "output {o} out of range");
            for (pos, neg) in self.groups.iter_mut() {
                pos.clear_fault_col(o);
                neg.clear_fault_col(o);
            }
            self.masked_outputs[o] = false;
        }
    }

    /// Remaps the given logical outputs onto fresh spare bit lines at
    /// honest device cost: unlike [`repair_outputs`](Self::repair_outputs)
    /// (which models only the routing change), the spare's cells start
    /// blank, so the displaced column is re-programmed from the stored
    /// intent levels through the full program-and-verify loop on every
    /// member crossbar. The merged report carries the real pulse /
    /// verify-read bill (with `UnrecoverableCell::col` as logical output
    /// indices), and under wear the spare cells draw fresh budgets — an
    /// unlucky spare can die during its own commissioning and re-enter the
    /// repair ladder. Remapped outputs are unmasked. Out-of-range indices
    /// are ignored.
    pub fn remap_outputs(
        &mut self,
        outputs: &[usize],
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        let mut report = ProgramReport::default();
        for &o in outputs {
            if o >= self.out_dim {
                continue;
            }
            for (pos, neg) in self.groups.iter_mut() {
                report.merge(pos.reprogram_col_from_spare(o, policy, rng));
                report.merge(neg.reprogram_col_from_spare(o, policy, rng));
            }
            self.masked_outputs[o] = false;
        }
        report
    }

    /// Disconnects logical output `o` — the graceful-degradation path when
    /// the spare budget is exhausted. Masked outputs contribute exactly 0 to
    /// matvecs and reads (a zero unit, not a corrupted one).
    ///
    /// # Panics
    ///
    /// Panics if `o` is out of range.
    pub fn mask_output(&mut self, o: usize) {
        assert!(o < self.out_dim, "output {o} out of range");
        self.masked_outputs[o] = true;
    }

    /// Logical outputs currently masked off.
    pub fn masked_outputs(&self) -> Vec<usize> {
        self.masked_outputs
            .iter()
            .enumerate()
            .filter_map(|(o, &m)| if m { Some(o) } else { None })
            .collect()
    }

    /// Faulty cells within the given logical outputs' bit lines, across all
    /// member crossbars (0 after those outputs were repaired).
    pub fn fault_count_in_outputs(&self, outputs: &[usize]) -> usize {
        self.groups
            .iter()
            .flat_map(|(p, n)| [p, n])
            .filter_map(|xbar| xbar.fault_map())
            .map(|f| {
                outputs
                    .iter()
                    .map(|&o| (0..f.rows()).filter(|&r| f.get(r, o).is_some()).count())
                    .sum::<usize>()
            })
            .sum()
    }

    /// Faulty cells across all member crossbars.
    pub fn fault_count(&self) -> usize {
        self.groups
            .iter()
            .map(|(p, n)| {
                p.fault_map().map_or(0, |f| f.fault_count())
                    + n.fault_map().map_or(0, |f| f.fault_count())
            })
            .sum()
    }

    /// Reads the stored (quantized) weights back — the "old weights are read
    /// out" step of the update path (Sec. 4.4.2).
    pub fn read(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.out_dim * self.in_dim];
        for (g, (pos, neg)) in self.groups.iter().enumerate() {
            let shift = g as u32 * self.cell_bits as u32;
            for o in 0..self.out_dim {
                if self.masked_outputs[o] {
                    continue;
                }
                for i in 0..self.in_dim {
                    // Reads go through the analog path, so stuck cells
                    // corrupt what comes back.
                    let p = pos.effective_level(i, o) as i64;
                    let n = neg.effective_level(i, o) as i64;
                    out[o * self.in_dim + i] += ((p - n) << shift) as f32 * self.weight_scale;
                }
            }
        }
        out
    }

    /// Fixed-point matrix–vector product `W·x` through the full analog path:
    /// input quantization (spike driver `V0` scaling), separate
    /// positive/negative input phases, per-segment crossbar MVMs,
    /// shift-add recombination and positive/negative subtraction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    pub fn matvec(&mut self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim, "input length mismatch");
        let absmax = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if absmax == 0.0 {
            return vec![0.0; self.out_dim];
        }
        let in_qmax = ((1u64 << self.data_bits) - 1) as f32 / 2.0;
        let x_scale = absmax / in_qmax;
        let q: Vec<i64> = x.iter().map(|&v| (v / x_scale).round() as i64).collect();

        let mut acc = vec![0i64; self.out_dim];
        for sign in [1i64, -1] {
            let phase: Vec<u32> = q
                .iter()
                .map(|&v| if v * sign > 0 { (v * sign) as u32 } else { 0 })
                .collect();
            if phase.iter().all(|&v| v == 0) {
                continue;
            }
            for (g, (pos, neg)) in self.groups.iter_mut().enumerate() {
                let shift = g as u32 * self.cell_bits as u32;
                let yp = pos.mvm_spiked(&phase, self.data_bits);
                let yn = neg.mvm_spiked(&phase, self.data_bits);
                for (a, (&p, &n)) in acc.iter_mut().zip(yp.iter().zip(&yn)) {
                    // Subtractor (activation component) + segment shift-add.
                    *a += sign * ((p as i64 - n as i64) << shift);
                }
            }
        }
        acc.iter()
            .zip(&self.masked_outputs)
            .map(|(&a, &masked)| {
                if masked {
                    0.0
                } else {
                    a as f32 * self.weight_scale * x_scale
                }
            })
            .collect()
    }

    /// Batched [`matvec`](Self::matvec): one call per *batch* of input
    /// vectors. Semantics are exactly `xs.iter().map(|x| self.matvec(x))`
    /// — per-sample quantization, phase splitting, spike accounting and
    /// disturb/noise-epoch ordering are all identical — but because no
    /// write lands between samples, every member crossbar resolves its
    /// bit-plane decomposition once and reuses it across the whole batch.
    /// This is the multi-image kernel the functional training paths feed.
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `in_dim()`.
    pub fn matvec_batch(&mut self, xs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        xs.iter().map(|x| self.matvec(x)).collect()
    }

    /// Total input (read) spikes across all member crossbars.
    pub fn read_spikes(&self) -> u64 {
        self.groups
            .iter()
            .map(|(p, n)| p.read_spikes() + n.read_spikes())
            .sum()
    }

    /// Total programming pulses across all member crossbars.
    pub fn write_spikes(&self) -> u64 {
        self.groups
            .iter()
            .map(|(p, n)| p.write_spikes() + n.write_spikes())
            .sum()
    }

    /// Number of physical crossbars backing this matrix.
    pub fn crossbar_count(&self) -> usize {
        self.groups.len() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng as _;

    fn reference(w: &[f32], out: usize, inp: usize, x: &[f32]) -> Vec<f32> {
        (0..out)
            .map(|o| (0..inp).map(|i| w[o * inp + i] * x[i]).sum())
            .collect()
    }

    #[test]
    fn identity_matvec() {
        let w = vec![1.0, 0.0, 0.0, 1.0];
        let mut m = ReramMatrix::program(&w, 2, 2, &ReramParams::default());
        let y = m.matvec(&[0.3, -0.7]);
        assert!(
            (y[0] - 0.3).abs() < 1e-3 && (y[1] + 0.7).abs() < 1e-3,
            "{y:?}"
        );
    }

    #[test]
    fn read_recovers_quantized_weights() {
        let w = vec![0.5, -0.25, 0.125, 1.0, -1.0, 0.0];
        let m = ReramMatrix::program(&w, 2, 3, &ReramParams::default());
        let r = m.read();
        for (a, b) in w.iter().zip(&r) {
            assert!((a - b).abs() < 2.0 * m.weight_scale(), "{a} vs {b}");
        }
    }

    #[test]
    fn update_reprograms() {
        let mut m = ReramMatrix::program(&[1.0, 1.0, 1.0, 1.0], 2, 2, &ReramParams::default());
        let before = m.write_spikes();
        m.write(&[0.5, -0.5, 0.25, -0.25]);
        assert!(m.write_spikes() > before, "update must issue write pulses");
        let y = m.matvec(&[1.0, 0.0]);
        assert!(
            (y[0] - 0.5).abs() < 1e-2 && (y[1] - 0.25).abs() < 1e-2,
            "{y:?}"
        );
    }

    #[test]
    fn eight_crossbars_for_16bit_weights() {
        let m = ReramMatrix::program(&[1.0], 1, 1, &ReramParams::default());
        assert_eq!(m.crossbar_count(), 8); // 4 segment groups × (pos, neg)
    }

    #[test]
    fn zero_input_shortcircuits() {
        let mut m = ReramMatrix::program(&[1.0, 2.0], 2, 1, &ReramParams::default());
        assert_eq!(m.matvec(&[0.0]), vec![0.0, 0.0]);
        assert_eq!(m.read_spikes(), 0);
    }

    #[test]
    fn faulty_matrix_is_deterministic_and_repairable() {
        let w = vec![0.5f32; 16 * 8];
        let faults = FaultModel::with_stuck_rate(0.05);
        let params = ReramParams::default();
        let a = ReramMatrix::program_with_faults(&w, 8, 16, &params, &faults, 9);
        let b = ReramMatrix::program_with_faults(&w, 8, 16, &params, &faults, 9);
        assert!(a.fault_count() > 0, "5% of 2048 cells should fault");
        assert_eq!(a.fault_count(), b.fault_count());
        assert_eq!(a.read(), b.read(), "same seed, same corrupted reads");

        let mut m = a;
        let policy = VerifyPolicy::with_attempts(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let report = m.write_verify(&w, &policy, &mut rng);
        assert!(!report.unrecoverable.is_empty());
        let bad: Vec<usize> = report.unrecoverable.iter().map(|u| u.col).collect();
        m.repair_outputs(&bad);
        assert_eq!(m.fault_count_in_outputs(&bad), 0);

        // After repair, a verified rewrite succeeds everywhere repaired.
        let report = m.write_verify(&w, &policy, &mut rng);
        assert!(report.unrecoverable.iter().all(|u| !bad.contains(&u.col)));
    }

    #[test]
    fn masked_outputs_read_and_compute_zero() {
        let w = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut m = ReramMatrix::program(&w, 2, 2, &ReramParams::default());
        m.mask_output(1);
        assert_eq!(m.masked_outputs(), vec![1]);
        let y = m.matvec(&[1.0, 1.0]);
        assert!((y[0] - 3.0).abs() < 1e-2, "{y:?}");
        assert_eq!(y[1], 0.0);
        let r = m.read();
        assert_eq!(&r[2..], &[0.0, 0.0], "masked row reads as zeros");

        m.repair_outputs(&[1]);
        assert!(m.masked_outputs().is_empty(), "repair unmasks");
        let y = m.matvec(&[1.0, 1.0]);
        assert!((y[1] - 7.0).abs() < 1e-2, "{y:?}");
    }

    #[test]
    fn stuck_cells_corrupt_reads_until_remapped() {
        let w = vec![0.75f32; 4];
        let faults = FaultModel {
            stuck_at_zero: 0.3,
            stuck_at_max: 0.0,
            dead: 0.0,
        };
        let mut m = ReramMatrix::program_with_faults(&w, 2, 2, &ReramParams::default(), &faults, 3);
        assert!(m.fault_count() > 0);
        let corrupted = m.read();
        assert_ne!(corrupted, vec![0.75; 4]);
        m.repair_outputs(&[0, 1]);
        let repaired = m.read();
        for v in &repaired {
            assert!((v - 0.75).abs() < 2.0 * m.weight_scale(), "{repaired:?}");
        }
    }

    #[test]
    fn remap_outputs_rewrites_displaced_column_at_honest_cost() {
        let w = vec![0.75f32; 4];
        let faults = FaultModel {
            stuck_at_zero: 0.3,
            stuck_at_max: 0.0,
            dead: 0.0,
        };
        let mut m = ReramMatrix::program_with_faults(&w, 2, 2, &ReramParams::default(), &faults, 3);
        assert!(m.fault_count() > 0);
        let before_writes = m.write_spikes();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let report = m.remap_outputs(&[0, 1], &VerifyPolicy::default(), &mut rng);
        assert_eq!(m.fault_count(), 0, "remap clears every column fault");
        assert!(
            report.pulses > 0,
            "blank spares must be re-programmed from intent"
        );
        assert_eq!(
            m.write_spikes(),
            before_writes + report.pulses,
            "the remap bill lands on the write counter"
        );
        let repaired = m.read();
        for v in &repaired {
            assert!((v - 0.75).abs() < 2.0 * m.weight_scale(), "{repaired:?}");
        }
        // Out-of-range outputs are ignored, not panicked on.
        let empty = m.remap_outputs(&[99], &VerifyPolicy::default(), &mut rng);
        assert_eq!(empty.pulses, 0);
    }

    #[test]
    fn wear_attaches_per_crossbar_and_counts_deaths() {
        use crate::wear::WearModel;
        let w = vec![0.5f32; 4];
        let mut m = ReramMatrix::program(&w, 2, 2, &ReramParams::default());
        m.attach_wear(
            WearModel {
                median_writes: 3.0,
                sigma: 0.0,
            },
            11,
        );
        assert_eq!(m.wear_exhausted_cells(), 0);
        assert_eq!(m.row_wear_headroom(0), 3);
        // Full-swing rewrites hammer the populated nibbles past 3 pulses.
        m.write(&[-0.5, 0.5, -0.5, 0.5]);
        m.write(&[0.5, -0.5, 0.5, -0.5]);
        assert!(m.wear_exhausted_cells() > 0, "swings must kill cells");
        assert!(m.fault_count() > 0, "deaths surface as live faults");
        assert_eq!(m.row_wear_headroom(0), 0);
    }

    #[test]
    fn matvec_batch_matches_sequential_bitwise() {
        let w = vec![0.5f32, -0.25, 0.125, 1.0, -1.0, 0.0];
        let xs: Vec<Vec<f32>> = vec![
            vec![1.0, -2.0, 0.5],
            vec![0.0, 0.0, 0.0],
            vec![-0.125, 3.0, 7.5],
        ];
        let mut seq = ReramMatrix::program(&w, 2, 3, &ReramParams::default());
        seq.attach_noise(NoiseModel::with_strength(1.0), 17);
        let mut bat = seq.clone();
        let want: Vec<Vec<f32>> = xs.iter().map(|x| seq.matvec(x)).collect();
        let got = bat.matvec_batch(&xs);
        for (g, w_) in got.iter().flatten().zip(want.iter().flatten()) {
            assert_eq!(g.to_bits(), w_.to_bits());
        }
        assert_eq!(bat.read_spikes(), seq.read_spikes());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The full analog path approximates the float MVM within the
        /// fixed-point error bound.
        #[test]
        fn matvec_matches_float_reference(seed in 0u64..500) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let (out, inp) = (rng.random_range(1usize..6), rng.random_range(1usize..6));
            let w: Vec<f32> = (0..out * inp).map(|_| rng.random_range(-1.0f32..1.0)).collect();
            let x: Vec<f32> = (0..inp).map(|_| rng.random_range(-2.0f32..2.0)).collect();
            let mut m = ReramMatrix::program(&w, out, inp, &ReramParams::default());
            let got = m.matvec(&x);
            let want = reference(&w, out, inp, &x);
            // Error bound: per-term quantization error ~ (|x| eps_w + |w| eps_x).
            let tol = 1e-3 * (1.0 + inp as f32);
            for (g, wnt) in got.iter().zip(&want) {
                prop_assert!((g - wnt).abs() < tol, "got {g}, want {wnt}");
            }
        }
    }
}
