//! Area model.
//!
//! The paper's area numbers come from circuit data in \[47\]; only aggregates
//! are published: total PipeLayer area 82.6 mm², computational efficiency
//! 1485 GOPS/s/mm². We model area as
//!
//! ```text
//! area = n_crossbars · (crossbar + peripheral share) + fixed (controller/IO)
//! ```
//!
//! with the per-crossbar constant calibrated so that the default-granularity
//! AlexNet training configuration lands at the published 82.6 mm²
//! (see `pipelayer::area` for the configuration-level accounting and
//! EXPERIMENTS.md for the calibration).

/// Per-crossbar and fixed area constants, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// Effective area of one 128×128 crossbar *including* its share of
    /// spike drivers (shared between adjacent subarrays), integrate-and-fire
    /// units, activation components and connection fabric.
    pub crossbar_mm2: f64,
    /// Fixed overhead: controller, global row decoder, global I/O row
    /// buffer (Fig. 9).
    pub fixed_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            // 128×128 cells at 4F², F = 50 nm, gives 0.00041 mm² for the
            // bare array; the remainder covers the array's share of
            // drivers/I&F/activation/connection. Calibrated so the default
            // AlexNet training deployment (130,839 crossbars) hits the
            // paper's 82.6 mm² (EXPERIMENTS.md).
            crossbar_mm2: 0.000616,
            fixed_mm2: 2.0,
        }
    }
}

impl AreaModel {
    /// Total area for `n_crossbars` arrays.
    pub fn total_mm2(&self, n_crossbars: u64) -> f64 {
        self.fixed_mm2 + n_crossbars as f64 * self.crossbar_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_affine_in_array_count() {
        let m = AreaModel::default();
        let a1 = m.total_mm2(1000);
        let a2 = m.total_mm2(2000);
        assert!((a2 - a1 - 1000.0 * m.crossbar_mm2).abs() < 1e-9);
        assert!(m.total_mm2(0) == m.fixed_mm2);
    }

    #[test]
    fn default_is_positive() {
        let m = AreaModel::default();
        assert!(m.crossbar_mm2 > 0.0 && m.fixed_mm2 > 0.0);
    }
}
