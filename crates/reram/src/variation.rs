//! Device non-idealities: programming variation and stuck-at faults.
//!
//! Sec. 5.1 of the paper leans on neural networks' "inherent error
//! tolerance" to justify 4-bit cells. This module makes that testable: a
//! [`VariationModel`] perturbs programmed conductance levels the way real
//! metal-oxide ReRAM does — Gaussian write variation around the target
//! level plus a fraction of cells stuck at the extreme states — so the
//! accuracy cost of device imperfection can be measured (the
//! `ablation_variation` bench).

use rand::{Rng, RngExt as _};

/// A stochastic cell-level fault/variation model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Standard deviation of the programmed level, in levels (a cell
    /// targeted at level `v` lands at `round(v + N(0, σ))`, clamped).
    pub write_sigma: f64,
    /// Probability a cell is stuck at level 0 (high-resistance state).
    pub stuck_at_zero: f64,
    /// Probability a cell is stuck at the maximum level.
    pub stuck_at_max: f64,
}

impl VariationModel {
    /// An ideal device (no perturbation).
    pub fn ideal() -> Self {
        VariationModel {
            write_sigma: 0.0,
            stuck_at_zero: 0.0,
            stuck_at_max: 0.0,
        }
    }

    /// A variation-only model with the given write σ (in levels). A
    /// negative or non-finite σ is a caller bug (debug builds assert); in
    /// release the sampling degrades gracefully (|σ| behaviour).
    pub fn with_sigma(sigma: f64) -> Self {
        debug_assert!(sigma >= 0.0 && sigma.is_finite(), "invalid sigma {sigma}");
        VariationModel {
            write_sigma: sigma,
            ..Self::ideal()
        }
    }

    /// `true` if the model perturbs nothing.
    pub fn is_ideal(&self) -> bool {
        self.write_sigma == 0.0 && self.stuck_at_zero == 0.0 && self.stuck_at_max == 0.0
    }

    /// Applies the model to one programmed cell targeting `level` on a cell
    /// with `max_level` states.
    pub fn perturb_level(&self, level: u8, max_level: u8, rng: &mut impl Rng) -> u8 {
        let r: f64 = rng.random();
        if r < self.stuck_at_zero {
            return 0;
        }
        if r < self.stuck_at_zero + self.stuck_at_max {
            return max_level;
        }
        if self.write_sigma == 0.0 {
            return level;
        }
        // Irwin–Hall approximate Gaussian, matching the tensor crate's randn.
        let g: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
        let noisy = level as f64 + g * self.write_sigma;
        noisy.round().clamp(0.0, max_level as f64) as u8
    }

    /// Applies the model to a signed fixed-point code stored as
    /// `data_bits / cell_bits` magnitude segments on positive/negative
    /// cells: each segment is independently perturbed, then the code is
    /// recomposed. This is exactly what storing the value in a PipeLayer
    /// array pair does to it.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_bits` divides `data_bits`.
    pub fn perturb_code(&self, code: i32, data_bits: u8, cell_bits: u8, rng: &mut impl Rng) -> i32 {
        assert_eq!(data_bits % cell_bits, 0, "cell bits must divide data bits");
        if self.is_ideal() {
            return code;
        }
        let groups = (data_bits / cell_bits) as u32;
        let mask = (1u32 << cell_bits) - 1;
        let max_level = mask as u8;
        let magnitude = code.unsigned_abs();
        let mut out = 0u32;
        for g in 0..groups {
            let seg = ((magnitude >> (g * cell_bits as u32)) & mask) as u8;
            let noisy = self.perturb_level(seg, max_level, rng);
            out |= (noisy as u32) << (g * cell_bits as u32);
        }
        let qmax = (1i64 << (data_bits - 1)) - 1;
        let signed = (out as i64).min(qmax) as i32;
        if code < 0 {
            -signed
        } else {
            signed
        }
    }

    /// Perturbs a whole float buffer as if quantized to `data_bits` against
    /// its own max magnitude and stored on faulty cells, returning the
    /// dequantized (corrupted) values. Deterministic in `seed`: each
    /// element draws from its own `(seed, crossbar, row=index, col=0,
    /// epoch=0)` stream (see [`crate::seedstream`]), so a value's fate is
    /// independent of buffer traversal order.
    pub fn perturb_weights(
        &self,
        weights: &[f32],
        data_bits: u8,
        cell_bits: u8,
        seed: u64,
    ) -> Vec<f32> {
        if self.is_ideal() {
            return weights.to_vec();
        }
        let absmax = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if absmax == 0.0 {
            return weights.to_vec();
        }
        let qmax = ((1i64 << (data_bits - 1)) - 1) as f32;
        let scale = absmax / qmax;
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let mut rng = crate::seedstream::cell_rng(seed, i, 0, 0);
                let code = (w / scale).round().clamp(-qmax, qmax) as i32;
                self.perturb_code(code, data_bits, cell_bits, &mut rng) as f32 * scale
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ideal_model_is_identity() {
        let m = VariationModel::ideal();
        let w = vec![0.5f32, -0.25, 0.0, 1.0];
        assert_eq!(m.perturb_weights(&w, 16, 4, 1), w);
    }

    #[test]
    fn stuck_at_zero_kills_everything_at_p1() {
        let m = VariationModel {
            write_sigma: 0.0,
            stuck_at_zero: 1.0,
            stuck_at_max: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(m.perturb_level(12, 15, &mut rng), 0);
        let w = m.perturb_weights(&[0.7, -0.3], 16, 4, 3);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn small_sigma_small_error() {
        let m = VariationModel::with_sigma(0.3);
        let w: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.013).sin()).collect();
        let p = m.perturb_weights(&w, 16, 4, 7);
        let rms: f32 = w
            .iter()
            .zip(&p)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt()
            / (w.len() as f32).sqrt();
        // σ=0.3 levels on the LSB nibble of a 16-bit code is tiny in value.
        assert!(rms < 0.05, "rms error {rms} too large for σ=0.3");
    }

    #[test]
    fn larger_sigma_larger_error() {
        let w: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.017).cos()).collect();
        let err = |sigma: f64| -> f32 {
            let p = VariationModel::with_sigma(sigma).perturb_weights(&w, 16, 4, 11);
            w.iter().zip(&p).map(|(a, b)| (a - b).abs()).sum()
        };
        assert!(err(2.0) > err(0.2), "error must grow with sigma");
    }

    #[test]
    fn deterministic_in_seed() {
        let m = VariationModel::with_sigma(1.0);
        let w = vec![0.1f32, 0.9, -0.4];
        assert_eq!(
            m.perturb_weights(&w, 16, 4, 5),
            m.perturb_weights(&w, 16, 4, 5)
        );
        // Different seed, (very likely) different corruption.
        assert_ne!(
            m.perturb_weights(&w, 16, 4, 5),
            m.perturb_weights(&w, 16, 4, 6)
        );
    }

    proptest! {
        /// Perturbed codes stay in the representable range and preserve
        /// sign (pos/neg cells are physically separate).
        #[test]
        fn codes_stay_in_range(code in -32767i32..32767, sigma in 0.0f64..4.0, seed in 0u64..100) {
            let m = VariationModel::with_sigma(sigma);
            let mut rng = StdRng::seed_from_u64(seed);
            let p = m.perturb_code(code, 16, 4, &mut rng);
            prop_assert!(p.abs() <= 32767);
            if code > 0 { prop_assert!(p >= 0); }
            if code < 0 { prop_assert!(p <= 0); }
        }

        /// Zero sigma + zero fault probability never changes a code.
        #[test]
        fn ideal_code_identity(code in -32767i32..32767) {
            let mut rng = StdRng::seed_from_u64(0);
            prop_assert_eq!(VariationModel::ideal().perturb_code(code, 16, 4, &mut rng), code);
        }
    }
}
