//! The activation component of Fig. 9(c): a subtractor combining the
//! positive- and negative-array outputs, a configurable look-up table
//! realising the activation function, and a register that keeps the running
//! maximum of a sequence (max pooling).

/// LUT-based activation unit.
///
/// The LUT maps a signed fixed-point input code to an output code over a
/// configurable number of address bits; values between grid points take the
/// nearest entry. ReLU is exact under this scheme (it is monotone and
/// piecewise identity), which is why the paper "mainly focuses on ReLU".
#[derive(Debug, Clone)]
pub struct ActivationUnit {
    lut: Vec<f32>,
    lo: f32,
    hi: f32,
    max_register: f32,
}

impl ActivationUnit {
    /// Builds a unit whose LUT tabulates `f` over `[lo, hi]` with
    /// `2^addr_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `addr_bits` is 0 or exceeds 20.
    pub fn from_fn(f: impl Fn(f32) -> f32, lo: f32, hi: f32, addr_bits: u8) -> Self {
        assert!(lo < hi, "LUT range must be non-empty");
        assert!((1..=20).contains(&addr_bits), "addr_bits must be 1..=20");
        let n = 1usize << addr_bits;
        let lut = (0..n)
            .map(|i| {
                let x = lo + (hi - lo) * i as f32 / (n - 1) as f32;
                f(x)
            })
            .collect();
        ActivationUnit {
            lut,
            lo,
            hi,
            max_register: f32::NEG_INFINITY,
        }
    }

    /// A ReLU unit over `[-range, range]` (the paper's default function).
    pub fn relu(range: f32, addr_bits: u8) -> Self {
        Self::from_fn(|x| x.max(0.0), -range, range, addr_bits)
    }

    /// A sigmoid unit over `[-range, range]`.
    pub fn sigmoid(range: f32, addr_bits: u8) -> Self {
        Self::from_fn(|x| 1.0 / (1.0 + (-x).exp()), -range, range, addr_bits)
    }

    /// The subtractor: recombines positive- and negative-array outputs
    /// (`D_P − D_N`).
    pub fn subtract(&self, d_p: f32, d_n: f32) -> f32 {
        d_p - d_n
    }

    /// Applies the LUT to `x` (nearest-entry lookup, clamped to the range).
    pub fn apply(&self, x: f32) -> f32 {
        let n = self.lut.len();
        let t = ((x - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        let idx = (t * (n - 1) as f32).round() as usize;
        self.lut[idx]
    }

    /// Full datapath for one element: subtract then activate.
    pub fn process(&self, d_p: f32, d_n: f32) -> f32 {
        self.apply(self.subtract(d_p, d_n))
    }

    /// Feeds the max register (max pooling, Sec. 4.2.3) and returns the
    /// current maximum.
    pub fn track_max(&mut self, x: f32) -> f32 {
        if x > self.max_register {
            self.max_register = x;
        }
        self.max_register
    }

    /// Reads and clears the max register, returning the window maximum.
    ///
    /// # Panics
    ///
    /// Panics if nothing was tracked since the last reset.
    pub fn take_max(&mut self) -> f32 {
        assert!(
            self.max_register > f32::NEG_INFINITY,
            "max register read before any value was tracked"
        );
        let m = self.max_register;
        self.max_register = f32::NEG_INFINITY;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_lut_is_exact_on_grid() {
        let u = ActivationUnit::relu(8.0, 12);
        assert_eq!(u.apply(-3.0), 0.0);
        assert!((u.apply(3.0) - 3.0).abs() < 8.0 * 2.0 / 4096.0);
        assert_eq!(u.apply(0.0).max(0.0), u.apply(0.0));
    }

    #[test]
    fn subtract_and_process() {
        let u = ActivationUnit::relu(16.0, 12);
        assert_eq!(u.subtract(5.0, 2.0), 3.0);
        assert!((u.process(5.0, 2.0) - 3.0).abs() < 0.01);
        assert_eq!(u.process(2.0, 5.0), 0.0); // negative pre-activation
    }

    #[test]
    fn sigmoid_shape() {
        let u = ActivationUnit::sigmoid(8.0, 12);
        assert!((u.apply(0.0) - 0.5).abs() < 1e-2);
        assert!(u.apply(6.0) > 0.95);
        assert!(u.apply(-6.0) < 0.05);
    }

    #[test]
    fn max_register_tracks_window_maximum() {
        let mut u = ActivationUnit::relu(8.0, 8);
        for v in [1.0, 4.0, 2.0, 3.0] {
            u.track_max(v);
        }
        assert_eq!(u.take_max(), 4.0);
        // Register resets between windows.
        u.track_max(0.5);
        assert_eq!(u.take_max(), 0.5);
    }

    #[test]
    #[should_panic(expected = "before any value")]
    fn empty_max_register_panics() {
        ActivationUnit::relu(8.0, 8).take_max();
    }

    proptest! {
        #[test]
        fn relu_lut_error_bounded(x in -8.0f32..8.0) {
            let u = ActivationUnit::relu(8.0, 12);
            let step = 16.0 / 4095.0;
            prop_assert!((u.apply(x) - x.max(0.0)).abs() <= step);
        }

        #[test]
        fn apply_clamps_out_of_range(x in 8.0f32..100.0) {
            let u = ActivationUnit::relu(8.0, 10);
            prop_assert_eq!(u.apply(x), 8.0);
            prop_assert_eq!(u.apply(-x), 0.0);
        }
    }
}
