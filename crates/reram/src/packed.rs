//! Bit-packed spike trains and conductance bit-planes.
//!
//! The Fig. 9(a) weighted spike datapath is all-integer: slot `s` of the
//! LSBF train carries charge weight `2^s`, and a `B`-bit cell's level is
//! `Σ_p bit_p(level)·2^p`. The dot product a bit line integrates therefore
//! factors into per-(slot, plane) partial sums
//!
//! ```text
//! out[c] = Σ_r in[r]·g[r][c]
//!        = Σ_s Σ_p popcount(fires_word[s] & g_plane[p][c]) << (s + p)
//! ```
//!
//! where `fires_word[s]` packs 64 word lines per `u64` for time slot `s`
//! and `g_plane[p][c]` packs bit `p` of column `c`'s conductances the same
//! way. Every term is an exact integer, so the packed kernel is bitwise
//! identical to the scalar slot×row×col walk regardless of summation
//! order — the same argument that makes the analog path exact in the
//! first place. The win is arithmetic density: one `popcount` replaces 64
//! boolean row visits (the BitMoD bit-serial idiom).

use crate::integrate_fire::IntegrateFire;

/// A whole input vector's spike trains, packed 64 rows per `u64` word:
/// bit `r % 64` of word `r / 64` in slot `s` is set iff word line `r`
/// fires in time slot `s`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedSpikes {
    rows: usize,
    bits: u8,
    words_per_slot: usize,
    /// `[slot][word]`, slot-major.
    words: Vec<u64>,
}

impl PackedSpikes {
    /// Packs `values` into `bits` LSBF slots (same range semantics as
    /// [`crate::SpikeTrain::encode`]: `bits` clamps to `1..=32` and only
    /// the low `bits` bits of each value are injected).
    pub fn encode(values: &[u32], bits: u8) -> Self {
        let bits = bits.clamp(1, 32);
        let rows = values.len();
        let words_per_slot = rows.div_ceil(64);
        let mut words = vec![0u64; bits as usize * words_per_slot];
        for (r, &v) in values.iter().enumerate() {
            let (w, b) = (r / 64, r % 64);
            for slot in 0..bits as usize {
                if (v >> slot) & 1 == 1 {
                    words[slot * words_per_slot + w] |= 1u64 << b;
                }
            }
        }
        PackedSpikes {
            rows,
            bits,
            words_per_slot,
            words,
        }
    }

    /// Word-line count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Time slots per value (the clamped driver resolution).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The packed fire mask for time slot `slot`.
    pub fn slot_words(&self, slot: usize) -> &[u64] {
        let base = slot * self.words_per_slot;
        &self.words[base..base + self.words_per_slot]
    }

    /// Total spikes across all rows and slots (drives read energy);
    /// equals `Σ_r popcount(values[r] & low_bits_mask)`.
    pub fn spike_count(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }
}

/// Bit-plane decomposition of a crossbar's (effective) conductance
/// levels: for plane `p` and column `c`, bit `r % 64` of word `r / 64`
/// is set iff bit `p` of `level[r][c]` is set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitPlanes {
    rows: usize,
    cols: usize,
    planes: u8,
    words_per_col: usize,
    /// `[plane][col][word]`, plane-major then column-major.
    words: Vec<u64>,
}

impl BitPlanes {
    /// Packs a `rows × cols` level matrix (read through `level`) into
    /// `planes` bit-planes.
    pub fn pack(
        rows: usize,
        cols: usize,
        planes: u8,
        mut level: impl FnMut(usize, usize) -> u8,
    ) -> Self {
        let words_per_col = rows.div_ceil(64);
        let mut words = vec![0u64; planes as usize * cols * words_per_col];
        for r in 0..rows {
            let (w, b) = (r / 64, r % 64);
            for c in 0..cols {
                let lvl = level(r, c);
                for p in 0..planes as usize {
                    if (lvl >> p) & 1 == 1 {
                        words[(p * cols + c) * words_per_col + w] |= 1u64 << b;
                    }
                }
            }
        }
        BitPlanes {
            rows,
            cols,
            planes,
            words_per_col,
            words,
        }
    }

    /// Word-line count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit-line count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conductance resolution in bit-planes.
    pub fn planes(&self) -> u8 {
        self.planes
    }

    /// The packed row mask of plane `plane`, column `col`.
    pub fn col_words(&self, plane: usize, col: usize) -> &[u64] {
        let base = (plane * self.cols + col) * self.words_per_col;
        &self.words[base..base + self.words_per_col]
    }
}

/// Streams every (slot, plane) partial sum of the packed MVM into the
/// per-column integrate-and-fire units: `popcount(fires & g) << (slot +
/// plane)` LSB-charge units each, exactly what the scalar path deposits.
///
/// # Panics
///
/// Panics if the geometries disagree.
pub fn integrate(spikes: &PackedSpikes, planes: &BitPlanes, fires: &mut [IntegrateFire]) {
    assert_eq!(spikes.rows(), planes.rows(), "row-count mismatch");
    assert_eq!(fires.len(), planes.cols(), "column-count mismatch");
    for slot in 0..spikes.bits() as usize {
        let sw = spikes.slot_words(slot);
        for plane in 0..planes.planes() as usize {
            let shift = slot + plane;
            for (c, inf) in fires.iter_mut().enumerate() {
                let gw = planes.col_words(plane, c);
                let mut pops = 0u64;
                for (&a, &b) in sw.iter().zip(gw) {
                    pops += (a & b).count_ones() as u64;
                }
                if pops != 0 {
                    inf.integrate(pops << shift);
                }
            }
        }
    }
}

/// Convenience wrapper over [`integrate`]: the exact integer products
/// `out[c] = Σ_r in[r]·level[r][c]`.
pub fn mvm(spikes: &PackedSpikes, planes: &BitPlanes) -> Vec<u64> {
    let mut fires = vec![IntegrateFire::new(); planes.cols()];
    integrate(spikes, planes, &mut fires);
    fires.iter_mut().map(|f| f.fire()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_mvm(levels: &[Vec<u8>], input: &[u32], bits: u8) -> Vec<u64> {
        let bits = bits.clamp(1, 32);
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let cols = levels[0].len();
        (0..cols)
            .map(|c| {
                levels
                    .iter()
                    .zip(input)
                    .map(|(row, &x)| row[c] as u64 * (x & mask) as u64)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn packed_spikes_match_scalar_trains() {
        use crate::spike::SpikeDriver;
        let values = [0u32, 0b1011, 65535, 7, 1 << 15];
        let packed = PackedSpikes::encode(&values, 16);
        let trains = SpikeDriver::new(16).encode_vector(&values);
        for slot in 0..16 {
            for (r, t) in trains.iter().enumerate() {
                let bit = (packed.slot_words(slot)[r / 64] >> (r % 64)) & 1 == 1;
                assert_eq!(bit, t.fires(slot), "slot {slot} row {r}");
            }
        }
        let scalar_count: u64 = trains.iter().map(|t| t.spike_count() as u64).sum();
        assert_eq!(packed.spike_count(), scalar_count);
    }

    #[test]
    fn mvm_known_values() {
        let levels = [[1u8, 2], [3, 4], [5, 6]];
        let spikes = PackedSpikes::encode(&[7, 8, 9], 8);
        let planes = BitPlanes::pack(3, 2, 4, |r, c| levels[r][c]);
        assert_eq!(mvm(&spikes, &planes), vec![7 + 24 + 45, 14 + 32 + 54]);
    }

    #[test]
    fn word_boundary_rows_are_exact() {
        // 64/65/128 rows cross the packing word boundaries.
        for rows in [63usize, 64, 65, 128, 129] {
            let levels: Vec<Vec<u8>> = (0..rows).map(|r| vec![(r % 16) as u8]).collect();
            let input: Vec<u32> = (0..rows as u32).map(|r| r * 3 + 1).collect();
            let spikes = PackedSpikes::encode(&input, 12);
            let planes = BitPlanes::pack(rows, 1, 4, |r, c| levels[r][c]);
            assert_eq!(mvm(&spikes, &planes), reference_mvm(&levels, &input, 12));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The packed kernel computes the exact integer MVM for every
        /// driver resolution, including clamped (> 32) ones.
        #[test]
        fn packed_mvm_is_exact(
            rows in 1usize..80,
            cols in 1usize..6,
            bits in 1u8..=40,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..65536)).collect();
            let spikes = PackedSpikes::encode(&input, bits);
            let planes = BitPlanes::pack(rows, cols, 4, |r, c| levels[r][c]);
            prop_assert_eq!(mvm(&spikes, &planes), reference_mvm(&levels, &input, bits));
        }
    }
}
