//! Time-dependent device degradation: retention drift and read disturb.
//!
//! PipeLayer's headline workload is long pipelined training runs, during
//! which ReRAM cells degrade *in operation* rather than only at program
//! time (the PR 1 fault model). Two mechanisms are modeled, both advanced
//! in **logical pipeline cycles** (one processed image = one cycle, the
//! same clock `PipelineSim` ticks):
//!
//! * **Conductance drift** — after a retention knee `t0`, a cell's
//!   conductance decays as `G(t) = G0 · (t/t0)^-ν` (the standard
//!   power-law retention model, cf. PANTHER and the eNVM noise-resilience
//!   literature). In level space this pulls the stored level toward 0
//!   until the read quantizer snaps to a *lower* level — a misread. The
//!   per-cell exponent ν is drawn once per programming generation from
//!   `N(ν, ν_σ²)` (clamped at 0) via the documented
//!   [`seedstream`](crate::seedstream) scheme, so slow and fast cells are
//!   stable, reproducible identities.
//! * **Read disturb** — every spike slot that drives a word line nudges
//!   that row's cells toward SET (upward). After `disturb_per_level`
//!   accumulated slot-reads a cell reads one level *high*, two levels
//!   after twice that, etc., clamped at full scale.
//!
//! Both effects are applied through the same effective-level path as
//! stuck-at faults and programming variation, so `mvm_spiked` sees
//! degraded weights with no special casing. Reprogramming a cell (any
//! write that actually issues pulses, including a scrub pass) restores it:
//! its age and disturb counters reset and its ν is redrawn for the new
//! generation. A write whose quantized target equals the current stored
//! level issues zero pulses and therefore does **not** reset the clock —
//! stable weights keep aging, which is exactly why periodic scrub matters
//! even while training continuously rewrites the arrays.
//!
//! Everything here is closed-form in `(now, programmed_at, row_reads)` —
//! no RNG is consumed at read time — so reads are pure and campaigns are
//! deterministic at any thread count.

use crate::seedstream;

/// Parameters of the degradation model. The default ([`ideal`]) is a
/// mathematically exact no-op so calibrated paper numbers are unchanged.
///
/// [`ideal`]: DriftModel::ideal
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftModel {
    /// Median power-law drift exponent ν (0 disables retention drift).
    pub nu: f64,
    /// Cell-to-cell standard deviation of ν (clamped at ν ≥ 0 per cell).
    pub nu_sigma: f64,
    /// Retention knee in logical cycles: drift begins once a cell's age
    /// exceeds `t0_cycles`. Must be ≥ 1 for the power law to be defined.
    pub t0_cycles: u64,
    /// Spike-slot reads on a word line that raise its cells one level
    /// (0 disables read disturb).
    pub disturb_per_level: u64,
}

impl DriftModel {
    /// No degradation at all: ν = 0 and disturb off.
    pub fn ideal() -> Self {
        DriftModel {
            nu: 0.0,
            nu_sigma: 0.0,
            t0_cycles: 1,
            disturb_per_level: 0,
        }
    }

    /// True when the model can never alter a read.
    pub fn is_ideal(&self) -> bool {
        (self.nu <= 0.0 && self.nu_sigma <= 0.0) && self.disturb_per_level == 0
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        DriftModel::ideal()
    }
}

/// Per-crossbar degradation state: a logical clock plus, per cell, the
/// cycle it was last physically programmed, its programming generation,
/// and its generation-specific drift exponent. Read disturb is tracked
/// per word line as a monotone counter with a per-cell mark taken at
/// program time, so an MVM costs O(rows) bookkeeping, not O(rows·cols).
#[derive(Debug, Clone)]
pub struct DriftState {
    model: DriftModel,
    seed: u64,
    cols: usize,
    now: u64,
    programmed_at: Vec<u64>,
    generation: Vec<u64>,
    nu_cell: Vec<f64>,
    row_reads: Vec<u64>,
    read_mark: Vec<u64>,
}

impl DriftState {
    /// Fresh state: every cell counts as programmed at cycle 0 with
    /// generation 0. `seed` should already be crossbar-qualified via
    /// [`seedstream::crossbar_seed`].
    pub fn new(rows: usize, cols: usize, model: DriftModel, seed: u64) -> Self {
        let n = rows * cols;
        let mut nu_cell = vec![0.0; n];
        for row in 0..rows {
            for col in 0..cols {
                nu_cell[row * cols + col] = cell_nu(&model, seed, row, col, 0);
            }
        }
        DriftState {
            model,
            seed,
            cols,
            now: 0,
            programmed_at: vec![0; n],
            generation: vec![0; n],
            nu_cell,
            row_reads: vec![0; rows],
            read_mark: vec![0; n],
        }
    }

    pub fn model(&self) -> &DriftModel {
        &self.model
    }

    /// Current logical cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance the logical clock (one processed image = one cycle).
    pub fn advance(&mut self, cycles: u64) {
        self.now = self.now.saturating_add(cycles);
    }

    /// Record `slots` spike-slot accesses on word line `row`.
    pub fn note_row_reads(&mut self, row: usize, slots: u64) {
        if let Some(r) = self.row_reads.get_mut(row) {
            *r = r.saturating_add(slots);
        }
    }

    /// Record that the cell was physically re-programmed *now*: its age
    /// and disturb restart and its drift exponent is redrawn for the new
    /// generation. Call only when a write actually issued pulses.
    pub fn note_program(&mut self, row: usize, col: usize) {
        let idx = row * self.cols + col;
        if idx >= self.programmed_at.len() {
            return;
        }
        self.programmed_at[idx] = self.now;
        self.read_mark[idx] = self.row_reads[row];
        self.generation[idx] = self.generation[idx].wrapping_add(1);
        self.nu_cell[idx] = cell_nu(&self.model, self.seed, row, col, self.generation[idx]);
    }

    /// The level a read sees *now* for a cell whose stored (programmed)
    /// level is `stored`. Pure in the current state — no RNG.
    pub fn effective_level(&self, row: usize, col: usize, stored: u8, max_level: u8) -> u8 {
        let idx = row * self.cols + col;
        if idx >= self.programmed_at.len() {
            return stored;
        }
        let mut lv = i64::from(stored);
        let nu = self.nu_cell[idx];
        let age = self.now.saturating_sub(self.programmed_at[idx]);
        if nu > 0.0 && age > self.model.t0_cycles && stored > 0 {
            let t0 = self.model.t0_cycles.max(1) as f64;
            let factor = (age as f64 / t0).powf(-nu);
            lv = (f64::from(stored) * factor).round() as i64;
        }
        let seen = self.row_reads[row].saturating_sub(self.read_mark[idx]);
        if let Some(bumps) = seen.checked_div(self.model.disturb_per_level) {
            lv = lv.saturating_add(i64::try_from(bumps).unwrap_or(i64::MAX));
        }
        let lv = lv.clamp(0, i64::from(max_level));
        u8::try_from(lv).unwrap_or(max_level)
    }

    /// True when the cell currently reads at a different level than it
    /// was programmed to.
    pub fn is_degraded(&self, row: usize, col: usize, stored: u8, max_level: u8) -> bool {
        self.effective_level(row, col, stored, max_level) != stored
    }
}

/// Per-generation drift exponent for one cell, drawn from the documented
/// `(seed, crossbar, row, col, epoch)` stream with epoch = generation.
fn cell_nu(model: &DriftModel, seed: u64, row: usize, col: usize, generation: u64) -> f64 {
    if model.nu <= 0.0 && model.nu_sigma <= 0.0 {
        return 0.0;
    }
    if model.nu_sigma <= 0.0 {
        return model.nu.max(0.0);
    }
    let g = seedstream::cell_gauss(seed, row, col, generation);
    (model.nu + model.nu_sigma * g).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DriftModel {
        DriftModel {
            nu: 0.1,
            nu_sigma: 0.0,
            t0_cycles: 10,
            disturb_per_level: 100,
        }
    }

    #[test]
    fn ideal_model_never_alters_reads() {
        let mut s = DriftState::new(4, 4, DriftModel::ideal(), 1);
        s.advance(1_000_000);
        s.note_row_reads(2, 1_000_000);
        for stored in 0..=15u8 {
            assert_eq!(s.effective_level(2, 3, stored, 15), stored);
        }
    }

    #[test]
    fn fresh_state_reads_exactly() {
        let s = DriftState::new(4, 4, model(), 7);
        for stored in 0..=15u8 {
            assert_eq!(s.effective_level(1, 1, stored, 15), stored);
        }
    }

    #[test]
    fn drift_pulls_levels_down_monotonically() {
        let mut s = DriftState::new(2, 2, model(), 7);
        let mut prev = 15u8;
        for _ in 0..40 {
            s.advance(250);
            let lv = s.effective_level(0, 0, 15, 15);
            assert!(lv <= prev, "drift must be monotone non-increasing");
            prev = lv;
        }
        assert!(prev < 15, "after 10k cycles a t0=10 ν=0.1 cell has misread");
    }

    #[test]
    fn no_drift_before_knee() {
        let mut s = DriftState::new(2, 2, model(), 7);
        s.advance(10);
        assert_eq!(s.effective_level(0, 0, 15, 15), 15);
    }

    #[test]
    fn disturb_pushes_levels_up() {
        let mut s = DriftState::new(2, 2, model(), 7);
        s.note_row_reads(0, 250);
        assert_eq!(s.effective_level(0, 0, 3, 15), 5, "250/100 = 2 levels up");
        assert_eq!(s.effective_level(1, 0, 3, 15), 3, "other rows untouched");
        s.note_row_reads(0, 10_000);
        assert_eq!(s.effective_level(0, 0, 3, 15), 15, "clamped at full scale");
    }

    #[test]
    fn reprogram_resets_age_and_disturb() {
        let mut s = DriftState::new(2, 2, model(), 7);
        s.advance(100_000);
        s.note_row_reads(0, 100_000);
        assert!(s.is_degraded(0, 0, 12, 15));
        s.note_program(0, 0);
        assert_eq!(s.effective_level(0, 0, 12, 15), 12);
        assert!(!s.is_degraded(0, 0, 12, 15));
    }

    #[test]
    fn generation_redraws_nu() {
        let spread = DriftModel {
            nu_sigma: 0.05,
            ..model()
        };
        let mut s = DriftState::new(2, 2, spread, 7);
        let nu0 = s.nu_cell[0];
        s.note_program(0, 0);
        let nu1 = s.nu_cell[0];
        assert_ne!(nu0, nu1, "new generation, new exponent");
        // And the draw is pinned by the seed scheme: rebuilding from the
        // same seed reproduces it.
        let s2 = DriftState::new(2, 2, spread, 7);
        assert_eq!(nu0, s2.nu_cell[0]);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = DriftState::new(3, 3, model(), 42);
        let mut b = DriftState::new(3, 3, model(), 42);
        for s in [&mut a, &mut b] {
            s.advance(5000);
            s.note_row_reads(1, 777);
        }
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(
                    a.effective_level(r, c, 9, 15),
                    b.effective_level(r, c, 9, 15)
                );
            }
        }
    }
}
