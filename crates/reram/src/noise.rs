//! Analog read-path non-idealities: lognormal conductance spread,
//! wire-resistance IR drop and stochastic read noise.
//!
//! PipeLayer Sec. 5.1 leans on neural networks' "inherent error tolerance"
//! to justify 4-bit cells, but the classic analog killers live on the
//! *read* path, not the write path the earlier fault/variation models
//! cover:
//!
//! * **Lognormal device spread** — metal-oxide ReRAM resistance states are
//!   lognormally distributed around their target, with the
//!   high-resistance state spreading wider than the low-resistance one
//!   (the pytorx/HyperMetric calibration; HRS σ ≈ 2–3 × LRS σ). Each cell
//!   draws one standard-normal deviate per *programming generation* from
//!   the documented [`seedstream`](crate::seedstream) scheme, so a read is
//!   a pure function of `(seed, crossbar, row, col, epoch)` — the same
//!   discipline as [`drift`](crate::drift).
//! * **IR drop** — word/bit-line wire resistance attenuates the current a
//!   cell contributes in proportion to its electrical distance from the
//!   driver and the sense amplifier. Modeled as a cheap closed-form
//!   per-position attenuation (monotone in distance), not a SPICE solve:
//!   the far corner of a 128×128 array sees the full `ir_drop` fraction.
//! * **Read noise** — thermal/shot noise adds a fresh Gaussian perturbation
//!   on every array read. The "fresh" draw is still deterministic: its
//!   stream epoch is a per-crossbar monotone MVM counter, so campaigns
//!   replay bitwise at any thread count.
//!
//! All three act in the *conductance* domain — levels map to relative
//! conductances `g = g_ratio + (1-g_ratio)·v/v_max` (an `1/g_ratio` on/off
//! window), get perturbed, and snap back through the read quantizer. The
//! [`ideal`](NoiseModel::ideal) model is a mathematically exact no-op so
//! every calibrated paper figure is bit-identical with noise off.

use crate::seedstream;

/// Stream-domain tags separating the per-generation device draw from the
/// per-read noise draw (both hang off the same crossbar-qualified seed).
const DEVICE_DOMAIN: u64 = 0x0de1;
const READ_DOMAIN: u64 = 0x4ead;

/// Parameters of the analog non-ideality model. The default
/// ([`ideal`](NoiseModel::ideal)) is an exact no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Lognormal σ of the low-resistance (full-conductance) state, in
    /// ln-conductance units. 0 disables device spread at full scale.
    pub lrs_sigma: f64,
    /// Lognormal σ of the high-resistance (level-0) state. Physically
    /// larger than `lrs_sigma`; intermediate levels interpolate.
    pub hrs_sigma: f64,
    /// Fractional conductance lost by the electrically farthest cell of
    /// the array to wire resistance (0 disables IR drop; 0.15 means the
    /// far corner contributes 15% less current than an ideal wire).
    pub ir_drop: f64,
    /// Per-read Gaussian noise σ as a fraction of the full-scale
    /// conductance (0 disables read noise).
    pub read_sigma: f64,
    /// Off/on conductance ratio `g_min/g_max` of the cell (0 models an
    /// infinite on/off window). On its own this is a pure re-labelling of
    /// the level axis and therefore also an exact no-op.
    pub g_ratio: f64,
}

impl NoiseModel {
    /// No non-ideality at all: every read returns the stored level.
    pub fn ideal() -> Self {
        NoiseModel {
            lrs_sigma: 0.0,
            hrs_sigma: 0.0,
            ir_drop: 0.0,
            read_sigma: 0.0,
            g_ratio: 0.0,
        }
    }

    /// The canonical one-knob sweep point used by the noise ablation:
    /// `strength` scales a calibrated non-ideality set (lognormal spread
    /// with HRS ≈ 2.5 × LRS, IR drop and read noise) together.
    /// `with_strength(0.0)` is [`ideal`](Self::ideal).
    pub fn with_strength(strength: f64) -> Self {
        debug_assert!(
            strength >= 0.0 && strength.is_finite(),
            "invalid strength {strength}"
        );
        if strength <= 0.0 {
            return Self::ideal();
        }
        NoiseModel {
            lrs_sigma: 0.04 * strength,
            hrs_sigma: 0.10 * strength,
            ir_drop: 0.10 * strength,
            read_sigma: 0.004 * strength,
            g_ratio: 0.02,
        }
    }

    /// True when the model can never alter a read.
    pub fn is_ideal(&self) -> bool {
        self.lrs_sigma <= 0.0
            && self.hrs_sigma <= 0.0
            && self.ir_drop <= 0.0
            && self.read_sigma <= 0.0
    }

    /// Relative conductance of a stored level: `g_ratio` at level 0,
    /// 1.0 at full scale, linear in between.
    fn conductance(&self, level: u8, max_level: u8) -> f64 {
        let frac = if max_level == 0 {
            0.0
        } else {
            f64::from(level) / f64::from(max_level)
        };
        self.g_ratio + (1.0 - self.g_ratio) * frac
    }

    /// Inverse of [`conductance`](Self::conductance): snaps a perturbed
    /// conductance back to the nearest representable level.
    fn quantize(&self, g: f64, max_level: u8) -> u8 {
        let window = 1.0 - self.g_ratio;
        let frac = if window > 0.0 {
            (g - self.g_ratio) / window
        } else {
            0.0
        };
        let lv = (frac * f64::from(max_level)).round();
        if lv.is_nan() {
            return 0;
        }
        lv.clamp(0.0, f64::from(max_level)) as u8
    }

    /// Lognormal σ for a stored level: `hrs_sigma` at level 0 narrowing to
    /// `lrs_sigma` at full scale (HRS spreads wider than LRS).
    fn device_sigma(&self, level: u8, max_level: u8) -> f64 {
        let frac = if max_level == 0 {
            0.0
        } else {
            f64::from(level) / f64::from(max_level)
        };
        self.hrs_sigma + (self.lrs_sigma - self.hrs_sigma) * frac
    }

    /// Wire-resistance attenuation of cell `(row, col)` in a
    /// `rows × cols` array: 1.0 next to the driver and sense amp, falling
    /// linearly (in conductance) to `1 - ir_drop` at the far corner.
    /// Monotone non-increasing in each coordinate.
    pub fn ir_attenuation(&self, row: usize, col: usize, rows: usize, cols: usize) -> f64 {
        if self.ir_drop <= 0.0 {
            return 1.0;
        }
        // Electrical distance: along the word line to the cell (col), then
        // down the bit line to the sense amp (row), each normalised to its
        // wire length and averaged so the far corner sits at distance 1.
        let row_frac = if rows > 1 {
            row as f64 / (rows - 1) as f64
        } else {
            0.0
        };
        let col_frac = if cols > 1 {
            col as f64 / (cols - 1) as f64
        } else {
            0.0
        };
        let distance = 0.5 * (row_frac + col_frac);
        1.0 - self.ir_drop * distance
    }

    /// The level a read sees for a cell storing `level`, with the device
    /// deviate drawn at `device_epoch` (programming generation) and the
    /// read-noise deviate at `read_epoch` (array-read counter). Pure in
    /// its arguments — the reproducibility contract of the whole model.
    #[allow(clippy::too_many_arguments)]
    pub fn perturb_level(
        &self,
        level: u8,
        max_level: u8,
        row: usize,
        col: usize,
        rows: usize,
        cols: usize,
        seed: u64,
        device_epoch: u64,
        read_epoch: u64,
    ) -> u8 {
        if self.is_ideal() {
            return level;
        }
        let mut g = self.conductance(level, max_level);
        let sigma = self.device_sigma(level, max_level);
        if sigma > 0.0 {
            let z = seedstream::cell_gauss(
                seedstream::crossbar_seed(seed, DEVICE_DOMAIN),
                row,
                col,
                device_epoch,
            );
            g *= (sigma * z).exp();
        }
        g *= self.ir_attenuation(row, col, rows, cols);
        if self.read_sigma > 0.0 {
            let z = seedstream::cell_gauss(
                seedstream::crossbar_seed(seed, READ_DOMAIN),
                row,
                col,
                read_epoch,
            );
            g += self.read_sigma * z;
        }
        self.quantize(g, max_level)
    }

    /// Perturbs a whole float buffer as if quantized to `data_bits` words
    /// of `cell_bits` cells and read back once through the analog path:
    /// each element lands at a virtual position of a 128×128 tile, its
    /// magnitude segments live on per-group positive/negative crossbars
    /// (matching [`ReramMatrix`](crate::ReramMatrix)'s layout), and every
    /// segment level goes through [`perturb_level`](Self::perturb_level).
    /// Deterministic in `(seed, read_epoch)`; element fate is independent
    /// of buffer traversal order.
    pub fn perturb_weights(
        &self,
        weights: &[f32],
        data_bits: u8,
        cell_bits: u8,
        seed: u64,
        read_epoch: u64,
    ) -> Vec<f32> {
        if self.is_ideal() {
            return weights.to_vec();
        }
        debug_assert_eq!(data_bits % cell_bits, 0, "cell bits must divide data bits");
        let absmax = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        if absmax == 0.0 {
            return weights.to_vec();
        }
        let qmax = ((1i64 << (data_bits - 1)) - 1) as f64;
        let scale = absmax as f64 / qmax;
        let groups = u32::from(data_bits / cell_bits);
        let mask = (1u32 << cell_bits) - 1;
        let max_level = mask as u8;
        weights
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                let (row, col) = virtual_cell(i);
                let q = (f64::from(w) / scale).round().clamp(-qmax, qmax) as i64;
                let neg = u64::from(q < 0);
                let magnitude = q.unsigned_abs();
                let mut out = 0u64;
                for g in 0..groups {
                    let shift = g * u32::from(cell_bits);
                    let seg = ((magnitude >> shift) & u64::from(mask)) as u8;
                    let xbar_seed = seedstream::crossbar_seed(seed, 2 * u64::from(g) + neg);
                    let noisy = self.perturb_level(
                        seg,
                        max_level,
                        row,
                        col,
                        VIRTUAL_ARRAY_DIM,
                        VIRTUAL_ARRAY_DIM,
                        xbar_seed,
                        0,
                        read_epoch,
                    );
                    out |= u64::from(noisy) << shift;
                }
                let signed = (out as i64).min(qmax as i64);
                let v = signed as f64 * scale;
                (if q < 0 { -v } else { v }) as f32
            })
            .collect()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::ideal()
    }
}

/// The paper's physical array dimension — the tile geometry
/// [`NoiseModel::perturb_weights`] maps flat buffers onto.
pub const VIRTUAL_ARRAY_DIM: usize = 128;

/// Virtual `(row, col)` of flat element `i` on a 128×128 tile.
fn virtual_cell(i: usize) -> (usize, usize) {
    (
        (i / VIRTUAL_ARRAY_DIM) % VIRTUAL_ARRAY_DIM,
        i % VIRTUAL_ARRAY_DIM,
    )
}

/// Per-crossbar non-ideality state: the model, the crossbar-qualified
/// seed, each cell's programming generation (the device-deviate epoch) and
/// the monotone array-read counter (the read-noise epoch). Mirrors
/// [`DriftState`](crate::drift::DriftState): no RNG object is carried —
/// every draw re-derives from the seedstream, so clones and replays are
/// bitwise exact.
#[derive(Debug, Clone)]
pub struct NoiseState {
    model: NoiseModel,
    seed: u64,
    rows: usize,
    cols: usize,
    generation: Vec<u64>,
    reads: u64,
}

impl NoiseState {
    /// Fresh state: every cell at programming generation 0, read counter
    /// at 0. `seed` should already be crossbar-qualified via
    /// [`seedstream::crossbar_seed`].
    pub fn new(rows: usize, cols: usize, model: NoiseModel, seed: u64) -> Self {
        NoiseState {
            model,
            seed,
            rows,
            cols,
            generation: vec![0; rows * cols],
            reads: 0,
        }
    }

    pub fn model(&self) -> &NoiseModel {
        &self.model
    }

    /// Array reads (MVMs) performed so far — the read-noise epoch.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Record one array read: subsequent read-noise draws come from the
    /// next epoch.
    pub fn note_mvm(&mut self) {
        self.reads = self.reads.wrapping_add(1);
    }

    /// Record that the cell was physically re-programmed: its device
    /// deviate is redrawn for the new generation. Call only when a write
    /// actually issued pulses.
    pub fn note_program(&mut self, row: usize, col: usize) {
        if let Some(g) = self.generation.get_mut(row * self.cols + col) {
            *g = g.wrapping_add(1);
        }
    }

    /// The level a read sees *now* for a cell whose (fault/drift-resolved)
    /// base level is `stored`. Pure in the current state.
    pub fn effective_level(&self, row: usize, col: usize, stored: u8, max_level: u8) -> u8 {
        if self.model.is_ideal() {
            return stored;
        }
        let generation = self
            .generation
            .get(row * self.cols + col)
            .copied()
            .unwrap_or(0);
        self.model.perturb_level(
            stored, max_level, row, col, self.rows, self.cols, self.seed, generation, self.reads,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mid_model() -> NoiseModel {
        NoiseModel::with_strength(1.0)
    }

    #[test]
    fn ideal_model_never_alters_reads() {
        let mut s = NoiseState::new(8, 8, NoiseModel::ideal(), 7);
        s.note_mvm();
        s.note_program(3, 3);
        for stored in 0..=15u8 {
            assert_eq!(s.effective_level(3, 3, stored, 15), stored);
        }
    }

    #[test]
    fn g_ratio_alone_is_exact_noop() {
        let m = NoiseModel {
            g_ratio: 0.1,
            ..NoiseModel::ideal()
        };
        assert!(m.is_ideal());
        let s = NoiseState::new(4, 4, m, 3);
        for stored in 0..=15u8 {
            assert_eq!(s.effective_level(2, 2, stored, 15), stored);
        }
    }

    #[test]
    fn reads_are_deterministic_in_state() {
        let a = NoiseState::new(6, 6, mid_model(), 42);
        let b = NoiseState::new(6, 6, mid_model(), 42);
        for r in 0..6 {
            for c in 0..6 {
                assert_eq!(
                    a.effective_level(r, c, 9, 15),
                    b.effective_level(r, c, 9, 15)
                );
            }
        }
    }

    #[test]
    fn read_epoch_changes_the_draw() {
        // With read noise on, consecutive MVMs see different perturbations
        // for at least some cell; replaying the same epoch reproduces them.
        let mut s = NoiseState::new(8, 8, mid_model(), 11);
        let before: Vec<u8> = (0..64)
            .map(|i| s.effective_level(i / 8, i % 8, 8, 15))
            .collect();
        let again: Vec<u8> = (0..64)
            .map(|i| s.effective_level(i / 8, i % 8, 8, 15))
            .collect();
        assert_eq!(before, again, "same epoch must replay bitwise");
        s.note_mvm();
        let after: Vec<u8> = (0..64)
            .map(|i| s.effective_level(i / 8, i % 8, 8, 15))
            .collect();
        assert_ne!(before, after, "a new read epoch must redraw read noise");
    }

    #[test]
    fn reprogramming_redraws_the_device_deviate() {
        let m = NoiseModel {
            lrs_sigma: 0.3,
            hrs_sigma: 0.3,
            ..NoiseModel::ideal()
        };
        let mut s = NoiseState::new(4, 4, m, 5);
        // Find a cell whose draw moves on reprogram (overwhelmingly likely
        // within 16 cells at σ=0.3).
        let mut moved = false;
        for idx in 0..16 {
            let (r, c) = (idx / 4, idx % 4);
            let before = s.effective_level(r, c, 8, 15);
            s.note_program(r, c);
            if s.effective_level(r, c, 8, 15) != before {
                moved = true;
                break;
            }
        }
        assert!(moved, "a new generation must redraw some deviate");
    }

    #[test]
    fn hrs_spreads_wider_than_lrs() {
        let m = mid_model();
        assert!(m.device_sigma(0, 15) > m.device_sigma(15, 15));
    }

    #[test]
    fn ir_attenuation_is_monotone_in_distance() {
        let m = NoiseModel {
            ir_drop: 0.2,
            ..NoiseModel::ideal()
        };
        let (rows, cols) = (128, 128);
        for r in 0..rows {
            for c in 1..cols {
                assert!(
                    m.ir_attenuation(r, c, rows, cols) <= m.ir_attenuation(r, c - 1, rows, cols),
                    "attenuation must not grow along the word line"
                );
            }
        }
        for c in 0..cols {
            for r in 1..rows {
                assert!(
                    m.ir_attenuation(r, c, rows, cols) <= m.ir_attenuation(r - 1, c, rows, cols),
                    "attenuation must not grow along the bit line"
                );
            }
        }
        assert_eq!(m.ir_attenuation(0, 0, rows, cols), 1.0);
        let far = m.ir_attenuation(rows - 1, cols - 1, rows, cols);
        assert!((far - 0.8).abs() < 1e-12, "far corner sees the full drop");
    }

    #[test]
    fn ir_drop_pulls_far_levels_down() {
        let m = NoiseModel {
            ir_drop: 0.3,
            ..NoiseModel::ideal()
        };
        let s = NoiseState::new(128, 128, m, 1);
        assert_eq!(s.effective_level(0, 0, 15, 15), 15, "near corner exact");
        assert!(
            s.effective_level(127, 127, 15, 15) < 15,
            "far corner attenuated"
        );
    }

    #[test]
    fn perturb_weights_ideal_is_identity() {
        let w = vec![0.5f32, -0.25, 0.0, 1.0];
        assert_eq!(NoiseModel::ideal().perturb_weights(&w, 16, 4, 1, 0), w);
    }

    #[test]
    fn perturb_weights_deterministic_and_epoch_sensitive() {
        let m = mid_model();
        let w: Vec<f32> = (0..300).map(|i| ((i as f32) * 0.017).sin()).collect();
        assert_eq!(
            m.perturb_weights(&w, 16, 4, 5, 3),
            m.perturb_weights(&w, 16, 4, 5, 3)
        );
        assert_ne!(
            m.perturb_weights(&w, 16, 4, 5, 3),
            m.perturb_weights(&w, 16, 4, 5, 4),
            "read epoch must matter"
        );
        assert_ne!(
            m.perturb_weights(&w, 16, 4, 5, 3),
            m.perturb_weights(&w, 16, 4, 6, 3),
            "seed must matter"
        );
    }

    #[test]
    fn stronger_noise_larger_error() {
        let w: Vec<f32> = (0..500).map(|i| ((i as f32) * 0.013).cos()).collect();
        let err = |s: f64| -> f32 {
            let p = NoiseModel::with_strength(s).perturb_weights(&w, 16, 4, 9, 0);
            w.iter().zip(&p).map(|(a, b)| (a - b).abs()).sum()
        };
        assert!(err(2.0) > err(0.25), "error must grow with strength");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Sign preservation and range: the positive/negative crossbars are
        /// physically separate, so noise never flips a weight's sign, and
        /// perturbed magnitudes stay representable.
        #[test]
        fn perturbed_weights_preserve_sign(seed in 0u64..200, strength in 0.0f64..3.0) {
            let m = NoiseModel::with_strength(strength);
            let w = [0.9f32, -0.9, 0.1, -0.1, 0.0];
            let p = m.perturb_weights(&w, 16, 4, seed, 0);
            for (a, b) in w.iter().zip(&p) {
                prop_assert!(b.abs() <= 1.0 + 1e-6);
                if *a > 0.0 { prop_assert!(*b >= 0.0); }
                if *a < 0.0 { prop_assert!(*b <= 0.0); }
            }
        }

        /// The quantizer clamps every perturbed level into range.
        #[test]
        fn perturbed_levels_stay_in_range(
            level in 0u8..=15,
            seed in 0u64..200,
            strength in 0.0f64..4.0,
            epoch in 0u64..8,
        ) {
            let m = NoiseModel::with_strength(strength);
            let lv = m.perturb_level(level, 15, 3, 7, 128, 128, seed, 0, epoch);
            prop_assert!(lv <= 15);
        }
    }
}
