//! Matrix partitioning onto fixed-size crossbar tiles — the balanced scheme
//! of Fig. 5: a `512×256` kernel matrix decomposes into a `4×2` grid of
//! `128×128` arrays; results are *collected horizontally* (tiles in the same
//! row group of output columns concatenate) and *summed vertically* (tiles
//! covering different input slices of the same outputs add).

use crate::crossbar::Crossbar;

/// Tile grid dimensions for a `rows × cols` matrix on `size × size` arrays.
///
/// Returns `(row_tiles, col_tiles)` = `(⌈rows/size⌉, ⌈cols/size⌉)`.
///
/// # Panics
///
/// Panics if any argument is zero.
pub fn tile_grid(rows: usize, cols: usize, size: usize) -> (usize, usize) {
    assert!(
        rows > 0 && cols > 0 && size > 0,
        "tile_grid arguments must be non-zero"
    );
    (rows.div_ceil(size), cols.div_ceil(size))
}

/// A large integer matrix realised as a grid of fixed-size crossbars.
///
/// This type exists to *prove* the partitioning is correct: property tests
/// check that the tiled MVM equals the monolithic one. The performance model
/// only needs the tile counts ([`tile_grid`]).
#[derive(Debug, Clone)]
pub struct PartitionedMatrix {
    rows: usize,
    cols: usize,
    size: usize,
    /// `tiles[rt][ct]` covers input slice `rt·size..` and output slice
    /// `ct·size..`.
    tiles: Vec<Vec<Crossbar>>,
}

impl PartitionedMatrix {
    /// Partitions a row-major `rows × cols` level matrix (input-major:
    /// `levels[input][output]`) onto `size × size` crossbars of `bits`-bit
    /// cells.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or zero sizes.
    pub fn program(levels: &[Vec<u8>], size: usize, bits: u8) -> Self {
        assert!(!levels.is_empty(), "empty level matrix");
        let rows = levels.len();
        let cols = levels[0].len();
        assert!(
            levels.iter().all(|r| r.len() == cols),
            "ragged level matrix"
        );
        let (rt, ct) = tile_grid(rows, cols, size);
        let mut tiles = Vec::with_capacity(rt);
        for tr in 0..rt {
            let mut row_tiles = Vec::with_capacity(ct);
            let r0 = tr * size;
            let r1 = (r0 + size).min(rows);
            for tc in 0..ct {
                let c0 = tc * size;
                let c1 = (c0 + size).min(cols);
                let mut xbar = Crossbar::new(r1 - r0, c1 - c0, bits);
                let sub: Vec<Vec<u8>> = (r0..r1).map(|r| levels[r][c0..c1].to_vec()).collect();
                xbar.program(&sub);
                row_tiles.push(xbar);
            }
            tiles.push(row_tiles);
        }
        PartitionedMatrix {
            rows,
            cols,
            size,
            tiles,
        }
    }

    /// Number of physical crossbars.
    pub fn tile_count(&self) -> usize {
        self.tiles.iter().map(|r| r.len()).sum()
    }

    /// Tiled MVM: each tile multiplies its input slice; outputs concatenate
    /// across column tiles and sum across row tiles.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn mvm(&mut self, input: &[u32], input_bits: u8) -> Vec<u64> {
        assert_eq!(input.len(), self.rows, "input length mismatch");
        let mut out = vec![0u64; self.cols];
        for (tr, row_tiles) in self.tiles.iter_mut().enumerate() {
            let r0 = tr * self.size;
            let r1 = (r0 + self.size).min(self.rows);
            let slice = &input[r0..r1];
            for (tc, xbar) in row_tiles.iter_mut().enumerate() {
                let c0 = tc * self.size;
                let partial = xbar.mvm_spiked(slice, input_bits);
                for (k, &p) in partial.iter().enumerate() {
                    out[c0 + k] += p; // vertical sum
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig5_grid() {
        // 512 rows (kernel size 512) × 256 outputs on 128x128 arrays = 4x2=8.
        let (rt, ct) = tile_grid(512, 256, 128);
        assert_eq!((rt, ct), (4, 2));
        assert_eq!(rt * ct, 8);
    }

    #[test]
    fn ragged_edges_round_up() {
        assert_eq!(tile_grid(129, 1, 128), (2, 1));
        assert_eq!(tile_grid(128, 128, 128), (1, 1));
        assert_eq!(tile_grid(1, 300, 128), (1, 3));
    }

    #[test]
    fn tiled_equals_monolithic_small() {
        let levels: Vec<Vec<u8>> = (0..5)
            .map(|r| (0..7).map(|c| ((r * 7 + c) % 16) as u8).collect())
            .collect();
        let input: Vec<u32> = (0..5).map(|i| (i * i) as u32).collect();
        let mut mono = Crossbar::new(5, 7, 4);
        mono.program(&levels);
        let want = mono.mvm_spiked(&input, 8);
        let mut part = PartitionedMatrix::program(&levels, 2, 4);
        assert_eq!(part.tile_count(), 3 * 4);
        assert_eq!(part.mvm(&input, 8), want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tiled_mvm_exact(
            rows in 1usize..20,
            cols in 1usize..20,
            size in 1usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..256)).collect();
            let mut mono = Crossbar::new(rows, cols, 4);
            mono.program(&levels);
            let want = mono.mvm_spiked(&input, 8);
            let mut part = PartitionedMatrix::program(&levels, size, 4);
            prop_assert_eq!(part.mvm(&input, 8), want);
        }
    }
}
