//! The multi-level ReRAM cell.

use crate::fault::{noisy_landing, VerifyPolicy};
use rand::Rng;

/// Outcome of one cell-level program-and-verify loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellWrite {
    /// Programming pulses issued across all attempts.
    pub pulses: u32,
    /// Attempts consumed (1 for a clean first-shot write).
    pub attempts: u32,
    /// Whether the final verify read matched the target level.
    pub verified: bool,
}

/// One metal-oxide ReRAM cell storing `bits` bits as one of `2^bits`
/// discrete conductance levels.
///
/// The paper's default resolution is 4 bits per cell (Sec. 5.1) — the value
/// PRIME-era devices demonstrated — with higher weight resolutions built
/// from multiple cells (see [`array_group`](crate::array_group)).
///
/// # Example
///
/// ```
/// use pipelayer_reram::ReramCell;
///
/// let mut cell = ReramCell::new(4);
/// let pulses = cell.program(9);
/// assert_eq!(cell.level(), 9);
/// assert_eq!(pulses, 9); // tuned up from level 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReramCell {
    level: u8,
    bits: u8,
}

impl ReramCell {
    /// A fresh cell at level 0 (high-resistance state).
    ///
    /// `bits` outside `1..=8` is debug-checked; in release it clamps to
    /// that range rather than panicking.
    pub fn new(bits: u8) -> Self {
        debug_assert!(
            (1..=8).contains(&bits),
            "cell resolution must be 1..=8 bits"
        );
        ReramCell {
            level: 0,
            bits: bits.clamp(1, 8),
        }
    }

    /// Cell resolution in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Current conductance level, `0 ..= 2^bits - 1`.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// Maximum representable level.
    pub fn max_level(&self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    /// Programs the cell to `level`, returning the number of tuning pulses
    /// (write spikes) the spike driver issues — modelled as the level
    /// distance, since each pulse nudges the conductance one state.
    ///
    /// An over-range `level` is debug-checked; in release the write
    /// saturates at the cell's top level.
    pub fn program(&mut self, level: u8) -> u32 {
        debug_assert!(
            level <= self.max_level(),
            "level {level} exceeds {}-bit cell",
            self.bits
        );
        let level = level.min(self.max_level());
        let pulses = (self.level as i32 - level as i32).unsigned_abs();
        self.level = level;
        pulses
    }

    /// Normalised conductance in `[0, 1]`: `level / max_level`.
    pub fn conductance(&self) -> f32 {
        self.level as f32 / self.max_level() as f32
    }

    /// Programs the cell to `level` with the program-and-verify loop: each
    /// attempt issues tuning pulses (landing within `policy.write_sigma`
    /// levels of the target), then a verify read checks the result; misses
    /// retry until `policy.max_attempts` is exhausted.
    ///
    /// This models a *healthy* cell — stuck-at behaviour lives in the
    /// crossbar's [`FaultMap`](crate::fault::FaultMap), which intercepts
    /// the write before it reaches the cell.
    ///
    /// An over-range `level` is debug-checked; in release the write
    /// saturates at the cell's top level.
    pub fn program_verify(
        &mut self,
        level: u8,
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> CellWrite {
        debug_assert!(
            level <= self.max_level(),
            "level {level} exceeds {}-bit cell",
            self.bits
        );
        let level = level.min(self.max_level());
        let mut pulses = 0u32;
        let mut attempts = 0u32;
        while attempts < policy.max_attempts {
            attempts += 1;
            let landed = noisy_landing(level, self.max_level(), policy.write_sigma, rng);
            pulses += (self.level as i32 - landed as i32).unsigned_abs();
            self.level = landed;
            if self.level == level {
                break;
            }
        }
        CellWrite {
            pulses,
            attempts,
            verified: self.level == level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_hrs() {
        let c = ReramCell::new(4);
        assert_eq!(c.level(), 0);
        assert_eq!(c.conductance(), 0.0);
        assert_eq!(c.max_level(), 15);
    }

    #[test]
    fn program_counts_pulses_by_distance() {
        let mut c = ReramCell::new(4);
        assert_eq!(c.program(15), 15);
        assert_eq!(c.program(10), 5);
        assert_eq!(c.program(10), 0);
    }

    #[test]
    fn conductance_scales_linearly() {
        let mut c = ReramCell::new(2);
        c.program(3);
        assert_eq!(c.conductance(), 1.0);
        c.program(1);
        assert!((c.conductance() - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_overrange_level() {
        ReramCell::new(4).program(16);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn rejects_zero_bits() {
        ReramCell::new(0);
    }

    #[test]
    fn verify_noiseless_first_shot() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut c = ReramCell::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let w = c.program_verify(9, &VerifyPolicy::default(), &mut rng);
        assert!(w.verified);
        assert_eq!(w.attempts, 1);
        assert_eq!(w.pulses, 9);
        assert_eq!(c.level(), 9);
    }

    #[test]
    fn verify_retries_under_noise_and_converges() {
        use rand::{rngs::StdRng, SeedableRng};
        let policy = VerifyPolicy {
            max_attempts: 64,
            write_sigma: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let mut converged = 0;
        for target in 0..=15u8 {
            let mut c = ReramCell::new(4);
            let w = c.program_verify(target, &policy, &mut rng);
            assert!(w.attempts >= 1 && w.attempts <= 64);
            if w.verified {
                assert_eq!(c.level(), target);
                converged += 1;
            }
        }
        // σ=1 with a 64-attempt budget converges essentially always.
        assert!(converged >= 15, "only {converged}/16 targets converged");
    }

    #[test]
    fn verify_budget_bounds_attempts() {
        use rand::{rngs::StdRng, SeedableRng};
        let policy = VerifyPolicy {
            max_attempts: 2,
            write_sigma: 50.0, // wild noise: almost never lands on target
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = ReramCell::new(4);
        let w = c.program_verify(7, &policy, &mut rng);
        assert!(w.attempts <= 2);
    }
}
