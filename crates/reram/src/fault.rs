//! Persistent cell faults and the program-and-verify write path.
//!
//! The paper (Sec. 5.1) leans on neural networks' "inherent error
//! tolerance"; a deployable accelerator cannot: metal-oxide ReRAM arrays
//! ship with stuck-at cells and accumulate dead cells as they wear, and
//! every practical multi-level programming scheme is a *program-and-verify*
//! loop (pulse, read back, retry) rather than the single ideal pulse the
//! base model assumes. This module supplies the three pieces the rest of
//! the stack builds on:
//!
//! * [`FaultModel`]/[`FaultMap`] — a seeded, reproducible per-crossbar map
//!   of stuck-at-zero / stuck-at-max / dead cells;
//! * [`VerifyPolicy`] — the bounded retry budget and per-attempt write
//!   noise of the program-and-verify loop, with closed-form expected pulse
//!   overhead for the energy/timing/endurance models;
//! * [`ProgramReport`]/[`UnrecoverableCell`] — what a verified programming
//!   pass actually cost and which cells it could not fix, the input to the
//!   spare-remapping layer (`pipelayer::repair`).

use rand::{Rng, RngExt as _};

/// The ways a cell can be permanently broken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Forming failure: the cell never leaves the high-resistance state and
    /// always reads as level 0.
    StuckAtZero,
    /// The cell is shorted to its lowest-resistance state and always reads
    /// as the maximum level.
    StuckAtMax,
    /// Endurance wear-out: the cell no longer switches; reads as level 0.
    Dead,
}

impl FaultKind {
    /// The level a faulty cell presents regardless of what was programmed.
    pub fn effective_level(&self, max_level: u8) -> u8 {
        match self {
            FaultKind::StuckAtZero | FaultKind::Dead => 0,
            FaultKind::StuckAtMax => max_level,
        }
    }
}

/// Independent per-cell fault probabilities used to seed a [`FaultMap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Probability a cell is stuck at level 0.
    pub stuck_at_zero: f64,
    /// Probability a cell is stuck at the maximum level.
    pub stuck_at_max: f64,
    /// Probability a cell is worn out (dead, reads 0).
    pub dead: f64,
}

impl FaultModel {
    /// A fault-free device.
    pub fn ideal() -> Self {
        FaultModel {
            stuck_at_zero: 0.0,
            stuck_at_max: 0.0,
            dead: 0.0,
        }
    }

    /// A device with total stuck-at rate `rate`, split between
    /// stuck-at-zero and stuck-at-max in the ~5:1 ratio fabrication
    /// studies report (SAZ forming failures dominate).
    ///
    /// An out-of-range or non-finite `rate` is debug-checked; release
    /// builds clamp it into `[0, 1]` (treating NaN as 0) rather than
    /// panicking mid-run.
    pub fn with_stuck_rate(rate: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&rate), "fault rate must be in [0,1]");
        let rate = if rate.is_finite() {
            rate.clamp(0.0, 1.0)
        } else {
            0.0
        };
        FaultModel {
            stuck_at_zero: rate * 5.0 / 6.0,
            stuck_at_max: rate / 6.0,
            dead: 0.0,
        }
    }

    /// Total per-cell fault probability.
    pub fn total_rate(&self) -> f64 {
        self.stuck_at_zero + self.stuck_at_max + self.dead
    }

    /// `true` if no fault is ever injected.
    pub fn is_ideal(&self) -> bool {
        self.total_rate() == 0.0
    }

    /// Debug-checks every rate; release builds proceed regardless (an
    /// out-of-range rate only skews the draw — `u < rate` saturates at
    /// all-faulty — it cannot index out of bounds).
    fn validate(&self) {
        for (name, r) in [
            ("stuck_at_zero", self.stuck_at_zero),
            ("stuck_at_max", self.stuck_at_max),
            ("dead", self.dead),
        ] {
            debug_assert!(
                (0.0..=1.0).contains(&r) && r.is_finite(),
                "{name} rate {r} must be in [0,1]"
            );
        }
        debug_assert!(self.total_rate() <= 1.0, "total fault rate exceeds 1");
    }
}

/// A persistent per-crossbar map of faulty cells.
///
/// Generated once from a [`FaultModel`] and a seed (reproducible across
/// runs), then carried by the crossbar for its lifetime. Spare remapping
/// *clears* entries: moving a logical column onto a fault-free spare is
/// modelled as that column's faults disappearing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMap {
    rows: usize,
    cols: usize,
    kinds: Vec<Option<FaultKind>>, // row-major
}

impl FaultMap {
    /// An all-healthy map.
    ///
    /// A zero dimension is debug-checked; release builds bump it to 1
    /// (degenerate but indexable) instead of panicking.
    pub fn pristine(rows: usize, cols: usize) -> Self {
        debug_assert!(rows > 0 && cols > 0, "fault map must be non-empty");
        let (rows, cols) = (rows.max(1), cols.max(1));
        FaultMap {
            rows,
            cols,
            kinds: vec![None; rows * cols],
        }
    }

    /// Draws a map from `model`, deterministically in `seed`. Each cell's
    /// draw comes from its own `(seed, crossbar, row, col, epoch=0)`
    /// stream (see [`crate::seedstream`]; `seed` is taken as already
    /// crossbar-qualified), so whether a given cell is faulty is
    /// independent of geometry traversal order and thread count.
    ///
    /// An empty geometry or out-of-range rate is debug-checked; release
    /// builds proceed on the clamped/degenerate interpretation (see
    /// [`FaultMap::pristine`] and [`FaultModel`]'s validation notes).
    pub fn generate(rows: usize, cols: usize, model: &FaultModel, seed: u64) -> Self {
        model.validate();
        let mut map = Self::pristine(rows, cols);
        if model.is_ideal() {
            return map;
        }
        for (i, k) in map.kinds.iter_mut().enumerate() {
            let r = crate::seedstream::cell_unit(seed, i / cols, i % cols, 0);
            *k = if r < model.stuck_at_zero {
                Some(FaultKind::StuckAtZero)
            } else if r < model.stuck_at_zero + model.stuck_at_max {
                Some(FaultKind::StuckAtMax)
            } else if r < model.total_rate() {
                Some(FaultKind::Dead)
            } else {
                None
            };
        }
        map
    }

    /// Word-line count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit-line count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The fault at `(row, col)`, if any.
    pub fn get(&self, row: usize, col: usize) -> Option<FaultKind> {
        self.kinds[row * self.cols + col]
    }

    /// Marks `(row, col)` as faulty (e.g. wear-out detected at runtime).
    pub fn set(&mut self, row: usize, col: usize, kind: FaultKind) {
        self.kinds[row * self.cols + col] = Some(kind);
    }

    /// Clears one cell's fault (cell replaced by redundancy).
    pub fn clear(&mut self, row: usize, col: usize) {
        self.kinds[row * self.cols + col] = None;
    }

    /// Clears every fault in bit line `col` — the spare-column remap: the
    /// logical column now lives on a fault-free spare.
    pub fn clear_col(&mut self, col: usize) {
        for r in 0..self.rows {
            self.kinds[r * self.cols + col] = None;
        }
    }

    /// Number of faulty cells.
    pub fn fault_count(&self) -> usize {
        self.kinds.iter().filter(|k| k.is_some()).count()
    }

    /// Fraction of faulty cells.
    pub fn fault_rate(&self) -> f64 {
        self.fault_count() as f64 / self.kinds.len() as f64
    }

    /// Bit lines containing at least one faulty cell, ascending.
    pub fn faulty_cols(&self) -> Vec<usize> {
        (0..self.cols)
            .filter(|&c| (0..self.rows).any(|r| self.get(r, c).is_some()))
            .collect()
    }
}

/// The program-and-verify write discipline: how many pulse/verify attempts
/// each cell gets, and how noisy each programming pulse is.
///
/// The default (`max_attempts = 1`, `write_sigma = 0`) is the base model's
/// ideal single-shot write, so fault-tolerance is strictly opt-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyPolicy {
    /// Maximum program/verify attempts per cell before the cell is
    /// reported unrecoverable (the bounded pulse budget).
    pub max_attempts: u32,
    /// Per-attempt Gaussian programming noise, in conductance levels.
    pub write_sigma: f64,
}

impl Default for VerifyPolicy {
    fn default() -> Self {
        VerifyPolicy {
            max_attempts: 1,
            write_sigma: 0.0,
        }
    }
}

impl VerifyPolicy {
    /// A policy with `max_attempts` retries and noiseless pulses.
    ///
    /// A zero attempt budget is debug-checked; release builds bump it to 1
    /// (every write needs at least one pulse) instead of panicking.
    pub fn with_attempts(max_attempts: u32) -> Self {
        debug_assert!(max_attempts > 0, "need at least one programming attempt");
        VerifyPolicy {
            max_attempts: max_attempts.max(1),
            write_sigma: 0.0,
        }
    }

    /// Probability one programming attempt lands exactly on the target
    /// level: `P(|N(0,σ)| < 0.5)` (the rounding window), 1 for σ = 0.
    pub fn attempt_success_probability(&self) -> f64 {
        if self.write_sigma == 0.0 {
            return 1.0;
        }
        erf(0.5 / (self.write_sigma * core::f64::consts::SQRT_2))
    }

    /// Expected attempts spent on a *healthy* cell under the bounded
    /// budget (truncated geometric mean).
    pub fn expected_attempts_healthy(&self) -> f64 {
        let p = self.attempt_success_probability();
        if p >= 1.0 {
            return 1.0;
        }
        let k = self.max_attempts as f64;
        // E[min(Geom(p), k)] = (1 - (1-p)^k) / p.
        (1.0 - (1.0 - p).powf(k)) / p
    }

    /// Expected programming pulses per cell write relative to the ideal
    /// single-shot write (the factor the energy, timing and endurance
    /// models scale by). Healthy cells pay the retry expectation; faulty
    /// cells burn the whole budget before being reported unrecoverable.
    pub fn expected_pulse_multiplier(&self, faults: &FaultModel) -> f64 {
        let f = faults.total_rate();
        (1.0 - f) * self.expected_attempts_healthy() + f * self.max_attempts as f64
    }
}

/// Abramowitz–Stegun 7.1.26 rational approximation of the error function
/// (|error| < 1.5e-7, plenty for pulse accounting).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// A cell the program-and-verify loop could not bring to its target level
/// within the pulse budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnrecoverableCell {
    /// Word line.
    pub row: usize,
    /// Bit line.
    pub col: usize,
    /// Level the write wanted.
    pub target: u8,
    /// Level the cell actually presents.
    pub actual: u8,
}

/// Cost and outcome of one verified programming pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramReport {
    /// Programming pulses actually issued, retries included.
    pub pulses: u64,
    /// Pulses an ideal fault-free single-shot write would have needed.
    pub ideal_pulses: u64,
    /// Verify reads issued (one per attempt on each touched cell).
    pub verify_reads: u64,
    /// Cells still wrong after the budget was exhausted.
    pub unrecoverable: Vec<UnrecoverableCell>,
}

impl ProgramReport {
    /// Folds another report into this one.
    pub fn merge(&mut self, other: ProgramReport) {
        self.pulses += other.pulses;
        self.ideal_pulses += other.ideal_pulses;
        self.verify_reads += other.verify_reads;
        self.unrecoverable.extend(other.unrecoverable);
    }

    /// Extra pulses beyond the ideal write.
    pub fn retry_pulses(&self) -> u64 {
        self.pulses.saturating_sub(self.ideal_pulses)
    }

    /// Pulse overhead ratio (`pulses / ideal_pulses`; 1.0 when nothing was
    /// written).
    pub fn overhead(&self) -> f64 {
        if self.ideal_pulses == 0 {
            1.0
        } else {
            self.pulses as f64 / self.ideal_pulses as f64
        }
    }
}

/// Samples the per-attempt programming noise: the attempted level lands at
/// `round(target + N(0, σ))`, clamped to the representable range. Uses the
/// same Irwin–Hall Gaussian as the rest of the workspace.
pub(crate) fn noisy_landing(target: u8, max_level: u8, sigma: f64, rng: &mut impl Rng) -> u8 {
    if sigma == 0.0 {
        return target;
    }
    let g: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
    (target as f64 + g * sigma)
        .round()
        .clamp(0.0, max_level as f64) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let m = FaultModel::with_stuck_rate(0.05);
        let a = FaultMap::generate(64, 64, &m, 42);
        let b = FaultMap::generate(64, 64, &m, 42);
        let c = FaultMap::generate(64, 64, &m, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_rate_tracks_model() {
        let m = FaultModel::with_stuck_rate(0.1);
        let map = FaultMap::generate(128, 128, &m, 7);
        let rate = map.fault_rate();
        assert!((rate - 0.1).abs() < 0.02, "empirical rate {rate}");
    }

    #[test]
    fn ideal_model_generates_pristine_map() {
        let map = FaultMap::generate(32, 32, &FaultModel::ideal(), 1);
        assert_eq!(map.fault_count(), 0);
        assert!(map.faulty_cols().is_empty());
    }

    #[test]
    fn clear_col_models_spare_remap() {
        let mut map = FaultMap::pristine(4, 4);
        map.set(1, 2, FaultKind::StuckAtZero);
        map.set(3, 2, FaultKind::Dead);
        map.set(0, 0, FaultKind::StuckAtMax);
        assert_eq!(map.faulty_cols(), vec![0, 2]);
        map.clear_col(2);
        assert_eq!(map.faulty_cols(), vec![0]);
        assert_eq!(map.fault_count(), 1);
    }

    #[test]
    fn effective_levels_by_kind() {
        assert_eq!(FaultKind::StuckAtZero.effective_level(15), 0);
        assert_eq!(FaultKind::Dead.effective_level(15), 0);
        assert_eq!(FaultKind::StuckAtMax.effective_level(15), 15);
    }

    #[test]
    fn default_policy_is_ideal_single_shot() {
        let p = VerifyPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.attempt_success_probability(), 1.0);
        assert_eq!(p.expected_pulse_multiplier(&FaultModel::ideal()), 1.0);
    }

    #[test]
    fn pulse_multiplier_grows_with_sigma_and_faults() {
        let noisy = VerifyPolicy {
            max_attempts: 5,
            write_sigma: 0.5,
        };
        let quiet = VerifyPolicy {
            max_attempts: 5,
            write_sigma: 0.1,
        };
        let ideal = FaultModel::ideal();
        assert!(noisy.expected_pulse_multiplier(&ideal) > quiet.expected_pulse_multiplier(&ideal));
        let faulty = FaultModel::with_stuck_rate(0.01);
        assert!(
            noisy.expected_pulse_multiplier(&faulty) > noisy.expected_pulse_multiplier(&ideal),
            "stuck cells must burn budget"
        );
    }

    #[test]
    fn expected_attempts_bounded_by_budget() {
        let p = VerifyPolicy {
            max_attempts: 4,
            write_sigma: 10.0, // nearly always misses
        };
        let e = p.expected_attempts_healthy();
        assert!(e > 3.0 && e <= 4.0, "expected attempts {e}");
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn report_merge_and_overhead() {
        let mut a = ProgramReport {
            pulses: 12,
            ideal_pulses: 10,
            verify_reads: 11,
            unrecoverable: vec![],
        };
        a.merge(ProgramReport {
            pulses: 8,
            ideal_pulses: 5,
            verify_reads: 6,
            unrecoverable: vec![UnrecoverableCell {
                row: 0,
                col: 1,
                target: 9,
                actual: 0,
            }],
        });
        assert_eq!(a.pulses, 20);
        assert_eq!(a.retry_pulses(), 5);
        assert_eq!(a.unrecoverable.len(), 1);
        assert!((a.overhead() - 20.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "fault rate")]
    fn rejects_out_of_range_rate() {
        FaultModel::with_stuck_rate(1.5);
    }

    /// Release builds clamp instead of panicking: out-of-range inputs to
    /// the debug-checked constructors must still produce usable values.
    #[test]
    #[cfg(not(debug_assertions))]
    fn release_builds_clamp_bad_constructor_inputs() {
        assert_eq!(FaultModel::with_stuck_rate(1.5).total_rate(), 1.0);
        assert_eq!(FaultModel::with_stuck_rate(f64::NAN).total_rate(), 0.0);
        assert_eq!(VerifyPolicy::with_attempts(0).max_attempts, 1);
        let m = FaultMap::pristine(0, 4);
        assert!(m.fault_count() == 0);
    }
}
