//! NVSim-derived device parameters and spike-level energy accounting.
//!
//! The paper's simulator is "based on NVSim \[19\]; the read/write latency,
//! read/write energy cost used in the simulator are 29.31 ns / 50.88 ns per
//! spike and 1.08 pJ / 3.91 nJ per spike, reported in \[46\]" (Sec. 6.2).
//! Those four scalars, the crossbar geometry and the resolution choices of
//! Sec. 5.1 (16-bit data on 4-bit cells) are collected in [`ReramParams`];
//! [`EnergyCounter`] turns spike counts into joules.

/// Device/array parameters shared across the reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReramParams {
    /// Crossbar word/bit-line count (`128×128`; the Fig. 5 example
    /// partitions a 512×256 matrix into 8 such tiles).
    pub xbar_size: usize,
    /// Bits per ReRAM cell (Sec. 5.1: 4).
    pub cell_bits: u8,
    /// Data resolution in bits (Sec. 5.1: 16, built from four 4-bit
    /// segment groups per Fig. 14).
    pub data_bits: u8,
    /// Read latency per spike, ns (29.31).
    pub read_latency_ns: f64,
    /// Write (programming) latency per spike, ns (50.88).
    pub write_latency_ns: f64,
    /// Read energy per spike, pJ (1.08).
    pub read_energy_pj: f64,
    /// Write energy per spike, pJ (3.91 nJ = 3910 pJ).
    pub write_energy_pj: f64,
    /// Memory-subarray words written in parallel per write pulse
    /// (bank-level parallelism of the conventional-memory region).
    pub mem_write_width: usize,
    /// Words per write pulse when storing data into *morphable* arrays
    /// (precision cell tuning is slower than bulk memory-bank writes).
    pub morphable_write_width: usize,
}

impl Default for ReramParams {
    fn default() -> Self {
        ReramParams {
            xbar_size: 128,
            cell_bits: 4,
            data_bits: 16,
            read_latency_ns: 29.31,
            write_latency_ns: 50.88,
            read_energy_pj: 1.08,
            write_energy_pj: 3910.0,
            mem_write_width: 8192,
            morphable_write_width: 1024,
        }
    }
}

impl ReramParams {
    /// Segment groups per signed matrix: `data_bits / cell_bits` (4).
    pub fn bit_groups(&self) -> usize {
        (self.data_bits / self.cell_bits) as usize
    }

    /// Physical crossbars per logical matrix copy: segment groups × the
    /// positive/negative pair (8 by default).
    pub fn crossbars_per_matrix(&self) -> usize {
        self.bit_groups() * 2
    }

    /// Cells needed to store one `data_bits` word (4).
    pub fn cells_per_word(&self) -> usize {
        self.bit_groups()
    }

    /// Duration of one spike-coded array read phase: `data_bits` time slots.
    pub fn read_phase_ns(&self) -> f64 {
        self.data_bits as f64 * self.read_latency_ns
    }
}

/// Accumulates spike counts and converts them to energy.
///
/// Reads are input spikes into morphable arrays; writes cover both weight
/// programming and intermediate-data writes into memory subarrays (PipeLayer
/// writes *all* data to ReRAM, the reason its power efficiency trails
/// eDRAM-buffered designs, Sec. 6.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnergyCounter {
    read_spikes: u64,
    write_spikes: u64,
}

impl EnergyCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        EnergyCounter::default()
    }

    /// Adds array-read spikes.
    pub fn add_read_spikes(&mut self, n: u64) {
        self.read_spikes += n;
    }

    /// Adds programming/memory-write spikes.
    pub fn add_write_spikes(&mut self, n: u64) {
        self.write_spikes += n;
    }

    /// Adds memory-subarray word writes: each `data_bits` word occupies
    /// `cells_per_word` cells, one programming spike each.
    pub fn add_word_writes(&mut self, words: u64, params: &ReramParams) {
        self.write_spikes += words * params.cells_per_word() as u64;
    }

    /// Read spikes so far.
    pub fn read_spikes(&self) -> u64 {
        self.read_spikes
    }

    /// Write spikes so far.
    pub fn write_spikes(&self) -> u64 {
        self.write_spikes
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.read_spikes += other.read_spikes;
        self.write_spikes += other.write_spikes;
    }

    /// Total energy in joules under `params`.
    pub fn energy_joules(&self, params: &ReramParams) -> f64 {
        (self.read_spikes as f64 * params.read_energy_pj
            + self.write_spikes as f64 * params.write_energy_pj)
            * 1e-12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let p = ReramParams::default();
        assert_eq!(p.read_latency_ns, 29.31);
        assert_eq!(p.write_latency_ns, 50.88);
        assert_eq!(p.read_energy_pj, 1.08);
        assert_eq!(p.write_energy_pj, 3910.0);
        assert_eq!(p.xbar_size, 128);
        assert_eq!(p.bit_groups(), 4);
        assert_eq!(p.crossbars_per_matrix(), 8);
    }

    #[test]
    fn read_phase_is_16_slots() {
        let p = ReramParams::default();
        assert!((p.read_phase_ns() - 16.0 * 29.31).abs() < 1e-9);
    }

    #[test]
    fn energy_arithmetic() {
        let p = ReramParams::default();
        let mut e = EnergyCounter::new();
        e.add_read_spikes(1_000_000); // 1M × 1.08 pJ = 1.08 µJ
        e.add_write_spikes(1_000); // 1k × 3.91 nJ = 3.91 µJ
        let j = e.energy_joules(&p);
        assert!((j - (1.08e-6 + 3.91e-6)).abs() < 1e-12);
    }

    #[test]
    fn word_writes_use_four_cells() {
        let p = ReramParams::default();
        let mut e = EnergyCounter::new();
        e.add_word_writes(10, &p);
        assert_eq!(e.write_spikes(), 40);
    }

    #[test]
    fn merge_sums() {
        let mut a = EnergyCounter::new();
        a.add_read_spikes(3);
        let mut b = EnergyCounter::new();
        b.add_read_spikes(4);
        b.add_write_spikes(5);
        a.merge(&b);
        assert_eq!(a.read_spikes(), 7);
        assert_eq!(a.write_spikes(), 5);
    }

    #[test]
    fn write_energy_dominates_matched_counts() {
        // One write spike costs ~3600× one read spike — the asymmetry that
        // drives the paper's training-vs-testing energy gap.
        let p = ReramParams::default();
        let mut r = EnergyCounter::new();
        r.add_read_spikes(1);
        let mut w = EnergyCounter::new();
        w.add_write_spikes(1);
        assert!(w.energy_joules(&p) > 3000.0 * r.energy_joules(&p));
    }
}
