//! ReRAM substrate for the PipeLayer reproduction.
//!
//! PipeLayer computes matrix–vector multiplications *inside* metal-oxide
//! ReRAM crossbars (Sec. 2.3, 4.2 of the paper). This crate models that
//! substrate, bottom-up:
//!
//! * [`cell`] — a multi-level (default 4-bit) ReRAM cell with discrete
//!   conductance states and programming.
//! * [`spike`] — the weighted spike coding scheme of Fig. 9(a): an `N`-bit
//!   input becomes `N` time slots, LSB first, slot `i` carrying weight `2^i`.
//!   Eliminates DACs.
//! * [`integrate_fire`] — the integrate-and-fire converter of Fig. 9(b):
//!   bitline current charges a capacitor; comparator spikes are counted.
//!   Eliminates ADCs.
//! * [`packed`] — bit-packed spike trains (64 rows per `u64` word per
//!   time slot) and bit-plane-decomposed conductances; turns one MVM time
//!   slot into `popcount(fires & g_plane) << (slot + plane)` — bitwise
//!   identical to the scalar walk, an order of magnitude denser.
//! * [`crossbar`] — a single crossbar array combining the above into an
//!   exact fixed-point MVM (packed kernel on the hot path, scalar
//!   reference retained for differential testing).
//! * [`array_group`] — signed, full-resolution matrices built from
//!   positive/negative array pairs and the four 4-bit segment groups of the
//!   resolution-compensation scheme (Fig. 14).
//! * [`activation`] — the activation component of Fig. 9(c): subtractor,
//!   configurable LUT (ReLU by default) and the max register used for
//!   pooling.
//! * [`partition`] — tiling of large kernel matrices onto fixed-size arrays
//!   (the balanced scheme of Fig. 5).
//! * [`fault`] — persistent stuck-at/dead cell maps and the bounded
//!   program-and-verify write discipline (retry pulses, unrecoverable-cell
//!   reports) the repair layer consumes.
//! * [`drift`] — time-dependent degradation: power-law retention drift and
//!   read-disturb accumulation, advanced in logical pipeline cycles and
//!   countered by the crossbar-level scrub pass.
//! * [`noise`] — analog read-path non-idealities: lognormal LRS/HRS
//!   conductance spread, wire-resistance IR drop across the array
//!   geometry, and per-read Gaussian noise, all seeded through the same
//!   stream discipline so noisy campaigns replay bitwise.
//! * [`wear`] — endurance wear-out: seeded per-cell lognormal write
//!   budgets decremented by every programming pulse, transitioning
//!   exhausted cells into live dead faults mid-run.
//! * [`seedstream`] — the documented `(seed, crossbar, row, col, epoch)`
//!   per-cell random-stream convention shared by `fault`, `variation`,
//!   `drift` and `wear` so campaigns reproduce at any thread count.
//! * [`energy`] / [`area`] — NVSim-derived timing/energy constants
//!   (29.31 ns / 50.88 ns and 1.08 pJ / 3.91 nJ per read/write spike) and the
//!   area model.
//!
//! # Example: exact crossbar MVM
//!
//! ```
//! use pipelayer_reram::crossbar::Crossbar;
//!
//! // 2x2 array of 4-bit cells.
//! let mut xbar = Crossbar::new(2, 2, 4);
//! xbar.program(&[vec![3, 1], vec![2, 15]]);
//! let out = xbar.mvm_spiked(&[10, 100], 8);
//! assert_eq!(out, vec![3 * 10 + 2 * 100, 1 * 10 + 15 * 100]);
//! ```

pub mod activation;
pub mod area;
pub mod array_group;
pub mod cell;
pub mod crossbar;
pub mod drift;
pub mod energy;
pub mod fault;
pub mod integrate_fire;
pub mod noise;
pub mod packed;
pub mod partition;
pub mod seedstream;
pub mod spike;
pub mod subarray;
pub mod variation;
pub mod wear;

pub use area::AreaModel;
pub use array_group::ReramMatrix;
pub use cell::{CellWrite, ReramCell};
pub use crossbar::Crossbar;
pub use drift::{DriftModel, DriftState};
pub use energy::{EnergyCounter, ReramParams};
pub use fault::{FaultKind, FaultMap, FaultModel, ProgramReport, UnrecoverableCell, VerifyPolicy};
pub use integrate_fire::IntegrateFire;
pub use noise::{NoiseModel, NoiseState};
pub use packed::{BitPlanes, PackedSpikes};
pub use partition::tile_grid;
pub use subarray::{MorphableSubarray, SubarrayMode};
pub use variation::VariationModel;
pub use wear::{WearModel, WearState};
