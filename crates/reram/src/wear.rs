//! Endurance wear-out: per-cell programming-pulse budgets and live death.
//!
//! The endurance model (`pipelayer::endurance`) predicts *when* training
//! write traffic exhausts a metal-oxide cell; this module makes it happen
//! inside the functional simulator. Every cell carries a heterogeneous
//! write budget drawn lognormally around the device's median endurance —
//! cycling studies consistently report lognormal cycles-to-failure with
//! σ(ln) in the 0.3–1 range — and every programming pulse the crossbar
//! issues (batch-update writes, verify retries, scrub re-pulses) decrements
//! it. A cell whose budget hits zero stops switching: the crossbar layer
//! transitions it into a live [`FaultKind::Dead`] stuck-at fault mid-run,
//! which the repair ladder (`pipelayer::repair`) then detects through the
//! ordinary program-and-verify path.
//!
//! Budgets are drawn through the workspace seedstream
//! (`(seed, crossbar, row, col, generation)` — see [`crate::seedstream`]),
//! so which cell dies after how many pulses is a pure function of the seed
//! and the pulse history: any thread count or kill/resume point replays the
//! same deaths bitwise. A column swapped onto a fresh spare bit line bumps
//! its cells' generation, which re-draws their budgets from the new cells'
//! streams.
//!
//! [`WearModel::ideal`] (the default) disables the whole subsystem and is
//! an exact no-op: no state is allocated, no counter is touched, and every
//! calibrated baseline number is bit-identical.
//!
//! [`FaultKind::Dead`]: crate::fault::FaultKind::Dead

use crate::seedstream;

/// Device endurance statistics: the lognormal write-budget distribution.
///
/// The default ([`WearModel::ideal`]) never wears a cell out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearModel {
    /// Median programming pulses a cell survives (the lognormal median).
    /// `0` disables wear tracking entirely.
    pub median_writes: f64,
    /// Cell-to-cell spread: σ of `ln(budget)`. `0` gives every cell exactly
    /// the median budget.
    pub sigma: f64,
}

impl WearModel {
    /// Wear disabled; cells never die.
    pub fn ideal() -> Self {
        WearModel {
            median_writes: 0.0,
            sigma: 0.0,
        }
    }

    /// A device with the given median endurance and the σ(ln) ≈ 0.5 spread
    /// cycling studies typically report for metal-oxide cells.
    pub fn with_endurance(median_writes: f64) -> Self {
        WearModel {
            median_writes,
            sigma: 0.5,
        }
    }

    /// `true` if wear tracking is disabled (the exact-no-op default).
    pub fn is_ideal(&self) -> bool {
        self.median_writes <= 0.0
    }

    /// Probability a single cell is worn out after `writes` programming
    /// pulses: the lognormal CDF `Φ((ln writes − ln median) / σ)`. Used by
    /// the static spare-budget feasibility check (PL024).
    pub fn death_probability(&self, writes: f64) -> f64 {
        if self.is_ideal() || writes <= 0.0 {
            return 0.0;
        }
        if self.sigma <= 0.0 {
            return if writes >= self.median_writes {
                1.0
            } else {
                0.0
            };
        }
        let z = (writes.ln() - self.median_writes.ln()) / self.sigma;
        0.5 * (1.0 + crate::fault::erf(z / core::f64::consts::SQRT_2))
    }
}

impl Default for WearModel {
    fn default() -> Self {
        WearModel::ideal()
    }
}

/// Per-cell wear bookkeeping for one crossbar: pulses issued so far against
/// a seed-derived budget, plus the programming generation that re-draws the
/// budget when a column is swapped onto fresh spare cells.
#[derive(Debug, Clone, PartialEq)]
pub struct WearState {
    model: WearModel,
    seed: u64,
    cols: usize,
    /// Programming pulses issued to each cell so far (row-major).
    pulses: Vec<u64>,
    /// Physical-cell generation: bumped when a spare swap replaces the
    /// cell, so the fresh cell draws a fresh budget from its own stream.
    generation: Vec<u64>,
    /// Seed-derived pulse budget of the current physical cell.
    budget: Vec<u64>,
}

/// One cell's budget draw: lognormal around the model median, from the
/// `(seed, row, col, generation)` stream (`seed` crossbar-qualified).
/// Budgets round to at least one pulse so a draw can never be born dead.
fn cell_budget(model: &WearModel, seed: u64, row: usize, col: usize, generation: u64) -> u64 {
    let g = seedstream::cell_gauss(seed, row, col, generation);
    let b = model.median_writes * (model.sigma * g).exp();
    // f64→u64 saturates at the type bounds; the 1-pulse floor keeps even
    // extreme left-tail draws programmable once.
    (b.round() as u64).max(1)
}

impl WearState {
    /// Wear tracking for a `rows`×`cols` array under `model`, budgets drawn
    /// deterministically from the crossbar-qualified `seed`.
    pub fn new(rows: usize, cols: usize, model: WearModel, seed: u64) -> Self {
        let n = rows * cols;
        let budget = (0..n)
            .map(|i| cell_budget(&model, seed, i / cols.max(1), i % cols.max(1), 0))
            .collect();
        WearState {
            model,
            seed,
            cols,
            pulses: vec![0; n],
            generation: vec![0; n],
            budget,
        }
    }

    /// The model this state was built from.
    pub fn model(&self) -> &WearModel {
        &self.model
    }

    /// Records `n` programming pulses on `(row, col)`. Returns `true` only
    /// on the pulse that crosses the cell's budget — the moment the cell
    /// dies and the caller must raise a live stuck-at fault. Out-of-range
    /// coordinates are ignored.
    pub fn note_pulses(&mut self, row: usize, col: usize, n: u64) -> bool {
        let Some(idx) = self.index(row, col) else {
            return false;
        };
        if n == 0 {
            return false;
        }
        let was_dead = self.pulses[idx] >= self.budget[idx];
        self.pulses[idx] = self.pulses[idx].saturating_add(n);
        !was_dead && self.pulses[idx] >= self.budget[idx]
    }

    /// `true` if `(row, col)` has exhausted its write budget.
    pub fn is_exhausted(&self, row: usize, col: usize) -> bool {
        self.index(row, col)
            .is_some_and(|i| self.pulses[i] >= self.budget[i])
    }

    /// Programming pulses `(row, col)` can still absorb (0 when dead).
    pub fn remaining_writes(&self, row: usize, col: usize) -> u64 {
        self.index(row, col)
            .map_or(u64::MAX, |i| self.budget[i].saturating_sub(self.pulses[i]))
    }

    /// The smallest remaining budget across word line `row` — the
    /// wear-leveling signal the scrub scheduler uses to stop burning writes
    /// on near-dead rows. Dead cells report 0.
    pub fn row_min_remaining(&self, row: usize) -> u64 {
        (0..self.cols)
            .map(|c| self.remaining_writes(row, c))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Cells that have exhausted their budget.
    pub fn exhausted_cells(&self) -> usize {
        self.pulses
            .iter()
            .zip(&self.budget)
            .filter(|(p, b)| p >= b)
            .count()
    }

    /// Total programming pulses recorded across the array.
    pub fn total_pulses(&self) -> u64 {
        self.pulses.iter().sum()
    }

    /// Swaps every cell of bit line `col` for a fresh physical cell (the
    /// spare-column remap): generation bumps, the pulse counter resets, and
    /// the new cell draws its own budget from its generation's stream.
    pub fn renew_col(&mut self, col: usize) {
        if col >= self.cols || self.cols == 0 {
            return;
        }
        let rows = self.pulses.len() / self.cols;
        for row in 0..rows {
            let idx = row * self.cols + col;
            self.generation[idx] += 1;
            self.pulses[idx] = 0;
            self.budget[idx] = cell_budget(&self.model, self.seed, row, col, self.generation[idx]);
        }
    }

    /// The raw per-cell counters `(pulses, generation)`, row-major — what a
    /// checkpoint persists. Budgets are *not* exported: they are a pure
    /// function of `(seed, generation)` and re-derive on restore.
    pub fn counters(&self) -> (&[u64], &[u64]) {
        (&self.pulses, &self.generation)
    }

    /// Restores counters exported by [`counters`](Self::counters) and
    /// re-derives every budget. Returns `false` (leaving the state
    /// untouched) on a geometry mismatch.
    pub fn restore_counters(&mut self, pulses: &[u64], generation: &[u64]) -> bool {
        if pulses.len() != self.pulses.len() || generation.len() != self.generation.len() {
            return false;
        }
        self.pulses.copy_from_slice(pulses);
        self.generation.copy_from_slice(generation);
        for (idx, b) in self.budget.iter_mut().enumerate() {
            *b = cell_budget(
                &self.model,
                self.seed,
                idx / self.cols.max(1),
                idx % self.cols.max(1),
                self.generation[idx],
            );
        }
        true
    }

    fn index(&self, row: usize, col: usize) -> Option<usize> {
        if self.cols == 0 || col >= self.cols {
            return None;
        }
        let idx = row * self.cols + col;
        if idx < self.pulses.len() {
            Some(idx)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_deterministic_and_heterogeneous() {
        let a = WearState::new(8, 8, WearModel::with_endurance(100.0), 7);
        let b = WearState::new(8, 8, WearModel::with_endurance(100.0), 7);
        let c = WearState::new(8, 8, WearModel::with_endurance(100.0), 8);
        assert_eq!(a, b, "same seed must draw the same budgets");
        assert_ne!(a, c, "different seeds must differ");
        let budgets: Vec<u64> = (0..8)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .map(|(r, c)| a.remaining_writes(r, c))
            .collect();
        let min = budgets.iter().min().copied().unwrap_or(0);
        let max = budgets.iter().max().copied().unwrap_or(0);
        assert!(max > min, "σ=0.5 must spread budgets: {min}..{max}");
    }

    #[test]
    fn cells_die_exactly_when_their_budget_is_crossed() {
        let mut w = WearState::new(
            2,
            2,
            WearModel {
                median_writes: 10.0,
                sigma: 0.0,
            },
            1,
        );
        assert_eq!(w.remaining_writes(0, 0), 10);
        assert!(!w.note_pulses(0, 0, 9), "9 pulses leave headroom");
        assert!(!w.is_exhausted(0, 0));
        assert!(w.note_pulses(0, 0, 1), "the 10th pulse kills the cell");
        assert!(w.is_exhausted(0, 0));
        assert!(
            !w.note_pulses(0, 0, 5),
            "further pulses report no fresh death"
        );
        assert_eq!(w.remaining_writes(0, 0), 0);
        assert_eq!(w.exhausted_cells(), 1);
    }

    #[test]
    fn renew_col_redraws_budget_and_resets_pulses() {
        let model = WearModel::with_endurance(50.0);
        let mut w = WearState::new(4, 4, model, 21);
        let before = w.remaining_writes(1, 2);
        w.note_pulses(1, 2, before); // kill it
        assert!(w.is_exhausted(1, 2));
        w.renew_col(2);
        assert!(!w.is_exhausted(1, 2), "fresh spare cells start alive");
        let renewed = w.remaining_writes(1, 2);
        assert!(renewed > 0);
        assert_ne!(
            renewed, before,
            "generation bump must re-draw the budget (lognormal draw collision is ~impossible)"
        );
        // Untouched columns keep their original stream.
        let twin = WearState::new(4, 4, model, 21);
        assert_eq!(w.remaining_writes(0, 0), twin.remaining_writes(0, 0));
    }

    #[test]
    fn counters_roundtrip_bitwise() {
        let model = WearModel::with_endurance(30.0);
        let mut w = WearState::new(4, 4, model, 5);
        w.note_pulses(0, 0, 7);
        w.note_pulses(3, 1, 1000); // dead
        w.renew_col(1);
        w.note_pulses(3, 1, 2);
        let (p, g) = w.counters();
        let (p, g) = (p.to_vec(), g.to_vec());
        let mut fresh = WearState::new(4, 4, model, 5);
        assert!(fresh.restore_counters(&p, &g));
        assert_eq!(w, fresh, "restore must re-derive identical budgets");
        assert!(!fresh.restore_counters(&p[1..], &g), "length mismatch");
    }

    #[test]
    fn row_min_remaining_tracks_the_weakest_cell() {
        let mut w = WearState::new(
            2,
            3,
            WearModel {
                median_writes: 20.0,
                sigma: 0.0,
            },
            9,
        );
        assert_eq!(w.row_min_remaining(0), 20);
        w.note_pulses(0, 1, 15);
        assert_eq!(w.row_min_remaining(0), 5);
        assert_eq!(w.row_min_remaining(1), 20);
    }

    #[test]
    fn death_probability_is_a_lognormal_cdf() {
        let m = WearModel::with_endurance(1000.0);
        assert_eq!(WearModel::ideal().death_probability(1e12), 0.0);
        assert!((m.death_probability(1000.0) - 0.5).abs() < 1e-6, "median");
        assert!(m.death_probability(100.0) < 1e-4);
        assert!(m.death_probability(10_000.0) > 0.99);
        let step = WearModel {
            median_writes: 10.0,
            sigma: 0.0,
        };
        assert_eq!(step.death_probability(9.0), 0.0);
        assert_eq!(step.death_probability(10.0), 1.0);
    }
}
