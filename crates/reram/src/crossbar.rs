//! A single ReRAM crossbar array performing in-situ matrix–vector
//! multiplication through the spike/integrate-and-fire path.

use crate::cell::ReramCell;
use crate::drift::{DriftModel, DriftState};
use crate::fault::{FaultKind, FaultMap, ProgramReport, UnrecoverableCell, VerifyPolicy};
use crate::integrate_fire::IntegrateFire;
use crate::noise::{NoiseModel, NoiseState};
use crate::packed::{self, BitPlanes, PackedSpikes};
use crate::spike::{SpikeDriver, SpikeTrain};
use crate::wear::{WearModel, WearState};
use rand::Rng;

/// A `rows × cols` crossbar of multi-level cells.
///
/// Word lines carry the (spike-coded) input vector; each bit line sums the
/// currents of its column's cells, so column `c` computes
/// `Σ_r input[r] · level[r][c]` exactly — verified against plain integer
/// arithmetic by property tests.
///
/// The struct also counts input/output/programming spikes, the quantities
/// the energy model (Sec. 6.2 constants) is built on.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<ReramCell>, // row-major
    /// Persistent stuck-at/dead cells; `None` for an ideal array.
    faults: Option<FaultMap>,
    /// Time-dependent degradation (retention drift + read disturb);
    /// `None` for an ageless array.
    drift: Option<DriftState>,
    /// Analog read-path non-idealities (lognormal spread, IR drop, read
    /// noise); `None` for a noiseless array.
    noise: Option<NoiseState>,
    /// Endurance wear-out: per-cell programming-pulse budgets whose
    /// exhaustion raises a live dead fault; `None` for an unwearing array.
    wear: Option<WearState>,
    /// Bit-plane decomposition of the levels the *next* read will see,
    /// rebuilt lazily by `mvm_spiked` and dropped by anything that can
    /// change a read: programming, scrub, fault repair, clock advance,
    /// model attachment, read disturb, or a fresh per-read noise epoch.
    plane_cache: Option<BitPlanes>,
    read_spikes: u64,
    write_spikes: u64,
    output_spikes: u64,
}

impl Crossbar {
    /// Creates an all-zero (high-resistance) crossbar of `bits`-bit cells.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero, or `bits` is out of range.
    pub fn new(rows: usize, cols: usize, bits: u8) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar must be non-empty");
        Crossbar {
            rows,
            cols,
            cells: vec![ReramCell::new(bits); rows * cols],
            faults: None,
            drift: None,
            noise: None,
            wear: None,
            plane_cache: None,
            read_spikes: 0,
            write_spikes: 0,
            output_spikes: 0,
        }
    }

    /// Attaches a persistent fault map; faulty cells present their stuck
    /// level on every read from then on.
    ///
    /// # Panics
    ///
    /// Panics if the map's geometry differs from the crossbar's.
    pub fn attach_faults(&mut self, map: FaultMap) {
        assert_eq!(
            (map.rows(), map.cols()),
            (self.rows, self.cols),
            "fault map geometry mismatch"
        );
        self.faults = Some(map);
        self.plane_cache = None;
    }

    /// The attached fault map, if any.
    pub fn fault_map(&self) -> Option<&FaultMap> {
        self.faults.as_ref()
    }

    /// Attaches the time-dependent degradation model. All cells start at
    /// age 0 (freshly programmed). `seed` should already be
    /// crossbar-qualified via [`crate::seedstream::crossbar_seed`].
    pub fn attach_drift(&mut self, model: DriftModel, seed: u64) {
        self.drift = Some(DriftState::new(self.rows, self.cols, model, seed));
        self.plane_cache = None;
    }

    /// The attached drift state, if any.
    pub fn drift_state(&self) -> Option<&DriftState> {
        self.drift.as_ref()
    }

    /// Attaches the analog non-ideality model (lognormal device spread,
    /// IR drop, per-read noise). An [`ideal`](NoiseModel::ideal) model is
    /// an exact no-op on every read. `seed` should already be
    /// crossbar-qualified via [`crate::seedstream::crossbar_seed`].
    pub fn attach_noise(&mut self, model: NoiseModel, seed: u64) {
        self.noise = Some(NoiseState::new(self.rows, self.cols, model, seed));
        self.plane_cache = None;
    }

    /// The attached noise state, if any.
    pub fn noise_state(&self) -> Option<&NoiseState> {
        self.noise.as_ref()
    }

    /// Attaches the endurance wear-out model: every cell draws a lognormal
    /// write budget from its `(seed, row, col, generation)` stream, every
    /// programming pulse decrements it, and exhaustion raises a live
    /// [`FaultKind::Dead`] fault. An [`ideal`](WearModel::is_ideal) model
    /// detaches wear entirely (the exact-no-op default). `seed` should
    /// already be crossbar-qualified via
    /// [`crate::seedstream::crossbar_seed`].
    pub fn attach_wear(&mut self, model: WearModel, seed: u64) {
        self.wear = if model.is_ideal() {
            None
        } else {
            Some(WearState::new(self.rows, self.cols, model, seed))
        };
        self.plane_cache = None;
    }

    /// The attached wear state, if any.
    pub fn wear_state(&self) -> Option<&WearState> {
        self.wear.as_ref()
    }

    /// Restores wear counters exported by
    /// [`WearState::counters`]; budgets re-derive from the attached model
    /// and seed. Returns `false` when no wear is attached or the geometry
    /// mismatches. Checkpoint restore only — issues no pulses.
    pub fn restore_wear_counters(&mut self, pulses: &[u64], generation: &[u64]) -> bool {
        let restored = match self.wear.as_mut() {
            Some(w) => w.restore_counters(pulses, generation),
            None => false,
        };
        self.plane_cache = None;
        restored
    }

    /// Books `pulses` programming pulses of wear on `(row, col)`; if that
    /// crosses the cell's budget, the cell dies on the spot — a live
    /// [`FaultKind::Dead`] entry every later read and write sees.
    fn note_wear_pulses(&mut self, row: usize, col: usize, pulses: u64) {
        let Some(w) = self.wear.as_mut() else {
            return;
        };
        if w.note_pulses(row, col, pulses) {
            let (rows, cols) = (self.rows, self.cols);
            self.faults
                .get_or_insert_with(|| FaultMap::pristine(rows, cols))
                .set(row, col, FaultKind::Dead);
            self.plane_cache = None;
        }
    }

    /// Advances the degradation clock by `cycles` logical pipeline cycles
    /// (one processed image = one cycle). No-op without an attached model.
    pub fn advance_cycles(&mut self, cycles: u64) {
        if let Some(d) = self.drift.as_mut() {
            d.advance(cycles);
            self.plane_cache = None;
        }
    }

    /// Cells whose read currently deviates from their programmed level
    /// because of drift or disturb (fault-pinned cells are not counted —
    /// scrub cannot help them).
    pub fn drifted_cells(&self) -> usize {
        let Some(d) = self.drift.as_ref() else {
            return 0;
        };
        let mut n = 0;
        for r in 0..self.rows {
            for c in 0..self.cols {
                if self.faults.as_ref().and_then(|f| f.get(r, c)).is_some() {
                    continue;
                }
                let cell = &self.cells[r * self.cols + c];
                if d.is_degraded(r, c, cell.level(), cell.max_level()) {
                    n += 1;
                }
            }
        }
        n
    }

    /// Clears every fault in bit line `col` — the crossbar-level view of a
    /// spare-column remap (the logical column now lives on a fault-free
    /// spare bit line).
    pub fn clear_fault_col(&mut self, col: usize) {
        if let Some(f) = self.faults.as_mut() {
            f.clear_col(col);
            self.plane_cache = None;
        }
    }

    /// Remaps bit line `col` onto a fresh spare bit line at honest device
    /// cost: the spare's cells start at level 0 (and, under wear, draw
    /// fresh budgets from their own generation's stream), every fault on
    /// the logical column clears, and the displaced column's intent levels
    /// are driven into the spare through the full program-and-verify loop —
    /// so the returned report carries the real pulse/verify-read bill the
    /// energy, timing and endurance accounting must pay. `ideal_pulses` is
    /// the tuning distance from a pristine spare.
    ///
    /// An out-of-range `col` is a no-op returning an empty report.
    pub fn reprogram_col_from_spare(
        &mut self,
        col: usize,
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        let mut report = ProgramReport::default();
        if col >= self.cols {
            return report;
        }
        let bits = self.cell_bits();
        // Intent levels survive in the cells even when a fault pinned the
        // physical reads (program paths keep tracking the target).
        let targets: Vec<u8> = (0..self.rows).map(|r| self.level(r, col)).collect();
        if let Some(f) = self.faults.as_mut() {
            f.clear_col(col);
        }
        if let Some(w) = self.wear.as_mut() {
            w.renew_col(col);
        }
        for (r, &target) in targets.iter().enumerate() {
            let idx = r * self.cols + col;
            let Some(cell) = self.cells.get_mut(idx) else {
                continue;
            };
            *cell = ReramCell::new(bits);
            report.ideal_pulses += u64::from(target);
            let w = cell.program_verify(target, policy, rng);
            report.pulses += u64::from(w.pulses);
            report.verify_reads += u64::from(w.attempts);
            if w.pulses > 0 {
                if let Some(d) = self.drift.as_mut() {
                    d.note_program(r, col);
                }
                if let Some(n) = self.noise.as_mut() {
                    n.note_program(r, col);
                }
                // The spare itself wears; an unlucky budget draw can die
                // during its very first reprogram and re-enter the ladder.
                self.note_wear_pulses(r, col, u64::from(w.pulses));
            }
            if !w.verified {
                let actual = self.level(r, col);
                report.unrecoverable.push(UnrecoverableCell {
                    row: r,
                    col,
                    target,
                    actual,
                });
            }
        }
        self.write_spikes += report.pulses;
        self.read_spikes += report.verify_reads;
        self.plane_cache = None;
        report
    }

    /// The smallest remaining write budget across word line `row` —
    /// `u64::MAX` without wear. The wear-leveling scrub scheduler skips
    /// rows whose headroom is below its threshold instead of burning their
    /// last pulses on maintenance writes.
    pub fn row_wear_headroom(&self, row: usize) -> u64 {
        self.wear
            .as_ref()
            .map_or(u64::MAX, |w| w.row_min_remaining(row))
    }

    /// Row-major stored (intent) levels — what a checkpoint persists.
    pub fn stored_levels(&self) -> Vec<u8> {
        self.cells.iter().map(|c| c.level()).collect()
    }

    /// Overwrites the stored levels in place. Checkpoint restore only: no
    /// programming pulses are issued and no wear/drift/noise bookkeeping
    /// runs. Returns `false` (untouched) on a geometry mismatch; over-range
    /// levels clamp to the cell's top level.
    pub fn restore_levels(&mut self, levels: &[u8]) -> bool {
        if levels.len() != self.rows * self.cols {
            return false;
        }
        for (cell, &lvl) in self.cells.iter_mut().zip(levels) {
            let _ = cell.program(lvl.min(cell.max_level()));
        }
        self.plane_cache = None;
        true
    }

    /// Replaces the fault map wholesale (a pristine map for "no faults").
    /// Checkpoint restore only. Returns `false` on a geometry mismatch.
    pub fn restore_faults(&mut self, map: FaultMap) -> bool {
        if (map.rows(), map.cols()) != (self.rows, self.cols) {
            return false;
        }
        self.faults = Some(map);
        self.plane_cache = None;
        true
    }

    /// The spike counters `(read, write, output)` as one tuple, for
    /// checkpoint persistence.
    pub fn spike_counters(&self) -> (u64, u64, u64) {
        (self.read_spikes, self.write_spikes, self.output_spikes)
    }

    /// Restores spike counters saved by [`spike_counters`]
    /// (checkpoint restore only).
    ///
    /// [`spike_counters`]: Self::spike_counters
    pub fn restore_spike_counters(&mut self, read: u64, write: u64, output: u64) {
        self.read_spikes = read;
        self.write_spikes = write;
        self.output_spikes = output;
    }

    /// Word-line count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit-line count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell resolution in bits.
    pub fn cell_bits(&self) -> u8 {
        self.cells[0].bits()
    }

    /// Level the programming logic last stored at `(row, col)` (what the
    /// write *wanted*; faults are not applied).
    pub fn level(&self, row: usize, col: usize) -> u8 {
        self.cells[row * self.cols + col].level()
    }

    /// Level the cell at `(row, col)` actually presents on a read: the
    /// stored level, unless a fault pins it, age has drifted it, or the
    /// analog read path perturbs it. Noise applies *on top of* the
    /// fault/drift-resolved level — a stuck cell's pinned conductance
    /// still crosses the same noisy wires.
    pub fn effective_level(&self, row: usize, col: usize) -> u8 {
        let cell = &self.cells[row * self.cols + col];
        let base = match self.faults.as_ref().and_then(|f| f.get(row, col)) {
            Some(kind) => kind.effective_level(cell.max_level()),
            None => match self.drift.as_ref() {
                Some(d) => d.effective_level(row, col, cell.level(), cell.max_level()),
                None => cell.level(),
            },
        };
        match self.noise.as_ref() {
            Some(n) => n.effective_level(row, col, base, cell.max_level()),
            None => base,
        }
    }

    /// Programs the whole array from a row-major level matrix; counts the
    /// tuning pulses as write spikes. Returns the pulse count.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not `rows × cols` or any level is over-range.
    pub fn program(&mut self, levels: &[Vec<u8>]) -> u64 {
        assert_eq!(levels.len(), self.rows, "level matrix row count mismatch");
        let mut pulses = 0u64;
        for (r, row) in levels.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "level matrix column count mismatch");
            for (c, &lvl) in row.iter().enumerate() {
                let p = self.cells[r * self.cols + c].program(lvl) as u64;
                if p > 0 {
                    // A zero-pulse write leaves the physical cell untouched,
                    // so its degradation clock keeps running and its device
                    // deviate stays.
                    if let Some(d) = self.drift.as_mut() {
                        d.note_program(r, c);
                    }
                    if let Some(n) = self.noise.as_mut() {
                        n.note_program(r, c);
                    }
                    self.note_wear_pulses(r, c, p);
                }
                pulses += p;
            }
        }
        self.write_spikes += pulses;
        self.plane_cache = None;
        pulses
    }

    /// Programs the whole array through the program-and-verify loop: every
    /// cell is pulsed, read back and retried within `policy.max_attempts`;
    /// cells a fault pins (or noise never lands) are reported
    /// unrecoverable with the level they actually present.
    ///
    /// Pulses (including retries) are counted as write spikes and verify
    /// reads as read spikes, so the energy accounting sees the real cost.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not `rows × cols` or any level is over-range.
    pub fn program_verify(
        &mut self,
        levels: &[Vec<u8>],
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        assert_eq!(levels.len(), self.rows, "level matrix row count mismatch");
        let mut report = ProgramReport::default();
        for (r, row) in levels.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "level matrix column count mismatch");
            for (c, &target) in row.iter().enumerate() {
                let idx = r * self.cols + c;
                let prev = self.cells[idx].level();
                report.ideal_pulses += (prev as i32 - target as i32).unsigned_abs() as u64;
                match self.faults.as_ref().and_then(|f| f.get(r, c)) {
                    Some(kind) => {
                        // The driver pulses and verifies up to the budget,
                        // but the cell never moves.
                        let actual = kind.effective_level(self.cells[idx].max_level());
                        let wasted = if actual == target {
                            // Fault happens to pin the cell at the target:
                            // first verify passes, no pulses needed.
                            report.verify_reads += 1;
                            0
                        } else {
                            report.verify_reads += policy.max_attempts as u64;
                            report.unrecoverable.push(UnrecoverableCell {
                                row: r,
                                col: c,
                                target,
                                actual,
                            });
                            policy.max_attempts as u64
                        };
                        report.pulses += wasted;
                        // The wasted retry pulses still stress the pinned
                        // cell's oxide.
                        self.note_wear_pulses(r, c, wasted);
                        // Track the intent so a later repair + rewrite
                        // starts from the right place.
                        self.cells[idx].program(target);
                    }
                    None => {
                        let w = self.cells[idx].program_verify(target, policy, rng);
                        if w.pulses > 0 {
                            if let Some(d) = self.drift.as_mut() {
                                d.note_program(r, c);
                            }
                            if let Some(n) = self.noise.as_mut() {
                                n.note_program(r, c);
                            }
                            // Every pulse (including verify retries) wears
                            // the cell; a budget crossing kills it for all
                            // *subsequent* accesses — this write's charge
                            // already landed.
                            self.note_wear_pulses(r, c, u64::from(w.pulses));
                        }
                        report.pulses += w.pulses as u64;
                        report.verify_reads += w.attempts as u64;
                        if !w.verified {
                            report.unrecoverable.push(UnrecoverableCell {
                                row: r,
                                col: c,
                                target,
                                actual: self.cells[idx].level(),
                            });
                        }
                    }
                }
            }
        }
        self.write_spikes += report.pulses;
        self.read_spikes += report.verify_reads;
        self.plane_cache = None;
        report
    }

    /// Bit-plane decomposition of the levels the next read will present —
    /// effective levels when any non-ideality is attached, raw stored
    /// levels otherwise.
    fn build_planes(&self) -> BitPlanes {
        let degraded = self.faults.is_some() || self.drift.is_some() || self.noise.is_some();
        if degraded {
            BitPlanes::pack(self.rows, self.cols, self.cell_bits(), |r, c| {
                self.effective_level(r, c)
            })
        } else {
            BitPlanes::pack(self.rows, self.cols, self.cell_bits(), |r, c| {
                self.cells[r * self.cols + c].level()
            })
        }
    }

    /// Whether the bookkeeping at the *end* of an MVM (read disturb,
    /// read-noise epoch bump) can change what the next read sees — if so
    /// the plane cache must not survive the call.
    fn reads_perturb_levels(&self) -> bool {
        self.drift
            .as_ref()
            .is_some_and(|d| d.model().disturb_per_level > 0)
            || self
                .noise
                .as_ref()
                .is_some_and(|n| n.model().read_sigma > 0.0)
    }

    /// In-situ MVM via the spike path: encodes `input` with an `input_bits`
    /// spike driver, streams the slots through the array, integrates the
    /// weighted bitline currents and fires. Returns the exact products
    /// `out[c] = Σ_r input[r]·level[r][c]`.
    ///
    /// This is the packed hot path: spike trains are packed 64 word lines
    /// per `u64` per time slot and the (effective) conductances are
    /// bit-plane decomposed, so each slot×plane partial sum is a popcount
    /// and a shift — bitwise identical to [`mvm_spiked_scalar`]
    /// (differentially tested), an order of magnitude fewer operations.
    /// The bit-plane decomposition is cached across calls and rebuilt only
    /// when something can change a read (writes, scrub, repair, clock
    /// advance, read disturb, per-read noise).
    ///
    /// A driver resolution above 32 clamps to 32 slots, exactly like the
    /// scalar path's [`SpikeDriver`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`; a value exceeding `input_bits` is
    /// debug-checked (release injects the low bits, like the driver).
    ///
    /// [`mvm_spiked_scalar`]: Self::mvm_spiked_scalar
    pub fn mvm_spiked(&mut self, input: &[u32], input_bits: u8) -> Vec<u64> {
        assert_eq!(input.len(), self.rows, "input length must equal row count");
        let bits = SpikeDriver::new(input_bits).bits();
        #[cfg(debug_assertions)]
        for &v in input {
            debug_assert!(
                bits >= 32 || (v as u64) < (1u64 << bits),
                "value {v} does not fit in {bits} bits"
            );
        }
        let spikes = PackedSpikes::encode(input, bits);
        self.read_spikes += spikes.spike_count();

        // Reads see the *effective* levels — faults pin their cells,
        // drift/disturb skews them and analog noise perturbs every access,
        // so resolve the array once before streaming (disturb and the
        // read-epoch bump from this MVM land afterwards; within one MVM
        // every slot integrates the same resolved conductances).
        let planes = match self.plane_cache.take() {
            Some(p) => p,
            None => self.build_planes(),
        };

        let mut fires: Vec<IntegrateFire> = vec![IntegrateFire::new(); self.cols];
        packed::integrate(&spikes, &planes, &mut fires);
        let out: Vec<u64> = fires.iter_mut().map(|f| f.fire()).collect();
        self.output_spikes += out.iter().sum::<u64>();

        // Every slot that drove a word line disturbed that row's cells.
        let low_mask = if bits >= 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        if let Some(d) = self.drift.as_mut() {
            for (r, &v) in input.iter().enumerate() {
                d.note_row_reads(r, (v & low_mask).count_ones() as u64);
            }
        }
        // The next array read draws fresh read noise.
        if let Some(n) = self.noise.as_mut() {
            n.note_mvm();
        }
        // Keep the decomposition only if this read left the levels (and
        // their noise epoch) untouched.
        if !self.reads_perturb_levels() {
            self.plane_cache = Some(planes);
        }
        out
    }

    /// The original scalar slot × row × column walk, retained verbatim as
    /// the differential-testing reference for [`mvm_spiked`]
    /// (identical output bits, spike accounting, disturb and noise-epoch
    /// bookkeeping — property-tested).
    ///
    /// [`mvm_spiked`]: Self::mvm_spiked
    pub fn mvm_spiked_scalar(&mut self, input: &[u32], input_bits: u8) -> Vec<u64> {
        assert_eq!(input.len(), self.rows, "input length must equal row count");
        let driver = SpikeDriver::new(input_bits);
        let trains: Vec<SpikeTrain> = driver.encode_vector(input);
        self.read_spikes += trains.iter().map(|t| t.spike_count() as u64).sum::<u64>();

        let degraded = self.faults.is_some() || self.drift.is_some() || self.noise.is_some();
        let eff: Option<Vec<u8>> = degraded.then(|| {
            (0..self.rows * self.cols)
                .map(|i| self.effective_level(i / self.cols, i % self.cols))
                .collect()
        });

        let mut fires: Vec<IntegrateFire> = vec![IntegrateFire::new(); self.cols];
        // Stream time slots (LSB first); within a slot all word lines drive
        // their bitlines simultaneously — the analog accumulation. The loop
        // is clamped to the driver's resolution: slots the clamped driver
        // never generates inject nothing.
        for slot in 0..driver.bits() as usize {
            let w = SpikeTrain::slot_weight(slot);
            for (r, train) in trains.iter().enumerate() {
                if !train.fires(slot) {
                    continue;
                }
                let base = r * self.cols;
                for (c, inf) in fires.iter_mut().enumerate() {
                    let g = match &eff {
                        Some(levels) => levels[base + c],
                        None => self.cells[base + c].level(),
                    } as u64;
                    if g != 0 {
                        inf.integrate(g * w);
                    }
                }
            }
        }
        let out: Vec<u64> = fires.iter_mut().map(|f| f.fire()).collect();
        self.output_spikes += out.iter().sum::<u64>();
        if let Some(d) = self.drift.as_mut() {
            for (r, train) in trains.iter().enumerate() {
                d.note_row_reads(r, train.spike_count() as u64);
            }
        }
        if let Some(n) = self.noise.as_mut() {
            n.note_mvm();
        }
        // Same coherence rule as the packed path: if this read's disturb /
        // noise-epoch bookkeeping can change what the next read sees, any
        // cached bit-plane decomposition is stale. (The cache is only ever
        // populated when reads are non-perturbing, but keeping the
        // invalidation local makes the invariant checkable per method —
        // PL061 — instead of resting on a global argument.)
        if self.reads_perturb_levels() {
            self.plane_cache = None;
        }
        out
    }

    /// Batched MVM: one call per *batch* instead of per sample. Semantics
    /// are exactly `inputs.iter().map(|x| self.mvm_spiked(x, input_bits))`
    /// — including disturb/noise-epoch ordering — but the bit-plane
    /// decomposition is amortized across the whole batch whenever reads
    /// don't perturb the array, which is where the multi-image speedup
    /// comes from.
    pub fn mvm_spiked_batch(&mut self, inputs: &[Vec<u32>], input_bits: u8) -> Vec<Vec<u64>> {
        inputs
            .iter()
            .map(|x| self.mvm_spiked(x, input_bits))
            .collect()
    }

    /// Scrubs `row_count` word lines starting at `row_start` (wrapping
    /// around the array): each healthy cell is read back and, if drift or
    /// disturb moved it off its programmed level, re-programmed to that
    /// level through the program-and-verify loop. Fault-pinned cells cost
    /// one verify read and are skipped — scrub cannot recover them and
    /// they were already reported at commissioning.
    ///
    /// Verify reads and re-programming pulses are counted exactly like
    /// write-path costs, so the energy/endurance accounting sees scrub
    /// wear. Cells that actually received pulses restart their
    /// degradation clock.
    pub fn scrub_rows(
        &mut self,
        row_start: usize,
        row_count: usize,
        policy: &VerifyPolicy,
        rng: &mut impl Rng,
    ) -> ProgramReport {
        let mut report = ProgramReport::default();
        for i in 0..row_count.min(self.rows) {
            let r = (row_start + i) % self.rows;
            for c in 0..self.cols {
                let idx = r * self.cols + c;
                if self.faults.as_ref().and_then(|f| f.get(r, c)).is_some() {
                    report.verify_reads += 1;
                    continue;
                }
                let target = self.cells[idx].level();
                let actual = self.effective_level(r, c);
                // Materialize the degradation in the cell, then drive it
                // back through the standard verify loop. A clean cell
                // costs exactly one verify read and zero pulses.
                let _ = self.cells[idx].program(actual);
                let w = self.cells[idx].program_verify(target, policy, rng);
                report.ideal_pulses +=
                    u64::from((i32::from(actual) - i32::from(target)).unsigned_abs());
                report.pulses += u64::from(w.pulses);
                report.verify_reads += u64::from(w.attempts);
                if w.pulses > 0 {
                    if let Some(d) = self.drift.as_mut() {
                        d.note_program(r, c);
                    }
                    if let Some(n) = self.noise.as_mut() {
                        n.note_program(r, c);
                    }
                    // Scrub re-pulses wear cells out like any other write.
                    self.note_wear_pulses(r, c, u64::from(w.pulses));
                }
                if !w.verified {
                    report.unrecoverable.push(UnrecoverableCell {
                        row: r,
                        col: c,
                        target,
                        actual: self.cells[idx].level(),
                    });
                }
            }
        }
        self.write_spikes += report.pulses;
        self.read_spikes += report.verify_reads;
        self.plane_cache = None;
        report
    }

    /// Input spikes consumed so far.
    pub fn read_spikes(&self) -> u64 {
        self.read_spikes
    }

    /// Programming pulses issued so far.
    pub fn write_spikes(&self) -> u64 {
        self.write_spikes
    }

    /// Output spikes fired so far.
    pub fn output_spikes(&self) -> u64 {
        self.output_spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_mvm(levels: &[Vec<u8>], input: &[u32]) -> Vec<u64> {
        let cols = levels[0].len();
        (0..cols)
            .map(|c| {
                levels
                    .iter()
                    .zip(input)
                    .map(|(row, &x)| row[c] as u64 * x as u64)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn mvm_known_values() {
        let mut xbar = Crossbar::new(3, 2, 4);
        let levels = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        xbar.program(&levels);
        let out = xbar.mvm_spiked(&[7, 8, 9], 8);
        assert_eq!(out, vec![7 + 24 + 45, 14 + 32 + 54]);
    }

    #[test]
    fn spike_accounting() {
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&[vec![15, 15], vec![15, 15]]);
        assert_eq!(xbar.write_spikes(), 60);
        xbar.mvm_spiked(&[0b101, 0b1], 4);
        assert_eq!(xbar.read_spikes(), 3); // popcounts 2 + 1
        assert!(xbar.output_spikes() > 0);
    }

    #[test]
    fn zero_input_zero_output() {
        let mut xbar = Crossbar::new(4, 4, 4);
        xbar.program(&[vec![15; 4], vec![15; 4], vec![15; 4], vec![15; 4]]);
        assert_eq!(xbar.mvm_spiked(&[0; 4], 16), vec![0; 4]);
        assert_eq!(xbar.read_spikes(), 0);
    }

    #[test]
    fn drift_corrupts_mvm_and_scrub_restores() {
        use crate::drift::DriftModel;
        use rand::{rngs::StdRng, SeedableRng};
        let model = DriftModel {
            nu: 0.15,
            nu_sigma: 0.0,
            t0_cycles: 10,
            disturb_per_level: 0,
        };
        let levels = vec![vec![9, 12], vec![15, 6]];
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&levels);
        xbar.attach_drift(model, 5);

        let fresh = xbar.mvm_spiked(&[1, 1], 4);
        assert_eq!(fresh, reference_mvm(&levels, &[1, 1]));

        xbar.advance_cycles(1_000_000);
        assert!(xbar.drifted_cells() > 0, "a megacycle must drift something");
        let aged = xbar.mvm_spiked(&[1, 1], 4);
        assert_ne!(aged, fresh, "drifted weights change the product");

        let mut rng = StdRng::seed_from_u64(0);
        let report = xbar.scrub_rows(0, 2, &VerifyPolicy::default(), &mut rng);
        assert!(report.pulses > 0, "scrub must re-pulse drifted cells");
        assert_eq!(xbar.drifted_cells(), 0);
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), fresh, "scrub restores reads");
    }

    #[test]
    fn zero_pulse_rewrite_does_not_reset_aging() {
        use crate::drift::DriftModel;
        let model = DriftModel {
            nu: 0.15,
            nu_sigma: 0.0,
            t0_cycles: 10,
            disturb_per_level: 0,
        };
        let levels = vec![vec![15, 15], vec![15, 15]];
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&levels);
        xbar.attach_drift(model, 5);
        xbar.advance_cycles(1_000_000);
        let before = xbar.drifted_cells();
        assert!(before > 0);
        // Writing the same values issues no pulses, so cells keep aging.
        assert_eq!(xbar.program(&levels), 0);
        assert_eq!(xbar.drifted_cells(), before);
    }

    #[test]
    fn read_disturb_accumulates_over_mvms() {
        use crate::drift::DriftModel;
        let model = DriftModel {
            nu: 0.0,
            nu_sigma: 0.0,
            t0_cycles: 1,
            disturb_per_level: 50,
        };
        let levels = vec![vec![3, 3], vec![3, 3]];
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&levels);
        xbar.attach_drift(model, 5);
        // Each MVM with input 15 (4 slots firing) adds 4 slot-reads per row.
        for _ in 0..13 {
            xbar.mvm_spiked(&[15, 15], 4);
        }
        // 52 slot-reads ≥ 50 ⇒ every cell now reads one level high.
        assert_eq!(xbar.drifted_cells(), 4);
        assert_eq!(xbar.effective_level(0, 0), 4);
        let out = xbar.mvm_spiked(&[1, 1], 4);
        assert_eq!(out, vec![8, 8], "disturbed cells read 4 instead of 3");
    }

    #[test]
    fn scrub_on_clean_array_costs_one_read_per_cell() {
        use crate::drift::DriftModel;
        use rand::{rngs::StdRng, SeedableRng};
        let mut xbar = Crossbar::new(3, 3, 4);
        xbar.program(&[vec![5; 3], vec![5; 3], vec![5; 3]]);
        xbar.attach_drift(DriftModel::ideal(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let report = xbar.scrub_rows(0, 3, &VerifyPolicy::default(), &mut rng);
        assert_eq!(report.pulses, 0);
        assert_eq!(report.verify_reads, 9);
        assert!(report.unrecoverable.is_empty());
    }

    #[test]
    fn scrub_skips_fault_pinned_cells() {
        use crate::drift::DriftModel;
        use crate::fault::FaultKind;
        use rand::{rngs::StdRng, SeedableRng};
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&[vec![7, 7], vec![7, 7]]);
        let mut map = FaultMap::pristine(2, 2);
        map.set(0, 0, FaultKind::StuckAtZero);
        xbar.attach_faults(map);
        xbar.attach_drift(DriftModel::ideal(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let report = xbar.scrub_rows(0, 2, &VerifyPolicy::default(), &mut rng);
        // Pinned cell: one probe read, no pulses, not re-reported.
        assert_eq!(report.pulses, 0);
        assert_eq!(report.verify_reads, 4);
        assert!(report.unrecoverable.is_empty());
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn program_rejects_bad_shape() {
        Crossbar::new(2, 2, 4).program(&[vec![0, 0]]);
    }

    #[test]
    fn stuck_cells_distort_reads_until_cleared() {
        use crate::fault::FaultKind;
        let mut xbar = Crossbar::new(2, 2, 4);
        let levels = vec![vec![3, 5], vec![7, 9]];
        xbar.program(&levels);
        let mut map = FaultMap::pristine(2, 2);
        map.set(0, 1, FaultKind::StuckAtZero);
        map.set(1, 1, FaultKind::StuckAtMax);
        xbar.attach_faults(map);

        assert_eq!(xbar.effective_level(0, 0), 3);
        assert_eq!(xbar.effective_level(0, 1), 0);
        assert_eq!(xbar.effective_level(1, 1), 15);
        // Column 0 is healthy; column 1 reads through the pinned levels.
        let out = xbar.mvm_spiked(&[1, 1], 4);
        assert_eq!(out, vec![3 + 7, 15]);

        xbar.clear_fault_col(1);
        let out = xbar.mvm_spiked(&[1, 1], 4);
        assert_eq!(out, vec![3 + 7, 5 + 9], "repair restores stored levels");
    }

    #[test]
    fn program_verify_reports_pinned_cells() {
        use crate::fault::FaultKind;
        use rand::{rngs::StdRng, SeedableRng};
        let mut xbar = Crossbar::new(2, 2, 4);
        let mut map = FaultMap::pristine(2, 2);
        map.set(1, 0, FaultKind::StuckAtZero);
        xbar.attach_faults(map);

        let policy = VerifyPolicy::with_attempts(3);
        let mut rng = StdRng::seed_from_u64(0);
        let report = xbar.program_verify(&[vec![4, 4], vec![4, 4]], &policy, &mut rng);

        assert_eq!(report.unrecoverable.len(), 1);
        let bad = report.unrecoverable[0];
        assert_eq!((bad.row, bad.col, bad.target, bad.actual), (1, 0, 4, 0));
        // Healthy cells: 1 attempt × 4 pulses each; the stuck cell burns the
        // whole 3-attempt budget.
        assert_eq!(report.ideal_pulses, 16);
        assert_eq!(report.pulses, 12 + 3);
        assert_eq!(report.verify_reads, 3 + 3);
        assert_eq!(xbar.write_spikes(), report.pulses);
        assert_eq!(xbar.read_spikes(), report.verify_reads);
    }

    #[test]
    fn program_verify_noiseless_matches_plain_program() {
        use rand::{rngs::StdRng, SeedableRng};
        let levels = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let mut plain = Crossbar::new(2, 3, 4);
        let plain_pulses = plain.program(&levels);

        let mut verified = Crossbar::new(2, 3, 4);
        let mut rng = StdRng::seed_from_u64(0);
        let report = verified.program_verify(&levels, &VerifyPolicy::default(), &mut rng);
        assert!(report.unrecoverable.is_empty());
        assert_eq!(report.pulses, plain_pulses);
        assert_eq!(report.overhead(), 1.0);
        assert_eq!(
            verified.mvm_spiked(&[1, 1], 4),
            plain.mvm_spiked(&[1, 1], 4)
        );
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn attach_faults_rejects_wrong_shape() {
        Crossbar::new(2, 2, 4).attach_faults(FaultMap::pristine(3, 2));
    }

    #[test]
    fn noise_corrupts_mvm_deterministically() {
        use crate::noise::NoiseModel;
        let levels = vec![vec![9, 12], vec![15, 6]];
        let strong = NoiseModel {
            lrs_sigma: 0.5,
            hrs_sigma: 0.8,
            ir_drop: 0.3,
            read_sigma: 0.1,
            g_ratio: 0.05,
        };
        let mut a = Crossbar::new(2, 2, 4);
        a.program(&levels);
        a.attach_noise(strong, 7);
        let mut b = a.clone();
        let ya = a.mvm_spiked(&[3, 5], 4);
        let yb = b.mvm_spiked(&[3, 5], 4);
        assert_eq!(ya, yb, "same seed and read epoch must match bitwise");
        assert_ne!(
            ya,
            reference_mvm(&levels, &[3, 5]),
            "strong noise must perturb the product"
        );
        // A second MVM draws the next read epoch — the replayed pair still
        // agrees with itself.
        assert_eq!(a.mvm_spiked(&[3, 5], 4), b.mvm_spiked(&[3, 5], 4));
    }

    #[test]
    fn ideal_noise_attach_leaves_mvm_bits_identical() {
        use crate::noise::NoiseModel;
        let levels = vec![vec![1, 14], vec![7, 3], vec![0, 9]];
        let mut plain = Crossbar::new(3, 2, 4);
        plain.program(&levels);
        let mut noisy = plain.clone();
        noisy.attach_noise(NoiseModel::ideal(), 99);
        for input in [[5u32, 0, 11], [1, 1, 1], [65535, 0, 32768]] {
            assert_eq!(
                plain.mvm_spiked(&input, 16),
                noisy.mvm_spiked(&input, 16),
                "ideal noise must be an exact no-op"
            );
        }
        assert_eq!(plain.read_spikes(), noisy.read_spikes());
        assert_eq!(plain.output_spikes(), noisy.output_spikes());
    }

    /// Regression for the release-profile crash: `input_bits > 32` used to
    /// walk slots past the clamped driver's train length and index out of
    /// bounds inside `SpikeTrain::fires`. Both paths must now clamp to the
    /// driver resolution instead of panicking (this test runs in every
    /// profile; release is the one that used to crash because the
    /// debug-assert in `SpikeDriver::new` is compiled out there).
    #[test]
    fn input_bits_over_32_clamps_instead_of_panicking() {
        let levels = vec![vec![3u8, 5], vec![7, 9], vec![11, 13]];
        let input = [1u32, 70_000, u32::MAX];
        let mut packed = Crossbar::new(3, 2, 4);
        packed.program(&levels);
        let mut scalar = packed.clone();
        let out = packed.mvm_spiked(&input, 40);
        // A 40-bit request clamps to the 32-slot ladder, which injects the
        // full u32 value — the exact integer product.
        assert_eq!(out, reference_mvm(&levels, &input));
        assert_eq!(out, scalar.mvm_spiked_scalar(&input, 40));
        assert_eq!(packed.read_spikes(), scalar.read_spikes());
    }

    #[test]
    fn batch_matches_sequential_calls_bitwise() {
        use crate::noise::NoiseModel;
        let levels = vec![vec![9u8, 12, 1], vec![15, 6, 0], vec![2, 3, 14]];
        let inputs: Vec<Vec<u32>> = vec![vec![3, 5, 250], vec![0, 0, 0], vec![255, 1, 128]];
        let mut seq = Crossbar::new(3, 3, 4);
        seq.program(&levels);
        seq.attach_noise(NoiseModel::with_strength(1.5), 11);
        let mut bat = seq.clone();
        let expect: Vec<Vec<u64>> = inputs.iter().map(|x| seq.mvm_spiked(x, 8)).collect();
        assert_eq!(bat.mvm_spiked_batch(&inputs, 8), expect);
        assert_eq!(bat.read_spikes(), seq.read_spikes());
        assert_eq!(bat.output_spikes(), seq.output_spikes());
    }

    #[test]
    fn plane_cache_tracks_repair_and_scrub() {
        use crate::drift::DriftModel;
        use crate::fault::FaultKind;
        use rand::{rngs::StdRng, SeedableRng};
        let levels = vec![vec![3u8, 5], vec![7, 9]];
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&levels);
        let mut map = FaultMap::pristine(2, 2);
        map.set(0, 1, FaultKind::StuckAtZero);
        xbar.attach_faults(map);
        xbar.attach_drift(
            DriftModel {
                nu: 0.15,
                nu_sigma: 0.0,
                t0_cycles: 10,
                disturb_per_level: 0,
            },
            5,
        );
        // Warm the cache, then change the array through every mutation
        // path and check reads follow.
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![3 + 7, 9]);
        xbar.clear_fault_col(1);
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![3 + 7, 5 + 9]);
        xbar.advance_cycles(1_000_000);
        let aged = xbar.mvm_spiked(&[1, 1], 4);
        assert_ne!(aged, vec![3 + 7, 5 + 9], "a megacycle must drift reads");
        let mut rng = StdRng::seed_from_u64(0);
        xbar.scrub_rows(0, 2, &VerifyPolicy::default(), &mut rng);
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![3 + 7, 5 + 9]);
        xbar.program(&[vec![1, 1], vec![1, 1]]);
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![2, 2]);
    }

    /// Enumerates every `&mut self` mutation path and asserts the packed
    /// (cached) MVM stays bitwise identical to a scalar recompute on a
    /// clone afterwards — i.e. no mutation can leave a stale `plane_cache`
    /// behind. This is the dynamic counterpart of the PL061 static
    /// cache-coherence pass: a forgotten invalidation in any listed method
    /// makes the packed probe read stale planes and diverge.
    #[test]
    fn mutating_methods_leave_no_stale_plane_cache() {
        use crate::drift::DriftModel;
        use crate::fault::FaultKind;
        use crate::noise::NoiseModel;
        use rand::{rngs::StdRng, SeedableRng};

        fn drifty() -> DriftModel {
            DriftModel {
                nu: 0.15,
                nu_sigma: 0.0,
                t0_cycles: 10,
                disturb_per_level: 0,
            }
        }
        fn disturby() -> DriftModel {
            DriftModel {
                nu: 0.0,
                nu_sigma: 0.0,
                t0_cycles: 1,
                disturb_per_level: 3,
            }
        }
        fn stuck_corner() -> FaultMap {
            let mut map = FaultMap::pristine(4, 4);
            map.set(0, 0, FaultKind::StuckAtZero);
            map
        }

        type Step = Box<dyn Fn(&mut Crossbar)>;
        let cases: Vec<(&str, Step, Step)> = vec![
            (
                "program",
                Box::new(|_| {}),
                Box::new(|x| {
                    x.program(&[
                        vec![2, 7, 1, 8],
                        vec![2, 8, 1, 8],
                        vec![2, 8, 4, 5],
                        vec![9, 0, 4, 5],
                    ]);
                }),
            ),
            (
                "program_verify",
                Box::new(|_| {}),
                Box::new(|x| {
                    let mut rng = StdRng::seed_from_u64(1);
                    x.program_verify(
                        &[
                            vec![3, 1, 4, 1],
                            vec![5, 9, 2, 6],
                            vec![5, 3, 5, 8],
                            vec![9, 7, 9, 3],
                        ],
                        &VerifyPolicy::default(),
                        &mut rng,
                    );
                }),
            ),
            (
                "attach_faults",
                Box::new(|_| {}),
                Box::new(|x| x.attach_faults(stuck_corner())),
            ),
            (
                "attach_drift",
                Box::new(|_| {}),
                Box::new(|x| x.attach_drift(drifty(), 5)),
            ),
            (
                "attach_noise",
                Box::new(|_| {}),
                Box::new(|x| x.attach_noise(NoiseModel::with_strength(1.0), 9)),
            ),
            (
                "advance_cycles",
                Box::new(|x| x.attach_drift(drifty(), 5)),
                Box::new(|x| x.advance_cycles(1_000_000)),
            ),
            (
                "clear_fault_col",
                Box::new(|x| x.attach_faults(stuck_corner())),
                Box::new(|x| x.clear_fault_col(0)),
            ),
            (
                "scrub_rows",
                Box::new(|x| {
                    x.attach_drift(drifty(), 5);
                    x.advance_cycles(1_000_000);
                }),
                Box::new(|x| {
                    let mut rng = StdRng::seed_from_u64(2);
                    x.scrub_rows(0, 4, &VerifyPolicy::default(), &mut rng);
                }),
            ),
            (
                "attach_wear",
                Box::new(|_| {}),
                Box::new(|x| x.attach_wear(WearModel::with_endurance(8.0), 3)),
            ),
            (
                "program under wear death",
                Box::new(|x| x.attach_wear(WearModel::with_endurance(4.0), 3)),
                Box::new(|x| {
                    // Large tuning swings push several cells over their
                    // ~4-pulse budgets, raising dead faults mid-write.
                    x.program(&[vec![15; 4], vec![0; 4], vec![15; 4], vec![0; 4]]);
                }),
            ),
            (
                "reprogram_col_from_spare",
                Box::new(|x| {
                    x.attach_wear(WearModel::with_endurance(4.0), 3);
                    x.program(&[vec![15; 4], vec![0; 4], vec![15; 4], vec![0; 4]]);
                }),
                Box::new(|x| {
                    let mut rng = StdRng::seed_from_u64(4);
                    x.reprogram_col_from_spare(1, &VerifyPolicy::default(), &mut rng);
                }),
            ),
            (
                "restore_levels",
                Box::new(|_| {}),
                Box::new(|x| {
                    x.restore_levels(&[7u8; 16]);
                }),
            ),
            (
                "restore_faults",
                Box::new(|_| {}),
                Box::new(|x| {
                    x.restore_faults(stuck_corner());
                }),
            ),
            (
                "restore_wear_counters",
                Box::new(|x| {
                    x.attach_wear(WearModel::with_endurance(4.0), 3);
                    x.program(&[vec![15; 4], vec![0; 4], vec![15; 4], vec![0; 4]]);
                }),
                Box::new(|x| {
                    x.restore_wear_counters(&[0; 16], &[0; 16]);
                    // The counters no longer match the fault map, so
                    // rebuild a coherent (empty) map too — this case only
                    // probes cache invalidation, not consistency.
                    x.restore_faults(FaultMap::pristine(4, 4));
                }),
            ),
            (
                "mvm_spiked under read disturb",
                Box::new(|x| x.attach_drift(disturby(), 5)),
                Box::new(|x| {
                    x.mvm_spiked(&[15, 15, 15, 15], 4);
                }),
            ),
            (
                "mvm_spiked_scalar under read disturb",
                Box::new(|x| x.attach_drift(disturby(), 5)),
                Box::new(|x| {
                    x.mvm_spiked_scalar(&[15, 15, 15, 15], 4);
                }),
            ),
        ];

        for (name, setup, mutate) in cases {
            let mut xbar = Crossbar::new(4, 4, 4);
            xbar.program(&[
                vec![9, 1, 14, 3],
                vec![0, 5, 7, 11],
                vec![13, 2, 4, 6],
                vec![8, 15, 10, 12],
            ]);
            setup(&mut xbar);
            // Warm the plane cache (kept only when reads are non-perturbing).
            xbar.mvm_spiked(&[1, 2, 3, 4], 4);
            mutate(&mut xbar);
            // The scalar reference never touches the cache, so a stale cache
            // in the packed path shows up as a bitwise divergence.
            let mut reference = xbar.clone();
            let probe = [3, 1, 4, 1];
            let packed = xbar.mvm_spiked(&probe, 4);
            let scalar = reference.mvm_spiked_scalar(&probe, 4);
            assert_eq!(packed, scalar, "{name}: packed MVM served stale planes");
        }
    }

    #[test]
    fn wear_exhaustion_raises_live_dead_faults() {
        use crate::wear::WearModel;
        let mut xbar = Crossbar::new(2, 2, 4);
        // Deterministic budgets: every cell survives exactly 20 pulses.
        xbar.attach_wear(
            WearModel {
                median_writes: 20.0,
                sigma: 0.0,
            },
            1,
        );
        // 15 pulses per cell: everyone still alive.
        xbar.program(&[vec![15, 15], vec![15, 15]]);
        assert!(xbar.fault_map().is_none(), "no deaths before the budget");
        // +15 pulses (down to 0) crosses every 20-pulse budget: the whole
        // array dies, pinned at level 0 on every read.
        xbar.program(&[vec![0, 0], vec![0, 0]]);
        let map = xbar.fault_map().unwrap();
        assert_eq!(map.fault_count(), 4);
        assert_eq!(map.get(0, 0), Some(crate::fault::FaultKind::Dead));
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![0, 0]);
    }

    #[test]
    fn wear_counts_verify_retry_pulses() {
        use crate::wear::WearModel;
        use rand::{rngs::StdRng, SeedableRng};
        let mut xbar = Crossbar::new(1, 1, 4);
        xbar.attach_wear(
            WearModel {
                median_writes: 1000.0,
                sigma: 0.0,
            },
            1,
        );
        let noisy = VerifyPolicy {
            max_attempts: 8,
            write_sigma: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let report = xbar.program_verify(&[vec![9]], &noisy, &mut rng);
        let spent = 1000 - xbar.wear_state().unwrap().remaining_writes(0, 0);
        assert_eq!(spent, report.pulses, "wear must bill retry pulses too");
    }

    #[test]
    fn spare_remap_restores_reads_at_honest_cost() {
        use crate::wear::WearModel;
        use rand::{rngs::StdRng, SeedableRng};
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.attach_wear(
            WearModel {
                median_writes: 20.0,
                sigma: 0.0,
            },
            1,
        );
        xbar.program(&[vec![9, 5], vec![7, 3]]);
        // Burn out column 0 only.
        xbar.program(&[vec![0, 5], vec![15, 3]]);
        xbar.program(&[vec![9, 5], vec![7, 3]]);
        let map = xbar.fault_map().unwrap();
        assert!(map.get(0, 0).is_some() && map.get(1, 0).is_some());
        assert_eq!(map.faulty_cols(), vec![0]);

        let before_writes = xbar.write_spikes();
        let mut rng = StdRng::seed_from_u64(0);
        let report = xbar.reprogram_col_from_spare(0, &VerifyPolicy::default(), &mut rng);
        // The spare starts pristine: reprogramming to intent (9, 7) costs
        // exactly those tuning pulses, billed to the write counter.
        assert_eq!(report.pulses, 9 + 7);
        assert_eq!(report.ideal_pulses, 9 + 7);
        assert_eq!(report.verify_reads, 2);
        assert!(report.unrecoverable.is_empty());
        assert_eq!(xbar.write_spikes(), before_writes + 16);
        assert!(xbar.fault_map().unwrap().get(0, 0).is_none());
        // Fresh spare cells carry a fresh budget and full read fidelity.
        assert_eq!(xbar.wear_state().unwrap().remaining_writes(0, 0), 20 - 9);
        assert_eq!(xbar.mvm_spiked(&[1, 1], 4), vec![9 + 7, 5 + 3]);
    }

    #[test]
    fn ideal_wear_attach_is_exact_noop() {
        use crate::wear::WearModel;
        let levels = vec![vec![1u8, 14], vec![7, 3]];
        let mut plain = Crossbar::new(2, 2, 4);
        plain.program(&levels);
        let mut worn = plain.clone();
        worn.attach_wear(WearModel::ideal(), 99);
        assert!(worn.wear_state().is_none());
        worn.program(&[vec![4, 4], vec![4, 4]]);
        plain.program(&[vec![4, 4], vec![4, 4]]);
        assert_eq!(plain.mvm_spiked(&[2, 3], 4), worn.mvm_spiked(&[2, 3], 4));
        assert_eq!(plain.write_spikes(), worn.write_spikes());
        assert!(worn.fault_map().is_none());
    }

    #[test]
    fn wear_state_roundtrips_through_restore() {
        use crate::wear::WearModel;
        let model = WearModel::with_endurance(50.0);
        let mut xbar = Crossbar::new(3, 3, 4);
        xbar.attach_wear(model, 7);
        xbar.program(&[vec![9; 3], vec![5; 3], vec![12; 3]]);
        let (p, g) = xbar.wear_state().unwrap().counters();
        let (p, g) = (p.to_vec(), g.to_vec());
        let levels = xbar.stored_levels();
        let (rs, ws, os) = xbar.spike_counters();

        let mut fresh = Crossbar::new(3, 3, 4);
        fresh.attach_wear(model, 7);
        assert!(fresh.restore_levels(&levels));
        assert!(fresh.restore_wear_counters(&p, &g));
        fresh.restore_spike_counters(rs, ws, os);
        assert_eq!(fresh.wear_state(), xbar.wear_state());
        assert_eq!(fresh.stored_levels(), xbar.stored_levels());
        assert_eq!(fresh.spike_counters(), xbar.spike_counters());
        assert_eq!(
            fresh.mvm_spiked(&[1, 1, 1], 4),
            xbar.mvm_spiked(&[1, 1, 1], 4)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Differential pin: the packed hot path is bitwise identical to
        /// the scalar reference — outputs *and* spike/disturb/noise
        /// bookkeeping — across random crossbars, every legal driver
        /// resolution, and attached fault / drift(+disturb) / noise state,
        /// over several consecutive MVMs (which exercises plane-cache
        /// reuse and invalidation).
        #[test]
        fn packed_mvm_matches_scalar_under_nonidealities(
            rows in 1usize..70,
            cols in 1usize..5,
            input_bits in 1u8..=32,
            fault_rate in 0.0f64..0.2,
            drift_sel in 0u8..2,
            noise_strength in 0.0f64..2.0,
            seed in 0u64..1000,
        ) {
            use crate::drift::DriftModel;
            use crate::fault::FaultModel;
            use crate::noise::NoiseModel;
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let max = if input_bits >= 32 { u32::MAX } else { (1u32 << input_bits) - 1 };
            let inputs: Vec<Vec<u32>> = (0..3)
                .map(|_| (0..rows).map(|_| rng.random_range(0u32..=max)).collect())
                .collect();

            let mut xbar = Crossbar::new(rows, cols, 4);
            xbar.program(&levels);
            if fault_rate > 0.0 {
                let fm = FaultModel::with_stuck_rate(fault_rate);
                xbar.attach_faults(FaultMap::generate(rows, cols, &fm, seed));
            }
            if drift_sel == 1 {
                xbar.attach_drift(
                    DriftModel { nu: 0.1, nu_sigma: 0.05, t0_cycles: 8, disturb_per_level: 40 },
                    seed,
                );
                xbar.advance_cycles(5_000);
            }
            if noise_strength > 0.0 {
                xbar.attach_noise(NoiseModel::with_strength(noise_strength), seed);
            }
            let mut reference = xbar.clone();

            for input in &inputs {
                prop_assert_eq!(
                    xbar.mvm_spiked(input, input_bits),
                    reference.mvm_spiked_scalar(input, input_bits)
                );
            }
            prop_assert_eq!(xbar.read_spikes(), reference.read_spikes());
            prop_assert_eq!(xbar.output_spikes(), reference.output_spikes());
            // Disturb counters advanced identically ⇒ the arrays stay
            // bitwise interchangeable for every future read.
            xbar.advance_cycles(1_000);
            reference.advance_cycles(1_000);
            prop_assert_eq!(
                xbar.mvm_spiked(&inputs[0], input_bits),
                reference.mvm_spiked_scalar(&inputs[0], input_bits)
            );
        }

        /// Attaching `NoiseModel::ideal()` leaves `mvm_spiked` output bits
        /// identical to the no-model path on random crossbars — the exact
        /// no-op contract of the noise layer.
        #[test]
        fn ideal_noise_is_noop_on_random_crossbars(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..1000,
        ) {
            use crate::noise::NoiseModel;
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..65536)).collect();
            let mut plain = Crossbar::new(rows, cols, 4);
            plain.program(&levels);
            let mut noisy = plain.clone();
            noisy.attach_noise(NoiseModel::ideal(), seed);
            prop_assert_eq!(noisy.mvm_spiked(&input, 16), plain.mvm_spiked(&input, 16));
        }

        /// Same seed ⇒ bitwise-identical noisy reads across repeated
        /// replays, at any noise strength.
        #[test]
        fn noisy_reads_replay_bitwise(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..500,
            strength in 0.1f64..3.0,
        ) {
            use crate::noise::NoiseModel;
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..256)).collect();
            let build = || {
                let mut x = Crossbar::new(rows, cols, 4);
                x.program(&levels);
                x.attach_noise(NoiseModel::with_strength(strength), seed);
                x
            };
            let (mut a, mut b) = (build(), build());
            for _ in 0..3 {
                prop_assert_eq!(a.mvm_spiked(&input, 8), b.mvm_spiked(&input, 8));
            }
        }

        /// The analog spike path computes exactly the integer MVM.
        #[test]
        fn spiked_mvm_is_exact(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..65536)).collect();
            let mut xbar = Crossbar::new(rows, cols, 4);
            xbar.program(&levels);
            prop_assert_eq!(xbar.mvm_spiked(&input, 16), reference_mvm(&levels, &input));
        }

        /// After drift reaches (at least) the first misread, one full scrub
        /// pass restores every cell to its programmed level.
        #[test]
        fn scrub_restores_after_first_misread(
            rows in 1usize..6,
            cols in 1usize..6,
            seed in 0u64..500,
        ) {
            use crate::drift::DriftModel;
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(1u8..16)).collect())
                .collect();
            let model = DriftModel {
                nu: 0.1,
                nu_sigma: 0.05,
                t0_cycles: 8,
                disturb_per_level: 0,
            };
            let mut xbar = Crossbar::new(rows, cols, 4);
            xbar.program(&levels);
            xbar.attach_drift(model, seed);
            let mut steps = 0;
            while xbar.drifted_cells() == 0 && steps < 20 {
                xbar.advance_cycles(1000);
                steps += 1;
            }
            prop_assert!(xbar.drifted_cells() > 0, "never drifted to a misread");
            let mut prng = StdRng::seed_from_u64(0);
            let report = xbar.scrub_rows(0, rows, &VerifyPolicy::default(), &mut prng);
            prop_assert!(report.unrecoverable.is_empty());
            for (r, row) in levels.iter().enumerate() {
                for (c, &lvl) in row.iter().enumerate() {
                    prop_assert_eq!(xbar.effective_level(r, c), lvl);
                }
            }
        }

        /// MVM is linear in the input: f(a) + f(b) == f(a+b).
        #[test]
        fn mvm_linearity(seed in 0u64..1000) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..4)
                .map(|_| (0..3).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let a: Vec<u32> = (0..4).map(|_| rng.random_range(0u32..1 << 14)).collect();
            let b: Vec<u32> = (0..4).map(|_| rng.random_range(0u32..1 << 14)).collect();
            let sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let mut xbar = Crossbar::new(4, 3, 4);
            xbar.program(&levels);
            let fa = xbar.mvm_spiked(&a, 16);
            let fb = xbar.mvm_spiked(&b, 16);
            let fs = xbar.mvm_spiked(&sum, 16);
            let added: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
            prop_assert_eq!(fs, added);
        }
    }
}
