//! A single ReRAM crossbar array performing in-situ matrix–vector
//! multiplication through the spike/integrate-and-fire path.

use crate::cell::ReramCell;
use crate::integrate_fire::IntegrateFire;
use crate::spike::{SpikeDriver, SpikeTrain};

/// A `rows × cols` crossbar of multi-level cells.
///
/// Word lines carry the (spike-coded) input vector; each bit line sums the
/// currents of its column's cells, so column `c` computes
/// `Σ_r input[r] · level[r][c]` exactly — verified against plain integer
/// arithmetic by property tests.
///
/// The struct also counts input/output/programming spikes, the quantities
/// the energy model (Sec. 6.2 constants) is built on.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<ReramCell>, // row-major
    read_spikes: u64,
    write_spikes: u64,
    output_spikes: u64,
}

impl Crossbar {
    /// Creates an all-zero (high-resistance) crossbar of `bits`-bit cells.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero, or `bits` is out of range.
    pub fn new(rows: usize, cols: usize, bits: u8) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar must be non-empty");
        Crossbar {
            rows,
            cols,
            cells: vec![ReramCell::new(bits); rows * cols],
            read_spikes: 0,
            write_spikes: 0,
            output_spikes: 0,
        }
    }

    /// Word-line count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bit-line count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell resolution in bits.
    pub fn cell_bits(&self) -> u8 {
        self.cells[0].bits()
    }

    /// Level of the cell at `(row, col)`.
    pub fn level(&self, row: usize, col: usize) -> u8 {
        self.cells[row * self.cols + col].level()
    }

    /// Programs the whole array from a row-major level matrix; counts the
    /// tuning pulses as write spikes. Returns the pulse count.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is not `rows × cols` or any level is over-range.
    pub fn program(&mut self, levels: &[Vec<u8>]) -> u64 {
        assert_eq!(levels.len(), self.rows, "level matrix row count mismatch");
        let mut pulses = 0u64;
        for (r, row) in levels.iter().enumerate() {
            assert_eq!(row.len(), self.cols, "level matrix column count mismatch");
            for (c, &lvl) in row.iter().enumerate() {
                pulses += self.cells[r * self.cols + c].program(lvl) as u64;
            }
        }
        self.write_spikes += pulses;
        pulses
    }

    /// In-situ MVM via the spike path: encodes `input` with an `input_bits`
    /// spike driver, streams the slots through the array, integrates the
    /// weighted bitline currents and fires. Returns the exact products
    /// `out[c] = Σ_r input[r]·level[r][c]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or a value exceeds `input_bits`.
    pub fn mvm_spiked(&mut self, input: &[u32], input_bits: u8) -> Vec<u64> {
        assert_eq!(input.len(), self.rows, "input length must equal row count");
        let driver = SpikeDriver::new(input_bits);
        let trains: Vec<SpikeTrain> = driver.encode_vector(input);
        self.read_spikes += trains.iter().map(|t| t.spike_count() as u64).sum::<u64>();

        let mut fires: Vec<IntegrateFire> = vec![IntegrateFire::new(); self.cols];
        // Stream time slots (LSB first); within a slot all word lines drive
        // their bitlines simultaneously — the analog accumulation.
        for slot in 0..input_bits as usize {
            let w = SpikeTrain::slot_weight(slot);
            for (r, train) in trains.iter().enumerate() {
                if !train.fires(slot) {
                    continue;
                }
                let base = r * self.cols;
                for (c, inf) in fires.iter_mut().enumerate() {
                    let g = self.cells[base + c].level() as u64;
                    if g != 0 {
                        inf.integrate(g * w);
                    }
                }
            }
        }
        let out: Vec<u64> = fires.iter_mut().map(|f| f.fire()).collect();
        self.output_spikes += out.iter().sum::<u64>();
        out
    }

    /// Input spikes consumed so far.
    pub fn read_spikes(&self) -> u64 {
        self.read_spikes
    }

    /// Programming pulses issued so far.
    pub fn write_spikes(&self) -> u64 {
        self.write_spikes
    }

    /// Output spikes fired so far.
    pub fn output_spikes(&self) -> u64 {
        self.output_spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_mvm(levels: &[Vec<u8>], input: &[u32]) -> Vec<u64> {
        let cols = levels[0].len();
        (0..cols)
            .map(|c| {
                levels
                    .iter()
                    .zip(input)
                    .map(|(row, &x)| row[c] as u64 * x as u64)
                    .sum()
            })
            .collect()
    }

    #[test]
    fn mvm_known_values() {
        let mut xbar = Crossbar::new(3, 2, 4);
        let levels = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        xbar.program(&levels);
        let out = xbar.mvm_spiked(&[7, 8, 9], 8);
        assert_eq!(out, vec![7 + 24 + 45, 14 + 32 + 54]);
    }

    #[test]
    fn spike_accounting() {
        let mut xbar = Crossbar::new(2, 2, 4);
        xbar.program(&[vec![15, 15], vec![15, 15]]);
        assert_eq!(xbar.write_spikes(), 60);
        xbar.mvm_spiked(&[0b101, 0b1], 4);
        assert_eq!(xbar.read_spikes(), 3); // popcounts 2 + 1
        assert!(xbar.output_spikes() > 0);
    }

    #[test]
    fn zero_input_zero_output() {
        let mut xbar = Crossbar::new(4, 4, 4);
        xbar.program(&[vec![15; 4], vec![15; 4], vec![15; 4], vec![15; 4]]);
        assert_eq!(xbar.mvm_spiked(&[0; 4], 16), vec![0; 4]);
        assert_eq!(xbar.read_spikes(), 0);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn program_rejects_bad_shape() {
        Crossbar::new(2, 2, 4).program(&[vec![0, 0]]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The analog spike path computes exactly the integer MVM.
        #[test]
        fn spiked_mvm_is_exact(
            rows in 1usize..8,
            cols in 1usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..cols).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let input: Vec<u32> = (0..rows).map(|_| rng.random_range(0u32..65536)).collect();
            let mut xbar = Crossbar::new(rows, cols, 4);
            xbar.program(&levels);
            prop_assert_eq!(xbar.mvm_spiked(&input, 16), reference_mvm(&levels, &input));
        }

        /// MVM is linear in the input: f(a) + f(b) == f(a+b).
        #[test]
        fn mvm_linearity(seed in 0u64..1000) {
            use rand::{rngs::StdRng, RngExt as _, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let levels: Vec<Vec<u8>> = (0..4)
                .map(|_| (0..3).map(|_| rng.random_range(0u8..16)).collect())
                .collect();
            let a: Vec<u32> = (0..4).map(|_| rng.random_range(0u32..1 << 14)).collect();
            let b: Vec<u32> = (0..4).map(|_| rng.random_range(0u32..1 << 14)).collect();
            let sum: Vec<u32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let mut xbar = Crossbar::new(4, 3, 4);
            xbar.program(&levels);
            let fa = xbar.mvm_spiked(&a, 16);
            let fb = xbar.mvm_spiked(&b, 16);
            let fs = xbar.mvm_spiked(&sum, 16);
            let added: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
            prop_assert_eq!(fs, added);
        }
    }
}
