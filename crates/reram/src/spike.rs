//! The weighted spike coding scheme of Fig. 9(a).
//!
//! A digital `N`-bit input value is injected over `N` time slots, **least
//! significant bit first** (LSBF). Inside the driver, `N` reference voltages
//! `V0/2^N .. V0/2` are generated; the timing control shifts key `K1`
//! non-decreasingly through them, and key `K2` (driven by the data bits)
//! decides whether the slot's spike fires. The charge a spike deposits is
//! therefore proportional to `2^slot`, so the integrated bitline charge
//! equals the exact weighted dot product — no DAC needed.

/// A spike train: one boolean per time slot, LSB first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpikeTrain {
    slots: Vec<bool>,
}

impl SpikeTrain {
    /// Encodes `value` into `bits` LSBF slots.
    ///
    /// A `value` that needs more than `bits` bits (or `bits > 32`) is
    /// debug-checked; in release the encoding keeps only the low `bits`
    /// bits — exactly what the slot ladder can physically inject.
    pub fn encode(value: u32, bits: u8) -> Self {
        debug_assert!(bits <= 32, "at most 32 slots supported");
        debug_assert!(
            bits >= 32 || value < (1u64 << bits) as u32,
            "value {value} does not fit in {bits} bits"
        );
        SpikeTrain {
            slots: (0..bits.min(32)).map(|i| (value >> i) & 1 == 1).collect(),
        }
    }

    /// Number of time slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if the train has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether slot `i` fires. Slots past the end of the train never
    /// fire — a driver clamped to fewer bits than the caller asked for
    /// simply injects nothing in the missing slots (no panic).
    pub fn fires(&self, slot: usize) -> bool {
        self.slots.get(slot).is_some_and(|&s| s)
    }

    /// Number of spikes actually fired (drives read energy).
    pub fn spike_count(&self) -> u32 {
        self.slots.iter().filter(|&&s| s).count() as u32
    }

    /// Decodes the train back into its value: `Σ fires(i)·2^i`.
    pub fn decode(&self) -> u32 {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| 1u32 << i)
            .sum()
    }

    /// The relative charge weight of slot `i` (`2^i` in LSB units) —
    /// the non-decreasing reference-voltage ladder of Fig. 9(a).
    pub fn slot_weight(slot: usize) -> u64 {
        1u64 << slot
    }
}

/// The spike driver: encodes input values for computation mode, and serves
/// as the write driver when tuning weights (Sec. 4.2.1). Drivers are shared
/// between adjacent subarrays, which the area model accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikeDriver {
    bits: u8,
}

impl SpikeDriver {
    /// A driver producing `bits`-slot trains.
    ///
    /// `bits` outside `1..=32` clamps to that range (in every profile):
    /// the reference-voltage ladder physically has at most 32 rungs, so a
    /// wider request degrades to the widest ladder instead of panicking.
    /// Callers streaming slots must bound their loops by [`Self::bits`],
    /// not by the resolution they asked for.
    pub fn new(bits: u8) -> Self {
        SpikeDriver {
            bits: bits.clamp(1, 32),
        }
    }

    /// Input resolution (time slots per value).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Encodes one value (see [`SpikeTrain::encode`] for range behaviour).
    pub fn encode(&self, value: u32) -> SpikeTrain {
        SpikeTrain::encode(value, self.bits)
    }

    /// Encodes a whole input vector (one train per word line).
    pub fn encode_vector(&self, values: &[u32]) -> Vec<SpikeTrain> {
        values.iter().map(|&v| self.encode(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_is_lsb_first() {
        let t = SpikeTrain::encode(0b1010, 4);
        assert!(!t.fires(0));
        assert!(t.fires(1));
        assert!(!t.fires(2));
        assert!(t.fires(3));
    }

    #[test]
    fn spike_count_is_popcount() {
        assert_eq!(SpikeTrain::encode(0b1011, 4).spike_count(), 3);
        assert_eq!(SpikeTrain::encode(0, 16).spike_count(), 0);
    }

    #[test]
    fn slot_weights_non_decreasing() {
        for i in 0..15 {
            assert!(SpikeTrain::slot_weight(i + 1) > SpikeTrain::slot_weight(i));
        }
    }

    #[test]
    fn driver_encodes_vectors() {
        let d = SpikeDriver::new(8);
        let trains = d.encode_vector(&[0, 255, 7]);
        assert_eq!(trains[1].spike_count(), 8);
        assert_eq!(trains[2].decode(), 7);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn rejects_overflow() {
        SpikeTrain::encode(16, 4);
    }

    #[test]
    fn out_of_range_slot_never_fires() {
        let t = SpikeTrain::encode(0b1111, 4);
        assert!(t.fires(3));
        assert!(!t.fires(4));
        assert!(!t.fires(1000));
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(v in 0u32..65536) {
            prop_assert_eq!(SpikeTrain::encode(v, 16).decode(), v);
        }

        #[test]
        fn charge_equals_value(v in 0u32..65536) {
            // Σ fires(i)·slot_weight(i) == v: the integrated charge of the
            // weighted spike train reproduces the digital value exactly.
            let t = SpikeTrain::encode(v, 16);
            let charge: u64 = (0..t.len())
                .filter(|&i| t.fires(i))
                .map(SpikeTrain::slot_weight)
                .sum();
            prop_assert_eq!(charge, v as u64);
        }
    }
}
