//! The workspace-wide per-cell random-stream convention.
//!
//! Every stochastic device model in this crate — fault-map generation
//! ([`fault`](crate::fault)), programming variation
//! ([`variation`](crate::variation)) and time-dependent drift
//! ([`drift`](crate::drift)) — derives its per-cell randomness from one
//! documented scheme so campaigns are reproducible regardless of thread
//! count, iteration order, or which models are enabled together:
//!
//! ```text
//! stream(seed, crossbar, row, col, epoch)
//! ```
//!
//! * `seed` — the campaign/matrix seed the caller owns;
//! * `crossbar` — index of the physical array within a
//!   [`ReramMatrix`](crate::ReramMatrix) (pos/neg × segment groups),
//!   folded in via [`crossbar_seed`] so the eight arrays fail and drift
//!   independently;
//! * `row`, `col` — the cell's word/bit line;
//! * `epoch` — the cell's *programming generation*: each reprogramming
//!   event starts a fresh stream, so a cell's post-write behaviour never
//!   depends on how often its neighbours were written.
//!
//! The mixer is the SplitMix64 finalizer applied to each field in turn —
//! the same permutation the workspace's `StdRng` stand-in uses — so any
//! two distinct field tuples land in statistically independent streams.

use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// SplitMix64 finalizer: one well-mixed 64-bit permutation step.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds a physical crossbar index into a matrix-level seed. Callers that
/// deal with a single array (e.g. [`FaultMap::generate`]) take the result
/// of this as their `seed`, with `crossbar` already bound.
///
/// [`FaultMap::generate`]: crate::fault::FaultMap::generate
pub fn crossbar_seed(seed: u64, crossbar: u64) -> u64 {
    mix64(seed ^ mix64(crossbar))
}

/// The documented `(seed, crossbar, row, col, epoch)` stream head: a
/// 64-bit value unique (to mixing) per field tuple. `seed` here is the
/// crossbar-qualified seed from [`crossbar_seed`] (or a raw campaign seed
/// with `crossbar` conventionally 0).
pub fn cell_stream(seed: u64, row: usize, col: usize, epoch: u64) -> u64 {
    let mut h = seed;
    h = mix64(h ^ (row as u64));
    h = mix64(h ^ (col as u64));
    h = mix64(h ^ epoch);
    h
}

/// A per-cell generator positioned at the head of the cell's stream.
pub fn cell_rng(seed: u64, row: usize, col: usize, epoch: u64) -> StdRng {
    StdRng::seed_from_u64(cell_stream(seed, row, col, epoch))
}

/// One uniform draw in `[0, 1)` from the head of the cell's stream — the
/// cheap path for single-draw consumers (fault-kind selection).
pub fn cell_unit(seed: u64, row: usize, col: usize, epoch: u64) -> f64 {
    // 53 uniform mantissa bits, matching StdRng's f64 sampling.
    (mix64(cell_stream(seed, row, col, epoch)) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// One standard-normal draw from the cell's stream (Irwin–Hall over 12
/// uniforms, the same approximation the rest of the workspace uses).
pub fn cell_gauss(seed: u64, row: usize, col: usize, epoch: u64) -> f64 {
    let mut rng = cell_rng(seed, row, col, epoch);
    (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        assert_eq!(cell_stream(7, 3, 4, 0), cell_stream(7, 3, 4, 0));
        assert_eq!(cell_unit(7, 3, 4, 0), cell_unit(7, 3, 4, 0));
    }

    #[test]
    fn every_field_matters() {
        let base = cell_stream(1, 2, 3, 4);
        assert_ne!(base, cell_stream(2, 2, 3, 4), "seed");
        assert_ne!(base, cell_stream(1, 3, 3, 4), "row");
        assert_ne!(base, cell_stream(1, 2, 4, 4), "col");
        assert_ne!(base, cell_stream(1, 2, 3, 5), "epoch");
        assert_ne!(crossbar_seed(1, 0), crossbar_seed(1, 1), "crossbar");
    }

    #[test]
    fn row_col_are_not_interchangeable() {
        // (row=2, col=5) and (row=5, col=2) must not collide: the mixer is
        // applied sequentially, not symmetrically.
        assert_ne!(cell_stream(9, 2, 5, 0), cell_stream(9, 5, 2, 0));
    }

    #[test]
    fn units_are_roughly_uniform() {
        let n = 4000;
        let mean: f64 = (0..n).map(|i| cell_unit(11, i, 0, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn gauss_has_unit_scale() {
        let n = 2000;
        let var: f64 = (0..n).map(|i| cell_gauss(13, i, 7, 1).powi(2)).sum::<f64>() / n as f64;
        assert!((var - 1.0).abs() < 0.15, "variance {var}");
    }
}
