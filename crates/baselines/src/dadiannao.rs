//! Published efficiency constants for the Sec. 6.6 comparison.
//!
//! The paper compares PipeLayer's computational efficiency (GOPS/s/mm²) and
//! power efficiency (GOPS/s/W) against DaDianNao \[44\] and ISAAC \[2\]. Only
//! the aggregate numbers enter the comparison; we record the published
//! values here (the OCR of the available text damages some digits — the
//! values below are the canonical ones from the DaDianNao/ISAAC papers and
//! the PipeLayer text, see DESIGN.md §8).

/// An accelerator's published efficiency pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Name used in the paper.
    pub name: &'static str,
    /// Computational efficiency, GOPS/s/mm².
    pub gops_per_mm2: f64,
    /// Power efficiency, GOPS/s/W.
    pub gops_per_w: f64,
}

/// DaDianNao (eDRAM-buffered ASIC).
pub const DADIANNAO: Efficiency = Efficiency {
    name: "DaDianNao",
    gops_per_mm2: 63.46,
    gops_per_w: 286.4,
};

/// ISAAC (ReRAM inference accelerator with ADCs and eDRAM buffers).
pub const ISAAC: Efficiency = Efficiency {
    name: "ISAAC",
    gops_per_mm2: 479.0,
    gops_per_w: 380.7,
};

/// PipeLayer's own published numbers (Sec. 6.6), used as the paper-side
/// reference in EXPERIMENTS.md.
pub const PIPELAYER_PUBLISHED: Efficiency = Efficiency {
    name: "PipeLayer (paper)",
    gops_per_mm2: 1485.0,
    gops_per_w: 142.9,
};

/// PipeLayer's published total area, mm².
pub const PIPELAYER_AREA_MM2: f64 = 82.6;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn paper_ordering_holds() {
        // Sec. 6.6: PipeLayer beats both on computational efficiency but
        // trails both on power efficiency (it writes all data to ReRAM).
        assert!(PIPELAYER_PUBLISHED.gops_per_mm2 > ISAAC.gops_per_mm2);
        assert!(ISAAC.gops_per_mm2 > DADIANNAO.gops_per_mm2);
        assert!(PIPELAYER_PUBLISHED.gops_per_w < DADIANNAO.gops_per_w);
        assert!(PIPELAYER_PUBLISHED.gops_per_w < ISAAC.gops_per_w);
    }
}
