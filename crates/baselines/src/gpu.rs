//! A calibrated GTX 1080 cost model.
//!
//! Stands in for the paper's measured baseline (Table 4: GTX 1080, 2560 CUDA
//! cores @ 1607 MHz, 8 GB GDDR5X @ 320 GB/s, Caffe, `caffe time` /
//! `nvidia-smi`). The model is a per-layer roofline:
//!
//! * convolutions are compute-bound at a fraction of peak FP32 throughput;
//! * inner-product layers are bound by the max of compute and weight
//!   traffic (large FC layers on small batches are bandwidth-bound — the
//!   reason MLPs show the largest PipeLayer speedups, Sec. 6.3);
//! * every layer pays kernel-launch overhead, and every batch pays a fixed
//!   framework/iteration overhead (dominant for the MNIST-scale networks);
//! * training costs the canonical 3× forward compute plus optimizer traffic.

use pipelayer_nn::spec::NetSpec;

/// Time and energy of a modelled GPU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuRun {
    /// Wall-clock seconds.
    pub time_s: f64,
    /// Energy in joules.
    pub energy_j: f64,
}

impl GpuRun {
    /// Images per second.
    pub fn throughput(&self, n_images: u64) -> f64 {
        n_images as f64 / self.time_s
    }
}

/// GTX 1080 parameters (Table 4) plus empirical utilisation factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak FP32 throughput, FLOP/s (2560 cores × 2 × 1.733 GHz boost).
    pub peak_flops: f64,
    /// Memory bandwidth, B/s.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Fraction of peak reached by convolution kernels.
    pub conv_utilization: f64,
    /// Fraction of peak reached by GEMM (inner-product) kernels.
    pub fc_utilization: f64,
    /// Per-kernel-launch overhead, seconds.
    pub launch_overhead_s: f64,
    /// Kernel launches per weighted layer per pass.
    pub kernels_per_layer: f64,
    /// Fixed framework overhead per iteration (Caffe data layer, host
    /// sync, solver bookkeeping), seconds. Dominates the MNIST-scale
    /// models, exactly as `caffe time` measurements do.
    pub framework_overhead_s: f64,
    /// Board TDP, watts.
    pub tdp_w: f64,
    /// Idle board power, watts.
    pub idle_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            peak_flops: 8.873e12,
            mem_bandwidth_bytes_per_s: 320e9,
            conv_utilization: 0.75,
            fc_utilization: 0.85,
            launch_overhead_s: 12e-6,
            kernels_per_layer: 3.0,
            framework_overhead_s: 1000e-6,
            tdp_w: 180.0,
            idle_w: 55.0,
        }
    }
}

impl GpuModel {
    /// Compute + launch time of one forward pass over a batch, seconds
    /// (excluding the per-iteration framework/data-layer overhead).
    fn forward_work_s(&self, spec: &NetSpec, batch: usize) -> f64 {
        let b = batch as f64;
        let mut t = 0.0;
        for layer in spec.resolve() {
            let ops = layer.ops_forward() as f64 * b;
            let compute = if layer.is_conv {
                // Tiny convolutions (the MNIST-scale models) never fill the
                // GPU: utilisation collapses with the per-launch work.
                let util = self.conv_utilization * ops / (ops + 60e6);
                ops / (self.peak_flops * util)
            } else {
                ops / (self.peak_flops * self.fc_utilization)
            };
            // FC weight traffic is paid once per batch; conv weights are
            // small and cached.
            let weight_bytes = if layer.is_conv {
                0.0
            } else {
                layer.weights as f64 * 4.0
            };
            let act_bytes = b
                * 4.0
                * (layer.in_shape.0 * layer.in_shape.1 * layer.in_shape.2
                    + layer.out_shape.0 * layer.out_shape.1 * layer.out_shape.2)
                    as f64;
            let memory = (weight_bytes + act_bytes) / self.mem_bandwidth_bytes_per_s;
            t += compute.max(memory) + self.kernels_per_layer * self.launch_overhead_s;
        }
        t
    }

    /// Modelled inference (testing) run.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `n_images` is zero.
    pub fn testing(&self, spec: &NetSpec, n_images: u64, batch: usize) -> GpuRun {
        assert!(batch > 0 && n_images > 0, "degenerate GPU workload");
        let batches = (n_images as f64 / batch as f64).ceil();
        let work = self.forward_work_s(spec, batch);
        let per_batch = work + self.framework_overhead_s;
        let time_s = batches * per_batch;
        GpuRun {
            time_s,
            energy_j: time_s * self.power_w(work, per_batch),
        }
    }

    /// Modelled training run: per batch, forward + backward (2× forward
    /// compute), SGD weight-update traffic plus per-layer optimizer kernel
    /// launches, and a heavier framework/solver share per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `n_images` is zero.
    pub fn training(&self, spec: &NetSpec, n_images: u64, batch: usize) -> GpuRun {
        assert!(batch > 0 && n_images > 0, "degenerate GPU workload");
        let work = 3.0 * self.forward_work_s(spec, batch);
        // SGD update: read gradient + read weight + write weight, plus one
        // optimizer kernel per layer.
        let update = spec.weight_count() as f64 * 4.0 * 3.0 / self.mem_bandwidth_bytes_per_s
            + spec.weighted_layers() as f64 * self.kernels_per_layer * self.launch_overhead_s;
        let batches = (n_images as f64 / batch as f64).ceil();
        let per_batch = work + update + 1.5 * self.framework_overhead_s;
        let time_s = batches * per_batch;
        GpuRun {
            time_s,
            energy_j: time_s * self.power_w(work + update, per_batch),
        }
    }

    /// Effective board power: idle floor plus dynamic power scaled by the
    /// fraction of each iteration the GPU spends in kernels — on the
    /// framework-bound MNIST-scale models the board idles most of the time
    /// (what `nvidia-smi` would report).
    fn power_w(&self, busy_s: f64, total_s: f64) -> f64 {
        let busy = (busy_s / total_s.max(1e-12)).clamp(0.0, 1.0);
        self.idle_w + (self.tdp_w - self.idle_w) * busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    #[test]
    fn alexnet_inference_in_realistic_band() {
        let gpu = GpuModel::default();
        let run = gpu.testing(&zoo::alexnet(), 6400, 64);
        let ips = run.throughput(6400);
        assert!(
            (1500.0..8000.0).contains(&ips),
            "AlexNet inference {ips} img/s outside published GTX 1080 band"
        );
    }

    #[test]
    fn alexnet_training_slower_than_inference() {
        let gpu = GpuModel::default();
        let test = gpu.testing(&zoo::alexnet(), 6400, 64);
        let train = gpu.training(&zoo::alexnet(), 6400, 64);
        assert!(train.time_s > 2.5 * test.time_s);
    }

    #[test]
    fn vgg_ordering_by_depth() {
        let gpu = GpuModel::default();
        let mut last = 0.0;
        for v in zoo::VggVariant::ALL {
            let t = gpu.training(&zoo::vgg(v), 640, 64).time_s;
            assert!(t > last, "deeper VGG should train slower");
            last = t;
        }
    }

    #[test]
    fn vgg_a_inference_band() {
        let gpu = GpuModel::default();
        let ips = gpu
            .testing(&zoo::vgg(zoo::VggVariant::A), 640, 64)
            .throughput(640);
        assert!(
            (100.0..600.0).contains(&ips),
            "VGG-A inference {ips} img/s implausible for a GTX 1080"
        );
    }

    #[test]
    fn mnist_mlp_is_overhead_bound() {
        let gpu = GpuModel::default();
        let spec = zoo::spec_mnist_a();
        let run = gpu.testing(&spec, 6400, 64);
        // Pure compute would take ~1 µs/batch; fixed overheads dominate.
        let per_batch = run.time_s / 100.0;
        let overhead =
            gpu.framework_overhead_s + 2.0 * gpu.kernels_per_layer * gpu.launch_overhead_s;
        assert!(
            overhead / per_batch > 0.8,
            "expected overhead-dominated batch: {overhead} vs {per_batch}"
        );
        let ips = run.throughput(6400);
        assert!((20_000.0..500_000.0).contains(&ips), "{ips} img/s");
    }

    #[test]
    fn energy_positive_and_tdp_bounded() {
        let gpu = GpuModel::default();
        let run = gpu.training(&zoo::vgg(zoo::VggVariant::E), 64, 64);
        let power = run.energy_j / run.time_s;
        assert!(power > gpu.idle_w && power <= gpu.tdp_w);
    }

    #[test]
    fn mlp_draws_less_power_than_vgg() {
        let gpu = GpuModel::default();
        let mlp = gpu.testing(&zoo::spec_mnist_a(), 640, 64);
        let vgg = gpu.testing(&zoo::vgg(zoo::VggVariant::D), 640, 64);
        assert!(mlp.energy_j / mlp.time_s < vgg.energy_j / vgg.time_s);
    }
}
