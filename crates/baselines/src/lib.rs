//! Baseline platform models for the PipeLayer reproduction.
//!
//! The paper's baseline is a physical GTX 1080 running Caffe (Table 4), with
//! runtimes from `caffe time` and energy from `nvidia-smi`; Sec. 6.6 further
//! compares against DaDianNao and ISAAC, and Sec. 3.2.2 analyses ISAAC's
//! deep-pipeline stall behaviour. None of that hardware is available here,
//! so this crate provides calibrated analytical stand-ins (DESIGN.md §2):
//!
//! * [`gpu`] — a roofline + launch-overhead cost model of the GTX 1080,
//!   giving per-network training/testing time and energy;
//! * [`isaac`] — an ISAAC-style intra-layer tile pipeline with fill/drain
//!   and batch-boundary stalls, for the training-throughput comparison;
//! * [`dadiannao`] — published efficiency constants for the Sec. 6.6 table.

pub mod dadiannao;
pub mod gpu;
pub mod isaac;
pub mod peripherals;

pub use gpu::{GpuModel, GpuRun};
pub use isaac::IsaacModel;
