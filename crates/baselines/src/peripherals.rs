//! Peripheral-scheme comparison: spike+integrate-and-fire (PipeLayer)
//! versus spike+ADC (ISAAC) versus DAC+ADC (PRIME-style voltage levels).
//!
//! One of the paper's contributions is eliminating *both* converter types:
//! "to eliminate the overhead of DACs and ADCs, PipeLayer uses a spike-based
//! scheme ... Such design requires more cycles to inject data, however, the
//! drawback is offset by the pipelined architecture" (Sec. 1). This module
//! makes the trade quantitative for a single crossbar read phase so the
//! `ablation_adc` bench can reproduce the argument.
//!
//! Constants (documented estimates from the ISAAC and PRIME papers):
//! * ISAAC's 8-bit SAR ADC: 1.28 GS/s at 16 mW → 12.5 pJ per conversion,
//!   one conversion per bit line per input slot-group;
//! * a word-line DAC: ≈ 1 pJ per conversion at low resolution; PRIME used
//!   3-bit input voltages, so a 16-bit input needs ⌈16/3⌉ = 6 level phases;
//! * PipeLayer's integrate-and-fire: a capacitor + comparator + counter per
//!   bit-line group, ≈ 0.1 pJ per output value, no conversion clock.

use pipelayer_nn::spec::NetSpec;

/// How a crossbar's inputs and outputs cross the analog/digital boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeripheralScheme {
    /// PipeLayer: weighted spike trains in, integrate-and-fire out.
    SpikeIntegrateFire,
    /// ISAAC: bit-serial spikes in, ADC out every slot.
    SpikeAdc,
    /// PRIME-style: DAC-generated voltage levels in, ADC out.
    DacAdc,
}

impl PeripheralScheme {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PeripheralScheme::SpikeIntegrateFire => "spike + I&F (PipeLayer)",
            PeripheralScheme::SpikeAdc => "spike + ADC (ISAAC)",
            PeripheralScheme::DacAdc => "DAC + ADC (PRIME-style)",
        }
    }
}

/// Cost of one array read phase (one input vector against one crossbar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// Latency, ns.
    pub latency_ns: f64,
    /// Energy, pJ.
    pub energy_pj: f64,
    /// Input time slots needed for a full-resolution input.
    pub input_slots: u32,
}

/// Peripheral cost model for a `rows × cols` crossbar at `data_bits` input
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeripheralModel {
    /// Array read latency per spike/level phase, ns (29.31 in the paper).
    pub read_ns: f64,
    /// Read energy per input spike, pJ (1.08).
    pub spike_pj: f64,
    /// ADC energy per conversion, pJ.
    pub adc_pj: f64,
    /// ADC conversion time, ns.
    pub adc_ns: f64,
    /// DAC energy per conversion, pJ.
    pub dac_pj: f64,
    /// DAC input resolution, bits (PRIME used 3-bit voltage levels).
    pub dac_bits: u32,
    /// Integrate-and-fire energy per output value, pJ.
    pub if_pj: f64,
}

impl Default for PeripheralModel {
    fn default() -> Self {
        PeripheralModel {
            read_ns: 29.31,
            spike_pj: 1.08,
            adc_pj: 12.5,
            adc_ns: 0.78, // 1.28 GS/s SAR
            dac_pj: 1.0,
            dac_bits: 3,
            if_pj: 0.1,
        }
    }
}

impl PeripheralModel {
    /// Cost of one full-resolution (`data_bits`) input vector processed by
    /// one `rows × cols` array under `scheme`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the resolution is zero.
    pub fn phase_cost(
        &self,
        scheme: PeripheralScheme,
        rows: usize,
        cols: usize,
        data_bits: u32,
    ) -> PhaseCost {
        assert!(rows > 0 && cols > 0 && data_bits > 0, "degenerate phase");
        let (r, c, b) = (rows as f64, cols as f64, data_bits as f64);
        match scheme {
            PeripheralScheme::SpikeIntegrateFire => {
                // b slots; on average half the slots carry a spike per row;
                // fire-counting costs if_pj per output.
                PhaseCost {
                    latency_ns: b * self.read_ns,
                    energy_pj: r * (b / 2.0) * self.spike_pj + c * self.if_pj,
                    input_slots: data_bits,
                }
            }
            PeripheralScheme::SpikeAdc => {
                // Same input slots, but every slot's partial sums are
                // digitised: one ADC conversion per bit line per slot.
                PhaseCost {
                    latency_ns: b * (self.read_ns + self.adc_ns),
                    energy_pj: r * (b / 2.0) * self.spike_pj + c * b * self.adc_pj,
                    input_slots: data_bits,
                }
            }
            PeripheralScheme::DacAdc => {
                // Voltage levels carry dac_bits per phase → fewer phases,
                // but every row needs a DAC conversion per phase and every
                // column an ADC conversion per phase.
                let phases = data_bits.div_ceil(self.dac_bits) as f64;
                PhaseCost {
                    latency_ns: phases * (self.read_ns + self.adc_ns),
                    energy_pj: phases * (r * self.dac_pj + r * self.spike_pj + c * self.adc_pj),
                    input_slots: data_bits.div_ceil(self.dac_bits),
                }
            }
        }
    }

    /// Per-image peripheral energy for a whole network's forward pass:
    /// every layer's `P` window positions, each one phase per crossbar
    /// column-tile (×8 crossbars per matrix copy).
    pub fn network_forward_energy_pj(
        &self,
        spec: &NetSpec,
        scheme: PeripheralScheme,
        xbar: usize,
        data_bits: u32,
    ) -> f64 {
        spec.resolve()
            .iter()
            .map(|l| {
                let col_tiles = l.matrix_cols.div_ceil(xbar);
                let rows = l.matrix_rows.min(xbar);
                let cost = self.phase_cost(scheme, rows, l.matrix_cols.min(xbar), data_bits);
                let row_tiles = l.matrix_rows.div_ceil(xbar);
                l.window_positions.max(1) as f64
                    * cost.energy_pj
                    * (col_tiles * row_tiles * 8) as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelayer_eliminates_adc_energy() {
        let m = PeripheralModel::default();
        let inf = m.phase_cost(PeripheralScheme::SpikeIntegrateFire, 128, 128, 16);
        let adc = m.phase_cost(PeripheralScheme::SpikeAdc, 128, 128, 16);
        assert!(
            adc.energy_pj > 5.0 * inf.energy_pj,
            "ADC read-out should dominate: {} vs {}",
            adc.energy_pj,
            inf.energy_pj
        );
    }

    #[test]
    fn voltage_scheme_is_faster_but_needs_converters() {
        let m = PeripheralModel::default();
        let inf = m.phase_cost(PeripheralScheme::SpikeIntegrateFire, 128, 128, 16);
        let dac = m.phase_cost(PeripheralScheme::DacAdc, 128, 128, 16);
        // Fewer input slots (the paper's acknowledged drawback of spikes)...
        assert!(dac.input_slots < inf.input_slots);
        assert!(dac.latency_ns < inf.latency_ns);
        // ...but more energy per phase.
        assert!(dac.energy_pj > inf.energy_pj);
    }

    #[test]
    fn slot_count_matches_resolution() {
        let m = PeripheralModel::default();
        let c = m.phase_cost(PeripheralScheme::SpikeIntegrateFire, 64, 64, 16);
        assert_eq!(c.input_slots, 16);
        let d = m.phase_cost(PeripheralScheme::DacAdc, 64, 64, 16);
        assert_eq!(d.input_slots, 6); // ceil(16/3)
    }

    #[test]
    fn network_energy_ordering_holds() {
        let m = PeripheralModel::default();
        let spec = pipelayer_nn::zoo::spec_mnist_0();
        let e_if =
            m.network_forward_energy_pj(&spec, PeripheralScheme::SpikeIntegrateFire, 128, 16);
        let e_adc = m.network_forward_energy_pj(&spec, PeripheralScheme::SpikeAdc, 128, 16);
        let e_dac = m.network_forward_energy_pj(&spec, PeripheralScheme::DacAdc, 128, 16);
        assert!(
            e_if < e_adc && e_if < e_dac,
            "I&F must be cheapest: {e_if} {e_adc} {e_dac}"
        );
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn rejects_zero_rows() {
        PeripheralModel::default().phase_cost(PeripheralScheme::SpikeAdc, 0, 4, 8);
    }
}
