//! An ISAAC-style deep intra-layer pipeline model (Sec. 3.2.2).
//!
//! ISAAC pipelines *within* a layer at tile granularity: a layer starts
//! consuming partial outputs of its predecessor as soon as small tiles are
//! ready, giving a very deep pipeline whose throughput is excellent **only
//! when a long run of consecutive inputs is available**. The paper's
//! critique, which this model reproduces:
//!
//! 1. in training, at most `B` (batch size) consecutive inputs exist before
//!    a weight update forces a full drain — for deep pipelines the
//!    fill/drain cost is amortised over only `B` images;
//! 2. a point in layer `l` depends on a pyramid of points in earlier layers
//!    (40 points across four 2×2-kernel layers in the paper's example), so a
//!    single delayed tile stalls downstream computation — modelled as a
//!    per-stage bubble probability inflating effective stage count.

use pipelayer_nn::spec::NetSpec;

/// ISAAC-like pipeline timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsaacModel {
    /// Pipeline stages per weighted layer (tile-granular: ISAAC's deep
    /// pipeline subdivides each layer into many tile stages).
    pub stages_per_layer: usize,
    /// One pipeline stage latency, ns (ISAAC's 100 ns IMA cycle).
    pub stage_ns: f64,
    /// Probability a stage incurs a one-cycle bubble from a late
    /// cross-layer dependency.
    pub bubble_probability: f64,
}

impl Default for IsaacModel {
    fn default() -> Self {
        IsaacModel {
            stages_per_layer: 22,
            stage_ns: 100.0,
            bubble_probability: 0.05,
        }
    }
}

impl IsaacModel {
    /// Total pipeline depth for a network.
    pub fn depth(&self, spec: &NetSpec) -> usize {
        spec.weighted_layers() * self.stages_per_layer
    }

    /// Effective per-result initiation interval in ns, including bubbles.
    pub fn initiation_interval_ns(&self) -> f64 {
        self.stage_ns * (1.0 + self.bubble_probability)
    }

    /// Inference time for `n_images` fed continuously: one fill plus one
    /// result per initiation interval. This is where the deep pipeline
    /// shines.
    ///
    /// # Panics
    ///
    /// Panics if `n_images` is zero.
    pub fn testing_time_s(&self, spec: &NetSpec, n_images: u64) -> f64 {
        assert!(n_images > 0, "empty workload");
        let fill = self.depth(spec) as f64 * self.stage_ns;
        (fill + (n_images - 1) as f64 * self.initiation_interval_ns()) * 1e-9
    }

    /// Training time: every batch must drain fully before the next may
    /// enter (weights change), so the fill/drain penalty recurs `N/B`
    /// times, and training roughly doubles the per-image work.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `n_images` is zero.
    pub fn training_time_s(&self, spec: &NetSpec, n_images: u64, batch: usize) -> f64 {
        assert!(batch > 0 && n_images > 0, "degenerate workload");
        let batches = n_images.div_ceil(batch as u64) as f64;
        // Forward + backward traversal: double depth, double work.
        let fill_drain = 2.0 * self.depth(spec) as f64 * self.stage_ns;
        let per_batch = fill_drain + (batch as f64 * 2.0 - 1.0) * self.initiation_interval_ns();
        batches * per_batch * 1e-9
    }

    /// Fraction of training time lost to fill/drain at batch boundaries —
    /// the quantity PipeLayer's layer-granular pipeline avoids.
    pub fn training_drain_fraction(&self, spec: &NetSpec, batch: usize) -> f64 {
        let fill_drain = 2.0 * self.depth(spec) as f64 * self.stage_ns;
        let per_batch = fill_drain + (batch as f64 * 2.0 - 1.0) * self.initiation_interval_ns();
        fill_drain / per_batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    #[test]
    fn inference_amortises_fill() {
        let m = IsaacModel::default();
        let spec = zoo::vgg(zoo::VggVariant::A);
        let t_1 = m.testing_time_s(&spec, 1);
        let t_10k = m.testing_time_s(&spec, 10_000);
        // Per-image cost collapses towards the initiation interval.
        assert!(t_10k / 10_000.0 < t_1 / 4.0);
    }

    #[test]
    fn training_pays_drain_every_batch() {
        let m = IsaacModel::default();
        let spec = zoo::vgg(zoo::VggVariant::E);
        let frac = m.training_drain_fraction(&spec, 64);
        assert!(
            frac > 0.3,
            "deep pipeline should lose a large fraction to drain, got {frac}"
        );
        // Larger batches amortise better.
        assert!(m.training_drain_fraction(&spec, 256) < frac);
    }

    #[test]
    fn deeper_network_deeper_pipeline() {
        let m = IsaacModel::default();
        assert!(m.depth(&zoo::vgg(zoo::VggVariant::E)) > m.depth(&zoo::vgg(zoo::VggVariant::A)));
    }

    #[test]
    fn bubbles_slow_the_pipe() {
        let clean = IsaacModel {
            bubble_probability: 0.0,
            ..IsaacModel::default()
        };
        let bubbly = IsaacModel {
            bubble_probability: 0.2,
            ..IsaacModel::default()
        };
        let spec = zoo::alexnet();
        assert!(bubbly.testing_time_s(&spec, 1000) > clean.testing_time_s(&spec, 1000));
    }
}
