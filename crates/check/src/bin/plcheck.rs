//! `plcheck` — pre-flight static verification of PipeLayer workloads.
//!
//! ```text
//! plcheck [OPTIONS] [NETWORK ...]
//!
//! Networks: Mnist-A Mnist-B Mnist-C Mnist-0 AlexNet VGG-A VGG-B VGG-C VGG-D VGG-E
//!           (case-insensitive; default: all ten evaluation networks)
//!
//! Options:
//!   --json            machine-readable output (one JSON object per network)
//!   --batch N         training batch size (default 64)
//!   --g G1,G2,...     per-layer replication override
//!   --depths D1,...   per-layer buffer-depth override (paper: 2(L-l)+1)
//!   --budget N        conv-array crossbar budget (default 65536)
//!   --codes           print the PL0xx diagnostic code table and exit
//!   --quiet           suppress per-network OK lines
//!
//! Exit status: 0 if no error-severity diagnostic, 1 otherwise, 2 on usage
//! errors.
//! ```

use pipelayer::PipeLayerConfig;
use pipelayer_check::{diag, has_errors, Overrides, Severity};
use pipelayer_nn::spec::NetSpec;
use pipelayer_nn::zoo;
use std::process::ExitCode;

fn usage() -> String {
    "usage: plcheck [--json] [--quiet] [--codes] [--batch N] [--g G1,G2,...] \
     [--depths D1,D2,...] [--budget N] [NETWORK ...]"
        .to_string()
}

fn find_network(name: &str) -> Option<NetSpec> {
    zoo::evaluation_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

fn parse_csv(raw: &str, flag: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("--{flag}: `{p}` is not a number"))
        })
        .collect()
}

struct Cli {
    json: bool,
    quiet: bool,
    cfg: PipeLayerConfig,
    over: Overrides,
    nets: Vec<NetSpec>,
}

fn parse_args(raw: &[String]) -> Result<Option<Cli>, String> {
    let mut json = false;
    let mut quiet = false;
    let mut cfg = PipeLayerConfig::default();
    let mut over = Overrides::default();
    let mut names: Vec<String> = Vec::new();

    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("--{flag} needs a value"))
        };
        match a.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--codes" => {
                for (code, what) in diag::CODE_TABLE {
                    println!("{code}  {what}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            "--batch" => {
                cfg.batch_size = take("batch")?
                    .parse()
                    .map_err(|_| "--batch: not a number".to_string())?;
            }
            "--g" => over.granularity = Some(parse_csv(take("g")?, "g")?),
            "--depths" => over.depths = Some(parse_csv(take("depths")?, "depths")?),
            "--budget" => {
                over.conv_xbar_budget = Some(
                    take("budget")?
                        .parse()
                        .map_err(|_| "--budget: not a number".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            name => names.push(name.to_string()),
        }
    }

    let nets = if names.is_empty() {
        zoo::evaluation_specs()
    } else {
        let mut nets = Vec::with_capacity(names.len());
        for name in &names {
            nets.push(find_network(name).ok_or_else(|| {
                format!(
                    "unknown network `{name}` (expected one of: {})",
                    zoo::evaluation_specs()
                        .iter()
                        .map(|s| s.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?);
        }
        nets
    };
    if (over.granularity.is_some() || over.depths.is_some()) && nets.len() > 1 {
        return Err("--g/--depths overrides need exactly one NETWORK".to_string());
    }
    Ok(Some(Cli {
        json,
        quiet,
        cfg,
        over,
        nets,
    }))
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&raw) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut any_error = false;
    let mut json_nets: Vec<String> = Vec::new();
    for net in &cli.nets {
        let diags = pipelayer_check::verify_with(net, &cli.cfg, &cli.over);
        let errors = has_errors(&diags);
        any_error |= errors;
        if cli.json {
            json_nets.push(format!(
                "{{\"network\":\"{}\",\"ok\":{},\"diagnostics\":{}}}",
                net.name,
                !errors,
                pipelayer_check::render_json(&diags)
            ));
        } else {
            let min = if cli.quiet {
                Severity::Error
            } else {
                Severity::Warning
            };
            for d in diags.iter().filter(|d| d.severity >= min) {
                println!("{}", d.render());
            }
            if errors {
                println!("{}: FAIL", net.name);
            } else if !cli.quiet {
                println!("{}: OK ({} diagnostics)", net.name, diags.len());
            }
        }
    }
    if cli.json {
        println!("[{}]", json_nets.join(","));
    }
    if any_error {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
