//! `plcheck` — pre-flight static verification of PipeLayer workloads.
//!
//! ```text
//! plcheck [OPTIONS] [NETWORK ...]
//!
//! Networks: Mnist-A Mnist-B Mnist-C Mnist-0 AlexNet VGG-A VGG-B VGG-C VGG-D VGG-E
//!           plus the Fig. 13 resolution-study set M-1 M-2 M-3 M-C C-4
//!           (case-insensitive; default: all ten evaluation networks)
//!
//! Options:
//!   --json            machine-readable output (one JSON object per network)
//!   --batch N         training batch size (default 64)
//!   --g G1,G2,...     per-layer replication override
//!   --depths D1,...   per-layer buffer-depth override (paper: 2(L-l)+1)
//!   --budget N        conv-array crossbar budget (default 65536)
//!   --ranges          print the per-layer interval bound table (PL04x
//!                     range analysis); with --json adds a "ranges" field
//!   --data-bits N     datapath resolution override (default 16)
//!   --acc-bits N      bit-line accumulator width override (default 48)
//!   --codes           print the PL0xx diagnostic code table and exit
//!   --quiet           suppress per-network OK lines
//!
//! Exit status: 0 if no error-severity diagnostic, 1 otherwise, 2 on usage
//! errors.
//! ```

use pipelayer::PipeLayerConfig;
use pipelayer_check::{diag, has_errors, Overrides, Severity};
use pipelayer_nn::spec::NetSpec;
use pipelayer_nn::zoo;
use std::process::ExitCode;

fn usage() -> String {
    "usage: plcheck [--json] [--quiet] [--codes] [--ranges] [--batch N] \
     [--data-bits N] [--acc-bits N] [--g G1,G2,...] [--depths D1,D2,...] \
     [--budget N] [NETWORK ...]"
        .to_string()
}

/// Every spec `plcheck` can verify by name: the ten evaluation networks
/// plus the five Fig. 13 resolution-study networks.
fn all_specs() -> Vec<NetSpec> {
    let mut specs = zoo::evaluation_specs();
    specs.extend([
        zoo::spec_m1(),
        zoo::spec_m2(),
        zoo::spec_m3(),
        zoo::spec_mc(),
        zoo::spec_c4(),
    ]);
    specs
}

fn find_network(name: &str) -> Option<NetSpec> {
    all_specs()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

fn parse_csv(raw: &str, flag: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|_| format!("--{flag}: `{p}` is not a number"))
        })
        .collect()
}

struct Cli {
    json: bool,
    quiet: bool,
    ranges: bool,
    cfg: PipeLayerConfig,
    over: Overrides,
    nets: Vec<NetSpec>,
}

fn parse_args(raw: &[String]) -> Result<Option<Cli>, String> {
    let mut json = false;
    let mut quiet = false;
    let mut ranges = false;
    let mut cfg = PipeLayerConfig::default();
    let mut over = Overrides::default();
    let mut names: Vec<String> = Vec::new();

    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("--{flag} needs a value"))
        };
        match a.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--ranges" => ranges = true,
            "--codes" => {
                for (code, what) in diag::CODE_TABLE {
                    println!("{code}  {what}");
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            "--batch" => {
                cfg.batch_size = take("batch")?
                    .parse()
                    .map_err(|_| "--batch: not a number".to_string())?;
            }
            "--data-bits" => {
                cfg.params.data_bits = take("data-bits")?
                    .parse()
                    .map_err(|_| "--data-bits: not a number".to_string())?;
            }
            "--acc-bits" => {
                cfg.datapath.accumulator_bits = take("acc-bits")?
                    .parse()
                    .map_err(|_| "--acc-bits: not a number".to_string())?;
            }
            "--g" => over.granularity = Some(parse_csv(take("g")?, "g")?),
            "--depths" => over.depths = Some(parse_csv(take("depths")?, "depths")?),
            "--budget" => {
                over.conv_xbar_budget = Some(
                    take("budget")?
                        .parse()
                        .map_err(|_| "--budget: not a number".to_string())?,
                );
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            name => names.push(name.to_string()),
        }
    }

    let nets = if names.is_empty() {
        zoo::evaluation_specs()
    } else {
        let mut nets = Vec::with_capacity(names.len());
        for name in &names {
            nets.push(find_network(name).ok_or_else(|| {
                format!(
                    "unknown network `{name}` (expected one of: {})",
                    all_specs()
                        .iter()
                        .map(|s| s.name.clone())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?);
        }
        nets
    };
    if (over.granularity.is_some() || over.depths.is_some()) && nets.len() > 1 {
        return Err("--g/--depths overrides need exactly one NETWORK".to_string());
    }
    Ok(Some(Cli {
        json,
        quiet,
        ranges,
        cfg,
        over,
        nets,
    }))
}

/// Renders the per-layer bound table of one range report.
fn render_ranges(r: &pipelayer_check::absint::RangeReport) -> String {
    let mode = if r.value_domain {
        "value domain, quantized weights"
    } else {
        "geometry only"
    };
    let mut out = format!("{} ranges ({mode}; input {}):\n", r.network, r.input);
    out.push_str(&format!(
        "  {:>5}  {:<14}  {:<24}  {:<24}  {:>10}  {:>9}\n",
        "stage", "layer", "activation", "delta", "|dW|", "acc bits"
    ));
    for s in &r.stages {
        let acc = match (s.acc_bits_geometry, s.acc_bits_data) {
            (Some(g), Some(d)) => format!("{g}/{d}"),
            (Some(g), None) => format!("{g}/-"),
            _ => "-".to_string(),
        };
        let dw = if s.dweight_mag > 0.0 {
            format!("{:.3e}", s.dweight_mag)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "  {:>5}  {:<14}  {:<24}  {:<24}  {:>10}  {:>9}\n",
            s.index,
            s.name,
            s.activation.to_string(),
            s.delta.to_string(),
            dw,
            acc
        ));
    }
    out
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&raw) {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut any_error = false;
    let mut json_nets: Vec<String> = Vec::new();
    for net in &cli.nets {
        let diags = pipelayer_check::verify_with(net, &cli.cfg, &cli.over);
        let errors = has_errors(&diags);
        any_error |= errors;
        let ranges = cli
            .ranges
            .then(|| pipelayer_check::absint::analyze(net, &cli.cfg));
        if cli.json {
            let ranges_field = ranges
                .as_ref()
                .map(|r| format!(",\"ranges\":{}", r.to_json()))
                .unwrap_or_default();
            json_nets.push(format!(
                "{{\"network\":\"{}\",\"ok\":{},\"diagnostics\":{}{ranges_field}}}",
                net.name,
                !errors,
                pipelayer_check::render_json(&diags)
            ));
        } else {
            if let Some(r) = &ranges {
                print!("{}", render_ranges(r));
            }
            let min = if cli.quiet {
                Severity::Error
            } else {
                Severity::Warning
            };
            for d in diags.iter().filter(|d| d.severity >= min) {
                println!("{}", d.render());
            }
            if errors {
                println!("{}: FAIL", net.name);
            } else if !cli.quiet {
                println!("{}: OK ({} diagnostics)", net.name, diags.len());
            }
        }
    }
    if cli.json {
        println!("[{}]", json_nets.join(","));
    }
    if any_error {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
