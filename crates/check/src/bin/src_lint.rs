//! `src-lint` — the repo-wide determinism/panic lint gate.
//!
//! A dependency-free scan over `crates/*/src` that keeps library code
//! panic-free and deterministic. Two layers:
//!
//! **Line lint** (always on) — forbidden-substring matching over
//! [`pipelayer_check::lex::mask`]ed source (string/char/raw-string interiors
//! and comments blanked, byte offsets preserved), so quoted or commented-out
//! code can never match:
//!
//! * **Forbidden in non-test code**: `unwrap()`, `.expect(`, `panic!(` and
//!   `assert!(` (with word boundaries, so `debug_assert!` — compiled out in
//!   release — passes). Existing sites live in the checked-in allowlist
//!   `lint-allow.txt`, whose per-file counts may only *shrink*: a new site
//!   fails the build, and so does a stale (over-counted) entry, forcing the
//!   allowlist to track reality downward.
//! * **Nondeterminism hazards**: `HashMap`/`HashSet` (iteration order is
//!   randomized — numeric paths must use `BTreeMap`/sorted `Vec`s) and the
//!   wall-clock sources `Instant::now` / `SystemTime::now`; `==`/`!=`
//!   against float literals are printed as warnings.
//! * **Lossy numeric `as` casts** and **raw storage indexing in
//!   `crates/reram/`** (`.slots[`, `.cells[`, `.words[`), both shrink-only.
//!
//! **Semantic passes** (`--semantic`) — the `check::callgraph` layer:
//!
//! * **PL060 panic reachability**: which `try_*`/checkpoint/report-facing
//!   `pub` fns can transitively reach a panic, with a witness call chain.
//!   Counted per file under the `pl060` allowlist pattern, shrink-only.
//! * **PL061 cache coherence**: `&mut self` methods of configured types
//!   (`Crossbar{plane_cache; cells,faults,drift,noise}`) that write state
//!   without invalidating the cache. **No allowlist** — any finding fails.
//! * **PL062 determinism taint**: nondeterminism sources reaching the
//!   weight/report sinks outside the seed stream. `pl062`, shrink-only.
//! * **PL070/PL071/PL072 dimensional analysis** (`check::units` over the
//!   `check::expr` trees): mixed-unit arithmetic, suffix-vs-body unit
//!   disagreements, and unsuffixed bench-JSON/report sink fields.
//!   Counted per file under `pl070`/`pl071`/`pl072`, shrink-only.
//!
//! Test modules (`#[cfg(test)]`), comments and doc lines are exempt.
//!
//! ```text
//! src-lint [--root DIR] [--semantic] [--write-allowlist]
//! ```
//!
//! `--write-allowlist` regenerates `lint-allow.txt` from current reality;
//! without `--semantic` it preserves the existing `pl060`/`pl062` entries
//! rather than dropping them. Exit status: 0 clean, 1 on any lint failure,
//! 2 on usage/I-O errors.

use pipelayer_check::callgraph::{self, Workspace};
use pipelayer_check::{cachecheck, dettaint, lex, panicreach, units};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The allowlist file, relative to the workspace root.
const ALLOWLIST: &str = "lint-allow.txt";

/// Allowlist patterns produced by `--semantic`, not the line lint.
const SEMANTIC_PATTERNS: &[&str] = &["pl060", "pl062", "pl070", "pl071", "pl072"];

/// One forbidden-pattern class. The needles are assembled from fragments at
/// runtime so this file does not match its own patterns.
#[derive(Debug, Clone)]
struct Pattern {
    /// Allowlist key (`unwrap`, `expect`, `panic`, `assert`, `hashmap`,
    /// `cast`, `wallclock`, `rawindex`).
    name: &'static str,
    /// Exact substring to search for.
    needle: String,
    /// Whether the character before a match must not be `[A-Za-z0-9_]`.
    word_start: bool,
    /// When set, the pattern only applies to files whose workspace-relative
    /// path starts with this prefix (e.g. `crates/reram/`).
    scope: Option<&'static str>,
}

/// An everywhere-applicable pattern (no path scope).
fn pat(name: &'static str, needle: String, word_start: bool) -> Pattern {
    Pattern {
        name,
        needle,
        word_start,
        scope: None,
    }
}

/// A raw-index pattern on the ReRAM crate's internal storage vectors
/// (`.slots[`, `.cells[`, `.words[`): direct indexing is how the
/// `input_bits > 32` out-of-bounds panic slipped into `SpikeTrain::fires` —
/// accessors with explicit bounds behaviour (`get`, `slot_words`,
/// `col_words`, `level`) are the sanctioned surface. Existing sites are
/// allowlisted (shrink-only).
fn raw_index(field: String) -> Pattern {
    Pattern {
        name: "rawindex",
        needle: [field.as_str(), "["].concat(),
        word_start: false,
        scope: Some("crates/reram/"),
    }
}

fn patterns() -> Vec<Pattern> {
    vec![
        pat("unwrap", ["unwrap", "()"].concat(), true),
        pat("expect", [".exp", "ect("].concat(), false),
        pat("panic", ["pan", "ic!("].concat(), true),
        pat("assert", ["ass", "ert!("].concat(), true),
        pat("hashmap", ["Hash", "Map"].concat(), true),
        pat("hashmap", ["Hash", "Set"].concat(), true),
        pat("wallclock", ["Inst", "ant::now("].concat(), true),
        pat("wallclock", ["System", "Time::now("].concat(), true),
        pat("cast", ["as", " f32"].concat(), true),
        pat("cast", ["as", " u8"].concat(), true),
        pat("cast", ["as", " u16"].concat(), true),
        pat("cast", ["as", " u32"].concat(), true),
        pat("cast", ["as", " i8"].concat(), true),
        pat("cast", ["as", " i16"].concat(), true),
        pat("cast", ["as", " i32"].concat(), true),
        raw_index([".slo", "ts"].concat()),
        raw_index([".cel", "ls"].concat()),
        raw_index([".wor", "ds"].concat()),
    ]
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Occurrences of `pat` in `code`, honouring the word-start rule.
fn count_matches(code: &str, pat: &Pattern) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat.needle) {
        let at = from + pos;
        let boundary = !pat.word_start || at == 0 || !is_word_char(bytes[at - 1]);
        if boundary {
            n += 1;
        }
        from = at + pat.needle.len();
    }
    n
}

/// `true` if the token run touching `==`/`!=` on either side looks like a
/// float literal (`1.0`, `0.`, `.5`).
fn float_adjacent(code: &str, op_at: usize, op_len: usize) -> bool {
    let before = code[..op_at].trim_end();
    let after = code[op_at + op_len..].trim_start();
    let tail: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    let head: String = after
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    let is_float =
        |t: &str| t.contains('.') && t.chars().any(|c| c.is_ascii_digit()) && !t.starts_with("..");
    is_float(&tail.chars().rev().collect::<String>()) || is_float(&head)
}

#[derive(Debug, Default)]
struct FileReport {
    /// pattern name → hit count in non-test code.
    counts: BTreeMap<&'static str, usize>,
    /// (line number, code) for float-equality warnings.
    float_eq: Vec<(usize, String)>,
}

/// Scans one file, skipping `#[cfg(test)]` items/modules. The whole file is
/// [`lex::mask`]ed first (newline- and offset-preserving), so string/char/
/// raw-string interiors and comments — including multi-line ones the old
/// per-line sanitizer could not see — can never match a needle or derail
/// the test-module brace counting.
fn scan_file(text: &str, pats: &[Pattern]) -> FileReport {
    let mut report = FileReport::default();
    let mut pending_cfg_test = false;
    let mut skip_depth: i64 = -1; // >= 0 while inside a #[cfg(test)] block
    let cfg_test_attr: String = ["#[cfg(", "test)]"].concat();
    let masked = lex::mask(text);

    for (lineno, code) in masked.lines().enumerate() {
        let trimmed = code.trim_start();

        if skip_depth >= 0 {
            skip_depth += code.matches('{').count() as i64;
            skip_depth -= code.matches('}').count() as i64;
            if skip_depth <= 0 {
                skip_depth = -1;
            }
            continue;
        }
        if trimmed.starts_with(&cfg_test_attr) {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                continue; // further attributes on the same test item
            }
            if trimmed.is_empty() {
                continue; // blanked doc/comment line between attr and item
            }
            pending_cfg_test = false;
            let opens = code.matches('{').count() as i64 - code.matches('}').count() as i64;
            if opens > 0 {
                skip_depth = opens;
            }
            continue; // the item line itself is test code
        }

        for pat in pats {
            let n = count_matches(code, pat);
            if n > 0 {
                *report.counts.entry(pat.name).or_insert(0) += n;
            }
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(op) {
                let at = from + pos;
                if float_adjacent(code, at, op.len()) {
                    report.float_eq.push((lineno + 1, code.trim().to_string()));
                }
                from = at + op.len();
            }
        }
    }
    report
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses `lint-allow.txt`: `path pattern count` per line, `#` comments.
fn parse_allowlist(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(pat), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `path pattern count`",
                lineno + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST}:{}: bad count `{count}`", lineno + 1))?;
        map.insert((path.to_string(), pat.to_string()), count);
    }
    Ok(map)
}

/// Output of the `--semantic` passes.
#[derive(Debug, Default)]
struct SemanticReport {
    /// PL061 findings — hard failures, no allowlist.
    cache_failures: Vec<String>,
    /// `(path, "pl060"/"pl062")` → count, merged into the allowlist check.
    counts: BTreeMap<(String, String), usize>,
    /// `(path, pattern)` → rendered diagnostics, printed when over cap.
    details: BTreeMap<(String, String), Vec<String>>,
}

/// Runs PL060/PL061/PL062 over the workspace call graph.
fn run_semantic(root: &Path) -> Result<SemanticReport, String> {
    let ws = Workspace::load(root)?;
    let mut report = SemanticReport::default();

    for d in cachecheck::check(&ws, &cachecheck::default_specs()) {
        report.cache_failures.push(d.render());
    }

    let (diags, counts) = panicreach::findings(&ws, &panicreach::Options::default());
    merge_semantic(&mut report, "pl060", diags, counts);
    let (diags, counts) = dettaint::findings(&ws, &dettaint::Options::default());
    merge_semantic(&mut report, "pl062", diags, counts);

    // The units pass reports three codes at once; its counts come keyed
    // `(path, "pl07x")` already.
    let (diags, counts) = units::findings(&ws, &units::Options::default());
    for (key, n) in counts {
        report.counts.insert(key, n);
    }
    for d in diags {
        let path = d.location.split(':').next().unwrap_or("").to_string();
        let pattern = d.code.to_ascii_lowercase();
        report
            .details
            .entry((path, pattern))
            .or_default()
            .push(d.render());
    }
    Ok(report)
}

fn merge_semantic(
    report: &mut SemanticReport,
    pattern: &str,
    diags: Vec<pipelayer_check::Diagnostic>,
    counts: BTreeMap<String, usize>,
) {
    for (path, n) in counts {
        report.counts.insert((path, pattern.to_string()), n);
    }
    for d in diags {
        // Diagnostic locations are `path:line`; key details by the path.
        let path = d.location.split(':').next().unwrap_or("").to_string();
        report
            .details
            .entry((path, pattern.to_string()))
            .or_default()
            .push(d.render());
    }
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut write_allowlist = false;
    let mut semantic = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?));
            }
            "--write-allowlist" => write_allowlist = true,
            "--semantic" => semantic = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        // crates/check/../.. = the workspace root.
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", root.display()))?;

    let pats = patterns();
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut float_warnings: Vec<String> = Vec::new();
    let mut totals: BTreeMap<String, usize> = BTreeMap::new();
    for path in callgraph::collect_sources(&root)? {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let relpath = rel(&root, &path);
        let file_pats: Vec<Pattern> = pats
            .iter()
            .filter(|p| p.scope.is_none_or(|s| relpath.starts_with(s)))
            .cloned()
            .collect();
        let report = scan_file(&text, &file_pats);
        for (name, n) in report.counts {
            counts.insert((relpath.clone(), name.to_string()), n);
            *totals.entry(name.to_string()).or_insert(0) += n;
        }
        for (lineno, code) in report.float_eq {
            float_warnings.push(format!(
                "warning[float-eq]: {relpath}:{lineno}: float-literal equality: `{code}`"
            ));
        }
    }

    let sem = if semantic {
        Some(run_semantic(&root)?)
    } else {
        None
    };
    if let Some(sem) = &sem {
        for ((path, pat), &n) in &sem.counts {
            counts.insert((path.clone(), pat.clone()), n);
            *totals.entry(pat.clone()).or_insert(0) += n;
        }
    }

    let allow_path = root.join(ALLOWLIST);
    let allow_text = fs::read_to_string(&allow_path).unwrap_or_default();
    let allowed = parse_allowlist(&allow_text)?;

    if write_allowlist {
        // Without --semantic, preserve the existing pl060/pl062 entries
        // instead of silently dropping them.
        if sem.is_none() {
            for ((path, pat), &n) in &allowed {
                if SEMANTIC_PATTERNS.contains(&pat.as_str()) {
                    counts.insert((path.clone(), pat.clone()), n);
                    *totals.entry(pat.clone()).or_insert(0) += n;
                }
            }
        }
        let mut out = String::new();
        out.push_str(
            "# src-lint allowlist. Checked by `cargo run -p pipelayer-check --bin src-lint`.\n",
        );
        out.push_str("# Format: <path> <pattern> <count>. Counts may only SHRINK: a new site\n");
        out.push_str("# fails the lint, and so does an over-counted (stale) entry.\n");
        out.push_str("# pl060/pl062 rows come from `src-lint --semantic` (call-graph passes).\n");
        out.push_str("# Baseline at last regeneration: ");
        let summary: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&summary.join(" "));
        out.push('\n');
        for ((path, pat), n) in &counts {
            out.push_str(&format!("{path} {pat} {n}\n"));
        }
        fs::write(&allow_path, out).map_err(|e| format!("cannot write {ALLOWLIST}: {e}"))?;
        println!("wrote {} entries to {ALLOWLIST}", counts.len());
        return Ok(true);
    }

    let mut failures: Vec<String> = Vec::new();
    if let Some(sem) = &sem {
        // PL061 has no allowlist: any cache-coherence finding fails.
        failures.extend(sem.cache_failures.iter().cloned());
    }
    for ((path, pat), &n) in &counts {
        let cap = allowed
            .get(&(path.clone(), pat.clone()))
            .copied()
            .unwrap_or(0);
        if n > cap {
            failures.push(format!(
                "error[{pat}]: {path}: {n} non-test site(s), allowlist caps it at {cap} — \
                 convert the new site to Result or shrink it some other way"
            ));
            if let Some(sem) = &sem {
                if let Some(details) = sem.details.get(&(path.clone(), pat.clone())) {
                    for d in details {
                        failures.push(format!("  {d}"));
                    }
                }
            }
        }
    }
    for ((path, pat), &cap) in &allowed {
        // Semantic rows only bind when the semantic passes actually ran.
        if sem.is_none() && SEMANTIC_PATTERNS.contains(&pat.as_str()) {
            continue;
        }
        let n = counts
            .get(&(path.clone(), pat.clone()))
            .copied()
            .unwrap_or(0);
        if n < cap {
            failures.push(format!(
                "error[stale-allowlist]: {path}: {pat} allowlisted at {cap} but only {n} \
                 found — shrink the entry in {ALLOWLIST} to lock in the progress"
            ));
        }
    }

    for w in &float_warnings {
        println!("{w}");
    }
    for f in &failures {
        println!("{f}");
    }
    let summary: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!(
        "src-lint{}: {} file-pattern entries ({}), {} float-eq warning(s), {} failure(s)",
        if semantic { " --semantic" } else { "" },
        counts.len(),
        summary.join(" "),
        float_warnings.len(),
        failures.len()
    );
    Ok(failures.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_forbidden_patterns_with_boundaries() {
        let pats = patterns();
        let text = "fn f() { x.unwrap(); debug_assert!(x > 0); assert!(y); }\n";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("unwrap"), Some(&1));
        assert_eq!(report.counts.get("assert"), Some(&1)); // not debug_assert!
    }

    #[test]
    fn test_modules_and_comments_are_exempt() {
        let pats = patterns();
        let text = "\
fn lib() { real(); }
// x.unwrap() in a comment
/// doc: panics via assert!(x)
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"boom\"); }
}
fn lib2() { x.expect(\"invariant\"); }
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("unwrap"), None);
        assert_eq!(report.counts.get("panic"), None);
        assert_eq!(report.counts.get("expect"), Some(&1));
    }

    #[test]
    fn multiline_strings_and_block_comments_are_exempt() {
        // The old per-line sanitizer treated the middle of a multi-line
        // string as code; whole-file masking must not.
        let pats = patterns();
        let text = "\
fn f() -> &'static str {
    \"first line
     x.unwrap() quoted
     last\"
}
/* block comment
   panic!(\"still a comment\")
*/
fn g(x: Option<u8>) -> u8 { x.unwrap() }
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("unwrap"), Some(&1));
        assert_eq!(report.counts.get("panic"), None);
    }

    #[test]
    fn float_equality_is_flagged_ints_are_not() {
        let pats = patterns();
        let report = scan_file("if x == 0.0 { }\nif n == 3 { }\nif y != 1.5 { }\n", &pats);
        assert_eq!(report.float_eq.len(), 2);
    }

    #[test]
    fn hash_collections_are_flagged() {
        let pats = patterns();
        let needle = ["use std::collections::Hash", "Map;\n"].concat();
        let report = scan_file(&needle, &pats);
        assert_eq!(report.counts.get("hashmap"), Some(&1));
    }

    #[test]
    fn lossy_casts_are_flagged_lossless_conversions_are_not() {
        let pats = patterns();
        let text = "\
fn f(x: f64) -> f32 { x as f32 }
fn g(n: usize) -> u8 { n as u8 }
fn h(n: u16) -> u64 { u64::from(n) }
fn k(n: u32) -> usize { n as usize }
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("cast"), Some(&2));
    }

    #[test]
    fn wall_clock_sources_are_flagged() {
        let pats = patterns();
        let text = "\
let t0 = std::time::Instant::now();
let wall = SystemTime::now();
let cycles = clock.now(); // a simulated clock is fine
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("wallclock"), Some(&2));
    }

    #[test]
    fn raw_reram_indexing_is_flagged_and_scoped() {
        let pats = patterns();
        let text =
            "fn f(&self) { let x = self.cells[3]; let w = &self.words[0..2]; self.slots[i] = true; }\n";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("rawindex"), Some(&3));
        // The rule is scoped to the ReRAM crate; `self.slots[...]` in, say,
        // the core crate's buffers is someone else's business.
        let scoped: Vec<_> = pats.iter().filter(|p| p.name == "rawindex").collect();
        assert_eq!(scoped.len(), 3);
        let applies = |rel: &str| {
            scoped
                .iter()
                .any(|p| p.scope.is_none_or(|s| rel.starts_with(s)))
        };
        assert!(applies("crates/reram/src/spike.rs"));
        assert!(!applies("crates/core/src/buffers.rs"));
    }

    #[test]
    fn allowlist_roundtrip() {
        let map = parse_allowlist("# c\npath.rs unwrap 3\n\npath.rs assert 1\n").expect("parses");
        assert_eq!(map.get(&("path.rs".into(), "unwrap".into())), Some(&3));
        assert!(parse_allowlist("broken line").is_err());
    }
}
