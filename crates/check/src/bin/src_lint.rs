//! `src-lint` — the repo-wide determinism/panic lint gate.
//!
//! A dependency-free (std-only, line-oriented) scan over `crates/*/src`
//! that keeps library code panic-free and deterministic:
//!
//! * **Forbidden in non-test code**: `unwrap()`, `.expect(`, `panic!(` and
//!   `assert!(` (with word boundaries, so `debug_assert!` — compiled out in
//!   release — passes). Existing sites live in the checked-in allowlist
//!   `lint-allow.txt`, whose per-file counts may only *shrink*: a new site
//!   fails the build, and so does a stale (over-counted) entry, forcing the
//!   allowlist to track reality downward.
//! * **Nondeterminism hazards**: `HashMap`/`HashSet` (iteration order is
//!   randomized — numeric paths must use `BTreeMap`/sorted `Vec`s) and the
//!   wall-clock sources `Instant::now` / `SystemTime::now` (simulated time
//!   must come from the cycle model, never the host clock) are allowlisted
//!   errors; `==`/`!=` against float literals are printed as warnings
//!   (exact-zero guards are common and legal, so they never fail the build,
//!   but new ones should be eyeballed).
//! * **Lossy numeric `as` casts** (`as f32`, `as u8`/`u16`/`u32`,
//!   `as i8`/`i16`/`i32`): silently truncate or round; new sites should use
//!   `From`/`TryFrom` or justify themselves into the allowlist.
//! * **Raw storage indexing in `crates/reram/`** (`.slots[`, `.cells[`,
//!   `.words[`): direct indexing into the device-model storage vectors is
//!   how the `input_bits > 32` out-of-bounds panic entered
//!   `SpikeTrain::fires`; new code must go through the bounds-explicit
//!   accessors instead. Existing sites are allowlisted, shrink-only.
//!
//! Test modules (`#[cfg(test)]`), comments and doc lines are exempt.
//!
//! ```text
//! src-lint [--root DIR] [--write-allowlist]
//! ```
//!
//! Exit status: 0 clean, 1 on any lint failure, 2 on usage/I-O errors.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The allowlist file, relative to the workspace root.
const ALLOWLIST: &str = "lint-allow.txt";

/// One forbidden-pattern class. The needles are assembled from fragments at
/// runtime so this file does not match its own patterns.
#[derive(Debug, Clone)]
struct Pattern {
    /// Allowlist key (`unwrap`, `expect`, `panic`, `assert`, `hashmap`,
    /// `cast`, `wallclock`, `rawindex`).
    name: &'static str,
    /// Exact substring to search for.
    needle: String,
    /// Whether the character before a match must not be `[A-Za-z0-9_]`.
    word_start: bool,
    /// When set, the pattern only applies to files whose workspace-relative
    /// path starts with this prefix (e.g. `crates/reram/`).
    scope: Option<&'static str>,
}

/// An everywhere-applicable pattern (no path scope).
fn pat(name: &'static str, needle: String, word_start: bool) -> Pattern {
    Pattern {
        name,
        needle,
        word_start,
        scope: None,
    }
}

/// A raw-index pattern on the ReRAM crate's internal storage vectors
/// (`.slots[`, `.cells[`, `.words[`): direct indexing is how the
/// `input_bits > 32` out-of-bounds panic slipped into `SpikeTrain::fires` —
/// accessors with explicit bounds behaviour (`get`, `slot_words`,
/// `col_words`, `level`) are the sanctioned surface. Existing sites are
/// allowlisted (shrink-only).
fn raw_index(field: String) -> Pattern {
    Pattern {
        name: "rawindex",
        needle: [field.as_str(), "["].concat(),
        word_start: false,
        scope: Some("crates/reram/"),
    }
}

fn patterns() -> Vec<Pattern> {
    vec![
        pat("unwrap", ["unwrap", "()"].concat(), true),
        pat("expect", [".exp", "ect("].concat(), false),
        pat("panic", ["pan", "ic!("].concat(), true),
        pat("assert", ["ass", "ert!("].concat(), true),
        pat("hashmap", ["Hash", "Map"].concat(), true),
        pat("hashmap", ["Hash", "Set"].concat(), true),
        pat("wallclock", ["Inst", "ant::now("].concat(), true),
        pat("wallclock", ["System", "Time::now("].concat(), true),
        pat("cast", ["as", " f32"].concat(), true),
        pat("cast", ["as", " u8"].concat(), true),
        pat("cast", ["as", " u16"].concat(), true),
        pat("cast", ["as", " u32"].concat(), true),
        pat("cast", ["as", " i8"].concat(), true),
        pat("cast", ["as", " i16"].concat(), true),
        pat("cast", ["as", " i32"].concat(), true),
        raw_index([".slo", "ts"].concat()),
        raw_index([".cel", "ls"].concat()),
        raw_index([".wor", "ds"].concat()),
    ]
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Occurrences of `pat` in `code`, honouring the word-start rule.
fn count_matches(code: &str, pat: &Pattern) -> usize {
    let bytes = code.as_bytes();
    let mut n = 0;
    let mut from = 0;
    while let Some(pos) = code[from..].find(&pat.needle) {
        let at = from + pos;
        let boundary = !pat.word_start || at == 0 || !is_word_char(bytes[at - 1]);
        if boundary {
            n += 1;
        }
        from = at + pat.needle.len();
    }
    n
}

/// Returns `line` with string-literal contents emptied, char literals
/// blanked, and any `//` line comment truncated — so neither pattern
/// matching nor test-module brace counting can be derailed by quoted
/// braces, quoted quotes, or commented-out code.
fn sanitize(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                out.push_str("\"\"");
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' if i + 2 < bytes.len() && bytes[i + 1] == b'\\' => {
                // Escaped char literal: skip `'\`, the payload, and the quote.
                let mut j = i + 3;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                out.push_str("' '");
                i = j + 1;
            }
            b'\'' if i + 2 < bytes.len() && bytes[i + 2] == b'\'' => {
                out.push_str("' '"); // plain char literal
                i += 3;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => break,
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// `true` if the token run touching `==`/`!=` on either side looks like a
/// float literal (`1.0`, `0.`, `.5`).
fn float_adjacent(code: &str, op_at: usize, op_len: usize) -> bool {
    let before = code[..op_at].trim_end();
    let after = code[op_at + op_len..].trim_start();
    let tail: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    let head: String = after
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '_')
        .collect();
    let is_float =
        |t: &str| t.contains('.') && t.chars().any(|c| c.is_ascii_digit()) && !t.starts_with("..");
    is_float(&tail.chars().rev().collect::<String>()) || is_float(&head)
}

#[derive(Debug, Default)]
struct FileReport {
    /// pattern name → hit count in non-test code.
    counts: BTreeMap<&'static str, usize>,
    /// (line number, code) for float-equality warnings.
    float_eq: Vec<(usize, String)>,
}

/// Scans one file, skipping `#[cfg(test)]` items/modules and comments.
fn scan_file(text: &str, pats: &[Pattern]) -> FileReport {
    let mut report = FileReport::default();
    let mut pending_cfg_test = false;
    let mut skip_depth: i64 = -1; // >= 0 while inside a #[cfg(test)] block
    let cfg_test_attr: String = ["#[cfg(", "test)]"].concat();

    for (lineno, raw) in text.lines().enumerate() {
        let trimmed = raw.trim_start();
        if trimmed.starts_with("//") {
            continue; // doc or plain comment line
        }
        let code = sanitize(raw);

        if skip_depth >= 0 {
            skip_depth += code.matches('{').count() as i64;
            skip_depth -= code.matches('}').count() as i64;
            if skip_depth <= 0 {
                skip_depth = -1;
            }
            continue;
        }
        if trimmed.starts_with(&cfg_test_attr) {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") {
                continue; // further attributes on the same test item
            }
            pending_cfg_test = false;
            let opens = code.matches('{').count() as i64 - code.matches('}').count() as i64;
            if opens > 0 {
                skip_depth = opens;
            }
            continue; // the item line itself is test code
        }

        for pat in pats {
            let n = count_matches(&code, pat);
            if n > 0 {
                *report.counts.entry(pat.name).or_insert(0) += n;
            }
        }
        for op in ["==", "!="] {
            let mut from = 0;
            while let Some(pos) = code[from..].find(op) {
                let at = from + pos;
                if float_adjacent(&code, at, op.len()) {
                    report.float_eq.push((lineno + 1, code.trim().to_string()));
                }
                from = at + op.len();
            }
        }
    }
    report
}

/// All `.rs` files under `root/crates/*/src`, sorted for determinism.
fn source_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    let mut crates: Vec<PathBuf> = fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crates.sort();
    let mut files = Vec::new();
    for krate in crates {
        let src = krate.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Parses `lint-allow.txt`: `path pattern count` per line, `#` comments.
fn parse_allowlist(text: &str) -> Result<BTreeMap<(String, String), usize>, String> {
    let mut map = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(pat), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "{ALLOWLIST}:{}: expected `path pattern count`",
                lineno + 1
            ));
        };
        let count: usize = count
            .parse()
            .map_err(|_| format!("{ALLOWLIST}:{}: bad count `{count}`", lineno + 1))?;
        map.insert((path.to_string(), pat.to_string()), count);
    }
    Ok(map)
}

fn run() -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut write_allowlist = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?));
            }
            "--write-allowlist" => write_allowlist = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        // crates/check/../.. = the workspace root.
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve root {}: {e}", root.display()))?;

    let pats = patterns();
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    let mut float_warnings: Vec<String> = Vec::new();
    let mut totals: BTreeMap<&'static str, usize> = BTreeMap::new();
    for path in source_files(&root)? {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let relpath = rel(&root, &path);
        let file_pats: Vec<Pattern> = pats
            .iter()
            .filter(|p| p.scope.is_none_or(|s| relpath.starts_with(s)))
            .cloned()
            .collect();
        let report = scan_file(&text, &file_pats);
        for (name, n) in report.counts {
            counts.insert((relpath.clone(), name.to_string()), n);
            *totals.entry(name).or_insert(0) += n;
        }
        for (lineno, code) in report.float_eq {
            float_warnings.push(format!(
                "warning[float-eq]: {relpath}:{lineno}: float-literal equality: `{code}`"
            ));
        }
    }

    if write_allowlist {
        let mut out = String::new();
        out.push_str(
            "# src-lint allowlist. Checked by `cargo run -p pipelayer-check --bin src-lint`.\n",
        );
        out.push_str("# Format: <path> <pattern> <count>. Counts may only SHRINK: a new site\n");
        out.push_str("# fails the lint, and so does an over-counted (stale) entry.\n");
        out.push_str("# Baseline at last regeneration: ");
        let summary: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&summary.join(" "));
        out.push('\n');
        for ((path, pat), n) in &counts {
            out.push_str(&format!("{path} {pat} {n}\n"));
        }
        fs::write(root.join(ALLOWLIST), out)
            .map_err(|e| format!("cannot write {ALLOWLIST}: {e}"))?;
        println!("wrote {} entries to {ALLOWLIST}", counts.len());
        return Ok(true);
    }

    let allow_text = fs::read_to_string(root.join(ALLOWLIST)).unwrap_or_default();
    let allowed = parse_allowlist(&allow_text)?;

    let mut failures: Vec<String> = Vec::new();
    for ((path, pat), &n) in &counts {
        let cap = allowed
            .get(&(path.clone(), pat.clone()))
            .copied()
            .unwrap_or(0);
        if n > cap {
            failures.push(format!(
                "error[{pat}]: {path}: {n} non-test site(s), allowlist caps it at {cap} — \
                 convert the new site to Result or shrink it some other way"
            ));
        }
    }
    for ((path, pat), &cap) in &allowed {
        let n = counts
            .get(&(path.clone(), pat.clone()))
            .copied()
            .unwrap_or(0);
        if n < cap {
            failures.push(format!(
                "error[stale-allowlist]: {path}: {pat} allowlisted at {cap} but only {n} \
                 found — shrink the entry in {ALLOWLIST} to lock in the progress"
            ));
        }
    }

    for w in &float_warnings {
        println!("{w}");
    }
    for f in &failures {
        println!("{f}");
    }
    let summary: Vec<String> = totals.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!(
        "src-lint: {} file-pattern entries ({}), {} float-eq warning(s), {} failure(s)",
        counts.len(),
        summary.join(" "),
        float_warnings.len(),
        failures.len()
    );
    Ok(failures.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_forbidden_patterns_with_boundaries() {
        let pats = patterns();
        let text = "fn f() { x.unwrap(); debug_assert!(x > 0); assert!(y); }\n";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("unwrap"), Some(&1));
        assert_eq!(report.counts.get("assert"), Some(&1)); // not debug_assert!
    }

    #[test]
    fn test_modules_and_comments_are_exempt() {
        let pats = patterns();
        let text = "\
fn lib() { real(); }
// x.unwrap() in a comment
/// doc: panics via assert!(x)
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); panic!(\"boom\"); }
}
fn lib2() { x.expect(\"invariant\"); }
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("unwrap"), None);
        assert_eq!(report.counts.get("panic"), None);
        assert_eq!(report.counts.get("expect"), Some(&1));
    }

    #[test]
    fn float_equality_is_flagged_ints_are_not() {
        let pats = patterns();
        let report = scan_file("if x == 0.0 { }\nif n == 3 { }\nif y != 1.5 { }\n", &pats);
        assert_eq!(report.float_eq.len(), 2);
    }

    #[test]
    fn hash_collections_are_flagged() {
        let pats = patterns();
        let needle = ["use std::collections::Hash", "Map;\n"].concat();
        let report = scan_file(&needle, &pats);
        assert_eq!(report.counts.get("hashmap"), Some(&1));
    }

    #[test]
    fn lossy_casts_are_flagged_lossless_conversions_are_not() {
        let pats = patterns();
        let text = "\
fn f(x: f64) -> f32 { x as f32 }
fn g(n: usize) -> u8 { n as u8 }
fn h(n: u16) -> u64 { u64::from(n) }
fn k(n: u32) -> usize { n as usize }
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("cast"), Some(&2));
    }

    #[test]
    fn wall_clock_sources_are_flagged() {
        let pats = patterns();
        let text = "\
let t0 = std::time::Instant::now();
let wall = SystemTime::now();
let cycles = clock.now(); // a simulated clock is fine
";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("wallclock"), Some(&2));
    }

    #[test]
    fn raw_reram_indexing_is_flagged_and_scoped() {
        let pats = patterns();
        let text =
            "fn f(&self) { let x = self.cells[3]; let w = &self.words[0..2]; self.slots[i] = true; }\n";
        let report = scan_file(text, &pats);
        assert_eq!(report.counts.get("rawindex"), Some(&3));
        // The rule is scoped to the ReRAM crate; `self.slots[...]` in, say,
        // the core crate's buffers is someone else's business.
        let scoped: Vec<_> = pats.iter().filter(|p| p.name == "rawindex").collect();
        assert_eq!(scoped.len(), 3);
        let applies = |rel: &str| {
            scoped
                .iter()
                .any(|p| p.scope.is_none_or(|s| rel.starts_with(s)))
        };
        assert!(applies("crates/reram/src/spike.rs"));
        assert!(!applies("crates/core/src/buffers.rs"));
    }

    #[test]
    fn sanitize_neutralises_literals_and_comments() {
        assert_eq!(sanitize("let c = '\"'; // tail"), "let c = ' '; ");
        assert_eq!(sanitize("let s = \"a // }{ b\";"), "let s = \"\";");
        assert_eq!(sanitize("let q = '\\''; rest"), "let q = ' '; rest");
        assert_eq!(
            sanitize("fn f<'a>(x: &'a str) {}"),
            "fn f<'a>(x: &'a str) {}"
        );
    }

    #[test]
    fn allowlist_roundtrip() {
        let map = parse_allowlist("# c\npath.rs unwrap 3\n\npath.rs assert 1\n").expect("parses");
        assert_eq!(map.get(&("path.rs".into(), "unwrap".into())), Some(&3));
        assert!(parse_allowlist("broken line").is_err());
    }
}
