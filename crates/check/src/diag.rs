//! Structured diagnostics: the `PL0xx` code space shared by every verifier
//! pass and both output formats (human-readable and `--json`).
//!
//! Codes are grouped by decade: `PL00x` shape inference, `PL01x` pipeline
//! schedule, `PL02x` crossbar mapping, `PL03x` quantization/spike coding,
//! `PL04x` value-range analysis (interval abstract interpretation of the
//! quantized datapath), `PL05x` accelerator configuration. The full table
//! lives in [`CODE_TABLE`] and is rendered by `plcheck --codes` and
//! DESIGN.md §6.3/§6.4.

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected behaviour worth knowing about (e.g. the buffers the paper
    /// duplicates for same-cycle read/write).
    Info,
    /// Legal but wasteful or suspicious (e.g. oversized buffers).
    Warning,
    /// The workload cannot run correctly; `plcheck` exits non-zero.
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl core::fmt::Display for Severity {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding from a verifier pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `"PL001"`-style.
    pub code: &'static str,
    /// Error / warning / info.
    pub severity: Severity,
    /// Where in the workload the problem sits (`"layer 3 (conv3x384)"`,
    /// `"config.batch_size"`, `"buffer d2"`).
    pub location: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub help: String,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location: location.into(),
            message: message.into(),
            help: help.into(),
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            location: location.into(),
            message: message.into(),
            help: help.into(),
        }
    }

    /// An info-severity diagnostic.
    pub fn info(
        code: &'static str,
        location: impl Into<String>,
        message: impl Into<String>,
        help: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity: Severity::Info,
            location: location.into(),
            message: message.into(),
            help: help.into(),
        }
    }

    /// Renders the rustc-style human form:
    /// `error[PL010]: buffer d2: stale read ...` plus a help line.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{}[{}]: {}: {}",
            self.severity, self.code, self.location, self.message
        );
        if !self.help.is_empty() {
            s.push_str("\n  help: ");
            s.push_str(&self.help);
        }
        s
    }

    /// Renders the diagnostic as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"location\":\"{}\",\"message\":\"{}\",\"help\":\"{}\"}}",
            self.code,
            self.severity,
            json_escape(&self.location),
            json_escape(&self.message),
            json_escape(&self.help)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `true` if any diagnostic is error-severity (the `plcheck` exit gate).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders a whole report as a JSON array (one object per diagnostic).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

// ---- code space ------------------------------------------------------------

/// Shape: degenerate (zero) input dimension.
pub const SHAPE_EMPTY_INPUT: &str = "PL001";
/// Shape: conv/pool window does not fit its input extent.
pub const SHAPE_WINDOW_TOO_BIG: &str = "PL002";
/// Shape: zero kernel size or stride.
pub const SHAPE_ZERO_KERNEL_OR_STRIDE: &str = "PL003";
/// Shape: pooling precedes every weighted layer.
pub const SHAPE_LEADING_POOL: &str = "PL004";
/// Shape: a weighted layer produces zero outputs.
pub const SHAPE_ZERO_OUTPUTS: &str = "PL005";
/// Shape: the network has no weighted layers at all.
pub const SHAPE_NO_WEIGHTED_LAYERS: &str = "PL006";

/// Schedule: a buffer read hit overwritten data (undersized buffer).
pub const SCHED_STALE_READ: &str = "PL010";
/// Schedule: same-cycle read+write on one buffer (the paper duplicates it).
pub const SCHED_SAME_CYCLE: &str = "PL011";
/// Schedule: buffer deeper than the paper's `2(L−l)+1` requirement.
pub const SCHED_OVERSIZED: &str = "PL012";
/// Schedule: zero-depth buffer.
pub const SCHED_ZERO_DEPTH: &str = "PL013";
/// Schedule: depth vector length differs from the weighted-layer count.
pub const SCHED_DEPTH_LEN: &str = "PL014";

/// Mapping: replicated arrays exceed the crossbar budget.
pub const MAP_OVER_CAPACITY: &str = "PL020";
/// Mapping: invalid granularity vector (wrong length or zero entry).
pub const MAP_BAD_GRANULARITY: &str = "PL021";
/// Mapping: replication beyond the layer's window-position count.
pub const MAP_EXCESS_REPLICATION: &str = "PL022";
/// Mapping: spare-column budget incompatible with the array width.
pub const MAP_SPARES_EXCEED_ARRAY: &str = "PL023";
/// Mapping: expected dead columns (configured fault rate plus endurance
/// wear-out over a nominal training run) exceed the spare-column budget.
pub const MAP_SPARES_INSUFFICIENT: &str = "PL024";

/// Quant: data bits not a positive multiple of the cell bits (Fig. 14).
pub const QUANT_BITS_MISALIGNED: &str = "PL030";
/// Quant: data bits exceed the spike-coding slot limit.
pub const QUANT_SPIKE_OVERFLOW: &str = "PL031";
/// Quant: resolution outside the functional quantizer's range.
pub const QUANT_UNSUPPORTED_RESOLUTION: &str = "PL032";

/// Range: a forward activation bound exceeds the datapath's representable
/// activation range.
pub const RANGE_ACTIVATION_OVERFLOW: &str = "PL040";
/// Range: a backward error / weight-gradient bound exceeds the datapath's
/// representable gradient range.
pub const RANGE_GRADIENT_OVERFLOW: &str = "PL041";
/// Range: the bit-line accumulator is too narrow for a layer's worst-case
/// dot product.
pub const RANGE_ACC_TOO_NARROW: &str = "PL042";
/// Range: some output unit saturates on *every* input in the domain.
pub const RANGE_GUARANTEED_SATURATION: &str = "PL043";

/// Config: the accelerator configuration itself is invalid.
pub const CONFIG_INVALID: &str = "PL050";

/// Semantic: a public API function can transitively reach a panic site.
pub const SEM_PANIC_REACHABLE: &str = "PL060";
/// Semantic: a `&mut self` method writes cached state without invalidating
/// the derived cache.
pub const SEM_CACHE_INCOHERENT: &str = "PL061";
/// Semantic: a nondeterminism source (RNG / wall clock / hash iteration)
/// can reach a weight-or-report sink outside the seeded stream.
pub const SEM_NONDET_TAINT: &str = "PL062";

/// Semantic: operands with different physical units (or the same unit at
/// different decimal scales) meet at an add/sub/compare/assign.
pub const SEM_UNIT_MIXED: &str = "PL070";
/// Semantic: a binding's or function's suffix-declared unit disagrees with
/// the unit its initializer/body computes.
pub const SEM_UNIT_DECLARED: &str = "PL071";
/// Semantic: a dimensioned value flows into a bench-JSON/report sink whose
/// field name carries no (or the wrong) unit suffix.
pub const SEM_UNIT_SINK: &str = "PL072";

/// Every code with its one-line description, in code order — the table
/// behind `plcheck --codes` and DESIGN.md §6.3.
pub const CODE_TABLE: &[(&str, &str)] = &[
    (SHAPE_EMPTY_INPUT, "input or layer dimension is zero"),
    (
        SHAPE_WINDOW_TOO_BIG,
        "conv/pool window does not fit the input extent (shape mismatch)",
    ),
    (SHAPE_ZERO_KERNEL_OR_STRIDE, "kernel size or stride is zero"),
    (
        SHAPE_LEADING_POOL,
        "pooling layer precedes every weighted layer",
    ),
    (
        SHAPE_ZERO_OUTPUTS,
        "weighted layer produces zero output channels/neurons",
    ),
    (SHAPE_NO_WEIGHTED_LAYERS, "network has no weighted layers"),
    (
        SCHED_STALE_READ,
        "inter-layer buffer read hits overwritten data (undersized buffer, Sec. 3.3)",
    ),
    (
        SCHED_SAME_CYCLE,
        "buffer sees a same-cycle read+write; the paper duplicates it",
    ),
    (
        SCHED_OVERSIZED,
        "buffer deeper than the required 2(L-l)+1 (wasted memory subarrays)",
    ),
    (SCHED_ZERO_DEPTH, "buffer depth is zero"),
    (
        SCHED_DEPTH_LEN,
        "buffer-depth vector length differs from the weighted-layer count",
    ),
    (
        MAP_OVER_CAPACITY,
        "replicated conv arrays exceed the crossbar budget (over-capacity G)",
    ),
    (
        MAP_BAD_GRANULARITY,
        "granularity vector has the wrong length or a zero entry",
    ),
    (
        MAP_EXCESS_REPLICATION,
        "replication G exceeds the layer's window positions P",
    ),
    (
        MAP_SPARES_EXCEED_ARRAY,
        "spare-column budget incompatible with the crossbar width",
    ),
    (
        MAP_SPARES_INSUFFICIENT,
        "expected dead columns over a nominal training run exceed the spare budget",
    ),
    (
        QUANT_BITS_MISALIGNED,
        "data bits not a positive multiple of the cell bits (Fig. 14 segmenting)",
    ),
    (
        QUANT_SPIKE_OVERFLOW,
        "data bits exceed the 32-slot spike-coding limit (Fig. 9a)",
    ),
    (
        QUANT_UNSUPPORTED_RESOLUTION,
        "resolution outside the functional quantizer's 1..=24-bit range",
    ),
    (
        RANGE_ACTIVATION_OVERFLOW,
        "worst-case activation bound exceeds the datapath's activation range",
    ),
    (
        RANGE_GRADIENT_OVERFLOW,
        "worst-case error/weight-gradient bound exceeds the gradient range",
    ),
    (
        RANGE_ACC_TOO_NARROW,
        "bit-line accumulator too narrow for a layer's worst-case dot product",
    ),
    (
        RANGE_GUARANTEED_SATURATION,
        "an output unit saturates on every input in the domain",
    ),
    (CONFIG_INVALID, "accelerator configuration is invalid"),
    (
        SEM_PANIC_REACHABLE,
        "public API function can transitively reach a panic site",
    ),
    (
        SEM_CACHE_INCOHERENT,
        "&mut self method writes cached state without invalidating the cache",
    ),
    (
        SEM_NONDET_TAINT,
        "nondeterminism source reaches a weight/report sink outside the seed stream",
    ),
    (
        SEM_UNIT_MIXED,
        "operands with different physical units meet at an add/sub/compare",
    ),
    (
        SEM_UNIT_DECLARED,
        "suffix-declared unit disagrees with the unit the body computes",
    ),
    (
        SEM_UNIT_SINK,
        "dimensioned value reaches a report sink field without a unit suffix",
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        for pair in CODE_TABLE.windows(2) {
            assert!(pair[0].0 < pair[1].0, "{} !< {}", pair[0].0, pair[1].0);
        }
    }

    #[test]
    fn render_and_json() {
        let d = Diagnostic::error("PL010", "buffer d2", "stale \"read\"", "deepen it");
        assert!(d.render().starts_with("error[PL010]: buffer d2: stale"));
        assert!(d.render().contains("help: deepen it"));
        let json = d.to_json();
        assert!(json.contains("\\\"read\\\""), "{json}");
        assert!(render_json(&[d.clone(), d]).starts_with("[{"));
    }

    #[test]
    fn severity_ordering_puts_error_on_top() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let w = Diagnostic::warning("PL012", "b", "m", "h");
        assert!(!has_errors(std::slice::from_ref(&w)));
        let e = Diagnostic::error("PL010", "b", "m", "h");
        assert!(has_errors(&[w, e]));
    }
}
