//! PL062 — determinism taint over the call graph.
//!
//! The paper's pinned numbers (Tables 5–7, Fig. 13) require bitwise
//! determinism: weights and bench-report JSON must be pure functions of the
//! seed. The line lint already flags *textual* nondeterminism sources; this
//! pass upgrades that to call-graph propagation: a function is **tainted**
//! if its body contains a source — wall clock (`Instant::now`,
//! `SystemTime::now`), ambient RNG (`thread_rng`, `from_entropy`,
//! `rand::random`), or hash-order iteration (`HashMap`/`HashSet`) — or if
//! it calls a tainted function. Taint does **not** propagate through the
//! seed stream (`seedstream` module): seeded derivation is the sanctioned
//! way to consume entropy.
//!
//! Findings are reported at the configured **sinks** — the weight/report
//! writing surface (serialization, checkpointing, bench reports): a sink
//! function that is tainted can produce output that differs run to run.
//!
//! Caveats, same family as `check::callgraph`: taint flows along call
//! edges only. A caller that samples the clock and passes the value *as
//! data* into a clean sink is not seen here — that pattern is exactly what
//! the bench binaries do legitimately (wall-clock timings reported as
//! measurements, not weights), and it stays under the line lint's
//! `wallclock` allowlist instead.

use crate::callgraph::{FnItem, Recv, Workspace};
use crate::diag::{self, Diagnostic};
use crate::lex::TokKind;
use std::collections::BTreeMap;

/// `Type::method()` calls that read ambient nondeterminism.
const SOURCE_CALLS: &[(&str, &str)] = &[
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("rand", "random"),
];

/// Bare or method calls that read ambient nondeterminism.
const SOURCE_NAMES: &[&str] = &["thread_rng", "from_entropy"];

/// Type identifiers whose iteration order is randomized.
const SOURCE_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Gate configuration for [`findings`].
#[derive(Debug, Clone)]
pub struct Options {
    /// A function defined in a file whose path contains one of these is a
    /// sink: its output must be deterministic.
    pub sink_paths: Vec<String>,
    /// Taint does not propagate out of files whose path contains one of
    /// these (the seeded-entropy surface).
    pub sanitizer_paths: Vec<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sink_paths: vec![
                "nn/src/serialize.rs".to_string(),
                "bench/src/report.rs".to_string(),
                "core/src/checkpoint".to_string(),
            ],
            sanitizer_paths: vec!["seedstream".to_string()],
        }
    }
}

/// What kind of direct source a function contains.
#[derive(Debug, Clone)]
pub struct SourceSite {
    pub what: String,
    pub line: usize,
}

/// Scans one function body for its first nondeterminism source.
fn direct_source(ws: &Workspace, f: &FnItem) -> Option<SourceSite> {
    for call in &f.calls {
        let hit = match &call.recv {
            Recv::Ty(t) => SOURCE_CALLS
                .iter()
                .any(|(ty, m)| ty == t && *m == call.name),
            Recv::Dot | Recv::Plain => SOURCE_NAMES.contains(&call.name.as_str()),
            _ => false,
        };
        if hit {
            return Some(SourceSite {
                what: format!("{}()", call.name),
                line: call.line,
            });
        }
    }
    // Hash-ordered collections anywhere in the body (declaration, turbofish,
    // or construction) — iteration order is per-process random.
    if let (Some((lo, hi)), Some(file)) = (f.body, ws.files.get(f.file)) {
        for k in lo..hi {
            let Some(t) = file.toks.get(k) else { break };
            if t.kind == TokKind::Ident && SOURCE_TYPES.contains(&t.text(&file.src)) {
                return Some(SourceSite {
                    what: t.text(&file.src).to_string(),
                    line: t.line,
                });
            }
        }
    }
    None
}

/// Per-function taint facts.
#[derive(Debug)]
pub struct Analysis {
    pub direct: Vec<Option<SourceSite>>,
    /// fn index → `(callee, call line)` through which taint arrives.
    pub via: Vec<Option<(usize, usize)>>,
}

impl Analysis {
    pub fn tainted(&self, f: usize) -> bool {
        self.direct.get(f).is_some_and(Option::is_some)
            || self.via.get(f).is_some_and(Option::is_some)
    }

    /// Witness chain from `start` down to a concrete source.
    pub fn witness(&self, ws: &Workspace, start: usize) -> String {
        let mut chain = String::new();
        let mut at = start;
        let mut hops = 0usize;
        while let Some(f) = ws.fns.get(at) {
            if !chain.is_empty() {
                chain.push_str(" -> ");
            }
            chain.push_str(&format!("{} ({})", f.qualified(), ws.location(f)));
            if let Some(Some(site)) = self.direct.get(at) {
                let file = ws.files.get(f.file).map(|s| s.path.as_str()).unwrap_or("?");
                chain.push_str(&format!(" -> {} at {file}:{}", site.what, site.line));
                break;
            }
            match self.via.get(at) {
                Some(&Some((next, _))) if hops < 32 && next != at => {
                    at = next;
                    hops += 1;
                }
                _ => break,
            }
        }
        chain
    }
}

fn in_paths(ws: &Workspace, f: &FnItem, paths: &[String]) -> bool {
    ws.files
        .get(f.file)
        .is_some_and(|s| paths.iter().any(|p| s.path.contains(p.as_str())))
}

/// Propagates taint backwards through the call graph, stopping at the
/// sanitizer surface.
pub fn analyze(ws: &Workspace, opts: &Options) -> Analysis {
    let n = ws.fns.len();
    let mut direct: Vec<Option<SourceSite>> = Vec::with_capacity(n);
    for f in &ws.fns {
        direct.push(direct_source(ws, f));
    }
    let edges = ws.edges();
    let mut rev: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (caller, outs) in edges.iter().enumerate() {
        for &(callee, line) in outs {
            if let Some(slot) = rev.get_mut(callee) {
                slot.push((caller, line));
            }
        }
    }
    let mut via: Vec<Option<(usize, usize)>> = vec![None; n];
    let mut work: Vec<usize> = (0..n).filter(|&i| direct[i].is_some()).collect();
    while let Some(f) = work.pop() {
        // Sanitizer fns may be tainted inside but do not leak taint upward.
        if ws
            .fns
            .get(f)
            .is_some_and(|item| in_paths(ws, item, &opts.sanitizer_paths))
        {
            continue;
        }
        for &(caller, line) in rev.get(f).map(Vec::as_slice).unwrap_or(&[]) {
            if direct[caller].is_none() && via[caller].is_none() {
                via[caller] = Some((f, line));
                work.push(caller);
            }
        }
    }
    Analysis { direct, via }
}

/// PL062 findings at the sink surface, plus per-file counts for the
/// allowlist discipline.
pub fn findings(ws: &Workspace, opts: &Options) -> (Vec<Diagnostic>, BTreeMap<String, usize>) {
    let analysis = analyze(ws, opts);
    let mut diags = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if !in_paths(ws, f, &opts.sink_paths) || !analysis.tainted(i) {
            continue;
        }
        let chain = analysis.witness(ws, i);
        diags.push(Diagnostic::warning(
            diag::SEM_NONDET_TAINT,
            ws.location(f),
            format!(
                "sink `{}` can reach a nondeterminism source: {chain}",
                f.qualified()
            ),
            "route entropy through the seed stream and iterate BTree/sorted \
             collections so output is a pure function of the seed",
        ));
        let path = ws
            .files
            .get(f.file)
            .map(|s| s.path.clone())
            .unwrap_or_default();
        *counts.entry(path).or_insert(0) += 1;
    }
    (diags, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(files: Vec<(&str, &str)>) -> Workspace {
        Workspace::build(
            files
                .into_iter()
                .map(|(p, s)| (p.to_string(), s.to_string()))
                .collect(),
        )
    }

    #[test]
    fn sink_reaching_a_clock_is_flagged_with_a_chain() {
        let w = build(vec![(
            "crates/bench/src/report.rs",
            "fn stamp() -> u64 { Instant::now(); 0 }\npub fn write_report() { stamp(); }",
        )]);
        let (diags, counts) = findings(&w, &Options::default());
        assert_eq!(diags.len(), 2, "{diags:?}"); // stamp itself + write_report
        assert!(diags.iter().any(|d| d.message.contains("write_report")));
        assert!(diags.iter().any(|d| d.message.contains("now()")));
        assert_eq!(counts.get("crates/bench/src/report.rs"), Some(&2));
    }

    #[test]
    fn taint_does_not_cross_the_seedstream() {
        let w = build(vec![
            (
                "crates/nn/src/seedstream.rs",
                "pub fn derive(seed: u64) -> u64 { from_entropy(); seed }",
            ),
            ("crates/nn/src/serialize.rs", "pub fn save() { derive(7); }"),
        ]);
        let (diags, _) = findings(&w, &Options::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn hashmap_in_a_sink_body_is_a_direct_source() {
        let w = build(vec![(
            "crates/nn/src/serialize.rs",
            "pub fn save() { let m: HashMap<u8, u8> = Default::default(); }",
        )]);
        let (diags, _) = findings(&w, &Options::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("HashMap"));
    }

    #[test]
    fn clean_sinks_and_non_sink_taint_produce_no_findings() {
        let w = build(vec![
            (
                "crates/nn/src/serialize.rs",
                "pub fn save(w: &[f32]) { emit(w); }\nfn emit(_w: &[f32]) {}",
            ),
            (
                "crates/bench/src/bin/bench_mvm.rs",
                "fn main() { Instant::now(); }",
            ),
        ]);
        let (diags, _) = findings(&w, &Options::default());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
