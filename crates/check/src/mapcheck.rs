//! Crossbar-mapping feasibility: replication `G` × kernel footprint against
//! the partition capacity (Figs. 4/5, Sec. 3.2.3), and the spare-column
//! budget of `pipelayer::repair` against the array geometry.

use crate::diag::{self, Diagnostic};
use crate::shape::InferredLayer;
use pipelayer::PipeLayerConfig;
use pipelayer_reram::tile_grid;

/// Program pulses a weight cell absorbs over a *nominal* training run —
/// the planning horizon behind the PL024 spare-budget feasibility
/// estimate. The paper-scale campaigns land around 10⁵ batch updates
/// (tens of epochs × thousands of batches), and a cell sees at most one
/// tuning pulse per update, so this is a deliberately coarse
/// order-of-magnitude horizon: PL024 is a warning about provisioning, not
/// a hard schedulability error.
const NOMINAL_TRAINING_UPDATES: f64 = 100_000.0;

/// Checks a granularity assignment `g` for `layers` under `cfg`, with the
/// replicated conv arrays bounded by `budget` crossbars (the same capacity
/// notion as `pipelayer::granularity`'s budgeted search).
pub fn check(
    layers: &[InferredLayer],
    g: &[usize],
    cfg: &PipeLayerConfig,
    budget: u64,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if g.len() != layers.len() {
        diags.push(Diagnostic::error(
            diag::MAP_BAD_GRANULARITY,
            "mapping",
            format!(
                "granularity vector has {} entries for {} weighted layers",
                g.len(),
                layers.len()
            ),
            "supply one replication factor per weighted layer",
        ));
        return diags;
    }

    let size = cfg.params.xbar_size;
    let per_matrix = cfg.params.crossbars_per_matrix() as u64;
    let mut conv_cost = 0u64;
    for (idx, (layer, &gl)) in layers.iter().zip(g).enumerate() {
        let loc = format!("layer {} ({})", idx + 1, layer.name);
        if gl == 0 {
            diags.push(Diagnostic::error(
                diag::MAP_BAD_GRANULARITY,
                loc,
                "replication factor G is zero".to_string(),
                "every layer needs at least one array copy (G >= 1)",
            ));
            continue;
        }
        let p = layer.window_positions.max(1);
        if gl > p {
            diags.push(Diagnostic::warning(
                diag::MAP_EXCESS_REPLICATION,
                loc.clone(),
                format!("G = {gl} exceeds the layer's {p} kernel-window positions"),
                "copies beyond G = P can never be read in parallel; clamp G to P",
            ));
        }
        if layer.is_conv {
            let (tr, tc) = tile_grid(layer.matrix_rows, layer.matrix_cols.max(1), size);
            conv_cost += (tr * tc) as u64 * gl as u64 * per_matrix;
        }
    }

    if conv_cost > budget {
        diags.push(Diagnostic::error(
            diag::MAP_OVER_CAPACITY,
            "mapping",
            format!("replicated conv arrays need {conv_cost} crossbars but the budget is {budget}"),
            "lower the per-layer granularity G (or raise the crossbar budget): \
             each copy costs ceil(rows/128)*ceil(cols/128) tiles x 8 crossbars",
        ));
    }

    let spares = cfg.spares.cols_per_matrix;
    if spares >= size {
        diags.push(Diagnostic::error(
            diag::MAP_SPARES_EXCEED_ARRAY,
            "config.spares",
            format!("{spares} spare columns per matrix, but arrays are only {size} wide"),
            "spare bit lines ride alongside the working array; a typical budget is 2-4",
        ));
    } else if spares * 10 > size {
        diags.push(Diagnostic::warning(
            diag::MAP_SPARES_EXCEED_ARRAY,
            "config.spares",
            format!("{spares} spare columns per {size}-wide matrix is >10% area overhead"),
            "conventional macro provision is 2-4 spare bit lines per 128-wide array",
        ));
    }

    // PL024: static spare-budget feasibility. A column dies (and consumes a
    // spare, or a mask once spares run out) when any of its cells dies, so
    // with a per-cell death probability p over a nominal training horizon,
    // a size-row column dies with probability 1 − (1−p)^size, and the
    // expected dead columns per matrix is size × that. The per-cell rate
    // combines the configured manufacturing dead-fault rate with the wear
    // model's lognormal end-of-life CDF at the nominal pulse count.
    let p_cell =
        (cfg.fault_model.dead + cfg.wear.death_probability(NOMINAL_TRAINING_UPDATES)).min(1.0);
    if p_cell > 0.0 && spares < size {
        let p_col = 1.0 - (1.0 - p_cell).powf(size as f64);
        let expected_dead_cols = p_col * size as f64;
        if expected_dead_cols > spares as f64 {
            diags.push(Diagnostic::warning(
                diag::MAP_SPARES_INSUFFICIENT,
                "config.spares",
                format!(
                    "~{expected_dead_cols:.1} columns per {size}x{size} matrix are expected to \
                     die over a nominal training run ({NOMINAL_TRAINING_UPDATES:.0} updates), \
                     but only {spares} spare columns are provisioned"
                ),
                "raise the spare budget, pick a higher-endurance cell grade, or shorten \
                 training; once spares exhaust, each further dead cell masks a whole column",
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::shape;
    use pipelayer::granularity::default_granularity;
    use pipelayer::repair::SpareBudget;
    use pipelayer_nn::zoo;

    const BUDGET: u64 = pipelayer::granularity::DEFAULT_CONV_XBAR_BUDGET;

    #[test]
    fn default_granularity_fits_the_budget() {
        for spec in zoo::evaluation_specs() {
            let layers = shape::infer(&spec).layers;
            let g = default_granularity(&spec.resolve());
            let diags = check(&layers, &g, &PipeLayerConfig::default(), BUDGET);
            assert!(
                !diags.iter().any(|d| d.severity == Severity::Error),
                "{}: {diags:?}",
                spec.name
            );
        }
    }

    #[test]
    fn over_capacity_replication_is_rejected() {
        // VGG-A at full replication (G = P everywhere) dwarfs any die.
        let spec = zoo::vgg(zoo::VggVariant::A);
        let layers = shape::infer(&spec).layers;
        let g: Vec<usize> = layers.iter().map(|l| l.window_positions.max(1)).collect();
        let diags = check(&layers, &g, &PipeLayerConfig::default(), BUDGET);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::MAP_OVER_CAPACITY && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn bad_granularity_vectors_are_rejected() {
        let spec = zoo::spec_mnist_a();
        let layers = shape::infer(&spec).layers;
        let diags = check(&layers, &[1], &PipeLayerConfig::default(), BUDGET);
        assert_eq!(diags[0].code, diag::MAP_BAD_GRANULARITY);
        let diags = check(&layers, &[1, 0], &PipeLayerConfig::default(), BUDGET);
        assert!(diags.iter().any(|d| d.code == diag::MAP_BAD_GRANULARITY));
    }

    #[test]
    fn excess_replication_warns() {
        let spec = zoo::spec_mnist_a(); // pure MLP: P = 1 everywhere
        let layers = shape::infer(&spec).layers;
        let diags = check(&layers, &[4, 1], &PipeLayerConfig::default(), BUDGET);
        assert!(diags
            .iter()
            .any(|d| d.code == diag::MAP_EXCESS_REPLICATION && d.severity == Severity::Warning));
    }

    #[test]
    fn wear_grade_beyond_the_spare_budget_warns() {
        use pipelayer_reram::{FaultModel, WearModel};
        let spec = zoo::spec_mnist_a();
        let layers = shape::infer(&spec).layers;

        // Storage-class endurance (median well under the nominal pulse
        // horizon): nearly every cell dies, spares cannot cover it.
        let mut cfg = PipeLayerConfig {
            spares: SpareBudget::typical(),
            wear: WearModel::with_endurance(1e4),
            ..Default::default()
        };
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::MAP_SPARES_INSUFFICIENT
                    && d.severity == Severity::Warning),
            "{diags:?}"
        );

        // Research-grade endurance (median far above the horizon): silent.
        cfg.wear = WearModel::with_endurance(1e12);
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(
            !diags
                .iter()
                .any(|d| d.code == diag::MAP_SPARES_INSUFFICIENT),
            "{diags:?}"
        );

        // A heavy manufacturing dead rate alone also trips the check.
        cfg.wear = WearModel::ideal();
        cfg.fault_model = FaultModel {
            dead: 0.05,
            ..FaultModel::ideal()
        };
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(
            diags
                .iter()
                .any(|d| d.code == diag::MAP_SPARES_INSUFFICIENT),
            "{diags:?}"
        );

        // The ideal default configuration stays clean.
        let diags = check(&layers, &[1, 1], &PipeLayerConfig::default(), BUDGET);
        assert!(
            !diags
                .iter()
                .any(|d| d.code == diag::MAP_SPARES_INSUFFICIENT),
            "{diags:?}"
        );
    }

    #[test]
    fn spare_budget_versus_array_width() {
        let spec = zoo::spec_mnist_a();
        let layers = shape::infer(&spec).layers;
        let mut cfg = PipeLayerConfig {
            spares: SpareBudget::with_cols(128),
            ..PipeLayerConfig::default()
        };
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(diags
            .iter()
            .any(|d| d.code == diag::MAP_SPARES_EXCEED_ARRAY && d.severity == Severity::Error));
        cfg.spares = SpareBudget::with_cols(20);
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(diags
            .iter()
            .any(|d| d.code == diag::MAP_SPARES_EXCEED_ARRAY && d.severity == Severity::Warning));
        cfg.spares = SpareBudget::typical();
        let diags = check(&layers, &[1, 1], &cfg, BUDGET);
        assert!(!diags
            .iter()
            .any(|d| d.code == diag::MAP_SPARES_EXCEED_ARRAY));
    }
}
