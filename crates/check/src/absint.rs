//! Interval abstract interpretation of the quantized datapath (PL04x).
//!
//! PipeLayer fixes the *resolution* of its arithmetic — 16-bit words
//! recombined from 4-bit cells (Fig. 14), weighted LSB-first spike inputs
//! accumulated over bounded slots (Fig. 9), integrate-and-fire outputs —
//! but nothing in the mapping pipeline proves that the *values* flowing
//! through training stay inside those formats. This pass does, the way
//! ISAAC sizes its ADC/accumulator widths: worst-case range arithmetic.
//!
//! The abstract domain is the interval `[lo, hi] ⊆ ℝ` (one interval per
//! tensor — the join over its elements), refined per weighted layer by
//! sign-split affine transfer: with `pos_j = Σ max(w, 0)` and
//! `neg_j = Σ max(−w, 0)` over bit line `j`'s weights, an input box
//! `x ∈ [lo, hi]ⁿ` maps exactly to
//!
//! ```text
//! out_j ∈ [pos_j·lo − neg_j·hi + b_j,  pos_j·hi − neg_j·lo + b_j]
//! ```
//!
//! joined over `j` and inflated by an `(n+2)·ε` floating-point summation
//! slack so the bounds also hold for the `f32` arithmetic the functional
//! datapath executes. The backward pass propagates the loss error through
//! the transposed aggregates and bounds the per-sample `ΔW` partials the
//! accelerator buffers per image (Sec. 4.4.2). The aggregates come from
//! the *actual quantized weight grids* (`pipelayer-quant`), so the proof is
//! about the network the hardware would run, and the soundness property
//! tests execute exactly that network (`build_for_analysis`) and assert
//! every concrete value lies inside the predicted interval.
//!
//! Checks emitted (see `diag`):
//! * **PL040** — a forward activation bound exceeds
//!   `cfg.datapath.activation_absmax`, reported at the stage that caused
//!   the overflow;
//! * **PL041** — a backward error or per-sample weight-gradient bound
//!   exceeds `cfg.datapath.gradient_absmax`;
//! * **PL042** — the bit-line accumulator is narrower than the worst-case
//!   `rows · qmax²` dot product of a mapped matrix (geometry-only, so it
//!   also covers the ImageNet-scale models and any weights training may
//!   reach);
//! * **PL043** — some output unit provably saturates on *every* input in
//!   the domain (warning: training signal dies there).
//!
//! ImageNet-scale networks (which `NetSpec::build` cannot materialise)
//! degrade soundly to the geometry-only subset: PL042 plus unbounded
//! intervals in the report.

use crate::diag::{self, Diagnostic};
use crate::shape::{self, InferredLayer};
use pipelayer::PipeLayerConfig;
use pipelayer_nn::loss::Loss;
use pipelayer_nn::spec::NetSpec;
use pipelayer_nn::{LayerKind, Network};
use pipelayer_quant::{accumulator_bits_worst_case, bits_for_magnitude, Quantizer};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Networks with at most this many learnable scalars are built and
/// analysed in the value domain (the four MNIST models are ≈0.6 M; AlexNet
/// is 61 M and would allocate gigabytes).
pub const EXEC_WEIGHT_LIMIT: usize = 4_000_000;

/// Seed used by [`build_for_analysis`] — fixed so the analysed parameter
/// state is reproducible and the soundness harness executes the same
/// network the verifier reasoned about.
pub const ANALYSIS_SEED: u64 = 0xA11A;

/// Relative safety factor on top of the `(n+2)·ε` floating-point summation
/// slack (covers blocked/reordered GEMM accumulation).
const FP_SLACK_FACTOR: f64 = 4.0;

const EPS32: f64 = f32::EPSILON as f64;

// ---- interval domain -------------------------------------------------------

/// A closed interval `[lo, hi]`, the abstract value of every element of one
/// tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// The unit interval `[0, 1]` — the domain of normalised pixel inputs.
    pub const UNIT: Interval = Interval { lo: 0.0, hi: 1.0 };

    /// The unbounded interval (geometry-only stages).
    pub const TOP: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
    };

    /// Creates `[lo, hi]`, swapping if given in the wrong order.
    pub fn new(lo: f64, hi: f64) -> Interval {
        if lo <= hi {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Largest absolute value in the interval.
    pub fn mag(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest interval containing both.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Smallest interval containing this one and zero.
    pub fn hull_zero(self) -> Interval {
        Interval {
            lo: self.lo.min(0.0),
            hi: self.hi.max(0.0),
        }
    }

    /// Scales by a non-negative factor.
    pub fn scale(self, c: f64) -> Interval {
        Interval::new(self.lo * c, self.hi * c)
    }

    /// Widens both endpoints outward by `slack ≥ 0`.
    pub fn widen(self, slack: f64) -> Interval {
        Interval {
            lo: self.lo - slack,
            hi: self.hi + slack,
        }
    }

    /// `true` if `v` lies inside (the soundness predicate).
    pub fn contains(self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// `true` when both endpoints are finite.
    pub fn is_bounded(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }
}

impl core::fmt::Display for Interval {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_bounded() {
            write!(f, "[{:.3e}, {:.3e}]", self.lo, self.hi)
        } else {
            f.write_str("[unbounded]")
        }
    }
}

// ---- abstract layers -------------------------------------------------------

/// Sign-split weight aggregates of one affine (conv / inner-product) layer.
#[derive(Debug, Clone)]
struct AffineStats {
    /// Per bit line `j` (output unit / channel): `Σ max(w, 0)`.
    out_pos: Vec<f64>,
    /// Per bit line `j`: `Σ max(−w, 0)`.
    out_neg: Vec<f64>,
    /// Bias values per bit line.
    bias: Vec<f64>,
    /// Per input coordinate (column / input channel): `Σ max(w, 0)` over
    /// every weight touching it in the transposed (backward) map.
    in_pos: Vec<f64>,
    /// Backward negative aggregate.
    in_neg: Vec<f64>,
    /// Terms per forward dot product (`matrix_rows − 1`).
    dot_len: usize,
    /// Terms per backward dot product.
    back_len: usize,
    /// Kernel-window positions per image (1 for FC) — the multiplier on
    /// per-sample weight-gradient magnitudes and the stage's array-read
    /// cycle budget.
    window_positions: usize,
    /// Mapped matrix rows (for the geometry accumulator bound).
    matrix_rows: u64,
    /// Code-space `max_j (Σ|q_w| + |q_b|)` when the weights are quantized —
    /// the data-dependent accumulator bound.
    code_l1: Option<u64>,
}

/// One layer of the abstract network.
#[derive(Debug, Clone)]
enum AbsOp {
    Affine(Box<AffineStats>),
    Relu,
    Sigmoid,
    /// `overlap` = max windows covering one input position.
    MaxPool {
        overlap: f64,
    },
    AvgPool {
        k2: f64,
        overlap: f64,
    },
    Flatten,
    Dropout {
        scale: f64,
    },
}

struct AbsLayer {
    name: String,
    op: AbsOp,
}

// ---- report ----------------------------------------------------------------

/// Predicted bounds for one layer of the analysed network.
#[derive(Debug, Clone)]
pub struct StageBounds {
    /// Index in the built network's layer stack (value domain) or the
    /// weighted-layer ordinal (geometry-only).
    pub index: usize,
    /// Layer name (`"conv3x8"`, `"relu"`, …).
    pub name: String,
    /// Forward output bound (post this layer). [`Interval::TOP`] in
    /// geometry-only mode.
    pub activation: Interval,
    /// Bound on the error this layer propagates to its input.
    pub delta: Interval,
    /// Per-sample `|ΔW|` bound (0 for parameterless layers).
    pub dweight_mag: f64,
    /// Per-sample `|Δb|` bound.
    pub dbias_mag: f64,
    /// Accumulator bits needed for the worst-case `rows · qmax²` dot
    /// product (affine layers only).
    pub acc_bits_geometry: Option<u32>,
    /// Tighter data-dependent accumulator bits from the actual code grid.
    pub acc_bits_data: Option<u32>,
}

impl StageBounds {
    fn passthrough(index: usize, name: String) -> StageBounds {
        StageBounds {
            index,
            name,
            activation: Interval::TOP,
            delta: Interval::TOP,
            dweight_mag: 0.0,
            dbias_mag: 0.0,
            acc_bits_geometry: None,
            acc_bits_data: None,
        }
    }
}

/// Everything the range analysis derived for one network.
#[derive(Debug, Clone)]
pub struct RangeReport {
    /// Network name.
    pub network: String,
    /// Input value domain the bounds were derived for.
    pub input: Interval,
    /// `true` when actual (quantized) weights were analysed; `false` for
    /// the geometry-only fallback.
    pub value_domain: bool,
    /// Per-layer bounds.
    pub stages: Vec<StageBounds>,
    /// PL04x findings.
    pub diags: Vec<Diagnostic>,
}

impl RangeReport {
    /// Serialises the per-layer bound table as one JSON object (the
    /// `"ranges"` field of `plcheck --ranges --json`).
    pub fn to_json(&self) -> String {
        let iv = |i: Interval| -> String {
            if i.is_bounded() {
                format!("{{\"lo\":{:e},\"hi\":{:e}}}", i.lo, i.hi)
            } else {
                "null".to_string()
            }
        };
        let opt = |b: Option<u32>| b.map_or("null".to_string(), |v| v.to_string());
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"index\":{},\"name\":\"{}\",\"activation\":{},\"delta\":{},\
                     \"dweight_mag\":{:e},\"dbias_mag\":{:e},\
                     \"acc_bits_geometry\":{},\"acc_bits_data\":{}}}",
                    s.index,
                    s.name,
                    iv(s.activation),
                    iv(s.delta),
                    s.dweight_mag,
                    s.dbias_mag,
                    opt(s.acc_bits_geometry),
                    opt(s.acc_bits_data),
                )
            })
            .collect();
        format!(
            "{{\"input\":{},\"value_domain\":{},\"stages\":[{}]}}",
            iv(self.input),
            self.value_domain,
            stages.join(",")
        )
    }
}

// ---- entry points ----------------------------------------------------------

/// Builds exactly the network [`analyze`] reasons about: [`ANALYSIS_SEED`],
/// the zoo's default softmax-cross-entropy loss, weights overwritten with
/// their `data_bits` fixed-point images when the functional quantizer
/// supports that resolution. Returns `None` for networks beyond
/// [`EXEC_WEIGHT_LIMIT`] — the soundness harness uses this to execute the
/// very network the verifier analysed.
pub fn build_for_analysis(spec: &NetSpec, cfg: &PipeLayerConfig) -> Option<Network> {
    if !shape::infer(spec).is_clean() || spec.weight_count() > EXEC_WEIGHT_LIMIT {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(ANALYSIS_SEED);
    let mut net = spec.build(Loss::SoftmaxCrossEntropy, &mut rng);
    if Quantizer::try_new(cfg.params.data_bits).is_ok() {
        pipelayer_quant::quantize_network_weights(&mut net, cfg.params.data_bits);
    }
    Some(net)
}

/// Range-analyses `spec` under `cfg` with the default `[0, 1]` input
/// domain: value-domain interval propagation over the actual quantized
/// weights when the network is buildable, the geometry-only accumulator
/// check otherwise.
pub fn analyze(spec: &NetSpec, cfg: &PipeLayerConfig) -> RangeReport {
    analyze_with_input(spec, cfg, Interval::UNIT)
}

/// [`analyze`] with an explicit input value domain.
pub fn analyze_with_input(spec: &NetSpec, cfg: &PipeLayerConfig, input: Interval) -> RangeReport {
    let shapes = shape::infer(spec);
    if !shapes.is_clean() {
        // Shape errors are reported by the shape pass; there is nothing
        // sound to bound here.
        return RangeReport {
            network: spec.name.clone(),
            input,
            value_domain: false,
            stages: Vec::new(),
            diags: Vec::new(),
        };
    }
    if let Some(mut net) = build_for_analysis(spec, cfg) {
        if let Some(report) = analyze_network(&mut net, &shapes.layers, input, cfg) {
            return report;
        }
    }
    analyze_geometry(&spec.name, &shapes.layers, input, cfg)
}

/// Value-domain analysis of a concrete (already built, already quantized)
/// network. `geometry` must be the shape inference of the same spec — its
/// weighted layers align 1:1 with the network's affine layers. Returns
/// `None` when the network contains a layer the analysis has no sound
/// transfer function for ([`LayerKind::Opaque`]) or the geometry does not
/// align.
pub fn analyze_network(
    net: &mut Network,
    geometry: &[InferredLayer],
    input: Interval,
    cfg: &PipeLayerConfig,
) -> Option<RangeReport> {
    let quant = Quantizer::try_new(cfg.params.data_bits).ok();
    let abs_layers = extract_abs_layers(net, geometry, quant)?;
    let loss = net.loss();
    let name = net.name().to_string();
    Some(run_analysis(name, &abs_layers, input, loss, cfg))
}

// ---- extraction ------------------------------------------------------------

/// Sign-split slice aggregates of `data` interpreted as `slices` equal
/// chunks: `(pos, neg)` per slice.
fn slice_aggregates(data: &[f32], slices: usize) -> (Vec<f64>, Vec<f64>) {
    let mut pos = Vec::with_capacity(slices);
    let mut neg = Vec::with_capacity(slices);
    if slices == 0 || data.is_empty() {
        return (pos, neg);
    }
    let stride = (data.len() / slices).max(1);
    for chunk in data.chunks(stride).take(slices) {
        let mut p = 0.0f64;
        let mut n = 0.0f64;
        for &w in chunk {
            let w = f64::from(w);
            if w >= 0.0 {
                p += w;
            } else {
                n -= w;
            }
        }
        pos.push(p);
        neg.push(n);
    }
    (pos, neg)
}

fn extract_abs_layers(
    net: &mut Network,
    geometry: &[InferredLayer],
    quant: Option<Quantizer>,
) -> Option<Vec<AbsLayer>> {
    let mut out = Vec::with_capacity(net.len());
    let mut affine_idx = 0usize;
    for layer in net.layers_mut() {
        let name = layer.name();
        let op = match layer.kind() {
            LayerKind::Affine => {
                let geo = geometry.get(affine_idx)?;
                affine_idx += 1;
                let params = layer.params_mut()?;
                let dims = params.weight.dims().to_vec();
                let w = params.weight.as_slice();
                let (n_out, in_units, back_len) = match dims.len() {
                    2 => (dims[0], dims[1], dims[0]),
                    4 => (dims[0], dims[1], dims[0] * dims[2] * dims[3]),
                    _ => return None,
                };
                if n_out == 0 || w.is_empty() {
                    return None;
                }
                let (out_pos, out_neg) = slice_aggregates(w, n_out);
                // Backward aggregates: per input coordinate (column for
                // rank-2, input channel for rank-4 — each (c_out, u, v)
                // kernel element touches one input position at most once
                // per output pixel, so the per-channel Σ|w| bounds the
                // transposed dot product for any stride ≥ 1).
                let (in_pos, in_neg) = if dims.len() == 2 {
                    let mut pos = vec![0.0f64; in_units];
                    let mut neg = vec![0.0f64; in_units];
                    for row in w.chunks(in_units) {
                        for ((p, n), &v) in pos.iter_mut().zip(neg.iter_mut()).zip(row) {
                            let v = f64::from(v);
                            if v >= 0.0 {
                                *p += v;
                            } else {
                                *n -= v;
                            }
                        }
                    }
                    (pos, neg)
                } else {
                    let k2 = dims[2] * dims[3];
                    let mut pos = vec![0.0f64; in_units];
                    let mut neg = vec![0.0f64; in_units];
                    for filt in w.chunks(in_units * k2) {
                        for ((p, n), kernel) in
                            pos.iter_mut().zip(neg.iter_mut()).zip(filt.chunks(k2))
                        {
                            for &v in kernel {
                                let v = f64::from(v);
                                if v >= 0.0 {
                                    *p += v;
                                } else {
                                    *n -= v;
                                }
                            }
                        }
                    }
                    (pos, neg)
                };
                let bias: Vec<f64> = params
                    .bias
                    .as_slice()
                    .iter()
                    .map(|&b| f64::from(b))
                    .collect();
                if bias.len() != n_out {
                    return None;
                }
                let code_l1 = quant.map(|q| {
                    let wl1 = q.grid(params.weight).max_slice_code_l1();
                    let bmax = u64::from(q.grid(params.bias).max_abs_code().unsigned_abs());
                    wl1 + bmax
                });
                AbsOp::Affine(Box::new(AffineStats {
                    out_pos,
                    out_neg,
                    bias,
                    in_pos,
                    in_neg,
                    dot_len: w.len() / n_out,
                    back_len,
                    window_positions: geo.window_positions.max(1),
                    matrix_rows: geo.matrix_rows as u64,
                    code_l1,
                }))
            }
            LayerKind::Relu => AbsOp::Relu,
            LayerKind::Sigmoid => AbsOp::Sigmoid,
            LayerKind::MaxPool { k, stride } => AbsOp::MaxPool {
                overlap: pool_overlap(k, stride),
            },
            LayerKind::AvgPool { k, stride } => AbsOp::AvgPool {
                k2: (k * k) as f64,
                overlap: pool_overlap(k, stride),
            },
            LayerKind::Flatten => AbsOp::Flatten,
            LayerKind::Dropout { p } => AbsOp::Dropout {
                scale: 1.0 / (1.0 - f64::from(p)).max(f64::MIN_POSITIVE),
            },
            LayerKind::Opaque => return None,
        };
        out.push(AbsLayer { name, op });
    }
    if affine_idx != geometry.len() {
        return None;
    }
    Some(out)
}

/// Max windows covering one input position: `⌈k/stride⌉²` (1 for the
/// non-overlapping pools the zoo uses).
fn pool_overlap(k: usize, stride: usize) -> f64 {
    let per_axis = k.div_ceil(stride.max(1));
    (per_axis * per_axis) as f64
}

// ---- transfer functions ----------------------------------------------------

/// Floating-point summation slack for an `n`-term sum of terms bounded by
/// `mag_sum` in total magnitude.
fn fp_slack(n: usize, mag_sum: f64) -> f64 {
    FP_SLACK_FACTOR * (n as f64 + 2.0) * EPS32 * mag_sum
}

/// Forward interval through one affine layer, joined over bit lines.
fn affine_forward(st: &AffineStats, x: Interval) -> Interval {
    let xmag = x.mag();
    let mut out: Option<Interval> = None;
    for ((&p, &n), &b) in st.out_pos.iter().zip(&st.out_neg).zip(&st.bias) {
        let slack = fp_slack(st.dot_len, (p + n) * xmag + b.abs());
        let iv = Interval::new(p * x.lo - n * x.hi + b, p * x.hi - n * x.lo + b).widen(slack);
        out = Some(out.map_or(iv, |acc| acc.join(iv)));
    }
    out.unwrap_or(Interval { lo: 0.0, hi: 0.0 })
}

/// Units of an affine layer that saturate on *every* input in `x`'s box:
/// `(unit, bound)` of the first such bit line, if any.
fn guaranteed_saturation(st: &AffineStats, x: Interval, absmax: f64) -> Option<(usize, f64)> {
    for (j, ((&p, &n), &b)) in st.out_pos.iter().zip(&st.out_neg).zip(&st.bias).enumerate() {
        let slack = fp_slack(st.dot_len, (p + n) * x.mag() + b.abs());
        let lo = p * x.lo - n * x.hi + b - slack;
        let hi = p * x.hi - n * x.lo + b + slack;
        if lo > absmax {
            return Some((j, lo));
        }
        if hi < -absmax {
            return Some((j, hi));
        }
    }
    None
}

/// Backward interval through one affine layer (`δ_in = Wᵀ δ_out`), joined
/// over input coordinates.
fn affine_backward(st: &AffineStats, d: Interval) -> Interval {
    let dmag = d.mag();
    let mut out: Option<Interval> = None;
    for (&p, &n) in st.in_pos.iter().zip(&st.in_neg) {
        let slack = fp_slack(st.back_len, (p + n) * dmag);
        let iv = Interval::new(p * d.lo - n * d.hi, p * d.hi - n * d.lo).widen(slack);
        out = Some(out.map_or(iv, |acc| acc.join(iv)));
    }
    out.unwrap_or(Interval { lo: 0.0, hi: 0.0 })
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

fn forward_transfer(op: &AbsOp, x: Interval) -> Interval {
    match op {
        AbsOp::Affine(st) => affine_forward(st, x),
        AbsOp::Relu => Interval::new(x.lo.max(0.0), x.hi.max(0.0)),
        AbsOp::Sigmoid => Interval {
            lo: (sigmoid(x.lo) - 1e-6).max(0.0),
            hi: (sigmoid(x.hi) + 1e-6).min(1.0),
        },
        AbsOp::MaxPool { .. } | AbsOp::Flatten => x,
        AbsOp::AvgPool { k2, .. } => x.widen(fp_slack(*k2 as usize + 1, x.mag())),
        AbsOp::Dropout { scale } => x.scale(*scale).hull_zero().widen(4.0 * EPS32 * x.mag()),
    }
}

fn backward_transfer(op: &AbsOp, d: Interval) -> Interval {
    match op {
        AbsOp::Affine(st) => affine_backward(st, d),
        AbsOp::Relu => d.hull_zero(),
        // σ'(x) = σ(1−σ) ∈ [0, 1/4].
        AbsOp::Sigmoid => d.scale(0.25).hull_zero().widen(4.0 * EPS32 * d.mag()),
        AbsOp::MaxPool { overlap } => d
            .scale(*overlap)
            .hull_zero()
            .widen(fp_slack(*overlap as usize, overlap * d.mag())),
        AbsOp::AvgPool { k2, overlap } => {
            let s = overlap / k2;
            d.scale(s)
                .hull_zero()
                .widen(fp_slack(*overlap as usize + 1, s * d.mag()))
        }
        AbsOp::Flatten => d,
        AbsOp::Dropout { scale } => d.scale(*scale).hull_zero().widen(4.0 * EPS32 * d.mag()),
    }
}

/// Error interval the loss feeds into the backward pass.
fn loss_delta(loss: Loss, output: Interval) -> Interval {
    match loss {
        // δ = softmax(y) − onehot(t); p ∈ [0, 1] up to rounding.
        Loss::SoftmaxCrossEntropy => Interval {
            lo: -1.0 - 1e-5,
            hi: 1.0 + 1e-5,
        },
        // δ = y − t with t ∈ {0, 1}.
        Loss::L2 => Interval {
            lo: output.lo - 1.0,
            hi: output.hi,
        }
        .widen(4.0 * EPS32 * (output.mag() + 1.0)),
    }
}

// ---- the analysis ----------------------------------------------------------

fn run_analysis(
    network: String,
    layers: &[AbsLayer],
    input: Interval,
    loss: Loss,
    cfg: &PipeLayerConfig,
) -> RangeReport {
    let act_max = cfg.datapath.activation_absmax;
    let grad_max = cfg.datapath.gradient_absmax;
    let acc_bits = u32::from(cfg.datapath.accumulator_bits);
    let data_bits = cfg.params.data_bits;
    let mut diags = Vec::new();

    // Forward sweep.
    let mut stages: Vec<StageBounds> = Vec::with_capacity(layers.len());
    let mut inputs: Vec<Interval> = Vec::with_capacity(layers.len());
    let mut x = input;
    if x.mag() > act_max {
        diags.push(Diagnostic::error(
            diag::RANGE_ACTIVATION_OVERFLOW,
            "input",
            format!("input domain {x} already exceeds the activation range \u{b1}{act_max:.3e}"),
            "widen datapath.activation_absmax or normalise the input data",
        ));
    }
    for (i, layer) in layers.iter().enumerate() {
        inputs.push(x);
        let y = forward_transfer(&layer.op, x);
        let loc = format!("stage {i} ({})", layer.name);
        if y.mag() > act_max && x.mag() <= act_max {
            diags.push(Diagnostic::error(
                diag::RANGE_ACTIVATION_OVERFLOW,
                loc.clone(),
                format!(
                    "worst-case activation bound {y} exceeds the representable \
                     \u{b1}{act_max:.3e} of the {data_bits}-bit datapath"
                ),
                "widen datapath.activation_absmax (more integer bits), rescale the \
                 preceding weights, or normalise activations between stages",
            ));
        }
        let mut stage = StageBounds::passthrough(i, layer.name.clone());
        stage.activation = y;
        if let AbsOp::Affine(st) = &layer.op {
            let geometry_bits = accumulator_bits_worst_case(st.matrix_rows, data_bits, data_bits);
            stage.acc_bits_geometry = Some(geometry_bits);
            stage.acc_bits_data = st.code_l1.map(|l1| {
                let qx = Quantizer::try_new(data_bits)
                    .map_or(1u128, |q| u128::from(q.qmax().unsigned_abs()));
                bits_for_magnitude(u128::from(l1) * qx)
            });
            if geometry_bits > acc_bits {
                diags.push(Diagnostic::error(
                    diag::RANGE_ACC_TOO_NARROW,
                    loc.clone(),
                    format!(
                        "mapped matrix has {} rows: a worst-case {data_bits}-bit dot \
                         product needs {geometry_bits} accumulator bits, configured {acc_bits}",
                        st.matrix_rows
                    ),
                    "widen datapath.accumulator_bits or split the layer across more \
                     crossbars (fewer rows per bit line)",
                ));
            }
            if let Some((unit, bound)) = guaranteed_saturation(st, x, act_max) {
                diags.push(Diagnostic::warning(
                    diag::RANGE_GUARANTEED_SATURATION,
                    loc.clone(),
                    format!(
                        "output unit {unit} is provably outside \u{b1}{act_max:.3e} for \
                         every input (bound {bound:.3e}); all {} array-read cycles per \
                         image emit a clipped value there",
                        st.window_positions
                    ),
                    "the unit carries no training signal; rescale its weights/bias or \
                     widen datapath.activation_absmax",
                ));
            }
        }
        stages.push(stage);
        x = y;
    }
    let output = x;

    // Backward sweep.
    let mut d = loss_delta(loss, output);
    if d.mag() > grad_max {
        diags.push(Diagnostic::error(
            diag::RANGE_GRADIENT_OVERFLOW,
            "loss",
            format!("output-layer error bound {d} exceeds the gradient range \u{b1}{grad_max:.3e}"),
            "widen datapath.gradient_absmax",
        ));
    }
    for (i, layer) in layers.iter().enumerate().rev() {
        let d_in = backward_transfer(&layer.op, d);
        let loc = format!("stage {i} ({})", layer.name);
        stages[i].delta = d_in;
        if let AbsOp::Affine(st) = &layer.op {
            let x_in = inputs[i];
            let p = st.window_positions as f64;
            let dw = p * d.mag() * x_in.mag();
            let db = p * d.mag();
            stages[i].dweight_mag = dw + fp_slack(st.window_positions, dw);
            stages[i].dbias_mag = db + fp_slack(st.window_positions, db);
            if stages[i].dweight_mag > grad_max || stages[i].dbias_mag > grad_max {
                diags.push(Diagnostic::error(
                    diag::RANGE_GRADIENT_OVERFLOW,
                    loc.clone(),
                    format!(
                        "per-sample weight-gradient bound {:.3e} exceeds the gradient \
                         range \u{b1}{grad_max:.3e} (the \u{394}W partials buffered per \
                         image, Sec. 4.4.2)",
                        stages[i].dweight_mag.max(stages[i].dbias_mag)
                    ),
                    "widen datapath.gradient_absmax or lower the loss scale",
                ));
            }
        }
        if d_in.mag() > grad_max && d.mag() <= grad_max {
            diags.push(Diagnostic::error(
                diag::RANGE_GRADIENT_OVERFLOW,
                loc,
                format!(
                    "backpropagated error bound {d_in} exceeds the gradient range \
                     \u{b1}{grad_max:.3e}"
                ),
                "widen datapath.gradient_absmax or rescale the layer's weights",
            ));
        }
        d = d_in;
    }

    RangeReport {
        network,
        input,
        value_domain: true,
        stages,
        diags,
    }
}

/// Geometry-only fallback for networks that cannot be materialised: the
/// PL042 accumulator check (which needs no weights) over every weighted
/// layer; value intervals stay unbounded.
pub fn analyze_geometry(
    network: &str,
    geometry: &[InferredLayer],
    input: Interval,
    cfg: &PipeLayerConfig,
) -> RangeReport {
    let acc_bits = u32::from(cfg.datapath.accumulator_bits);
    let data_bits = cfg.params.data_bits;
    let mut stages = Vec::with_capacity(geometry.len());
    let mut diags = Vec::new();
    for (i, layer) in geometry.iter().enumerate() {
        let needed = accumulator_bits_worst_case(layer.matrix_rows as u64, data_bits, data_bits);
        let mut stage = StageBounds::passthrough(i, layer.name.clone());
        stage.acc_bits_geometry = Some(needed);
        if needed > acc_bits {
            diags.push(Diagnostic::error(
                diag::RANGE_ACC_TOO_NARROW,
                format!("stage {i} ({})", layer.name),
                format!(
                    "mapped matrix has {} rows: a worst-case {data_bits}-bit dot product \
                     needs {needed} accumulator bits, configured {acc_bits}",
                    layer.matrix_rows
                ),
                "widen datapath.accumulator_bits or split the layer across more crossbars",
            ));
        }
        stages.push(stage);
    }
    RangeReport {
        network: network.to_string(),
        input,
        value_domain: false,
        stages,
        diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipelayer_nn::zoo;

    #[test]
    fn interval_algebra() {
        let a = Interval::new(2.0, -1.0); // swapped on construction
        assert_eq!(a, Interval { lo: -1.0, hi: 2.0 });
        assert_eq!(a.mag(), 2.0);
        assert_eq!(a.join(Interval::new(-3.0, 0.0)).lo, -3.0);
        assert_eq!(Interval::new(1.0, 2.0).hull_zero().lo, 0.0);
        assert!(a.contains(0.0) && !a.contains(2.1));
        assert!(!Interval::TOP.is_bounded());
        assert_eq!(format!("{}", Interval::TOP), "[unbounded]");
    }

    #[test]
    fn affine_forward_is_exact_on_a_hand_example() {
        // One bit line: w = [2, -1], b = 0.5, x in [0, 1]:
        // out in [0*2 - 1*1 + 0.5, 1*2 - 0*1 + 0.5] = [-0.5, 2.5].
        let st = AffineStats {
            out_pos: vec![2.0],
            out_neg: vec![1.0],
            bias: vec![0.5],
            in_pos: vec![2.0, 0.0],
            in_neg: vec![0.0, 1.0],
            dot_len: 2,
            back_len: 1,
            window_positions: 1,
            matrix_rows: 3,
            code_l1: None,
        };
        let out = affine_forward(&st, Interval::UNIT);
        // Exact up to the deliberate floating-point slack inflation.
        assert!((out.lo + 0.5).abs() < 1e-4 && (out.hi - 2.5).abs() < 1e-4);
        assert!(out.lo <= -0.5 && out.hi >= 2.5, "slack must widen outward");
        // Backward: delta in [-1, 1] -> col0 |2|, col1 |-1| -> join = [-2, 2].
        let d = affine_backward(&st, Interval::new(-1.0, 1.0));
        assert!((d.lo + 2.0).abs() < 1e-4 && (d.hi - 2.0).abs() < 1e-4);
    }

    #[test]
    fn relu_and_pool_transfers() {
        let x = Interval::new(-2.0, 3.0);
        assert_eq!(forward_transfer(&AbsOp::Relu, x), Interval::new(0.0, 3.0));
        assert_eq!(forward_transfer(&AbsOp::Flatten, x), x);
        let mp = AbsOp::MaxPool { overlap: 1.0 };
        assert_eq!(forward_transfer(&mp, x), x);
        let back = backward_transfer(&mp, Interval::new(0.5, 1.0));
        // Hull with zero (unrouted positions get 0), then slack widening.
        assert!(back.lo <= 0.0 && back.lo > -1e-4, "{back}");
        assert!(back.hi >= 1.0 && back.hi < 1.0 + 1e-4, "{back}");
        let s = forward_transfer(&AbsOp::Sigmoid, Interval::new(-100.0, 100.0));
        assert!(s.lo >= 0.0 && s.hi <= 1.0);
    }

    #[test]
    fn default_config_is_clean_on_the_executable_zoo() {
        let cfg = PipeLayerConfig::default();
        for spec in [
            zoo::spec_mnist_a(),
            zoo::spec_mnist_b(),
            zoo::spec_mnist_c(),
            zoo::spec_mnist_0(),
            zoo::spec_c4(),
            zoo::spec_mc(),
        ] {
            let report = analyze(&spec, &cfg);
            assert!(report.value_domain, "{} should be executable", spec.name);
            assert!(
                !diag::has_errors(&report.diags),
                "{}: {:?}",
                spec.name,
                report.diags
            );
            for st in &report.stages {
                assert!(st.activation.is_bounded(), "{}: {}", spec.name, st.name);
                assert!(st.delta.is_bounded(), "{}: {}", spec.name, st.name);
            }
        }
    }

    #[test]
    fn imagenet_scale_degrades_to_geometry() {
        let cfg = PipeLayerConfig::default();
        let report = analyze(&zoo::alexnet(), &cfg);
        assert!(!report.value_domain);
        assert!(!diag::has_errors(&report.diags), "{:?}", report.diags);
        assert!(report.stages.iter().all(|s| !s.activation.is_bounded()));
        assert!(report.stages.iter().all(|s| s.acc_bits_geometry.is_some()));
    }

    #[test]
    fn under_width_accumulator_is_flagged_at_the_first_wide_matrix() {
        let mut cfg = PipeLayerConfig::default();
        cfg.params.data_bits = 8;
        cfg.datapath.accumulator_bits = 20;
        let report = analyze(&zoo::spec_c4(), &cfg);
        let pl042: Vec<&Diagnostic> = report
            .diags
            .iter()
            .filter(|d| d.code == diag::RANGE_ACC_TOO_NARROW)
            .collect();
        assert!(!pl042.is_empty());
        // conv1 (10 rows) fits in 20 bits; the second conv3x8 (73 rows,
        // network stack index 2) is the first that does not.
        assert_eq!(pl042[0].location, "stage 2 (conv3x8)");
    }

    #[test]
    fn json_report_is_well_formed() {
        let report = analyze(&zoo::spec_mnist_a(), &PipeLayerConfig::default());
        let json = report.to_json();
        assert!(json.starts_with("{\"input\":{\"lo\":"));
        assert!(json.contains("\"value_domain\":true"));
        assert!(json.contains("\"acc_bits_geometry\":"));
    }
}
